"""Fig. 13: per-frame latency and energy — orig vs pred vs avg.

Paper headline: average energy per frame drops by 54% (FasterM), 62%
(Faster16), 87% (AlexNet) at <1% accuracy loss. ``orig`` comes from the
calibrated baseline model, ``pred`` from the EVA2 + suffix model, and
``avg`` mixes them with the *measured* key-frame fraction of the med
configuration on the mini-network pipeline (the same role the YTBB runs
play in the paper).
"""

import pytest

from common import NETWORK_MAP, table1_configs
from conftest import register_table
from repro.hardware import VPUConfig, VPUModel


@pytest.fixture(scope="module")
def fig13_rows():
    rows = []
    for mini, (paper_name, _, mode) in NETWORK_MAP.items():
        key_fraction = table1_configs(mini)["med"].key_fraction
        vpu = VPUModel(paper_name.lower(), VPUConfig(memoize=(mode == "memoize")))
        orig = VPUModel.total(vpu.baseline_frame_cost())
        pred = VPUModel.total(vpu.predicted_frame_cost())
        avg = vpu.average_frame_cost(key_fraction)
        rows.append((paper_name, key_fraction, orig, pred, avg))
    return rows


def test_fig13_energy_latency(benchmark, fig13_rows):
    vpu = VPUModel("faster16")
    benchmark(lambda: vpu.average_frame_cost(0.36))

    register_table(
        "Fig 13 per-frame cost (paper avg/orig energy: Alex 0.13, F16 0.38, FM 0.46)",
        ["network", "keys", "orig ms", "pred ms", "avg ms", "orig mJ",
         "pred mJ", "avg mJ", "avg/orig energy"],
        [
            [name, keys, orig.latency_ms, pred.latency_ms, avg.latency_ms,
             orig.energy_mj, pred.energy_mj, avg.energy_mj,
             avg.energy_mj / orig.energy_mj]
            for name, keys, orig, pred, avg in fig13_rows
        ],
    )

    by_name = {row[0]: row for row in fig13_rows}
    for name, keys, orig, pred, avg in fig13_rows:
        # Shape: predicted frames are much cheaper; averages in between.
        assert pred.energy_mj < 0.5 * orig.energy_mj
        assert pred.energy_mj < avg.energy_mj < orig.energy_mj
        assert pred.latency_ms < avg.latency_ms < orig.latency_ms
    # AlexNet's average saving is the largest (lowest key-frame rate).
    def ratio(row):
        return row[4].energy_mj / row[2].energy_mj

    assert ratio(by_name["AlexNet"]) < ratio(by_name["Faster16"])
    assert ratio(by_name["AlexNet"]) < ratio(by_name["FasterM"])


def test_fig13_unit_breakdown(benchmark):
    """The stacked-bar view: EIE is orders of magnitude below Eyeriss on
    key frames (the paper's observation about FC efficiency)."""
    vpu = VPUModel("faster16")
    breakdown = benchmark(vpu.key_frame_cost)
    register_table(
        "Fig 13 Faster16 key-frame breakdown by unit",
        ["unit", "latency ms", "energy mJ"],
        [
            [unit, cost.latency_ms, cost.energy_mj]
            for unit, cost in sorted(breakdown.items())
        ],
    )
    assert breakdown["eie"].energy_mj < 0.1 * breakdown["eyeriss"].energy_mj
    assert breakdown["eva2"].energy_mj < 0.01 * breakdown["eyeriss"].energy_mj
