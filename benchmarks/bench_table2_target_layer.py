"""Table II: accuracy impact of the AMC target layer.

Early target = the first pooling layer; late target = the last spatial
layer (the paper's §IV-E3 definitions). Predicted-frame accuracy is
measured at a short gap (33 ms = 1 frame) and a long gap (198 ms = 6
frames) for the detection networks, and at a long memoization gap for the
classification network.

Paper shape: the late target is usually at least as accurate as the early
one (warping errors do not compound catastrophically through a deep
prefix), and accuracy falls with gap length.
"""

import pytest

from common import NETWORK_MAP, eval_clips
from conftest import register_table
from repro.analysis.evaluation import decode_detections
from repro.core import AMCConfig, AMCExecutor
from repro.nn.functional import softmax
from repro.nn.train import get_trained_network
from repro.vision import GroundTruth, mean_average_precision

GAPS = {"33 ms": 1, "198 ms": 6}
START_STRIDE = 3


def predicted_accuracy(network, task, mode, target, gap, clips):
    """Accuracy over predicted frames at a fixed gap for one target."""
    executor = AMCExecutor(network, AMCConfig(target_layer=target, mode=mode))
    detections, truths = [], []
    correct, total = 0, 0
    frame_id = 0
    for clip in clips:
        for start in range(0, len(clip) - gap, START_STRIDE):
            executor.reset()
            executor.process_key(clip.frames[start])
            output = executor.process_predicted(clip.frames[start + gap])
            ann = clip.annotations[start + gap]
            if task == "detection":
                truths.append(GroundTruth(frame_id, ann.class_id, ann.box))
                detections.extend(
                    decode_detections(output, [frame_id],
                                      frame_size=clip.frames.shape[2])
                )
                frame_id += 1
            else:
                probs = softmax(output)
                correct += int(probs[0].argmax() == ann.class_id)
                total += 1
    if task == "detection":
        return mean_average_precision(detections, truths)
    return correct / max(total, 1)


@pytest.fixture(scope="module")
def table2_results():
    clips = eval_clips("test")
    results = {}
    for mini, (_, task, mode) in NETWORK_MAP.items():
        network = get_trained_network(mini)
        early = network.first_post_pool_layer()
        late = network.last_spatial_layer()
        for gap_label, gap in GAPS.items():
            for which, target in (("early", early), ("late", late)):
                results[(mini, gap_label, which)] = predicted_accuracy(
                    network, task, mode, target, gap, clips
                )
    return results


def test_table2_target_layer(benchmark, table2_results):
    network = get_trained_network("mini_fasterm")
    benchmark(
        predicted_accuracy, network, "detection", "warp",
        network.last_spatial_layer(), 1, eval_clips("test")[:1],
    )

    register_table(
        "Table II target-layer choice (accuracy %, predicted frames)",
        ["network", "interval", "early target", "late target"],
        [
            [mini, gap_label,
             100 * table2_results[(mini, gap_label, "early")],
             100 * table2_results[(mini, gap_label, "late")]]
            for mini in NETWORK_MAP
            for gap_label in GAPS
        ],
    )

    for mini in NETWORK_MAP:
        # Longer gaps never help (within noise).
        for which in ("early", "late"):
            assert (
                table2_results[(mini, "198 ms", which)]
                <= table2_results[(mini, "33 ms", which)] + 0.05
            )
    # The paper's conclusion: the late target is viable — averaged over
    # gaps it matches or beats the early target for the detection
    # networks (the paper itself records one small per-gap exception).
    for mini in ("mini_fasterm", "mini_faster16"):
        late_avg = sum(
            table2_results[(mini, g, "late")] for g in GAPS
        ) / len(GAPS)
        early_avg = sum(
            table2_results[(mini, g, "early")] for g in GAPS
        ) / len(GAPS)
        assert late_avg >= early_avg - 0.03
