"""Fig. 15: adaptive key-frame selection strategy.

Sweeps the decision threshold for both adaptive metrics — RFBME block-match
error and total motion-vector magnitude — and reports accuracy against the
fraction of predicted frames. Paper shape: both metrics trace curves above
the fixed-rate line (the straight line between the all-key and
all-predicted endpoints), making both viable; the hardware uses match
error because it is free.
"""

import pytest

from common import threshold_sweep
from conftest import register_table

NETWORKS = ("mini_alexnet", "mini_fasterm", "mini_faster16")
METRICS = ("match_error", "motion_magnitude")


@pytest.fixture(scope="module")
def fig15_curves():
    return {
        (name, metric): threshold_sweep(name, "test", metric)
        for name in NETWORKS
        for metric in METRICS
    }


def _fixed_rate_accuracy(points, predicted_fraction):
    """Accuracy of the straight line between the curve's endpoints."""
    all_key = max(points, key=lambda p: p.key_fraction)
    all_pred = min(points, key=lambda p: p.key_fraction)
    span = all_key.key_fraction - all_pred.key_fraction
    if span <= 0:
        return all_key.accuracy
    alpha = (predicted_fraction - (1 - all_key.key_fraction)) / span
    return all_key.accuracy + alpha * (all_pred.accuracy - all_key.accuracy)


def test_fig15_keyframe_selection(benchmark, fig15_curves):
    from common import executor_for, eval_clips
    from repro.analysis import run_policy
    from repro.core import MatchErrorPolicy

    benchmark(
        run_policy, executor_for("mini_fasterm"), MatchErrorPolicy(2.0),
        eval_clips("test")[:1], "detection",
    )

    for name in NETWORKS:
        rows = []
        for metric in METRICS:
            for point in fig15_curves[(name, metric)]:
                rows.append(
                    [metric, 100 * (1 - point.key_fraction),
                     100 * point.accuracy]
                )
        register_table(
            f"Fig 15 adaptive key-frame selection, {name} "
            "(accuracy vs % predicted frames)",
            ["metric", "predicted %", "accuracy %"],
            rows,
        )

    for name in NETWORKS:
        for metric in METRICS:
            points = fig15_curves[(name, metric)]
            fractions = [p.key_fraction for p in points]
            # The sweep spans a wide operating range. (Match error is
            # never exactly zero, so threshold 0 reaches all-keys; motion
            # magnitude is exactly zero on static frames, capping its
            # maximum key fraction below 1.)
            if metric == "match_error":
                assert max(fractions) == 1.0
            else:
                assert max(fractions) > 0.3
            assert min(fractions) < 0.5
            # Accuracy at all-keys is at least as good as all-predicted.
            best_keys = max(points, key=lambda p: p.key_fraction)
            fewest_keys = min(points, key=lambda p: p.key_fraction)
            assert best_keys.accuracy >= fewest_keys.accuracy - 0.03

        # The adaptive curve beats (or matches) the fixed-rate line at
        # mid-range operating points for the hardware's metric.
        points = fig15_curves[(name, "match_error")]
        mid = [p for p in points if 0.2 < p.key_fraction < 0.9]
        if mid:
            above = sum(
                p.accuracy >= _fixed_rate_accuracy(points, 1 - p.key_fraction) - 0.05
                for p in mid
            )
            assert above >= len(mid) // 2
