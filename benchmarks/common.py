"""Shared experiment machinery for the benchmark suite.

Everything heavyweight (clip sets, trained networks, threshold sweeps) is
memoised so that benches sharing inputs — Fig. 13, Table I, and Fig. 15
all need key-frame sweeps — compute them once per pytest run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis import run_policy, select_configs, sweep_thresholds
from repro.core import AMCConfig, AMCExecutor, AlwaysKeyPolicy
from repro.nn.train import get_trained_network
from repro.video import build_clipset

#: mini network -> (paper network, task, AMC mode).
NETWORK_MAP = {
    "mini_alexnet": ("AlexNet", "classification", "memoize"),
    "mini_fasterm": ("FasterM", "detection", "warp"),
    "mini_faster16": ("Faster16", "detection", "warp"),
}

#: evaluation clip budget: large enough for stable mAP, small enough to
#: keep the full bench suite in minutes.
EVAL_CLIPS_PER_SCENARIO = 3
EVAL_FRAMES_PER_CLIP = 12

#: quantiles of the observed per-frame metric used as sweep thresholds.
#: Self-calibrating: the metric's scale depends on frame size and texture,
#: so absolute thresholds would not transfer across substrates.
SWEEP_QUANTILES = (0.15, 0.35, 0.55, 0.75, 0.9)

#: accuracy-drop budgets for hi/med/lo. The paper uses 0.5/1/2 points on
#: YTBB-scale test sets; our test split is ~250 frames, so mAP noise is
#: larger and the budgets are doubled to keep the selection meaningful.
BUDGETS = {"hi": 0.01, "med": 0.02, "lo": 0.04}


@lru_cache(maxsize=None)
def eval_clips(split: str) -> Tuple:
    """The evaluation clip set for a split (cached, deterministic)."""
    clipset = build_clipset(
        split,
        clips_per_scenario=EVAL_CLIPS_PER_SCENARIO,
        num_frames=EVAL_FRAMES_PER_CLIP,
    )
    return tuple(clipset.clips)


@lru_cache(maxsize=None)
def executor_for(name: str) -> AMCExecutor:
    """A fresh AMC executor on the zoo network, in its paper AMC mode."""
    _, _, mode = NETWORK_MAP[name]
    return AMCExecutor(get_trained_network(name), AMCConfig(mode=mode))


@lru_cache(maxsize=None)
def baseline_accuracy(name: str, split: str = "test") -> float:
    """Accuracy with every frame precise (the paper's ``orig``)."""
    _, task, _ = NETWORK_MAP[name]
    accuracy, _ = run_policy(
        executor_for(name), AlwaysKeyPolicy(), eval_clips(split), task
    )
    return accuracy


@lru_cache(maxsize=None)
def metric_samples(name: str, metric: str = "match_error") -> Tuple[float, ...]:
    """Per-frame values of an adaptive metric at gap 1 on validation.

    Collected from an all-key-frames run (motion estimation happens every
    frame regardless of the decision, Fig. 6), these set the threshold
    scale for the sweeps.
    """
    from repro.core import EVA2Pipeline

    pipeline = EVA2Pipeline(executor_for(name), AlwaysKeyPolicy())
    values: List[float] = []
    for clip in eval_clips("val"):
        result = pipeline.run_clip(clip)
        for record in result.records[1:]:
            values.append(
                record.match_error
                if metric == "match_error"
                else record.motion_magnitude
            )
    return tuple(values)


@lru_cache(maxsize=None)
def sweep_grid(name: str, metric: str = "match_error") -> Tuple[float, ...]:
    """Threshold grid: data quantiles plus extremes.

    Under prediction the metric grows with the key-frame gap, so the grid
    extends above the gap-1 maximum; 0 forces all-keys and a huge value
    forces all-predicted, anchoring both ends of the Fig. 15 curves.
    """
    samples = np.asarray(metric_samples(name, metric))
    quantiles = [float(np.quantile(samples, q)) for q in SWEEP_QUANTILES]
    peak = float(samples.max())
    return tuple([0.0] + quantiles + [1.5 * peak, 3.0 * peak, 1e12])


@lru_cache(maxsize=None)
def threshold_sweep(name: str, split: str, metric: str = "match_error"):
    """Sweep the adaptive policy's threshold on a split (cached)."""
    _, task, _ = NETWORK_MAP[name]
    return tuple(
        sweep_thresholds(
            executor_for(name),
            eval_clips(split),
            task,
            thresholds=sweep_grid(name, metric),
            metric=metric,
        )
    )


@lru_cache(maxsize=None)
def table1_configs(name: str) -> Dict:
    """hi/med/lo operating points: thresholds chosen on validation, then
    re-measured on the test split (the paper's protocol)."""
    _, task, _ = NETWORK_MAP[name]
    val_points = threshold_sweep(name, "val")
    configs = select_configs(
        val_points, baseline_accuracy(name, "val"), budgets=BUDGETS
    )

    from repro.analysis.tradeoff import POLICY_FACTORIES, TradeoffConfig

    measured = {}
    for label, config in configs.items():
        accuracy, key_fraction = run_policy(
            executor_for(name),
            POLICY_FACTORIES["match_error"](config.threshold),
            eval_clips("test"),
            task,
        )
        measured[label] = TradeoffConfig(
            name=label,
            threshold=config.threshold,
            key_fraction=key_fraction,
            accuracy=accuracy,
        )
    return measured
