"""Ablation (§IV-E1): motion compensation vs memoization.

Paper conclusion: detection tasks want warping (translation-sensitive);
classification prefers plain memoization — at a long gap, warping AlexNet
*hurt* accuracy (1% drop memoized vs 5% warped) by injecting noise into a
translation-invariant task.
"""

import pytest

from common import eval_clips
from conftest import register_table
from repro.analysis.evaluation import decode_detections
from repro.core import AMCConfig, AMCExecutor
from repro.nn.functional import softmax
from repro.nn.train import get_trained_network
from repro.vision import GroundTruth, mean_average_precision

DETECTION_GAP = 6
#: classification uses a much longer gap (the paper's AlexNet runs at
#: multi-second key-frame gaps); 10 frames is our clips' maximum.
CLASSIFICATION_GAP = 10
START_STRIDE = 2


def detection_accuracy(network, mode, clips):
    executor = AMCExecutor(network, AMCConfig(mode=mode))
    detections, truths = [], []
    frame_id = 0
    for clip in clips:
        for start in range(0, len(clip) - DETECTION_GAP, START_STRIDE):
            executor.reset()
            executor.process_key(clip.frames[start])
            output = executor.process_predicted(clip.frames[start + DETECTION_GAP])
            ann = clip.annotations[start + DETECTION_GAP]
            truths.append(GroundTruth(frame_id, ann.class_id, ann.box))
            detections.extend(
                decode_detections(output, [frame_id],
                                  frame_size=clip.frames.shape[2])
            )
            frame_id += 1
    return mean_average_precision(detections, truths)


def classification_accuracy_at_gap(network, mode, clips):
    executor = AMCExecutor(network, AMCConfig(mode=mode))
    correct, total = 0, 0
    for clip in clips:
        for start in range(0, len(clip) - CLASSIFICATION_GAP, START_STRIDE):
            executor.reset()
            executor.process_key(clip.frames[start])
            output = executor.process_predicted(
                clip.frames[start + CLASSIFICATION_GAP]
            )
            ann = clip.annotations[start + CLASSIFICATION_GAP]
            correct += int(softmax(output)[0].argmax() == ann.class_id)
            total += 1
    return correct / max(total, 1)


@pytest.fixture(scope="module")
def memo_results():
    clips = eval_clips("test")
    detector = get_trained_network("mini_fasterm")
    classifier = get_trained_network("mini_alexnet")
    return {
        ("detection", "warp"): detection_accuracy(detector, "warp", clips),
        ("detection", "memoize"): detection_accuracy(detector, "memoize", clips),
        ("classification", "warp"): classification_accuracy_at_gap(
            classifier, "warp", clips
        ),
        ("classification", "memoize"): classification_accuracy_at_gap(
            classifier, "memoize", clips
        ),
    }


def test_ablation_memoization(benchmark, memo_results):
    network = get_trained_network("mini_fasterm")
    benchmark(detection_accuracy, network, "memoize", eval_clips("test")[:1])

    register_table(
        "Ablation SecIV-E1: warping vs memoization "
        "(paper: detection wants warp, classification wants memoize)",
        ["task", "warp %", "memoize %"],
        [
            ["detection (mAP, gap 6)",
             100 * memo_results[("detection", "warp")],
             100 * memo_results[("detection", "memoize")]],
            ["classification (top-1, gap 10)",
             100 * memo_results[("classification", "warp")],
             100 * memo_results[("classification", "memoize")]],
        ],
    )
    # Detection: warping helps.
    assert (
        memo_results[("detection", "warp")]
        >= memo_results[("detection", "memoize")] - 0.01
    )
    # Classification: memoization is at least as good as warping.
    assert (
        memo_results[("classification", "memoize")]
        >= memo_results[("classification", "warp")] - 0.02
    )
