"""CI perf gate: compare a fresh benchmark JSON against the committed one.

Usage::

    python benchmarks/perf_gate.py BASELINE.json FRESH.json \
        [--threshold 0.30] [--summary $GITHUB_STEP_SUMMARY] [--label NAME]

Absolute frames/sec are machine-dependent (a laptop baseline vs a shared
CI runner), so the gate compares *normalized* metrics that survive a
hardware change:

* ``BENCH_runtime.json`` — each path's ``speedup_vs_seed`` (the shape of
  the perf curve relative to the seed loop on the same host);
* ``BENCH_serving.json`` — ``serving_vs_static`` (continuous batching
  relative to static lockstep on the same host) and ``shard_scaling_2x``
  (2-shard aggregate throughput relative to the single-process run —
  serving's sharding headline must not silently regress either).

A markdown speedup table is written to ``--summary`` (the
``$GITHUB_STEP_SUMMARY`` file in CI) and echoed to stdout.  Any metric
more than ``--threshold`` (default 30%) below its committed value exits
non-zero and emits a ``::warning`` annotation; the CI step runs with
``continue-on-error`` so the job turns amber — visibly degraded, never
silently green.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def _metrics(data: dict) -> Dict[str, float]:
    """Normalized metric name -> value, for either benchmark format."""
    if "paths" in data:  # BENCH_runtime.json
        metrics = {
            f"{label} (x seed)": path["speedup_vs_seed"]
            for label, path in data["paths"].items()
        }
        headline = data.get("headline_speedup_vs_pr1_lockstep")
        if headline is not None:
            metrics["planned lockstep (x pr1 lockstep)"] = headline
        return metrics
    if "serving_vs_static" in data:  # BENCH_serving.json
        metrics = {"serving (x static lockstep)": data["serving_vs_static"]}
        if "shard_scaling_2x" in data:
            metrics["2-shard serving (x 1 worker)"] = data["shard_scaling_2x"]
        return metrics
    raise SystemExit(f"unrecognized benchmark JSON: {sorted(data)[:5]}")


def compare(
    baseline: Dict[str, float], fresh: Dict[str, float], threshold: float
) -> Tuple[List[List[str]], List[str]]:
    """Markdown table rows plus the list of regressed metric names."""
    rows: List[List[str]] = []
    regressions: List[str] = []
    for name in baseline:
        if name not in fresh:
            rows.append([name, f"{baseline[name]:.2f}", "missing", "-", "⚠️ gone"])
            regressions.append(name)
            continue
        ratio = fresh[name] / baseline[name] if baseline[name] else 1.0
        regressed = ratio < 1.0 - threshold
        status = "⚠️ regression" if regressed else "ok"
        rows.append(
            [
                name,
                f"{baseline[name]:.2f}",
                f"{fresh[name]:.2f}",
                f"{ratio:.2f}x",
                status,
            ]
        )
        if regressed:
            regressions.append(name)
    for name in fresh:
        if name not in baseline:
            rows.append([name, "-", f"{fresh[name]:.2f}", "-", "new"])
    return rows, regressions


def render(label: str, rows: List[List[str]]) -> str:
    header = "| metric | committed | fresh | ratio | status |"
    rule = "|---|---|---|---|---|"
    body = "\n".join("| " + " | ".join(row) + " |" for row in rows)
    return f"### Perf gate: {label}\n\n{header}\n{rule}\n{body}\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark JSON")
    parser.add_argument("fresh", help="freshly measured benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional regression that trips the gate")
    parser.add_argument("--summary", default=None,
                        help="markdown file to append the table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--label", default=None,
                        help="table heading (default: fresh file name)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = _metrics(json.load(handle))
    with open(args.fresh) as handle:
        fresh = _metrics(json.load(handle))

    rows, regressions = compare(baseline, fresh, args.threshold)
    table = render(args.label or args.fresh, rows)
    print(table)
    if args.summary:
        with open(args.summary, "a") as handle:
            handle.write(table + "\n")

    if regressions:
        # GitHub annotation: visible on the workflow run and the PR.
        print(
            f"::warning title=Perf gate::{len(regressions)} metric(s) "
            f"regressed >{args.threshold:.0%} vs the committed baseline: "
            + ", ".join(regressions)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
