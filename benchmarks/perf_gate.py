"""CI perf gate: compare a fresh benchmark JSON against the committed one.

Usage::

    python benchmarks/perf_gate.py BASELINE.json FRESH.json \
        [--threshold 0.30] [--summary $GITHUB_STEP_SUMMARY] [--label NAME]

Absolute frames/sec are machine-dependent (a laptop baseline vs a shared
CI runner), so the gate compares *normalized* metrics that survive a
hardware change:

* ``BENCH_runtime.json`` — each path's ``speedup_vs_seed`` (the shape of
  the perf curve relative to the seed loop on the same host);
* ``BENCH_serving.json`` — ``serving_vs_static`` (continuous batching
  relative to static lockstep on the same host), ``shard_scaling_2x``
  (2-shard aggregate throughput relative to the single-process run),
  ``pipelined_vs_sequential`` (the depth-2 stage executor relative to
  sequential lockstep), and ``admission_p99_speedup`` (static p99
  time-to-first-frame divided by shared-admission p99 under skewed
  traffic — the work-stealing headline; >= 1 means stealing is no worse).

A markdown speedup table is written to ``--summary`` (the
``$GITHUB_STEP_SUMMARY`` file in CI) and echoed to stdout.  Any metric
more than ``--threshold`` (default 30%) below its committed value exits
non-zero and emits a ``::warning`` annotation; the CI step runs with
``continue-on-error`` so the job turns amber — visibly degraded, never
silently green.

The JSON load/merge discipline and the metric extraction/comparison live
in ``benchmarks/_common.py``, shared with the benchmarks that write the
files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from _common import compare_metrics, load_bench_json, normalized_metrics


def render(label: str, rows: List[List[str]]) -> str:
    header = "| metric | committed | fresh | ratio | status |"
    rule = "|---|---|---|---|---|"
    body = "\n".join("| " + " | ".join(row) + " |" for row in rows)
    return f"### Perf gate: {label}\n\n{header}\n{rule}\n{body}\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark JSON")
    parser.add_argument("fresh", help="freshly measured benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional regression that trips the gate")
    parser.add_argument("--summary", default=None,
                        help="markdown file to append the table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--label", default=None,
                        help="table heading (default: fresh file name)")
    args = parser.parse_args(argv)

    baseline = normalized_metrics(load_bench_json(args.baseline))
    fresh = normalized_metrics(load_bench_json(args.fresh))

    rows, regressions = compare_metrics(baseline, fresh, args.threshold)
    table = render(args.label or args.fresh, rows)
    print(table)
    if args.summary:
        with open(args.summary, "a") as handle:
            handle.write(table + "\n")

    if regressions:
        # GitHub annotation: visible on the workflow run and the PR.
        print(
            f"::warning title=Perf gate::{len(regressions)} metric(s) "
            f"regressed >{args.threshold:.0%} vs the committed baseline: "
            + ", ".join(regressions)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
