"""Planned CNN inference engine: per-layer and end-to-end gains.

The engine (:class:`repro.nn.inference.InferencePlan`) compiles each
network once per (batch capacity, dtype): im2col becomes one flat gather
into preallocated scratch, pooling loses its unfold/argmax, ReLU reuses
one mask buffer in the GEMM's natural layout, and matmuls stay at serial
shapes unless fusing across the batch is proven bit-identical on the
host.  This bench reports, per layer and end to end:

* batch-of-1 planned execution vs the seed layer-by-layer forward (the
  serial pipeline's win), and
* batch-of-16 planned execution per frame (the lockstep runtime's win —
  one call serving a whole workload step).

Float64 results are asserted bitwise identical to the serial forward;
the float32 row shows the opt-in reduced-precision throughput.
"""

import time

import numpy as np
import pytest

from conftest import register_table
from repro.nn.train import get_trained_network

NETWORK = "mini_fasterm"
BATCH = 16


def _time(fn, repeats=60):
    fn()  # warm
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


@pytest.fixture(scope="module")
def net():
    return get_trained_network(NETWORK)


@pytest.fixture(scope="module")
def frames():
    return np.random.default_rng(0).random((BATCH, 1, 64, 64))


def test_per_layer_inference(net, frames):
    """Layer-by-layer: seed forward vs compiled plan steps."""
    plan = net.inference_plan(max_batch=BATCH)
    x_seed = frames[:1]
    x_plan1 = frames[:1].copy()
    x_planB = frames.copy()
    rows = []
    for layer, step in zip(net.layers, plan._steps):
        t_seed = _time(lambda: layer.forward(x_seed, train=False))
        t_plan1 = _time(lambda: step.run(x_plan1, 1))
        t_planB = _time(lambda: step.run(x_planB, BATCH))
        rows.append([
            layer.name,
            type(layer).__name__,
            round(t_seed * 1e6, 1),
            round(t_plan1 * 1e6, 1),
            round(t_planB / BATCH * 1e6, 1),
            f"{t_seed / (t_planB / BATCH):.2f}x",
        ])
        x_seed = layer.forward(x_seed, train=False)
        x_plan1 = step.run(x_plan1, 1)
        x_planB = step.run(x_planB, BATCH)
        np.testing.assert_array_equal(np.asarray(x_plan1), x_seed)
    register_table(
        f"planned inference per layer ({NETWORK}; µs/frame, batch {BATCH})",
        ["layer", "type", "seed b=1", "plan b=1", f"plan b={BATCH}", "speedup"],
        rows,
    )


def test_end_to_end_inference(net, frames):
    """Whole forward pass + the AMC suffix, seed vs planned."""
    plan = net.inference_plan(max_batch=BATCH)
    plan32 = net.inference_plan(max_batch=BATCH, dtype="float32")
    target = net.last_spatial_layer()
    act1 = net.forward_prefix(frames[:1], target)
    actB = plan.run_prefix(frames, target)

    t_seed = _time(lambda: net.forward(frames[:1]))
    t_plan1 = _time(lambda: plan.run(frames[:1]))
    t_planB = _time(lambda: plan.run(frames)) / BATCH
    t_plan32 = _time(lambda: plan32.run(frames)) / BATCH
    t_suffix_seed = _time(lambda: net.forward_suffix(act1, target))
    t_suffix_batch = _time(lambda: plan.run_suffix(actB, target)) / BATCH

    rows = [
        ["full forward, seed b=1", round(t_seed * 1e6, 1), "1.00x"],
        ["full forward, plan b=1", round(t_plan1 * 1e6, 1),
         f"{t_seed / t_plan1:.2f}x"],
        [f"full forward, plan b={BATCH}", round(t_planB * 1e6, 1),
         f"{t_seed / t_planB:.2f}x"],
        [f"full forward, plan b={BATCH} f32", round(t_plan32 * 1e6, 1),
         f"{t_seed / t_plan32:.2f}x"],
        ["AMC suffix, seed b=1", round(t_suffix_seed * 1e6, 1), "1.00x"],
        [f"AMC suffix, plan b={BATCH}", round(t_suffix_batch * 1e6, 1),
         f"{t_suffix_seed / t_suffix_batch:.2f}x"],
    ]
    register_table(
        f"planned inference end to end ({NETWORK}; µs/frame)",
        ["path", "µs/frame", "speedup"],
        rows,
    )

    # Bit-identity of the planned paths is the hard requirement; the
    # throughput floor is deliberately conservative to stay robust on
    # noisy CI hosts.
    out = plan.run(frames)
    for s in range(BATCH):
        np.testing.assert_array_equal(out[s], net.forward(frames[s : s + 1])[0])
    assert t_planB < t_seed, "batched planned inference slower than seed"
