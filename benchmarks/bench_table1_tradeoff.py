"""Table I: the accuracy/efficiency trade-off space.

For each network: the orig baseline plus hi/med/lo adaptive configurations
(accuracy-drop budgets <0.5%, <1%, <2% on validation), reporting test-set
accuracy, key-frame fraction, and modelled per-frame latency/energy.

Paper shape to reproduce: accuracy drops stay small at every level, key
fractions fall as the budget loosens, and cost falls with key fraction —
with AlexNet reaching far lower key rates than the detection networks.
"""

import pytest

from common import NETWORK_MAP, baseline_accuracy, table1_configs
from conftest import register_table
from repro.hardware import VPUConfig, VPUModel


@pytest.fixture(scope="module")
def table1_rows():
    rows = {}
    for mini, (paper_name, task, mode) in NETWORK_MAP.items():
        vpu = VPUModel(paper_name.lower(), VPUConfig(memoize=(mode == "memoize")))
        orig_cost = VPUModel.total(vpu.baseline_frame_cost())
        orig_acc = baseline_accuracy(mini)
        entries = [("orig", orig_acc, 1.0, orig_cost)]
        for label in ("hi", "med", "lo"):
            config = table1_configs(mini)[label]
            cost = vpu.average_frame_cost(config.key_fraction)
            entries.append((label, config.accuracy, config.key_fraction, cost))
        rows[mini] = entries
    return rows


def test_table1_tradeoff(benchmark, table1_rows):
    from common import executor_for, eval_clips
    from repro.analysis import run_policy
    from repro.core import StaticPolicy

    # Benchmark one representative pipeline run (the measurement kernel).
    clips = eval_clips("test")[:1]
    benchmark(run_policy, executor_for("mini_fasterm"), StaticPolicy(4),
              clips, "detection")

    flat = []
    for mini, entries in table1_rows.items():
        paper_name = NETWORK_MAP[mini][0]
        for label, acc, keys, cost in entries:
            flat.append(
                [paper_name, label, 100 * acc, 100 * keys,
                 cost.latency_ms, cost.energy_mj]
            )
    register_table(
        "Table I trade-off space (accuracy %, keys %, per-frame cost)",
        ["network", "config", "accuracy", "keys %", "time ms", "energy mJ"],
        flat,
    )

    for mini, entries in table1_rows.items():
        orig = entries[0]
        labels = {label: (acc, keys, cost) for label, acc, keys, cost in entries}
        # Key fractions decrease (weakly) as the budget loosens.
        assert labels["hi"][1] >= labels["lo"][1]
        # Every adaptive config is cheaper than orig.
        for label in ("hi", "med", "lo"):
            assert labels[label][2].energy_mj < orig[3].energy_mj
        # Accuracy stays within a loose envelope of the baseline (the
        # budgets are validation-set; test-set drop may exceed slightly).
        for label in ("hi", "med", "lo"):
            assert orig[1] - labels[label][0] < 0.12
    # AlexNet (classification) tolerates far fewer key frames than the
    # detection networks — the paper's central Table I observation.
    assert (
        table1_rows_key("mini_alexnet", table1_rows)
        <= table1_rows_key("mini_fasterm", table1_rows)
    )


def table1_rows_key(mini, table1_rows):
    entries = {label: keys for label, _, keys, _ in table1_rows[mini]}
    return entries["lo"]
