"""Runtime throughput: the batched multi-clip runtime vs the seed serial loop.

A 16-clip mixed-scenario synthetic workload (the shape of multi-stream
live-vision traffic, paper §I) runs through four execution paths:

* ``seed serial``  — the seed implementation: one clip at a time with the
  loop RFBME backend (Python iteration per search offset and per
  receptive field);
* ``vec serial``   — same serial loop with the vectorized/compiled RFBME
  hot path;
* ``lockstep``     — :class:`repro.runtime.BatchedPipeline`, batching
  RFBME across all active clips each frame step;
* ``threads``      — :class:`repro.runtime.ClipScheduler` on a thread
  pool (informational; wins only on multi-core hosts).

Every path must produce identical outputs, key-frame decisions, and op
counts — the speedup comes purely from host execution strategy.  The
headline assertion is >= 3x frames/sec over the seed serial loop; a
looped-vs-vectorized RFBME microbenchmark is reported alongside.
"""

import os
import time

import pytest

from conftest import register_table
from repro.core.rfbme import RFBMEEngine
from repro.core.sad_kernel import kernel_available
from repro.runtime import PipelineSpec, SchedulerConfig, run_workload, synthetic_workload

NETWORK = "mini_fasterm"
NUM_CLIPS = 16
FRAMES_PER_CLIP = 16
#: paths measured against the seed loop: label -> run kwargs.
FAST_PATHS = {
    "vec serial": dict(batch=False),
    "lockstep": dict(batch=True),
}


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(NUM_CLIPS, num_frames=FRAMES_PER_CLIP, base_seed=0)


def _best_of(runs, spec, workload, **kwargs):
    """Best throughput over a few repetitions (first run warms caches)."""
    results = [run_workload(spec, workload, **kwargs) for _ in range(runs)]
    return max(results, key=lambda r: r.frames_per_second)


def test_runtime_throughput(workload):
    spec = PipelineSpec(network=NETWORK)
    seed_spec = PipelineSpec(network=NETWORK, rfbme_backend="loop")
    spec.warm()
    # The backend the fast paths actually resolve to (the engine may
    # downgrade "kernel" on hosts where it can't run).
    resolved = spec.build_executor().rfbme_engine.backend

    seed = _best_of(2, seed_spec, workload, batch=False)
    measured = {
        label: _best_of(2, spec, workload, **kwargs)
        for label, kwargs in FAST_PATHS.items()
    }
    workers = min(4, os.cpu_count() or 1)
    if workers > 1:
        measured["threads"] = _best_of(
            1, spec, workload,
            scheduler=SchedulerConfig(workers=workers, backend="thread"),
        )

    rows = [[
        "seed serial", "loop", round(seed.frames_per_second, 1), "1.00x", "-",
    ]]
    for label, result in measured.items():
        # Identical results are a hard requirement: outputs, key-frame
        # decisions, and RFBME op counts all match the seed loop.
        assert result.matches(seed), f"{label} diverged from the seed loop"
        rows.append([
            label,
            resolved,
            round(result.frames_per_second, 1),
            f"{result.frames_per_second / seed.frames_per_second:.2f}x",
            "yes",
        ])
    register_table(
        f"runtime throughput ({NUM_CLIPS} clips x {FRAMES_PER_CLIP} frames, "
        f"{NETWORK})",
        ["path", "rfbme", "frames/s", "speedup", "identical"],
        rows,
    )

    best = max(r.frames_per_second for r in measured.values())
    speedup = best / seed.frames_per_second
    if not kernel_available():
        pytest.skip(
            f"compiled SAD kernel unavailable; best speedup {speedup:.2f}x "
            "with NumPy backends only"
        )
    assert speedup >= 3.0, f"expected >= 3x over the seed serial loop, got {speedup:.2f}x"


def test_rfbme_looped_vs_vectorized(workload):
    """Microbenchmark of the RFBME hot path itself, per frame pair."""
    spec = PipelineSpec(network=NETWORK)
    executor = spec.build_executor()
    key, new = workload[0].frames[0], workload[0].frames[1]

    timings = {}
    for backend in ("loop", "batched", "kernel"):
        engine = RFBMEEngine(
            key.shape, executor.rf, executor.grid_shape,
            config=executor.config.rfbme, backend=backend,
        )
        if backend == "kernel" and engine.backend != "kernel":
            continue  # kernel unavailable on this host
        engine.estimate(key, new)  # warm scratch buffers
        start = time.perf_counter()
        repeats = 20
        for _ in range(repeats):
            engine.estimate(key, new)
        timings[backend] = (time.perf_counter() - start) / repeats

    register_table(
        "RFBME looped vs vectorized (64x64 frame, radius 12, stride 2)",
        ["backend", "ms/frame", "speedup"],
        [
            [backend, round(seconds * 1e3, 3),
             f"{timings['loop'] / seconds:.2f}x"]
            for backend, seconds in timings.items()
        ],
    )
    assert timings["batched"] < timings["loop"]
    if "kernel" in timings:
        assert timings["kernel"] < timings["batched"]
