"""Runtime throughput: the planned batched runtime vs its ancestors.

A 16-clip mixed-scenario synthetic workload (the shape of multi-stream
live-vision traffic, paper §I) runs through the execution paths this
repo has accumulated, oldest to newest:

* ``seed serial``     — the seed implementation: one clip at a time, loop
  RFBME backend, layer-by-layer CNN;
* ``pr1 serial``      — serial loop with PR 1's vectorized RFBME hot path
  (pr1 host profile) and the legacy CNN;
* ``pr1 lockstep``    — PR 1's headline: lockstep RFBME batching across
  clips, per-clip CNN, pr1 host profile;
* ``planned serial``  — serial loop on this release's planned inference
  engine and fast RFBME host profile;
* ``planned lockstep``— this release's headline: one RFBME batch, one
  batched CNN prefix for coincident key frames, one batched warp, one
  CNN suffix call per lockstep step;
* ``threads``         — :class:`repro.runtime.ClipScheduler` on a thread
  pool (informational; wins only on multi-core hosts).

Every path must produce identical outputs, key-frame decisions, and op
counts — the speedup comes purely from host execution strategy.  The
headline assertion is >= 3x frames/sec over the PR 1 lockstep runtime
(and, transitively, well past the seed loop).  Results are also written
to ``BENCH_runtime.json`` at the repo root so CI can track the perf
trajectory per PR.
"""

import os
import time

import pytest

from _common import bench_json_path, write_bench_json
from conftest import register_table
from repro.core.rfbme import RFBMEEngine
from repro.core.sad_kernel import kernel_available
from repro.runtime import PipelineSpec, SchedulerConfig, run_workload, synthetic_workload

NETWORK = "mini_fasterm"
NUM_CLIPS = 16
FRAMES_PER_CLIP = 16
JSON_PATH = bench_json_path("runtime")

#: measured paths: label -> (spec kwargs, run kwargs).
PATHS = {
    "seed serial": (
        dict(cnn_engine="legacy", rfbme_profile="pr1", rfbme_backend="loop"),
        dict(batch=False),
    ),
    "pr1 serial": (
        dict(cnn_engine="legacy", rfbme_profile="pr1"),
        dict(batch=False),
    ),
    "pr1 lockstep": (
        dict(cnn_engine="legacy", rfbme_profile="pr1"),
        dict(batch=True),
    ),
    "planned serial": (dict(), dict(batch=False)),
    "planned lockstep": (dict(), dict(batch=True)),
}


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(NUM_CLIPS, num_frames=FRAMES_PER_CLIP, base_seed=0)


def _best_of(runs, spec, workload, **kwargs):
    """Best throughput over a few repetitions (first run warms caches)."""
    results = [run_workload(spec, workload, **kwargs) for _ in range(runs)]
    return max(results, key=lambda r: r.frames_per_second)


def test_runtime_throughput(workload):
    measured = {}
    resolved = {}
    for label, (spec_kwargs, run_kwargs) in PATHS.items():
        spec = PipelineSpec(network=NETWORK, **spec_kwargs)
        spec.warm()
        resolved[label] = spec.build_executor().rfbme_engine.backend
        runs = 1 if label == "seed serial" else 2  # the seed loop is slow
        measured[label] = _best_of(runs, spec, workload, **run_kwargs)

    workers = min(4, os.cpu_count() or 1)
    if workers > 1:
        spec = PipelineSpec(network=NETWORK)
        measured["threads"] = _best_of(
            1, spec, workload,
            scheduler=SchedulerConfig(workers=workers, backend="thread"),
        )
        resolved["threads"] = resolved["planned lockstep"]

    seed = measured["seed serial"]
    rows, trajectory = [], {}
    for label, result in measured.items():
        # Identical results are a hard requirement: outputs, key-frame
        # decisions, and RFBME op counts all match the seed loop.
        assert result.matches(seed), f"{label} diverged from the seed loop"
        speedup = result.frames_per_second / seed.frames_per_second
        rows.append([
            label,
            resolved[label],
            round(result.frames_per_second, 1),
            f"{speedup:.2f}x",
            "yes",
        ])
        trajectory[label] = {
            "frames_per_second": round(result.frames_per_second, 2),
            "speedup_vs_seed": round(speedup, 3),
            "identical_to_seed": True,
        }
    register_table(
        f"runtime throughput ({NUM_CLIPS} clips x {FRAMES_PER_CLIP} frames, "
        f"{NETWORK})",
        ["path", "rfbme", "frames/s", "speedup", "identical"],
        rows,
    )

    pr1 = measured["pr1 lockstep"].frames_per_second
    planned = measured["planned lockstep"].frames_per_second
    headline = planned / pr1
    trajectory["planned lockstep"]["speedup_vs_pr1_lockstep"] = round(headline, 3)
    write_bench_json(
        JSON_PATH,
        header={"benchmark": "runtime_throughput", "network": NETWORK},
        results={
            "workload": {
                "clips": NUM_CLIPS,
                "frames_per_clip": FRAMES_PER_CLIP,
            },
            "kernel_available": kernel_available(),
            "paths": trajectory,
            "headline_speedup_vs_pr1_lockstep": round(headline, 3),
        },
    )

    if not kernel_available():
        pytest.skip(
            f"compiled SAD kernel unavailable; planned lockstep is "
            f"{headline:.2f}x pr1 lockstep with NumPy hot paths only"
        )
    assert headline >= 3.0, (
        f"expected >= 3x over the PR 1 lockstep runtime, got {headline:.2f}x"
    )


def test_rfbme_looped_vs_vectorized(workload):
    """Microbenchmark of the RFBME hot path itself, per frame pair."""
    spec = PipelineSpec(network=NETWORK)
    executor = spec.build_executor()
    key, new = workload[0].frames[0], workload[0].frames[1]

    timings = {}
    for backend in ("loop", "batched", "kernel"):
        engine = RFBMEEngine(
            key.shape, executor.rf, executor.grid_shape,
            config=executor.config.rfbme, backend=backend,
        )
        if backend == "kernel" and engine.backend != "kernel":
            continue  # kernel unavailable on this host
        engine.estimate(key, new)  # warm scratch buffers
        start = time.perf_counter()
        repeats = 20
        for _ in range(repeats):
            engine.estimate(key, new)
        timings[backend] = (time.perf_counter() - start) / repeats

    register_table(
        "RFBME looped vs vectorized (64x64 frame, radius 12, stride 2)",
        ["backend", "ms/frame", "speedup"],
        [
            [backend, round(seconds * 1e3, 3),
             f"{timings['loop'] / seconds:.2f}x"]
            for backend, seconds in timings.items()
        ],
    )
    assert timings["batched"] < timings["loop"]
    if "kernel" in timings:
        assert timings["kernel"] < timings["batched"]
