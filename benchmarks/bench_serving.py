"""Streaming serving under Poisson load vs the static lockstep runtime.

The continuous-batching :class:`~repro.runtime.ServingRuntime` gives up
the static runtime's luxury of a full, synchronized batch: clips arrive
on a Poisson process, join mid-flight, and depart whenever they finish,
so occupancy fluctuates and the batch composition changes every few
steps.  The price of that flexibility is the headline question here:

* **throughput** — steady-state frames/sec of a max-batch-16 server
  under oversubscribed Poisson arrivals must hold **>= 80%** of the
  static 16-clip lockstep number (the ``planned lockstep`` path of
  ``bench_runtime_throughput.py``, measured fresh on this host);
* **correctness** — every served clip's outputs, key-frame decisions,
  and op counts are asserted bit-identical to its serial run, regardless
  of which batch-mates shared its steps.

Latency percentiles (enqueue wait, time to first frame) are reported for
the trajectory record.  Results land in ``BENCH_serving.json`` at the
repo root next to ``BENCH_runtime.json``.
"""

import json
import os

import numpy as np
import pytest

from conftest import register_table
from repro.core.sad_kernel import kernel_available
from repro.runtime import (
    ClipRequest,
    PipelineSpec,
    ServingRuntime,
    poisson_arrival_times,
    run_workload,
    synthetic_workload,
)

NETWORK = "mini_fasterm"
MAX_BATCH = 16
NUM_REQUESTS = 48
FRAMES_PER_CLIP = 16
#: steady-state bar: serving throughput as a fraction of static lockstep.
THROUGHPUT_FLOOR = 0.80
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json")


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def traffic():
    return synthetic_workload(
        NUM_REQUESTS, num_frames=FRAMES_PER_CLIP, base_seed=0
    )


def _static_lockstep_fps(spec, traffic):
    """The static 16-clip lockstep number, measured fresh on this host."""
    clips = traffic[:MAX_BATCH]
    best = max(
        (run_workload(spec, clips, batch=True) for _ in range(3)),
        key=lambda result: result.frames_per_second,
    )
    return best.frames_per_second


def test_serving_throughput_and_identity(spec, traffic):
    static_fps = _static_lockstep_fps(spec, traffic)

    # Oversubscribe: offered load ~2x the server's capacity, so the
    # admission queue stays non-empty and occupancy sits at max_batch —
    # the steady state the 80% bar is defined over.
    clip_rate = 2.0 * static_fps / FRAMES_PER_CLIP
    arrivals = poisson_arrival_times(NUM_REQUESTS, rate=clip_rate, seed=7)
    requests = [
        ClipRequest(request_id=i, clip=clip, arrival_time=arrival)
        for i, (clip, arrival) in enumerate(zip(traffic, arrivals))
    ]

    runtime = ServingRuntime(spec, max_batch=MAX_BATCH)
    report = max(
        (runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.frames_per_second,
    )

    # Correctness first: every served clip bit-identical to its serial
    # run — outputs, key decisions, and op counts.
    serial = run_workload(spec, traffic, batch=False)
    served = report.workload_result()
    assert served.matches(serial), "serving diverged from serial execution"
    for record, want in zip(served.results, serial.results):
        np.testing.assert_array_equal(record.outputs(), want.outputs())
        np.testing.assert_array_equal(record.key_mask(), want.key_mask())

    ratio = report.frames_per_second / static_fps
    enqueue = report.enqueue_latencies()
    ttff = report.times_to_first_frame()
    register_table(
        f"serving vs static lockstep ({NUM_REQUESTS} Poisson requests, "
        f"max_batch={MAX_BATCH}, {NETWORK})",
        ["quantity", "value"],
        [
            ["static lockstep f/s", round(static_fps, 1)],
            ["serving f/s", round(report.frames_per_second, 1)],
            ["serving/static", f"{ratio:.2f}x"],
            ["mean occupancy", round(report.mean_occupancy, 2)],
            ["enqueue p50 ms", round(float(np.percentile(enqueue, 50)) * 1e3, 2)],
            ["enqueue p95 ms", round(float(np.percentile(enqueue, 95)) * 1e3, 2)],
            ["ttff p50 ms", round(float(np.percentile(ttff, 50)) * 1e3, 2)],
            ["ttff p95 ms", round(float(np.percentile(ttff, 95)) * 1e3, 2)],
            ["identical to serial", "yes"],
        ],
    )

    with open(JSON_PATH, "w") as handle:
        json.dump(
            {
                "benchmark": "serving",
                "network": NETWORK,
                "workload": {
                    "requests": NUM_REQUESTS,
                    "frames_per_clip": FRAMES_PER_CLIP,
                    "max_batch": MAX_BATCH,
                    "arrival_rate_clips_per_s": round(clip_rate, 2),
                },
                "kernel_available": kernel_available(),
                "static_lockstep_fps": round(static_fps, 2),
                "serving_fps": round(report.frames_per_second, 2),
                "serving_vs_static": round(ratio, 3),
                "mean_occupancy": round(report.mean_occupancy, 2),
                "enqueue_p95_ms": round(float(np.percentile(enqueue, 95)) * 1e3, 3),
                "ttff_p95_ms": round(float(np.percentile(ttff, 95)) * 1e3, 3),
                "identical_to_serial": True,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    assert ratio >= THROUGHPUT_FLOOR, (
        f"serving throughput is {ratio:.2f}x static lockstep; "
        f"the continuous-batching bar is {THROUGHPUT_FLOOR:.2f}x"
    )


def test_serving_latency_tracks_load(spec):
    """Sanity on the accounting: an undersubscribed server admits almost
    immediately; an oversubscribed one queues."""
    clips = synthetic_workload(12, num_frames=8, base_seed=3)
    light_arrivals = poisson_arrival_times(len(clips), rate=5.0, seed=1)
    light = ServingRuntime(spec, max_batch=MAX_BATCH).serve(
        [
            ClipRequest(i, clip, arrival_time=t)
            for i, (clip, t) in enumerate(zip(clips, light_arrivals))
        ]
    )
    heavy = ServingRuntime(spec, max_batch=2).serve(
        [ClipRequest(i, clip) for i, clip in enumerate(clips)]
    )
    assert float(np.percentile(light.enqueue_latencies(), 95)) < 0.05
    assert float(light.idle_seconds) > 0.0
    assert float(np.percentile(heavy.enqueue_latencies(), 95)) > float(
        np.percentile(light.enqueue_latencies(), 95)
    )
