"""Streaming serving under Poisson load vs the static lockstep runtime.

The continuous-batching :class:`~repro.runtime.ServingRuntime` gives up
the static runtime's luxury of a full, synchronized batch: clips arrive
on a Poisson process, join mid-flight, and depart whenever they finish,
so occupancy fluctuates and the batch composition changes every few
steps.  The price of that flexibility is the headline question here:

* **throughput** — steady-state frames/sec of a max-batch-16 server
  under oversubscribed Poisson arrivals must hold **>= 80%** of the
  static 16-clip lockstep number (the ``planned lockstep`` path of
  ``bench_runtime_throughput.py``, measured fresh on this host);
* **correctness** — every served clip's outputs, key-frame decisions,
  and op counts are asserted bit-identical to its serial run, regardless
  of which batch-mates shared its steps.

Latency percentiles (enqueue wait, time to first frame, p50/p95/p99) are
reported for the trajectory record.

The second headline is **shard scaling**: serving the same two-lane
Poisson workload with ``serve_workers=2`` (one shard per lane, each with
its own executors and inference plan) must deliver **>= 1.5x** the
aggregate throughput of the single-process run.  Aggregate sharded
throughput follows the concurrent-deployment model the report defines:
total frames divided by the slowest shard's busy seconds.  The
measurement pins the inline (``serial``) backend, so each shard's busy
time is uncontended and the ratio is comparable across hosts regardless
of core count — exactly what the perf gate's committed-vs-fresh
comparison needs.  The real process pool is exercised by the tier-1
sharded-identity tests and CI's ``--serve-workers 2`` CLI smoke; on
enough cores it realizes this same concurrent-model number as elapsed
time.  Every clip of the sharded run is asserted bit-identical to its
serial run, same as the single-process path.

Two further headlines guard the pipelined stage executor and the
shared-admission scheduler:

* **pipelining** — depth-2 lockstep (step t+1's RFBME/decisions
  overlapped with step t's CNN stages on a double-buffered engine) must
  hold >= 0.85x sequential lockstep throughput, bit-identical;
* **tail latency under skew** — with long and short clips interleaved
  across 2 shards, shared-admission (work stealing) p99
  time-to-first-frame must not exceed static round-robin's.

The fifth headline is **speculation**: under arrival-limited Poisson
traffic the server is almost never at full occupancy, so PR 5's
stable-membership predicate ran every step sequentially.  Speculative
pipelining (checkpoint + rollback, PR 6) overlaps those same steps and
eats the occasional rollback; p99 time-to-first-frame with speculation
on must be **>= 1.1x** better than with it off, with speculation
engaging on a majority of steps and at least one rollback exercised.
Both sides are measured on the concurrent-overlap timeline
(``overlap_timeline=True`` — per-step CPU-time charges,
``max(head, tail)`` for overlapped steps), the per-step analogue of the
shard-scaling benchmark's per-shard-clock convention, so the ratio is
comparable across hosts with any core count.

The sixth headline is **chaos failover**: one of two *real* shard
processes is killed mid-trace under burst load.  The supervisor must
detect the crash, fail its unacknowledged requests over to the survivor
— every completed request bit-identical to its serial run, the failover
count exact and nonzero — and finish without hanging (watchdog-bounded).
The tracked ratio is p99 TTFF *retention* (fault-free p99 over chaos
p99, clamped at 1.0): how much of the tail survives losing half the
fleet.

The seventh headline is **autoscaling under bursts**: whole bursts of
requests land at once with idle lulls between them — the regime where a
fixed fleet either over-provisions the lulls or drowns in the bursts.
An autoscaled lane (1→4 shards, scale decisions from observed admission
depth) must beat the fixed 2-shard fleet on p99 time-to-first-frame by
**>= 1.2x**, with every clip of both runs bit-identical to its serial
run regardless of when shards scaled, and the fleet asserted to have
actually reached 4 shards.

The eighth headline is **virtual-time admission**: the same supervised
process backend, but the parent releases arrivals by logical timestamps
instead of real sleeps — a ~60-second simulated trace must complete in
**well under half** its simulated duration (the gated metric is the
real-vs-simulated speedup, capped so faster hosts don't inflate it).

The ninth headline is **the prefix service**: two lanes serving the
same repeated-scene clips with every frame a key frame — the regime
where per-lane execution runs one CNN prefix call per lane per step and
recomputes identical pixels over and over.  With cross-lane coalescing
and the content-addressed prefix cache on, throughput must reach
**>= 1.2x** the per-lane (coalescing and cache off) run, with at least
one fused batch executed, a substantial cache hit rate, and every
served clip still bit-identical to its serial run on both sides.

The tenth headline is **the quantized inference lane**: the same
16-clip workload with every frame a key frame, served by the int8
planned lane vs the float32 lane.  All-key-frames is the CNN-bound
regime — under the default match-error policy both lanes share the same
RFBME + warp floor, which dilutes the datapath speedup the quantized
engine delivers — so it isolates the component the dtype actually
changes.  int8 throughput must reach **>= 1.3x** float32's while the
outputs meet the plan's calibrated tolerance contract against the
float64 reference (max-abs bound, top-1 agreement >= 0.98).

Results land in ``BENCH_serving.json`` at the repo root next to
``BENCH_runtime.json`` (write/merge discipline shared via
``benchmarks/_common.py``); the perf gate compares every headline ratio
fresh-vs-committed.
"""

import threading
import time

import numpy as np
import pytest

from _common import bench_json_path, write_bench_json
from conftest import register_table
from repro.core.sad_kernel import kernel_available
from repro.runtime import (
    AutoscalePolicy,
    ClipRequest,
    FaultEvent,
    FaultPlan,
    PipelineSpec,
    ServerConfig,
    ServingRuntime,
    SupervisorConfig,
    bursty_arrival_times,
    poisson_arrival_times,
    run_workload,
    static_stretch_workload,
    synthetic_workload,
)

NETWORK = "mini_fasterm"
MAX_BATCH = 16
NUM_REQUESTS = 48
FRAMES_PER_CLIP = 16
#: steady-state bar: serving throughput as a fraction of static lockstep.
THROUGHPUT_FLOOR = 0.80
#: sharding bar: 2-shard aggregate throughput vs the single-process run.
SHARD_SCALING_FLOOR = 1.5
#: pipelining bar: depth-2 lockstep throughput vs sequential lockstep.
#: The pipelined executor must never cost meaningful throughput for its
#: latency overlap; on multi-core hosts it lands at or above 1.0x.
PIPELINE_FLOOR = 0.85
#: skew bar noise allowance: shared-admission p99 TTFF must beat static
#: round-robin's (measured ~1.5-1.6x better), but both sides are real
#: measured step durations, so a tie within 5% jitter on a loaded
#: runner must not read as a regression.
SKEW_P99_TOLERANCE = 1.05
#: speculation bar: with arrival-limited Poisson traffic, p99 TTFF with
#: speculative pipelining on vs off (both on the concurrent-overlap
#: timeline; measured ~1.2-1.6x better on this workload).
SPECULATION_P99_FLOOR = 1.1
#: chaos bar: p99 TTFF retention after losing 1 of 2 process shards
#: mid-trace (fault-free p99 / chaos p99, clamped at 1.0).  The real
#: bound under test is bit identity + exact failover accounting + no
#: hang; the retention floor only guards against a pathological tail
#: blow-up (re-execution storms), so it is deliberately loose — real
#: retention depends on how many cores the surviving shard inherits.
CHAOS_RETENTION_FLOOR = 0.05
#: autoscale bar: p99 TTFF under bursty traffic, autoscaled 1->4 shards
#: vs the fixed 2-shard fleet (both on the inline concurrent-shard
#: timeline, so the ratio is host-independent).
AUTOSCALE_P99_FLOOR = 1.2
#: virtual-time bar: a simulated trace must finish in well under half
#: its simulated duration (i.e. speedup over real-time admission >= 2x).
VIRTUAL_TIME_MIN_SPEEDUP = 2.0
#: prefix-service bar: coalesced + content-cached serving throughput vs
#: the per-lane (coalescing and cache off) run on a two-lane coincident
#: key-frame workload with repeated-scene traffic.
PREFIX_SPEEDUP_FLOOR = 1.2
#: quantized bar: int8 lockstep throughput vs float32 on the CNN-bound
#: (policy=always) 16-clip workload.  The VNNI conv pipeline measures
#: ~1.5-1.6x on this workload; 1.3x leaves jitter headroom while still
#: requiring the integer datapath to actually engage.
QUANTIZED_SPEEDUP_FLOOR = 1.3
#: the top-1 leg of the quantized tolerance contract, judged on the
#: workload against the float64 reference (never on the calibration
#: noise samples, whose near-zero logit margins make argmax a coin
#: flip).
QUANTIZED_TOP1_FLOOR = 0.98
JSON_PATH = bench_json_path("serving")

#: accumulates all tests' results; the last one to run writes the JSON.
_RESULTS = {}

#: the full schema any test may produce.  The merge keeps only these
#: keys from the on-disk file, so renamed/removed metrics die with the
#: schema instead of being resurrected from an old JSON forever.
_JSON_KEYS = (
    "workload", "kernel_available", "static_lockstep_fps", "serving_fps",
    "serving_vs_static", "mean_occupancy", "latency_ms",
    "identical_to_serial", "shard_workload", "single_process_fps",
    "sharded_fps", "shard_scaling_2x", "pipeline_workload",
    "sequential_fps", "pipelined_fps", "pipelined_vs_sequential",
    "skew_workload", "static_p99_ttff_ms", "shared_p99_ttff_ms",
    "admission_p99_speedup", "speculation_workload",
    "nonspeculative_p99_ttff_ms", "speculative_p99_ttff_ms",
    "speculation_p99_speedup", "speculation_fps_ratio",
    "speculation_engagement", "speculation_rollback_rate",
    "chaos_workload", "fault_free_p99_ttff_ms", "chaos_p99_ttff_ms",
    "chaos_p99_retention", "chaos_failovers", "autoscale_workload",
    "fixed2_p99_ttff_ms", "autoscale_p99_ttff_ms", "autoscale_p99_speedup",
    "autoscale_peak_shards", "autoscale_scale_events", "virtual_workload",
    "virtual_simulated_s", "virtual_elapsed_s", "virtual_time_speedup",
    "prefix_workload", "per_lane_fps", "coalesced_cached_fps",
    "prefix_speedup", "prefix_fused_batches", "prefix_cache_hits",
    "prefix_cache_misses", "prefix_hit_rate", "prefix_saved_mmacs",
    "quantized_workload", "float32_always_fps", "int8_always_fps",
    "quantized_speedup", "quantized_max_abs_error",
    "quantized_tolerance_bound", "quantized_top1",
    "quantized_mac_energy_ratio", "quantized_traffic_ratio",
)


def _write_json():
    write_bench_json(
        JSON_PATH,
        header={"benchmark": "serving", "network": NETWORK},
        results=_RESULTS,
        carry_keys=_JSON_KEYS,
    )


@pytest.fixture(scope="module")
def spec():
    spec = PipelineSpec(network=NETWORK)
    spec.warm()
    return spec


@pytest.fixture(scope="module")
def traffic():
    return synthetic_workload(
        NUM_REQUESTS, num_frames=FRAMES_PER_CLIP, base_seed=0
    )


def _static_lockstep_fps(spec, traffic):
    """The static 16-clip lockstep number, measured fresh on this host."""
    clips = traffic[:MAX_BATCH]
    best = max(
        (run_workload(spec, clips, batch=True) for _ in range(3)),
        key=lambda result: result.frames_per_second,
    )
    return best.frames_per_second


def test_serving_throughput_and_identity(spec, traffic):
    static_fps = _static_lockstep_fps(spec, traffic)

    # Oversubscribe: offered load ~2x the server's capacity, so the
    # admission queue stays non-empty and occupancy sits at max_batch —
    # the steady state the 80% bar is defined over.
    clip_rate = 2.0 * static_fps / FRAMES_PER_CLIP
    arrivals = poisson_arrival_times(NUM_REQUESTS, rate=clip_rate, seed=7)
    requests = [
        ClipRequest(request_id=i, clip=clip, arrival_time=arrival)
        for i, (clip, arrival) in enumerate(zip(traffic, arrivals))
    ]

    runtime = ServingRuntime(spec, ServerConfig(max_batch=MAX_BATCH))
    report = max(
        (runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.frames_per_second,
    )

    # Correctness first: every served clip bit-identical to its serial
    # run — outputs, key decisions, and op counts.
    serial = run_workload(spec, traffic, batch=False)
    served = report.workload_result()
    assert served.matches(serial), "serving diverged from serial execution"
    for record, want in zip(served.results, serial.results):
        np.testing.assert_array_equal(record.outputs(), want.outputs())
        np.testing.assert_array_equal(record.key_mask(), want.key_mask())

    ratio = report.frames_per_second / static_fps
    enqueue = report.enqueue_latencies()
    ttff = report.times_to_first_frame()
    register_table(
        f"serving vs static lockstep ({NUM_REQUESTS} Poisson requests, "
        f"max_batch={MAX_BATCH}, {NETWORK})",
        ["quantity", "value"],
        [
            ["static lockstep f/s", round(static_fps, 1)],
            ["serving f/s", round(report.frames_per_second, 1)],
            ["serving/static", f"{ratio:.2f}x"],
            ["mean occupancy", round(report.mean_occupancy, 2)],
            ["enqueue p50 ms", round(float(np.percentile(enqueue, 50)) * 1e3, 2)],
            ["enqueue p95 ms", round(float(np.percentile(enqueue, 95)) * 1e3, 2)],
            ["ttff p50 ms", round(float(np.percentile(ttff, 50)) * 1e3, 2)],
            ["ttff p95 ms", round(float(np.percentile(ttff, 95)) * 1e3, 2)],
            ["identical to serial", "yes"],
        ],
    )

    percentiles = report.latency_percentiles()
    _RESULTS.update(
        {
            "workload": {
                "requests": NUM_REQUESTS,
                "frames_per_clip": FRAMES_PER_CLIP,
                "max_batch": MAX_BATCH,
                "arrival_rate_clips_per_s": round(clip_rate, 2),
            },
            "kernel_available": kernel_available(),
            "static_lockstep_fps": round(static_fps, 2),
            "serving_fps": round(report.frames_per_second, 2),
            "serving_vs_static": round(ratio, 3),
            "mean_occupancy": round(report.mean_occupancy, 2),
            "latency_ms": {
                key: round(value * 1e3, 3)
                for key, value in percentiles.items()
            },
            "identical_to_serial": True,
        }
    )
    _write_json()

    assert ratio >= THROUGHPUT_FLOOR, (
        f"serving throughput is {ratio:.2f}x static lockstep; "
        f"the continuous-batching bar is {THROUGHPUT_FLOOR:.2f}x"
    )


def test_shard_scaling_two_lanes(spec):
    """2-shard serving must aggregate >= 1.5x the single-process run.

    Two identically-specced lanes ("cam0"/"cam1", explicitly routed so
    the shared frame shape stays unambiguous) carry a balanced Poisson
    workload.  ``serve_workers=1`` interleaves both lanes in one
    process; ``serve_workers=2`` gives each lane its own shard — own
    executors, own inference plan — on the scheduler-resolved pool
    backend.  Identity is asserted for every served clip in both shapes.
    """
    num_requests = 24
    frames = 12
    clips = synthetic_workload(num_requests, num_frames=frames, base_seed=21)
    serial = run_workload(spec, clips, batch=False)
    # Oversubscribe so both lanes' queues stay non-empty (steady state).
    serial_fps = serial.frames_per_second
    rate = 4.0 * max(serial_fps, 1.0) / frames
    arrivals = poisson_arrival_times(num_requests, rate=rate, seed=13)
    requests = [
        ClipRequest(
            request_id=i, clip=clip, arrival_time=t, lane=f"cam{i % 2}"
        )
        for i, (clip, t) in enumerate(zip(clips, arrivals))
    ]
    lanes = {"cam0": spec, "cam1": spec}

    single_runtime = ServingRuntime(lanes, ServerConfig(max_batch=8, serve_workers=1))
    single = max(
        (single_runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.frames_per_second,
    )
    # The scaling *measurement* pins the inline backend: each shard's
    # busy time is measured uncontended, so the number is comparable
    # across hosts with any core count — which is what the perf gate's
    # committed-vs-fresh comparison needs.  The real process pool is
    # exercised separately (tests/test_serving.py and the CI CLI smoke);
    # on enough cores it realizes this same concurrent-model number.
    sharded_runtime = ServingRuntime(
        lanes, ServerConfig(max_batch=8, serve_workers=2, shard_backend="serial")
    )
    sharded = max(
        (sharded_runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.frames_per_second,
    )

    for report in (single, sharded):
        served = report.workload_result()
        assert served.matches(serial), "sharded serving diverged from serial"
    assert len(sharded.shards) == 2
    assert {shard.lane for shard in sharded.shards} == {"cam0", "cam1"}

    scaling = sharded.frames_per_second / single.frames_per_second
    backend = sharded_runtime.shard_config.resolve(len(sharded.shards))
    register_table(
        f"shard scaling ({num_requests} Poisson requests over 2 lanes, "
        f"backend={backend})",
        ["quantity", "value"],
        [
            ["1-worker f/s", round(single.frames_per_second, 1)],
            ["2-shard aggregate f/s", round(sharded.frames_per_second, 1)],
            ["scaling", f"{scaling:.2f}x"],
            ["identical to serial", "yes"],
        ]
        + [
            [
                f"shard {shard.lane}/{shard.shard}",
                f"{shard.requests} req, {round(shard.frames_per_second, 1)} f/s",
            ]
            for shard in sharded.shards
        ],
    )

    _RESULTS.update(
        {
            "shard_workload": {
                "requests": num_requests,
                "frames_per_clip": frames,
                "lanes": 2,
                "max_batch": 8,
                "serve_workers": 2,
                "backend": backend,
            },
            "single_process_fps": round(single.frames_per_second, 2),
            "sharded_fps": round(sharded.frames_per_second, 2),
            "shard_scaling_2x": round(scaling, 3),
        }
    )
    _write_json()

    assert scaling >= SHARD_SCALING_FLOOR, (
        f"2-shard serving is {scaling:.2f}x the single-process run; "
        f"the sharding bar is {SHARD_SCALING_FLOOR:.2f}x"
    )


def test_pipelined_lockstep_throughput(spec, traffic):
    """Depth-2 pipelined lockstep must hold >= 0.85x sequential lockstep.

    The pipelined stage executor overlaps step t+1's RFBME/decisions
    with step t's CNN stages on a worker thread (double-buffered engine
    scratch); its purpose is hiding RFBME latency, and this bar ensures
    the machinery never *costs* throughput.  Identity is asserted
    bit-for-bit against the sequential run — the executor's core
    contract.
    """
    clips = traffic[:MAX_BATCH]
    sequential = max(
        (run_workload(spec, clips, batch=True) for _ in range(3)),
        key=lambda result: result.frames_per_second,
    )
    piped_spec = PipelineSpec(network=NETWORK, pipeline_depth=2)
    pipelined = max(
        (run_workload(piped_spec, clips, batch=True) for _ in range(3)),
        key=lambda result: result.frames_per_second,
    )
    assert pipelined.matches(sequential), (
        "pipelined lockstep diverged from sequential execution"
    )
    for got, want in zip(pipelined.results, sequential.results):
        np.testing.assert_array_equal(got.outputs(), want.outputs())

    ratio = pipelined.frames_per_second / sequential.frames_per_second
    register_table(
        f"pipelined vs sequential lockstep ({len(clips)} clips, "
        f"pipeline_depth=2, {NETWORK})",
        ["quantity", "value"],
        [
            ["sequential f/s", round(sequential.frames_per_second, 1)],
            ["pipelined f/s", round(pipelined.frames_per_second, 1)],
            ["pipelined/sequential", f"{ratio:.2f}x"],
            ["identical", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "pipeline_workload": {
                "clips": len(clips),
                "frames_per_clip": FRAMES_PER_CLIP,
                "pipeline_depth": 2,
            },
            "sequential_fps": round(sequential.frames_per_second, 2),
            "pipelined_fps": round(pipelined.frames_per_second, 2),
            "pipelined_vs_sequential": round(ratio, 3),
        }
    )
    _write_json()

    assert ratio >= PIPELINE_FLOOR, (
        f"pipelined lockstep is {ratio:.2f}x sequential; "
        f"the pipelining bar is {PIPELINE_FLOOR:.2f}x"
    )


def test_skewed_admission_tail_latency(spec):
    """Shared-admission p99 TTFF must not exceed static round-robin's.

    The skewed workload interleaves 16-frame and 2-frame clips arriving
    together, so static round-robin (requests alternate in arrival
    order) pins every long clip onto shard 0 while shard 1 burns through
    its shorts and idles.  A shared per-lane admission queue lets the
    idle shard steal the pending longs — time-to-first-frame tails
    collapse.  Both runs use the inline backend's concurrent-shard
    timeline (static: independent per-shard clocks; shared: the
    discrete-event loop over per-shard virtual clocks), so the p99s are
    directly comparable, and every served clip is asserted bit-identical
    to its serial run in both modes.
    """
    longs = synthetic_workload(12, num_frames=16, base_seed=31)
    shorts = synthetic_workload(12, num_frames=2, base_seed=57)
    clips = [clip for pair in zip(longs, shorts) for clip in pair]
    serial = run_workload(spec, clips, batch=False)
    requests = [
        ClipRequest(request_id=i, clip=clip) for i, clip in enumerate(clips)
    ]

    static_runtime = ServingRuntime(
        spec, ServerConfig(max_batch=4, serve_workers=2, shard_backend="serial")
    )
    shared_runtime = ServingRuntime(
        spec, ServerConfig(max_batch=4, serve_workers=2, shard_backend="serial",
        admission="shared"),
    )
    static = min(
        (static_runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.latency_percentiles()["ttff_p99"],
    )
    shared = min(
        (shared_runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.latency_percentiles()["ttff_p99"],
    )

    for report in (static, shared):
        served = report.workload_result()
        assert served.matches(serial), "skewed serving diverged from serial"

    static_p99 = static.latency_percentiles()["ttff_p99"]
    shared_p99 = shared.latency_percentiles()["ttff_p99"]
    speedup = static_p99 / shared_p99 if shared_p99 else 1.0
    register_table(
        f"skewed-arrival tail latency ({len(clips)} requests, 12 long + "
        f"12 short, 2 shards, {NETWORK})",
        ["quantity", "static", "shared"],
        [
            [
                "ttff p99 ms",
                round(static_p99 * 1e3, 2),
                round(shared_p99 * 1e3, 2),
            ],
            [
                "ttff p50 ms",
                round(static.latency_percentiles()["ttff_p50"] * 1e3, 2),
                round(shared.latency_percentiles()["ttff_p50"] * 1e3, 2),
            ],
            ["p99 speedup", "-", f"{speedup:.2f}x"],
            ["identical to serial", "yes", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "skew_workload": {
                "requests": len(clips),
                "long_frames": 16,
                "short_frames": 2,
                "max_batch": 4,
                "serve_workers": 2,
            },
            "static_p99_ttff_ms": round(static_p99 * 1e3, 3),
            "shared_p99_ttff_ms": round(shared_p99 * 1e3, 3),
            "admission_p99_speedup": round(speedup, 3),
        }
    )
    _write_json()

    assert shared_p99 <= static_p99 * SKEW_P99_TOLERANCE, (
        f"shared-admission p99 TTFF ({shared_p99 * 1e3:.2f} ms) exceeds "
        f"static round-robin's ({static_p99 * 1e3:.2f} ms) under skew"
    )


def test_speculative_serving_tail_latency():
    """Speculation must cut p99 TTFF >= 1.1x under arrival-limited load.

    The workload is the regime ISSUE 6 targets: Poisson arrivals at 0.7x
    the serial service rate, so occupancy hovers around 1-2 of 8 slots
    and full-occupancy stability never holds — the non-speculative
    depth-2 server pipelines *zero* steps (asserted), exactly PR 5's
    degenerate case.  With speculation on, the same trace overlaps ~95%
    of steps and rolls back the few admission-mismatched ones.  A heavy
    RFBME (radius 20, stride 1) makes the overlapped head worth hiding.

    Both sides run on the concurrent-overlap timeline so the numbers
    model a two-core deployment regardless of host cores.  Per side,
    the p99 is the median over ``reps`` serves (a single serve's p99 at
    40 requests is one order statistic — the median filters scheduler
    outliers without collapsing the structural residual the way a min
    would); the whole comparison retries up to ``trials`` times and
    keeps the best ratio, the same flake allowance the skew benchmark's
    min-of-2 gives its real-time measurement.  Every rep of every serve
    is asserted bit-identical to the serial run first.
    """
    num_requests, frames, reps, trials = 40, 24, 5, 3
    base = dict(
        network=NETWORK, pipeline_depth=2, search_radius=20, search_stride=1
    )
    spec_off = PipelineSpec(speculate=False, **base)
    spec_off.warm()
    spec_on = PipelineSpec(speculate=True, **base)
    clips = synthetic_workload(num_requests, num_frames=frames, base_seed=41)

    def serve_once(spec, requests, serial):
        report = ServingRuntime(
            spec, ServerConfig(max_batch=8, overlap_timeline=True)
        ).serve(requests)
        assert report.workload_result().matches(serial), (
            "speculative serving diverged from serial execution"
        )
        return report

    def measure(requests, serial):
        # Interleave the two sides rep by rep, so a load excursion on
        # the host (the p99s here are milliseconds; a noisy neighbour
        # lasts longer than one serve) lands on both sides alike
        # instead of skewing whichever side it happened to overlap.
        p99s = {spec_off: [], spec_on: []}
        best = {}
        for _ in range(reps):
            for spec in (spec_off, spec_on):
                report = serve_once(spec, requests, serial)
                p99s[spec].append(report.latency_percentiles()["ttff_p99"])
                held = best.get(spec)
                if held is None or (
                    report.frames_per_second > held.frames_per_second
                ):
                    best[spec] = report
        return (
            float(np.median(p99s[spec_off])),
            float(np.median(p99s[spec_on])),
            best[spec_off],
            best[spec_on],
        )

    attempts = []
    for trial in range(trials):
        # Re-derive the arrival schedule per trial — the serial rate is
        # remeasured (CPU state drifts over a long bench run) and the
        # Poisson seed varies, so a retry samples a fresh trace instead
        # of re-running the exact phase alignment that just flaked.
        serial = run_workload(spec_off, clips, batch=False)
        clip_rate = 0.7 * serial.frames_per_second / frames
        arrivals = poisson_arrival_times(
            num_requests, rate=clip_rate, seed=7 + trial
        )
        requests = [
            ClipRequest(request_id=i, clip=clip, arrival_time=t)
            for i, (clip, t) in enumerate(zip(clips, arrivals))
        ]
        off_p99, on_p99, off, on = measure(requests, serial)
        attempts.append((off_p99 / on_p99, off_p99, on_p99, off, on))
        if attempts[-1][0] >= SPECULATION_P99_FLOOR:
            break
    speedup, off_p99, on_p99, off, on = max(attempts, key=lambda a: a[0])

    # PR 5's predicate never proves stability here (occupancy < 8
    # throughout), so the non-speculative server pipelined nothing —
    # every step speculation engages is one PR 5 ran sequentially.
    assert off.pipelined_steps == 0
    assert off.speculated == 0
    assert on.speculation_engagement > 0.5, (
        f"speculation engaged on only {on.speculation_engagement:.0%} of steps"
    )
    assert on.rollbacks > 0, "trace never exercised the rollback path"

    fps_ratio = on.frames_per_second / off.frames_per_second
    register_table(
        f"speculative vs non-speculative serving ({num_requests} Poisson "
        f"requests at 0.7x load, radius 20/stride 1, {NETWORK})",
        ["quantity", "speculate=False", "speculate=True"],
        [
            ["ttff p99 ms", round(off_p99 * 1e3, 2), round(on_p99 * 1e3, 2)],
            ["p99 speedup", "-", f"{speedup:.2f}x"],
            ["throughput ratio", "-", f"{fps_ratio:.2f}x"],
            ["pipelined steps", off.pipelined_steps, on.pipelined_steps],
            ["engagement", "0.00", round(on.speculation_engagement, 3)],
            ["rollback rate", "-", round(on.rollback_rate, 3)],
            ["identical to serial", "yes", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "speculation_workload": {
                "requests": num_requests,
                "frames_per_clip": frames,
                "max_batch": 8,
                "search_radius": 20,
                "search_stride": 1,
                "load_fraction": 0.7,
                "reps_per_side": reps,
            },
            "nonspeculative_p99_ttff_ms": round(off_p99 * 1e3, 3),
            "speculative_p99_ttff_ms": round(on_p99 * 1e3, 3),
            "speculation_p99_speedup": round(speedup, 3),
            "speculation_fps_ratio": round(fps_ratio, 3),
            "speculation_engagement": round(on.speculation_engagement, 3),
            "speculation_rollback_rate": round(on.rollback_rate, 3),
        }
    )
    _write_json()

    assert speedup >= SPECULATION_P99_FLOOR, (
        f"speculative p99 TTFF is {speedup:.2f}x the non-speculative "
        f"server's; the speculation bar is {SPECULATION_P99_FLOOR:.2f}x"
    )


def test_chaos_failover_process_shards(spec):
    """Kill 1 of 2 real process shards mid-trace; nothing may be lost.

    Burst load (every request arrives at t=0) keeps both shards' credit
    windows full, so the killed shard is holding unacknowledged work
    when it dies — the supervisor must detect the crash, re-dispatch
    those requests to the survivor, and account every one as a
    ``"failover"`` outcome.  The assertions are the acceptance contract:

    * every request completes, bit-identical to its serial run (matched
      by request id — a positional comparison would misattribute
      results the moment re-dispatch reorders completion);
    * the failover count is exact: counters == per-event seqs ==
      per-record outcomes, nonzero;
    * the serve cannot hang — it runs under a watchdog thread and the
      supervisor's own ``drain_timeout`` no-progress bound.

    Both the fault-free baseline and the chaos run use the same
    supervised process backend, so the p99 TTFF retention ratio
    isolates the cost of the failure, not of supervision.
    """
    num_requests, frames = 24, 8
    clips = synthetic_workload(num_requests, num_frames=frames, base_seed=61)
    serial = run_workload(spec, clips, batch=False)
    requests = [
        ClipRequest(request_id=i, clip=clip, arrival_time=0.0)
        for i, clip in enumerate(clips)
    ]
    supervisor = SupervisorConfig(
        heartbeat_timeout=5.0, max_respawns=0, drain_timeout=60.0
    )

    def supervised_serve(plan):
        runtime = ServingRuntime(
            spec, ServerConfig(max_batch=2, serve_workers=2, shard_backend="process",
            admission="shared", fault_plan=plan, supervisor=supervisor),
        )
        outcome = {}

        def run():
            try:
                outcome["report"] = runtime.serve(requests)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                outcome["error"] = error

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=240)
        assert not thread.is_alive(), "supervised chaos serve hung"
        if "error" in outcome:
            raise outcome["error"]
        return outcome["report"]

    baseline = supervised_serve(FaultPlan())
    chaos = supervised_serve(FaultPlan(events=(
        FaultEvent("kill", at=0.02, lane="default", shard=1),
    )))

    expected = {
        request.request_id: result
        for request, result in zip(requests, serial.results)
    }
    for report in (baseline, chaos):
        assert len(report.records) == num_requests, "requests were lost"
        for record in report.records:
            want = expected[record.request_id]
            np.testing.assert_array_equal(
                record.result.outputs(), want.outputs()
            )
            np.testing.assert_array_equal(
                record.result.key_mask(), want.key_mask()
            )

    assert not baseline.failover_events
    assert chaos.failover_events, "the mid-trace kill was never detected"
    assert {(e.lane, e.shard, e.reason) for e in chaos.failover_events} == {
        ("default", 1, "crash")
    }
    per_event = sum(len(event.seqs) for event in chaos.failover_events)
    per_record = chaos.outcome_counts().get("failover", 0)
    assert chaos.failovers == per_event == per_record, (
        f"failover accounting drifted: counter={chaos.failovers}, "
        f"events={per_event}, records={per_record}"
    )
    assert chaos.failovers > 0, (
        "the killed shard held no work — the burst backlog regressed"
    )

    baseline_p99 = baseline.latency_percentiles()["ttff_p99"]
    chaos_p99 = chaos.latency_percentiles()["ttff_p99"]
    retention = min(1.0, baseline_p99 / chaos_p99) if chaos_p99 else 1.0
    register_table(
        f"chaos failover ({num_requests} burst requests, 2 process "
        f"shards, kill shard 1 at t=0.02s, {NETWORK})",
        ["quantity", "value"],
        [
            ["fault-free p99 ttff ms", round(baseline_p99 * 1e3, 2)],
            ["chaos p99 ttff ms", round(chaos_p99 * 1e3, 2)],
            ["p99 retention", f"{retention:.2f}x"],
            ["failovers (exact)", chaos.failovers],
            ["requests completed", len(chaos.records)],
            ["identical to serial", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "chaos_workload": {
                "requests": num_requests,
                "frames_per_clip": frames,
                "max_batch": 2,
                "serve_workers": 2,
                "kill": "default/1@0.02s",
            },
            "fault_free_p99_ttff_ms": round(baseline_p99 * 1e3, 3),
            "chaos_p99_ttff_ms": round(chaos_p99 * 1e3, 3),
            "chaos_p99_retention": round(retention, 3),
            "chaos_failovers": chaos.failovers,
        }
    )
    _write_json()

    assert retention >= CHAOS_RETENTION_FLOOR, (
        f"chaos p99 TTFF retention is {retention:.2f}x fault-free; "
        f"the floor is {CHAOS_RETENTION_FLOOR:.2f}x"
    )


def test_autoscale_bursty_tail_latency(spec):
    """Autoscaling 1->4 shards must beat fixed 2 shards on bursty p99 TTFF.

    Traffic arrives as whole bursts — 16 clips land near-simultaneously,
    then the lane idles until the next burst.  A fixed 2-shard fleet
    (max_batch=2 per shard) can start only 4 clips of each burst; the
    rest queue, and the burst tail *is* the p99.  The autoscaler watches
    the same admission queue, grows the lane to 4 shards inside the
    first burst, and holds them (``sustain_down`` is set past the trace
    length so drain events don't perturb the tail being measured —
    scale-*down* correctness has its own differential test in
    ``tests/test_frontdoor.py``).

    Both fleets run on the inline concurrent-shard timeline (the
    discrete-event loop over per-shard virtual clocks), so the p99 ratio
    is comparable across hosts regardless of core count — the perf
    gate's committed-vs-fresh requirement.  Every clip of both runs is
    asserted bit-identical to its serial run, scaling notwithstanding,
    and the fleet is asserted to have actually reached 4 shards.
    """
    num_requests, frames, burst = 48, 8, 16
    max_batch = 2
    clips = synthetic_workload(num_requests, num_frames=frames, base_seed=71)
    serial = run_workload(spec, clips, batch=False)
    # Burst period: half the time one pipeline needs to serve a burst,
    # so the fixed fleet is still digesting when the next burst lands
    # (sustained pressure) while 4 shards keep up comfortably.
    burst_seconds = burst * frames / max(serial.frames_per_second, 1.0)
    period = burst_seconds / 2
    arrivals = bursty_arrival_times(
        num_requests, burst_size=burst, period=period,
        spread=period / 20, seed=17,
    )
    requests = [
        ClipRequest(request_id=i, clip=clip, arrival_time=t)
        for i, (clip, t) in enumerate(zip(clips, arrivals))
    ]
    fixed_runtime = ServingRuntime(spec, ServerConfig(
        max_batch=max_batch, serve_workers=2, admission="shared",
        shard_backend="serial",
    ))
    scaled_runtime = ServingRuntime(spec, ServerConfig(
        max_batch=max_batch, shard_backend="serial",
        autoscale=AutoscalePolicy(
            min_shards=1, max_shards=4, sustain_up=1, sustain_down=10_000,
        ),
    ))

    def p99(report):
        return report.latency_percentiles()["ttff_p99"]

    fixed = min(
        (fixed_runtime.serve(requests) for _ in range(2)), key=p99
    )
    scaled = min(
        (scaled_runtime.serve(requests) for _ in range(2)), key=p99
    )

    for report in (fixed, scaled):
        served = report.workload_result()
        assert served.matches(serial), (
            "bursty serving diverged from serial execution"
        )
        for got, want in zip(served.results, serial.results):
            np.testing.assert_array_equal(got.outputs(), want.outputs())
            np.testing.assert_array_equal(got.key_mask(), want.key_mask())

    assert scaled.scale_events, "the bursts never triggered a scale-up"
    peak = max(event.to_shards for event in scaled.scale_events)
    assert peak == 4, f"fleet peaked at {peak} shards, wanted 4"

    speedup = p99(fixed) / p99(scaled) if p99(scaled) else 1.0
    register_table(
        f"autoscaled vs fixed fleet under bursts ({num_requests} requests "
        f"in bursts of {burst}, max_batch={max_batch}, {NETWORK})",
        ["quantity", "fixed 2-shard", "autoscaled 1->4"],
        [
            [
                "ttff p99 ms",
                round(p99(fixed) * 1e3, 2),
                round(p99(scaled) * 1e3, 2),
            ],
            ["p99 speedup", "-", f"{speedup:.2f}x"],
            ["peak shards", 2, peak],
            ["scale events", 0, len(scaled.scale_events)],
            ["identical to serial", "yes", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "autoscale_workload": {
                "requests": num_requests,
                "frames_per_clip": frames,
                "burst_size": burst,
                "burst_period_s": round(period, 4),
                "max_batch": max_batch,
                "max_shards": 4,
            },
            "fixed2_p99_ttff_ms": round(p99(fixed) * 1e3, 3),
            "autoscale_p99_ttff_ms": round(p99(scaled) * 1e3, 3),
            "autoscale_p99_speedup": round(speedup, 3),
            "autoscale_peak_shards": peak,
            "autoscale_scale_events": len(scaled.scale_events),
        }
    )
    _write_json()

    assert speedup >= AUTOSCALE_P99_FLOOR, (
        f"autoscaled p99 TTFF is {speedup:.2f}x the fixed 2-shard "
        f"fleet's under bursts; the autoscaling bar is "
        f"{AUTOSCALE_P99_FLOOR:.2f}x"
    )


def test_virtual_time_admission(spec):
    """A ~60s simulated trace over process shards must finish early.

    The virtual-time admission protocol: the parent holds the logical
    clock, and whenever nothing is in flight anywhere and the next
    arrival is in the future, it jumps the clock to that arrival and
    broadcasts the same skip to every shard — no one sleeps through the
    gap, and because jumps only happen at zero in-flight, every
    dispatch/ack interval is measured on a locally-continuous clock and
    latency accounting is undisturbed.  Service itself still costs real
    CPU, so the run isn't free — it must simply cost *service* time,
    not *trace* time.

    The run is watchdog-bounded (a hang is a failure, not a timeout in
    CI's logs), every clip is asserted bit-identical to its serial run,
    and the headline is real elapsed vs simulated duration: the trace
    must complete in under half its simulated length.  The JSON carries
    the raw speedup; the perf gate compares it capped (a faster host
    finishes the same simulated trace sooner — "well past real time"
    is the invariant, not the multiple).
    """
    num_requests, frames = 96, 4
    rate = 1.6  # clips/s — ~60s of simulated traffic
    clips = synthetic_workload(num_requests, num_frames=frames, base_seed=83)
    serial = run_workload(spec, clips, batch=False)
    arrivals = poisson_arrival_times(num_requests, rate=rate, seed=29)
    simulated = arrivals[-1]
    requests = [
        ClipRequest(request_id=i, clip=clip, arrival_time=t)
        for i, (clip, t) in enumerate(zip(clips, arrivals))
    ]
    runtime = ServingRuntime(spec, ServerConfig(
        max_batch=4, serve_workers=2, admission="shared",
        shard_backend="process", virtual_time=True,
    ))

    outcome = {}

    def run():
        try:
            start = time.perf_counter()
            outcome["report"] = runtime.serve(requests)
            outcome["elapsed"] = time.perf_counter() - start
        except BaseException as error:  # noqa: BLE001 — re-raised below
            outcome["error"] = error

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout=240)
    assert not thread.is_alive(), "virtual-time serve hung"
    if "error" in outcome:
        raise outcome["error"]
    report, elapsed = outcome["report"], outcome["elapsed"]

    served = report.workload_result()
    assert served.matches(serial), (
        "virtual-time serving diverged from serial execution"
    )
    for got, want in zip(served.results, serial.results):
        np.testing.assert_array_equal(got.outputs(), want.outputs())
        np.testing.assert_array_equal(got.key_mask(), want.key_mask())

    speedup = simulated / elapsed if elapsed else float("inf")
    register_table(
        f"virtual-time process admission ({num_requests} Poisson requests "
        f"at {rate}/s, 2 process shards, {NETWORK})",
        ["quantity", "value"],
        [
            ["simulated duration s", round(simulated, 1)],
            ["real elapsed s", round(elapsed, 2)],
            ["speedup", f"{speedup:.1f}x"],
            ["identical to serial", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "virtual_workload": {
                "requests": num_requests,
                "frames_per_clip": frames,
                "arrival_rate_clips_per_s": rate,
                "serve_workers": 2,
                "backend": "process",
            },
            "virtual_simulated_s": round(simulated, 2),
            "virtual_elapsed_s": round(elapsed, 3),
            "virtual_time_speedup": round(speedup, 2),
        }
    )
    _write_json()

    assert speedup >= VIRTUAL_TIME_MIN_SPEEDUP, (
        f"virtual-time admission took {elapsed:.1f}s against a "
        f"{simulated:.0f}s simulated trace ({speedup:.1f}x); it must "
        f"finish in well under half the simulated duration "
        f"(>= {VIRTUAL_TIME_MIN_SPEEDUP:.0f}x)"
    )


def test_prefix_service_cross_lane_throughput():
    """Coalesced + cached serving must beat per-lane by >= 1.2x.

    The workload is engineered for coincident, repetitive prefix work —
    the regime the prefix service exists for: two lanes carry the *same*
    repeated-scene clips (``static_stretch_workload``, each frame held
    for 4 steps), every request arrives at t=0 so the lanes run
    co-active rounds, and ``policy="always"`` makes every frame a key
    frame, so each round issues one coincident prefix request per lane.

    Per-lane (baseline): ``prefix_coalesce=False, prefix_cache_mb=0`` —
    one ``run_prefix`` call per lane per round, every frame recomputed.
    Coalesced + cached (contender): the round's key rows from both lanes
    fuse into one batched call, and repeated pixels (the stretch repeats
    plus the cross-lane duplicates) come straight from the
    content-addressed cache.  Both sides are asserted bit-identical to
    the serial run before any throughput is compared; the contender must
    additionally show at least one fused batch and a majority hit rate.
    """
    num_clips, frames, stretch = 8, 16, 4
    prefix_spec = PipelineSpec(network=NETWORK, policy="always")
    prefix_spec.warm()
    clips = static_stretch_workload(
        num_clips, num_frames=frames, stretch=stretch, base_seed=41
    )
    # Each clip is served on *both* lanes: requests 2i/2i+1 carry clip i
    # on cam0/cam1, so the lanes' key frames coincide bit-for-bit.
    doubled = [clip for clip in clips for _ in range(2)]
    serial = run_workload(prefix_spec, doubled, batch=False)
    requests = [
        ClipRequest(
            request_id=i, clip=clip, arrival_time=0.0, lane=f"cam{i % 2}"
        )
        for i, clip in enumerate(doubled)
    ]
    lanes = {"cam0": prefix_spec, "cam1": prefix_spec}

    per_lane_runtime = ServingRuntime(
        lanes,
        ServerConfig(max_batch=8, prefix_coalesce=False, prefix_cache_mb=0.0),
    )
    per_lane = max(
        (per_lane_runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.frames_per_second,
    )
    fused_runtime = ServingRuntime(
        lanes,
        ServerConfig(max_batch=8, prefix_coalesce=True, prefix_cache_mb=64.0),
    )
    fused = max(
        (fused_runtime.serve(requests) for _ in range(2)),
        key=lambda r: r.frames_per_second,
    )

    # Correctness first, on both sides: the service is pure scheduling.
    for report in (per_lane, fused):
        served = report.workload_result()
        assert served.matches(serial), (
            "prefix-service serving diverged from serial execution"
        )
        for got, want in zip(served.results, serial.results):
            np.testing.assert_array_equal(got.outputs(), want.outputs())
            np.testing.assert_array_equal(got.key_mask(), want.key_mask())
    assert per_lane.prefix_fused_batches == 0
    assert per_lane.prefix_cache_hits == 0
    assert fused.prefix_fused_batches > 0, "no cross-lane batch was fused"
    assert fused.prefix_cache_hits > 0, "the prefix cache never hit"
    assert fused.prefix_hit_rate >= 0.5, (
        f"hit rate {fused.prefix_hit_rate:.2f} on repeated-scene traffic"
    )

    speedup = fused.frames_per_second / per_lane.frames_per_second
    register_table(
        f"prefix service ({num_clips} repeated-scene clips x 2 lanes, "
        f"stretch={stretch}, policy=always, {NETWORK})",
        ["quantity", "value"],
        [
            ["per-lane f/s", round(per_lane.frames_per_second, 1)],
            ["coalesced+cached f/s", round(fused.frames_per_second, 1)],
            ["speedup", f"{speedup:.2f}x"],
            ["fused batches", fused.prefix_fused_batches],
            [
                "cache hits/misses",
                f"{fused.prefix_cache_hits}/{fused.prefix_cache_misses}",
            ],
            ["hit rate", round(fused.prefix_hit_rate, 3)],
            ["prefix MMACs saved", round(fused.prefix_saved_macs / 1e6, 1)],
            ["identical to serial", "yes"],
        ],
    )
    _RESULTS.update(
        {
            "prefix_workload": {
                "clips": num_clips,
                "lanes": 2,
                "frames_per_clip": frames,
                "stretch": stretch,
                "policy": "always",
                "max_batch": 8,
                "prefix_cache_mb": 64.0,
            },
            "per_lane_fps": round(per_lane.frames_per_second, 2),
            "coalesced_cached_fps": round(fused.frames_per_second, 2),
            "prefix_speedup": round(speedup, 3),
            "prefix_fused_batches": fused.prefix_fused_batches,
            "prefix_cache_hits": fused.prefix_cache_hits,
            "prefix_cache_misses": fused.prefix_cache_misses,
            "prefix_hit_rate": round(fused.prefix_hit_rate, 3),
            "prefix_saved_mmacs": round(fused.prefix_saved_macs / 1e6, 1),
        }
    )
    _write_json()

    assert speedup >= PREFIX_SPEEDUP_FLOOR, (
        f"coalesced+cached serving is {speedup:.2f}x the per-lane run; "
        f"the prefix-service bar is {PREFIX_SPEEDUP_FLOOR:.2f}x"
    )


def test_quantized_lane_throughput_and_tolerance():
    """The tenth headline: the int8 planned lane vs float32.

    Measured with ``policy="always"`` — every frame a key frame —
    because that is the CNN-bound regime.  Under the default match-error
    policy both dtypes pay the identical RFBME + warp cost every step,
    a floor that dominates wall clock and dilutes the lane ratio to
    ~1.2x even when the CNN itself runs 2x faster; all-key-frames
    removes the shared floor and measures the component the dtype
    actually changes (the same per-component methodology the paper uses
    for its datapath numbers).

    Accuracy is judged on the *same* workload against the float64
    reference, asserting both legs of the documented tolerance
    contract: max-abs error within the plan's calibrated bound and
    top-1 agreement >= 0.98.  The throughput bar applies only where the
    compiled kernel (and its VNNI integer GEMM) is available — without
    it the int8 lane is a correct-but-unaccelerated fallback and only
    the tolerance legs are enforced.
    """
    clips = synthetic_workload(
        MAX_BATCH, num_frames=FRAMES_PER_CLIP, base_seed=0
    )
    specs = {
        dtype: PipelineSpec(network=NETWORK, policy="always", dtype=dtype)
        for dtype in ("float64", "float32", "int8")
    }
    for lane_spec in specs.values():
        lane_spec.warm()
    reference = run_workload(specs["float64"], clips, batch=True)
    f32 = max(
        (run_workload(specs["float32"], clips, batch=True) for _ in range(3)),
        key=lambda result: result.frames_per_second,
    )
    q8 = max(
        (run_workload(specs["int8"], clips, batch=True) for _ in range(3)),
        key=lambda result: result.frames_per_second,
    )

    # Tolerance contract first — it binds regardless of host kernels.
    tolerance = (
        specs["int8"].shared_network().inference_plan(1, "int8").tolerance
    )
    ref_out = reference.outputs()
    q8_out = q8.outputs()
    max_err = float(np.max(np.abs(q8_out - ref_out)))
    top1 = float(np.mean(q8_out.argmax(axis=1) == ref_out.argmax(axis=1)))
    assert max_err <= tolerance.max_abs_error, (
        f"int8 max-abs error {max_err:.4f} exceeds the plan's calibrated "
        f"bound {tolerance.max_abs_error:.4f}"
    )
    assert top1 >= QUANTIZED_TOP1_FLOOR, (
        f"int8 top-1 agreement {top1:.4f} vs float64 is below "
        f"{QUANTIZED_TOP1_FLOOR}"
    )

    from repro.core.sad_kernel import get_kernel

    kernel = get_kernel()
    accelerated = kernel is not None and kernel.has_vnni
    speedup = q8.frames_per_second / f32.frames_per_second
    savings = q8.quant_savings
    register_table(
        f"quantized lane ({MAX_BATCH} clips x {FRAMES_PER_CLIP} frames, "
        f"policy=always, {NETWORK})",
        ["quantity", "value"],
        [
            ["float32 f/s", round(f32.frames_per_second, 1)],
            ["int8 f/s", round(q8.frames_per_second, 1)],
            ["speedup", f"{speedup:.2f}x"],
            ["max abs error", round(max_err, 4)],
            ["tolerance bound", round(tolerance.max_abs_error, 4)],
            ["top-1 agreement", round(top1, 4)],
            ["est. MAC energy ratio", round(savings.mac_energy_ratio, 2)],
            ["est. traffic ratio", round(savings.traffic_ratio, 2)],
        ],
    )
    _RESULTS.update(
        {
            "quantized_workload": {
                "clips": MAX_BATCH,
                "frames_per_clip": FRAMES_PER_CLIP,
                "policy": "always",
            },
            "float32_always_fps": round(f32.frames_per_second, 2),
            "int8_always_fps": round(q8.frames_per_second, 2),
            "quantized_max_abs_error": round(max_err, 4),
            "quantized_tolerance_bound": round(tolerance.max_abs_error, 4),
            "quantized_top1": round(top1, 4),
            "quantized_mac_energy_ratio": round(savings.mac_energy_ratio, 2),
            "quantized_traffic_ratio": round(savings.traffic_ratio, 2),
        }
    )
    if accelerated:
        # The ratio only means something where the integer datapath ran;
        # a fallback host would hand the perf gate an apples-to-oranges
        # ~1.0 against a VNNI baseline.
        _RESULTS["quantized_speedup"] = round(speedup, 3)
    _write_json()

    if not accelerated:
        pytest.skip(
            "compiled kernel/VNNI unavailable: int8 runs as a correct "
            "fallback; throughput bar not applicable"
        )
    assert speedup >= QUANTIZED_SPEEDUP_FLOOR, (
        f"int8 lane is {speedup:.2f}x the float32 lane on the CNN-bound "
        f"workload; the quantized bar is {QUANTIZED_SPEEDUP_FLOOR:.2f}x"
    )


def test_serving_latency_tracks_load(spec):
    """Sanity on the accounting: an undersubscribed server admits almost
    immediately; an oversubscribed one queues."""
    clips = synthetic_workload(12, num_frames=8, base_seed=3)
    light_arrivals = poisson_arrival_times(len(clips), rate=5.0, seed=1)
    light = ServingRuntime(spec, ServerConfig(max_batch=MAX_BATCH)).serve(
        [
            ClipRequest(i, clip, arrival_time=t)
            for i, (clip, t) in enumerate(zip(clips, light_arrivals))
        ]
    )
    heavy = ServingRuntime(spec, ServerConfig(max_batch=2)).serve(
        [ClipRequest(i, clip) for i, clip in enumerate(clips)]
    )
    assert float(np.percentile(light.enqueue_latencies(), 95)) < 0.05
    assert float(light.idle_seconds) > 0.0
    assert float(np.percentile(heavy.enqueue_latencies(), 95)) > float(
        np.percentile(light.enqueue_latencies(), 95)
    )
