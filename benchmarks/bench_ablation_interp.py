"""Ablation (§II-C3): bilinear vs nearest-neighbour warp interpolation.

The paper reports bilinear interpolation improving vision accuracy by 1-2%
over nearest-neighbour on FasterM. Reproduced as predicted-frame mAP at
the 198 ms gap.
"""

import pytest

from common import eval_clips
from conftest import register_table
from repro.analysis.evaluation import decode_detections
from repro.core import AMCConfig, AMCExecutor
from repro.nn.train import get_trained_network
from repro.vision import GroundTruth, mean_average_precision

GAP = 6
START_STRIDE = 2


def interp_map(network, interpolation, clips):
    executor = AMCExecutor(network, AMCConfig(interpolation=interpolation))
    detections, truths = [], []
    frame_id = 0
    for clip in clips:
        for start in range(0, len(clip) - GAP, START_STRIDE):
            executor.reset()
            executor.process_key(clip.frames[start])
            output = executor.process_predicted(clip.frames[start + GAP])
            ann = clip.annotations[start + GAP]
            truths.append(GroundTruth(frame_id, ann.class_id, ann.box))
            detections.extend(
                decode_detections(output, [frame_id],
                                  frame_size=clip.frames.shape[2])
            )
            frame_id += 1
    return mean_average_precision(detections, truths)


@pytest.fixture(scope="module")
def interp_results():
    clips = eval_clips("test")
    results = {}
    for mini in ("mini_fasterm", "mini_faster16"):
        network = get_trained_network(mini)
        for interpolation in ("bilinear", "nearest"):
            results[(mini, interpolation)] = interp_map(
                network, interpolation, clips
            )
    return results


def test_ablation_interpolation(benchmark, interp_results):
    network = get_trained_network("mini_fasterm")
    benchmark(interp_map, network, "bilinear", eval_clips("test")[:1])

    register_table(
        "Ablation SecII-C3: interpolation (paper: bilinear +1-2% on FasterM)",
        ["network", "bilinear mAP %", "nearest mAP %", "delta"],
        [
            [mini,
             100 * interp_results[(mini, "bilinear")],
             100 * interp_results[(mini, "nearest")],
             100 * (interp_results[(mini, "bilinear")]
                    - interp_results[(mini, "nearest")])]
            for mini in ("mini_fasterm", "mini_faster16")
        ],
    )
    # Shape: bilinear is at least as good as nearest (within noise).
    for mini in ("mini_fasterm", "mini_faster16"):
        assert (
            interp_results[(mini, "bilinear")]
            >= interp_results[(mini, "nearest")] - 0.03
        )
