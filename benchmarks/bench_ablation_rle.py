"""Ablation (§III-B): run-length-encoded sparse activation storage.

Paper: RLE reduces the stored key activation's memory by more than 80%
for Faster16, which is what makes on-chip activation storage feasible.
Measured here on the actual post-ReLU target activations of the mini
networks over real clips.
"""

import numpy as np
import pytest

from common import eval_clips
from conftest import register_table
from repro.core import AMCExecutor
from repro.hardware.rle import encode, storage_report
from repro.nn.train import get_trained_network


@pytest.fixture(scope="module")
def rle_results():
    clips = eval_clips("test")[:6]
    results = {}
    for mini in ("mini_alexnet", "mini_fasterm", "mini_faster16"):
        network = get_trained_network(mini)
        executor = AMCExecutor(network)
        savings, densities = [], []
        for clip in clips:
            executor.reset()
            executor.process_key(clip.frames[0])
            report = storage_report(executor.stored_activation())
            savings.append(report["saving_percent"])
            densities.append(report["density"])
        results[mini] = (float(np.mean(savings)), float(np.mean(densities)))
    return results


def test_ablation_rle_storage(benchmark, rle_results):
    network = get_trained_network("mini_fasterm")
    executor = AMCExecutor(network)
    executor.process_key(eval_clips("test")[0].frames[0])
    activation = executor.stored_activation()
    benchmark(encode, activation)

    register_table(
        "Ablation SecIII-B: RLE activation storage (paper: >80% saving)",
        ["network", "mean saving %", "mean density"],
        [
            [mini, saving, density]
            for mini, (saving, density) in rle_results.items()
        ],
    )
    # Post-ReLU activations are sparse enough for large savings on every
    # network (the paper's 80% refers to VGG-scale activations; the mini
    # networks land in the same regime).
    for mini, (saving, density) in rle_results.items():
        assert saving > 40.0
        assert density < 0.55
