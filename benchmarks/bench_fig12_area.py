"""Fig. 12: hardware area on 65 nm — Eyeriss vs EIE vs EVA2.

Paper: Eyeriss 12.2 mm2, EIE ~58.9 mm2 (scaled to 65 nm), EVA2 2.6 mm2 =
3.5% of the composite VPU, with the pixel buffers at 54.5% and the
activation buffer at 16.0% of EVA2.
"""

import pytest

from conftest import register_table
from repro.hardware import VPUModel


@pytest.fixture(scope="module")
def vpu():
    return VPUModel("faster16")


def test_fig12_area(benchmark, vpu):
    area = benchmark(vpu.area_breakdown)
    eva2 = vpu.eva2.area_breakdown()
    register_table(
        "Fig 12 area (paper: Eyeriss 12.2, EIE 58.9, EVA2 2.6 mm2 = 3.5%)",
        ["unit", "area mm2", "fraction of VPU"],
        [
            ["Eyeriss (conv)", area["eyeriss_mm2"],
             area["eyeriss_mm2"] / area["total_mm2"]],
            ["EIE (FC)", area["eie_mm2"], area["eie_mm2"] / area["total_mm2"]],
            ["EVA2", area["eva2_mm2"], area["eva2_fraction"]],
        ],
    )
    register_table(
        "Fig 12 EVA2 internals (paper: pixel buffers 54.5%, activation 16.0%)",
        ["component", "area mm2", "fraction of EVA2"],
        [
            ["pixel buffers (eDRAM)", eva2["pixel_buffers_mm2"],
             eva2["pixel_buffers_mm2"] / eva2["total_mm2"]],
            ["activation buffer (eDRAM)", eva2["activation_buffer_mm2"],
             eva2["activation_buffer_mm2"] / eva2["total_mm2"]],
            ["logic", eva2["logic_mm2"], eva2["logic_mm2"] / eva2["total_mm2"]],
        ],
    )
    assert area["eva2_mm2"] == pytest.approx(2.6, rel=0.1)
    assert 0.02 < area["eva2_fraction"] < 0.05
    assert eva2["pixel_buffers_mm2"] > eva2["activation_buffer_mm2"]
