"""§IV-A first-order model: prefix MACs vs motion-estimation ops.

Paper numbers for Faster16 (conv5_3 prefix, 1000x562 input): 1.7e11 prefix
MACs, ~3e9 unoptimized matching adds, ~1.3e7 RFBME adds. The benchmark
times the actual RFBME implementation on a mini-network-scale frame.
"""

import numpy as np
import pytest

from conftest import register_table
from repro.analysis import first_order_report
from repro.core.receptive_field import ReceptiveField
from repro.core.rfbme import RFBMEConfig, estimate_motion
from repro.hardware import PAPER_TARGET_LAYERS, spec_by_name


@pytest.fixture(scope="module")
def reports():
    rows = []
    for name in ("alexnet", "fasterm", "faster16"):
        spec = spec_by_name(name)
        target = PAPER_TARGET_LAYERS[spec.name]
        size, stride, _ = spec.receptive_field(target)
        rows.append(first_order_report(spec, target, size, stride))
    return rows


def test_first_order_model(benchmark, reports):
    """Times RFBME on a 64x64 frame; registers the §IV-A comparison."""
    rng = np.random.default_rng(0)
    key = rng.random((64, 64))
    new = np.roll(key, 3, axis=1)
    rf = ReceptiveField(size=59, stride=8, padding=26)
    result = benchmark(estimate_motion, key, new, rf, (8, 8), RFBMEConfig(12, 2))
    assert result.field.grid_shape == (8, 8)

    register_table(
        "SecIV-A first-order model (paper: Faster16 = 1.7e11 MACs vs 1.3e7 adds)",
        ["network", "target", "prefix MACs", "unoptimized adds", "RFBME adds",
         "MACs/add", "reuse speedup"],
        [
            [r.network, r.target_layer, float(r.prefix_macs), r.unoptimized_ops,
             r.rfbme_ops, r.savings_ratio, r.reuse_speedup]
            for r in reports
        ],
    )
    faster16 = next(r for r in reports if r.network == "Faster16")
    assert faster16.prefix_macs == pytest.approx(1.7e11, rel=0.02)
    assert faster16.unoptimized_ops == pytest.approx(3e9, rel=0.05)
    assert faster16.rfbme_ops == pytest.approx(1.3e7, rel=0.12)
    # The headline: savings of ~3+ orders of magnitude on every network.
    for report in reports:
        assert report.savings_ratio > 1e3
