"""Ablation (§III-A): RFBME tile reuse.

Two claims to verify:

1. the incremental producer/consumer pipeline computes *identical* motion
   vectors to a full per-field recompute (reuse is exact, not approximate);
2. the reuse slashes consumer adder operations, and analytically the full
   RFBME op count sits orders of magnitude below unoptimized matching
   (the §IV-A formulas, evaluated at both mini and paper scale).
"""

import numpy as np
import pytest

from conftest import register_table
from repro.core import AMCExecutor
from repro.core.rfbme import RFBMEConfig, estimate_motion
from repro.hardware.rfbme_ops import SearchParams, rfbme_ops, unoptimized_ops
from repro.nn.train import get_trained_network
from repro.video import generate_clip, scenario


@pytest.fixture(scope="module")
def reuse_measurements():
    network = get_trained_network("mini_fasterm")
    executor = AMCExecutor(network)
    clip = generate_clip(scenario("camera_pan"), seed=77)
    key, new = clip.frames[0], clip.frames[6]
    config = RFBMEConfig(12, 2)

    faithful = estimate_motion(
        key, new, executor.rf, executor.grid_shape, config, faithful=True
    )
    vectorized = estimate_motion(
        key, new, executor.rf, executor.grid_shape, config
    )
    naive_consumer = (
        executor.grid_shape[0] * executor.grid_shape[1]
        * executor.rf.tiles_per_field() ** 2
        * len(config.offsets()) ** 2
    )
    return faithful, vectorized, naive_consumer


def test_ablation_rfbme_reuse(benchmark, reuse_measurements):
    faithful, vectorized, naive_consumer = reuse_measurements

    network = get_trained_network("mini_fasterm")
    executor = AMCExecutor(network)
    clip = generate_clip(scenario("camera_pan"), seed=77)
    benchmark(
        estimate_motion, clip.frames[0], clip.frames[6],
        executor.rf, executor.grid_shape, RFBMEConfig(12, 2),
    )

    # 1. Exactness of reuse.
    np.testing.assert_allclose(faithful.field.data, vectorized.field.data)

    # 2. Op savings, measured and analytic (mini + paper scale).
    mini_search = SearchParams(search_radius=12, search_stride=2)
    paper_search = SearchParams(search_radius=24, search_stride=8)
    rows = [
        ["measured consumer adds (mini)", float(naive_consumer),
         float(faithful.ops.consumer_adds),
         naive_consumer / faithful.ops.consumer_adds],
        ["analytic total (mini 64x64, rf 59/8)",
         unoptimized_ops(8, 8, 59, mini_search),
         rfbme_ops(8, 8, 59, 8, mini_search),
         unoptimized_ops(8, 8, 59, mini_search)
         / rfbme_ops(8, 8, 59, 8, mini_search)],
        ["analytic total (Faster16 1000x562, rf 196/16)",
         unoptimized_ops(62, 35, 196, paper_search),
         rfbme_ops(62, 35, 196, 16, paper_search),
         unoptimized_ops(62, 35, 196, paper_search)
         / rfbme_ops(62, 35, 196, 16, paper_search)],
    ]
    register_table(
        "Ablation SecIII-A: RFBME tile reuse (naive vs reuse adds)",
        ["quantity", "naive", "with reuse", "speedup"],
        rows,
    )
    assert faithful.ops.consumer_adds < naive_consumer
    # At mini scale most receptive fields are edge-clamped (RF 59 px on a
    # 64 px frame), limiting rolling reuse; at paper scale the speedup is
    # two orders of magnitude.
    for _, naive, reuse, speedup in rows:
        assert speedup > 1.5
    assert rows[-1][3] > 100
