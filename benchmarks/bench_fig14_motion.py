"""Fig. 14: accuracy impact of the motion-estimation technique.

For the two detection networks, at key-frame gaps of 1 frame (33 ms) and
6 frames (198 ms), compare predicted-frame mAP across:

* new key frame — precise execution of the later frame (upper bound),
* dense pyramid flow — the FlowNet2-s stand-in,
* Lucas–Kanade — classic single-level optical flow,
* RFBME — the paper's algorithm,
* old key frame — stale reuse with no compensation (lower bound).

Paper shape: RFBME is at or near the best motion-estimation method at both
gaps, all methods sit between the two bounds, and the spread widens at the
longer gap.
"""

import pytest

from common import eval_clips
from conftest import register_table
from repro.analysis.evaluation import decode_detections
from repro.core import AMCExecutor
from repro.motion import lucas_kanade, pool_to_grid, pyramid_flow
from repro.nn.train import get_trained_network
from repro.vision import GroundTruth, mean_average_precision

GAPS = {"33 ms": 1, "198 ms": 6}
METHODS = ["new key frame", "pyramid flow", "Lucas-Kanade", "RFBME", "old key frame"]
#: evaluate every 3rd key-frame start to bound runtime.
START_STRIDE = 3


def _field_for(method, executor, key_frame, new_frame):
    """Receptive-field-granularity field for one method (None = special)."""
    if method == "RFBME":
        return executor.estimate(new_frame).field
    if method == "Lucas-Kanade":
        flow = lucas_kanade(key_frame, new_frame)
    elif method == "pyramid flow":
        flow = pyramid_flow(key_frame, new_frame)
    else:
        raise AssertionError(method)
    return pool_to_grid(flow, executor.rf, executor.grid_shape)


def evaluate_method(network, method, gap, clips):
    """mAP of predicted frames only, for one method at one gap."""
    executor = AMCExecutor(network)
    detections, truths = [], []
    frame_id = 0
    for clip in clips:
        frame_size = clip.frames.shape[2]
        for start in range(0, len(clip) - gap, START_STRIDE):
            key_frame = clip.frames[start]
            new_frame = clip.frames[start + gap]
            executor.reset()
            executor.process_key(key_frame)

            if method == "new key frame":
                output = network.forward(new_frame[None, None])
            elif method == "old key frame":
                output = network.forward_suffix(
                    executor.stored_activation()[None], executor.target
                )
            else:
                field = _field_for(method, executor, key_frame, new_frame)
                output = executor.process_predicted(new_frame, pixel_field=field)

            ann = clip.annotations[start + gap]
            truths.append(GroundTruth(frame_id, ann.class_id, ann.box))
            detections.extend(
                decode_detections(output, [frame_id], frame_size=frame_size)
            )
            frame_id += 1
    return mean_average_precision(detections, truths)


@pytest.fixture(scope="module")
def fig14_results():
    clips = eval_clips("test")
    results = {}
    for mini in ("mini_fasterm", "mini_faster16"):
        network = get_trained_network(mini)
        for gap_label, gap in GAPS.items():
            for method in METHODS:
                results[(mini, gap_label, method)] = evaluate_method(
                    network, method, gap, clips
                )
    return results


def test_fig14_motion_estimation(benchmark, fig14_results):
    clips = eval_clips("test")[:1]
    network = get_trained_network("mini_fasterm")
    benchmark(evaluate_method, network, "RFBME", 1, clips)

    for mini in ("mini_fasterm", "mini_faster16"):
        register_table(
            f"Fig 14 motion estimation, {mini} (mAP on predicted frames)",
            ["method"] + list(GAPS),
            [
                [method] + [
                    100 * fig14_results[(mini, gap_label, method)]
                    for gap_label in GAPS
                ]
                for method in METHODS
            ],
        )

    for mini in ("mini_fasterm", "mini_faster16"):
        for gap_label in GAPS:
            def score(m, key=(mini, gap_label)):
                return fig14_results[key + (m,)]
            # Bounds: precise execution is the ceiling; every compensation
            # method beats or matches stale reuse at the long gap.
            assert score("new key frame") >= score("RFBME") - 0.02
            if gap_label == "198 ms":
                assert score("RFBME") >= score("old key frame") - 0.02
        # The 33 ms gap is easier than 198 ms for stale reuse.
        assert (
            fig14_results[(mini, "33 ms", "old key frame")]
            >= fig14_results[(mini, "198 ms", "old key frame")] - 0.02
        )
    # RFBME is competitive with the dense-flow methods at the long gap
    # (the paper's conclusion that its efficiency costs no accuracy).
    for mini in ("mini_fasterm", "mini_faster16"):
        best_flow = max(
            fig14_results[(mini, "198 ms", m)]
            for m in ("pyramid flow", "Lucas-Kanade")
        )
        assert fig14_results[(mini, "198 ms", "RFBME")] >= best_flow - 0.08
