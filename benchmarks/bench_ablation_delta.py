"""Ablation (§II): AMC vs delta networks.

The paper rejects delta updating for three quantifiable reasons; this
bench measures all three on real clips:

1. **memory** — delta networks store every layer's activations; AMC
   stores one input frame pair plus one (sparse) target activation.
2. **weight traffic** — delta networks read every weight every frame;
   AMC's predicted frames only read the suffix's weights.
3. **delta density under motion** — pans and object motion change most
   pixels abruptly, so pixel deltas stay dense and the effective-MAC
   saving collapses, while AMC's cost is motion-independent.
"""

import numpy as np
import pytest

from conftest import register_table
from repro.core import AMCExecutor
from repro.core.delta import DeltaExecutor
from repro.nn.train import get_trained_network
from repro.video import generate_clip, scenario

SCENARIOS = ("static", "slow", "linear_motion", "camera_pan", "chaotic")
DELTA_THRESHOLD = 0.02


@pytest.fixture(scope="module")
def delta_results():
    network = get_trained_network("mini_fasterm")
    results = {}
    for name in SCENARIOS:
        clip = generate_clip(scenario(name), seed=880, num_frames=8)
        executor = DeltaExecutor(network, threshold=DELTA_THRESHOLD)
        executor.process_first(clip.frames[0])
        savings, pixel_density = [], []
        for t in range(1, len(clip)):
            _, stats = executor.process_delta(clip.frames[t])
            savings.append(stats.mac_saving)
            first_layer = network.layers[0].name
            pixel_density.append(stats.delta_densities[first_layer])
        results[name] = (
            float(np.mean(savings)),
            float(np.mean(pixel_density)),
            executor.memory_values(),
            stats.weights_loaded,
        )
    return results


def test_ablation_delta_networks(benchmark, delta_results):
    network = get_trained_network("mini_fasterm")
    clip = generate_clip(scenario("camera_pan"), seed=880, num_frames=3)
    executor = DeltaExecutor(network, threshold=DELTA_THRESHOLD)
    executor.process_first(clip.frames[0])
    benchmark(executor.process_delta, clip.frames[1])

    amc = AMCExecutor(network)
    amc.process_key(clip.frames[0])
    amc_memory = (
        2 * clip.frames[0].size  # two pixel buffers
        + amc.stored_activation().size  # one target activation (dense bound)
    )
    amc_suffix_weights = sum(
        layer.param_count() for layer in network.suffix_layers(amc.target)
    )
    total_weights = network.param_count()

    register_table(
        "Ablation SecII: delta networks vs AMC (mini_fasterm)",
        ["scenario", "delta MAC saving %", "pixel delta density %"],
        [
            [name, 100 * saving, 100 * density]
            for name, (saving, density, _, _) in delta_results.items()
        ],
    )
    delta_memory = delta_results["camera_pan"][2]
    register_table(
        "Ablation SecII: structural costs (values resident / weights per frame)",
        ["strategy", "activation values stored", "weights read per frame"],
        [
            ["delta network", float(delta_memory), float(total_weights)],
            ["AMC (predicted frame)", float(amc_memory),
             float(amc_suffix_weights)],
        ],
    )

    # 1. AMC stores far less activation state.
    assert amc_memory < 0.5 * delta_memory
    # 2. AMC's predicted frames read far fewer weights.
    assert amc_suffix_weights < 0.95 * total_weights
    # 3. Delta saving collapses as motion grows: static scenes are highly
    #    sparse, pans are dense (the paper's §II argument).
    assert delta_results["static"][0] > 0.5
    assert delta_results["camera_pan"][0] < delta_results["static"][0] - 0.15
    # Pans touch two orders of magnitude more pixels than static scenes.
    assert delta_results["camera_pan"][1] > 30 * delta_results["static"][1]
