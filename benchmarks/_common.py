"""Shared BENCH_*.json plumbing for the benchmark suite and the perf gate.

Every headline benchmark writes a machine-readable trajectory file at
the repo root (``BENCH_runtime.json``, ``BENCH_serving.json``) and CI's
``perf_gate.py`` compares a freshly measured file against the committed
one.  The write/merge discipline and the "measured vs committed" metric
extraction used to be duplicated across
``bench_runtime_throughput.py``, ``bench_serving.py``, and
``perf_gate.py``; this module is their single home.

(Distinct from ``common.py``, which holds the *experiment* machinery —
clip sets, sweeps, trained networks — for the paper-figure benches.)
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

#: the repo root, where every BENCH_*.json lives.
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def bench_json_path(name: str) -> str:
    """Absolute path of ``BENCH_<name>.json`` at the repo root."""
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def load_bench_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def write_bench_json(
    path: str, header: dict, results: dict, carry_keys: Sequence[str] = ()
) -> None:
    """Write a benchmark JSON: header, carried-over keys, fresh results.

    ``carry_keys`` names the full schema a *partial* run must not
    clobber: known keys are first copied from the existing on-disk file
    (so running one test with ``-k``, or a test failing before its
    update, preserves the other tests' metrics), then overwritten by
    whatever ``results`` measured.  Only listed keys survive the merge —
    renamed or removed metrics die with the schema instead of being
    resurrected from an old JSON forever.
    """
    payload = dict(header)
    try:
        existing = load_bench_json(path)
        payload.update(
            {key: existing[key] for key in carry_keys if key in existing}
        )
    except (OSError, json.JSONDecodeError):
        pass
    payload.update(results)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# --------------------------------------------------------------------- #
# measured-vs-committed comparison (the perf gate's core)
# --------------------------------------------------------------------- #
def normalized_metrics(data: dict) -> Dict[str, float]:
    """Normalized metric name -> value, for either benchmark format.

    Absolute frames/sec are machine-dependent, so only ratios that
    survive a hardware change are compared: per-path speedups vs the
    seed loop (runtime), and serving's headline ratios (vs static
    lockstep, shard scaling, pipelined-vs-sequential, the shared-
    admission p99 tail-latency speedup, and the speculative-pipelining
    p99/throughput ratios).  Every metric is higher-is-better.
    """
    if "paths" in data:  # BENCH_runtime.json
        metrics = {
            f"{label} (x seed)": path["speedup_vs_seed"]
            for label, path in data["paths"].items()
        }
        headline = data.get("headline_speedup_vs_pr1_lockstep")
        if headline is not None:
            metrics["planned lockstep (x pr1 lockstep)"] = headline
        return metrics
    if "serving_vs_static" in data:  # BENCH_serving.json
        metrics = {"serving (x static lockstep)": data["serving_vs_static"]}
        optional = {
            "shard_scaling_2x": "2-shard serving (x 1 worker)",
            "pipelined_vs_sequential": "pipelined lockstep (x sequential)",
            "admission_p99_speedup":
                "shared-admission p99 TTFF speedup (x static)",
            "speculation_p99_speedup":
                "speculative p99 TTFF speedup (x non-speculative)",
            "speculation_fps_ratio":
                "speculative serving throughput (x non-speculative)",
            "chaos_p99_retention":
                "chaos p99 TTFF retention (x fault-free)",
            "autoscale_p99_speedup":
                "autoscaled p99 TTFF speedup under bursts (x fixed 2-shard)",
            "prefix_speedup":
                "prefix service coalesced+cached (x per-lane)",
            "quantized_speedup":
                "int8 lane on CNN-bound workload (x float32)",
        }
        for key, label in optional.items():
            if key in data:
                metrics[label] = data[key]
        if "virtual_time_speedup" in data:
            # Real-vs-simulated wall clock: the raw ratio swings with
            # host speed (a faster box burns through the same simulated
            # trace sooner), so the gated metric is capped — "well past
            # real time" is the invariant, not the exact multiple.
            metrics["virtual-time admission (x real time, capped 4)"] = min(
                float(data["virtual_time_speedup"]), 4.0
            )
        return metrics
    raise SystemExit(f"unrecognized benchmark JSON: {sorted(data)[:5]}")


def compare_metrics(
    baseline: Dict[str, float], fresh: Dict[str, float], threshold: float
) -> Tuple[List[List[str]], List[str]]:
    """Markdown table rows plus the list of regressed metric names."""
    rows: List[List[str]] = []
    regressions: List[str] = []
    for name in baseline:
        if name not in fresh:
            rows.append([name, f"{baseline[name]:.2f}", "missing", "-", "⚠️ gone"])
            regressions.append(name)
            continue
        ratio = fresh[name] / baseline[name] if baseline[name] else 1.0
        regressed = ratio < 1.0 - threshold
        status = "⚠️ regression" if regressed else "ok"
        rows.append(
            [
                name,
                f"{baseline[name]:.2f}",
                f"{fresh[name]:.2f}",
                f"{ratio:.2f}x",
                status,
            ]
        )
        if regressed:
            regressions.append(name)
    for name in fresh:
        if name not in baseline:
            rows.append([name, "-", f"{fresh[name]:.2f}", "-", "new"])
    return rows, regressions
