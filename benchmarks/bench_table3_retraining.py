"""Table III: fine-tuning the CNN suffix on warped activation data.

Protocol (paper §IV-E4): collect warped activations from predicted-frame
execution, fine-tune only the suffix layers on them, then measure accuracy
on *plain* (precisely computed) activations. Paper conclusion: retraining
is unnecessary — it changes key-frame accuracy negligibly or hurts it.
"""

import numpy as np
import pytest

from common import eval_clips
from conftest import register_table
from repro.analysis.evaluation import decode_detections
from repro.core import AMCConfig, AMCExecutor
from repro.nn.optim import Adam
from repro.nn.train import detection_loss, get_trained_network
from repro.video import build_clipset
from repro.vision import GroundTruth, mean_average_precision

GAP = 6
FINETUNE_EPOCHS = 2
#: gentle rate: the paper fine-tunes converged networks, not retrains them.
FINETUNE_LR = 1e-4


def collect_warped_dataset(network, target, clips):
    """(warped activations, labels, normalised boxes) at a fixed gap."""
    executor = AMCExecutor(network, AMCConfig(target_layer=target))
    acts, labels, boxes = [], [], []
    for clip in clips:
        frame_size = clip.frames.shape[2]
        for start in range(0, len(clip) - GAP, 2):
            executor.reset()
            executor.process_key(clip.frames[start])
            estimation = executor.estimate(clip.frames[start + GAP])
            acts.append(executor.predicted_activation(estimation))
            ann = clip.annotations[start + GAP]
            labels.append(ann.class_id)
            boxes.append(np.asarray(ann.box) / frame_size)
    return np.stack(acts), np.asarray(labels), np.stack(boxes)


def finetune_suffix(network, target, acts, labels, boxes, seed=0):
    """Train only the suffix layers on warped activations."""
    rng = np.random.default_rng(seed)
    suffix = network.suffix_layers(target)
    optimizer = Adam(suffix, lr=FINETUNE_LR)
    for _ in range(FINETUNE_EPOCHS):
        order = rng.permutation(len(acts))
        for start in range(0, len(acts), 32):
            idx = order[start : start + 32]
            optimizer.zero_grad()
            output = network.forward_suffix(acts[idx], target, train=True)
            _, grad = detection_loss(output, labels[idx], boxes[idx])
            network.backward_suffix(grad, target)
            optimizer.step()


def plain_frame_map(network, clips):
    """mAP with full precise execution (key frames only)."""
    detections, truths = [], []
    frame_id = 0
    for clip in clips:
        outputs = network.forward(clip.frames[:, None, :, :])
        for t, ann in enumerate(clip.annotations):
            truths.append(GroundTruth(frame_id, ann.class_id, ann.box))
            detections.extend(
                decode_detections(outputs[t : t + 1], [frame_id],
                                  frame_size=clip.frames.shape[2])
            )
            frame_id += 1
    return mean_average_precision(detections, truths)


@pytest.fixture(scope="module")
def table3_results():
    train_clips = build_clipset("train", clips_per_scenario=2, num_frames=12).clips
    test_clips = eval_clips("test")
    results = {}
    for mini in ("mini_fasterm", "mini_faster16"):
        base_network = get_trained_network(mini)
        results[(mini, "no retraining")] = plain_frame_map(base_network, test_clips)
        for which in ("early", "late"):
            network = get_trained_network(mini)  # fresh copy per experiment
            target = (
                network.first_post_pool_layer()
                if which == "early"
                else network.last_spatial_layer()
            )
            acts, labels, boxes = collect_warped_dataset(network, target, train_clips)
            finetune_suffix(network, target, acts, labels, boxes)
            results[(mini, f"{which} target")] = plain_frame_map(network, test_clips)
    return results


def test_table3_retraining(benchmark, table3_results):
    network = get_trained_network("mini_fasterm")
    benchmark(plain_frame_map, network, eval_clips("test")[:1])

    register_table(
        "Table III suffix fine-tuning on warped data (mAP % on plain frames)",
        ["network", "configuration", "accuracy %"],
        [
            [mini, config, 100 * score]
            for (mini, config), score in sorted(table3_results.items())
        ],
    )

    for mini in ("mini_fasterm", "mini_faster16"):
        base = table3_results[(mini, "no retraining")]
        for which in ("early target", "late target"):
            retrained = table3_results[(mini, which)]
            # Paper conclusion: retraining does not meaningfully improve
            # plain-frame accuracy (and may degrade it slightly).
            assert retrained <= base + 0.06
            # ...but neither does it destroy the network.
            assert retrained >= base - 0.25
