"""Benchmark harness support.

Benches register their paper-style result tables here; a terminal-summary
hook prints every table after the run, so ``pytest benchmarks/
--benchmark-only`` emits both pytest-benchmark timing and the reproduced
rows/series for each paper table and figure.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.reporting import format_table

_TABLES: List[Tuple[str, str]] = []


def register_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Queue one result table for the end-of-run summary."""
    _TABLES.append((title, format_table(headers, rows)))


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for title, table in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"## {title}")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
