"""Pyramidal coarse-to-fine dense flow — the FlowNet2-s stand-in.

Fig. 14 compares RFBME against FlowNet2-s, a CNN that produces dense,
accurate flow even under large displacement. Without pretrained flow
networks offline we substitute the classic coarse-to-fine scheme: build
Gaussian image pyramids, run Lucas–Kanade at the coarsest level, then at
each finer level warp the reference by the upsampled flow and estimate the
residual. The substitution preserves what the experiment needs — a dense
estimator that handles displacements far beyond single-level LK's linear
range, at much higher compute cost than RFBME.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import ndimage

from .lucas_kanade import lucas_kanade
from .vector_field import VectorField

__all__ = ["pyramid_flow"]


def _downsample(image: np.ndarray) -> np.ndarray:
    """Gaussian blur + decimate by 2 (one pyramid step)."""
    blurred = ndimage.gaussian_filter(image, 1.0, mode="nearest")
    return blurred[::2, ::2]


def _upsample_flow(field: np.ndarray, shape) -> np.ndarray:
    """Upsample a flow field to ``shape``, scaling magnitudes by the ratio."""
    out_h, out_w = shape
    in_h, in_w = field.shape[:2]
    ys = np.linspace(0, in_h - 1, out_h)
    xs = np.linspace(0, in_w - 1, out_w)
    y0 = np.clip(ys.astype(int), 0, in_h - 2) if in_h > 1 else np.zeros(out_h, int)
    x0 = np.clip(xs.astype(int), 0, in_w - 2) if in_w > 1 else np.zeros(out_w, int)
    fy = (ys - y0)[:, None, None]
    fx = (xs - x0)[None, :, None]
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    top = field[y0][:, x0] * (1 - fx) + field[y0][:, x1] * fx
    bottom = field[y1][:, x0] * (1 - fx) + field[y1][:, x1] * fx
    upsampled = top * (1 - fy) + bottom * fy
    scale_y = out_h / in_h
    scale_x = out_w / in_w
    upsampled[..., 0] *= scale_y
    upsampled[..., 1] *= scale_x
    return upsampled


def _warp_image(image: np.ndarray, field: np.ndarray) -> np.ndarray:
    """Backward-warp ``image`` by ``field`` with bilinear sampling."""
    height, width = image.shape
    ys, xs = np.mgrid[0:height, 0:width]
    sample_y = np.clip(ys + field[..., 0], 0, height - 1)
    sample_x = np.clip(xs + field[..., 1], 0, width - 1)
    return ndimage.map_coordinates(
        image, [sample_y, sample_x], order=1, mode="nearest"
    )


def pyramid_flow(
    reference: np.ndarray,
    current: np.ndarray,
    levels: int = 3,
    window_sigma: float = 2.0,
    iterations_per_level: int = 2,
) -> VectorField:
    """Backward dense flow via coarse-to-fine Lucas–Kanade.

    ``levels`` pyramid levels double the captured displacement range each;
    ``iterations_per_level`` warp-and-refine rounds tighten each level's
    estimate.
    """
    if reference.shape != current.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {current.shape}")
    if reference.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {reference.shape}")
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    if iterations_per_level < 1:
        raise ValueError(f"iterations_per_level must be >= 1, got {iterations_per_level}")

    # Build pyramids, coarsest last; stop if the image gets too small.
    ref_pyramid: List[np.ndarray] = [reference]
    cur_pyramid: List[np.ndarray] = [current]
    for _ in range(levels - 1):
        if min(ref_pyramid[-1].shape) < 16:
            break
        ref_pyramid.append(_downsample(ref_pyramid[-1]))
        cur_pyramid.append(_downsample(cur_pyramid[-1]))

    flow = np.zeros(ref_pyramid[-1].shape + (2,))
    for ref_level, cur_level in zip(reversed(ref_pyramid), reversed(cur_pyramid)):
        if flow.shape[:2] != ref_level.shape:
            flow = _upsample_flow(flow, ref_level.shape)
        for _ in range(iterations_per_level):
            # Warp the reference toward the current frame by current flow,
            # then estimate the residual motion.
            warped_ref = _warp_image(ref_level, flow)
            residual = lucas_kanade(warped_ref, cur_level, window_sigma)
            flow = flow + residual.data

    return VectorField(flow)
