"""Dense Lucas–Kanade optical flow (paper ref [22], evaluated in Fig. 14).

Solves, at every pixel, the local least-squares system

    [ Σw Ix²   Σw IxIy ] [vx]   [ Σw Ix It ]
    [ Σw IxIy  Σw Iy²  ] [vy] = [ Σw Iy It ]

with Gaussian-weighted neighbourhood sums. We estimate *backward* flow —
``current(p) ≈ reference(p + v)`` — by differentiating the reference frame
and taking the temporal difference ``It = current - reference``, so the
result plugs straight into activation warping after receptive-field
pooling.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .vector_field import VectorField

__all__ = ["lucas_kanade"]

#: Eigenvalue floor: below this the local system is considered degenerate
#: (flat patch / aperture problem) and the flow is left at zero.
_MIN_EIGEN = 1e-6


def lucas_kanade(
    reference: np.ndarray,
    current: np.ndarray,
    window_sigma: float = 2.0,
) -> VectorField:
    """Backward dense flow from ``reference`` to ``current``.

    ``window_sigma`` sets the Gaussian integration window; larger windows
    are more robust but blur motion boundaries.
    """
    if reference.shape != current.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {current.shape}")
    if reference.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {reference.shape}")
    if window_sigma <= 0:
        raise ValueError(f"window_sigma must be positive, got {window_sigma}")

    grad_y, grad_x = np.gradient(reference)
    grad_t = current - reference

    def smooth(img: np.ndarray) -> np.ndarray:
        return ndimage.gaussian_filter(img, window_sigma, mode="nearest")

    sxx = smooth(grad_x * grad_x)
    sxy = smooth(grad_x * grad_y)
    syy = smooth(grad_y * grad_y)
    sxt = smooth(grad_x * grad_t)
    syt = smooth(grad_y * grad_t)

    # Closed-form 2x2 solve with determinant/trace guards.
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    # Smaller eigenvalue of the structure tensor.
    lambda_min = trace / 2 - np.sqrt(np.maximum(trace**2 / 4 - det, 0.0))
    valid = lambda_min > _MIN_EIGEN

    safe_det = np.where(valid, det, 1.0)
    vx = np.where(valid, (syy * sxt - sxy * syt) / safe_det, 0.0)
    vy = np.where(valid, (sxx * syt - sxy * sxt) / safe_det, 0.0)

    field = np.stack([vy, vx], axis=-1)
    return VectorField(field)
