"""Horn–Schunck optical flow (paper ref [23]).

A global variational method: minimises the brightness-constancy residual
plus a smoothness term, solved by Jacobi iteration. Provided as an extra
dense baseline alongside Lucas–Kanade; like all estimators here it returns
*backward* flow (``current(p) ≈ reference(p + v)``).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .vector_field import VectorField

__all__ = ["horn_schunck"]

#: The classic 4/8-neighbour averaging kernel from the original paper.
_AVG_KERNEL = np.array(
    [
        [1 / 12, 1 / 6, 1 / 12],
        [1 / 6, 0.0, 1 / 6],
        [1 / 12, 1 / 6, 1 / 12],
    ]
)


def horn_schunck(
    reference: np.ndarray,
    current: np.ndarray,
    alpha: float = 1.0,
    iterations: int = 64,
) -> VectorField:
    """Backward dense flow via Horn–Schunck.

    ``alpha`` weights the smoothness term; more iterations propagate flow
    further into textureless regions.
    """
    if reference.shape != current.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {current.shape}")
    if reference.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {reference.shape}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    grad_y, grad_x = np.gradient(reference)
    grad_t = current - reference

    vx = np.zeros_like(reference)
    vy = np.zeros_like(reference)
    denom = alpha**2 + grad_x**2 + grad_y**2

    for _ in range(iterations):
        avg_x = ndimage.convolve(vx, _AVG_KERNEL, mode="nearest")
        avg_y = ndimage.convolve(vy, _AVG_KERNEL, mode="nearest")
        # Backward-flow constancy: grad . v = current - reference, i.e. the
        # classic update with the temporal term negated (the classic form
        # solves for forward flow).
        update = (grad_x * avg_x + grad_y * avg_y - grad_t) / denom
        vx = avg_x - grad_x * update
        vy = avg_y - grad_y * update

    return VectorField(np.stack([vy, vx], axis=-1))
