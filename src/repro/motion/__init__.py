"""Motion estimation algorithm library.

All estimators return backward-warp :class:`VectorField` objects — see
:mod:`repro.motion.vector_field` for the convention. RFBME itself lives in
:mod:`repro.core.rfbme` because it is part of the paper's contribution;
the algorithms here are the baselines it is compared against (Fig. 14) and
the codec-style matchers it descends from.
"""

from .block_matching import BlockMatchResult, block_match
from .coarse_flow import pyramid_flow
from .horn_schunck import horn_schunck
from .lucas_kanade import lucas_kanade
from .vector_field import VectorField, pool_to_grid, zero_field

__all__ = [
    "BlockMatchResult",
    "block_match",
    "pyramid_flow",
    "horn_schunck",
    "lucas_kanade",
    "VectorField",
    "pool_to_grid",
    "zero_field",
]
