"""Classic block-matching motion estimation.

The algorithms video codecs use (paper §II-C1, refs [19, 20]): the current
frame is cut into fixed-size blocks and each block searches a window of the
reference frame for its best match under sum-of-absolute-differences (SAD).

Three search organisations are provided:

* ``exhaustive`` — every offset in the window (the quality ceiling; RFBME's
  producer uses a subsampled version of this search);
* ``three_step`` — the logarithmic three-step search of Li, Zeng & Liou;
* ``diamond`` — the diamond search of Zhu & Ma.

All return backward vectors (see :mod:`repro.motion.vector_field`) on the
block grid, with SAD statistics and comparison counts for cost analysis.

The exhaustive search is executed as batched SAD: for each candidate
offset, one vectorized pass computes every block's SAD at once against
the shifted reference, using the same canonical summation order as the
RFBME producer (sequential down block columns, pairwise across column
sums) so results are bit-identical to the per-block scalar scan that
``_sad`` implements.  The greedy searches keep the scalar path — their
candidate sets are data-dependent and tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .vector_field import VectorField

__all__ = ["BlockMatchResult", "block_match"]

_METHODS = ("exhaustive", "three_step", "diamond")


@dataclass
class BlockMatchResult:
    """Block-granularity motion field plus match diagnostics."""

    field: VectorField  # (n_by, n_bx, 2) backward vectors in pixels
    block_size: int
    #: per-block minimum SAD, normalised per pixel.
    errors: np.ndarray
    #: number of candidate blocks compared (cost proxy).
    comparisons: int

    def dense(self, shape: Tuple[int, int]) -> VectorField:
        """Upsample to pixel granularity by block replication."""
        height, width = shape
        reps = self.field.data.repeat(self.block_size, axis=0).repeat(
            self.block_size, axis=1
        )
        out = np.zeros((height, width, 2))
        h = min(height, reps.shape[0])
        w = min(width, reps.shape[1])
        out[:h, :w] = reps[:h, :w]
        return VectorField(out)


def _sad(
    reference: np.ndarray,
    block: np.ndarray,
    origin_y: int,
    origin_x: int,
    dy: int,
    dx: int,
) -> float:
    """SAD of ``block`` against the reference at (origin + offset).

    Returns inf when the candidate window leaves the reference frame.
    Sums sequentially down columns, then pairwise across the column sums —
    the library's canonical order, matching the batched implementation
    bit for bit.
    """
    size_y, size_x = block.shape
    y0, x0 = origin_y + dy, origin_x + dx
    if y0 < 0 or x0 < 0 or y0 + size_y > reference.shape[0] or x0 + size_x > reference.shape[1]:
        return np.inf
    diff = np.abs(block - reference[y0 : y0 + size_y, x0 : x0 + size_x])
    return float(diff.sum(axis=0).sum())


def _search_exhaustive(radius: int, stride: int) -> List[Tuple[int, int]]:
    offsets = range(-radius, radius + 1, stride)
    return [(dy, dx) for dy in offsets for dx in offsets]


def _exhaustive_batched(
    reference: np.ndarray,
    current: np.ndarray,
    block_size: int,
    radius: int,
    stride: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Batched SAD over all blocks and candidate offsets at once.

    Evaluates candidates in the scalar scan's order — the zero offset
    first, then :func:`_search_exhaustive` — and computes, per candidate,
    every block's SAD in one vectorized pass against the zero-padded
    shifted reference (out-of-bounds blocks masked to inf, matching the
    scalar path's skip).  ``argmin`` over the candidate axis reproduces
    the strict-improvement scan: first candidate wins ties.

    Returns (field (n_by, n_bx, 2), per-pixel errors, comparisons).
    """
    height, width = current.shape
    n_by, n_bx = height // block_size, width // block_size
    crop_h, crop_w = n_by * block_size, n_bx * block_size
    candidates = [(0, 0)] + _search_exhaustive(radius, stride)

    pad = np.pad(reference, radius) if radius else reference
    crop = current[:crop_h, :crop_w]
    scratch = np.empty((crop_h, crop_w))
    costs = np.empty((len(candidates), n_by, n_bx))
    block_y = np.arange(n_by) * block_size
    block_x = np.arange(n_bx) * block_size
    for index, (dy, dx) in enumerate(candidates):
        shifted = pad[
            radius + dy : radius + dy + crop_h,
            radius + dx : radius + dx + crop_w,
        ]
        np.subtract(crop, shifted, out=scratch)
        np.abs(scratch, out=scratch)
        blocks = scratch.reshape(n_by, block_size, n_bx, block_size)
        # Canonical SAD order (see _sad): sequential down columns,
        # pairwise across column sums.
        sad = blocks.sum(axis=1).sum(axis=-1)
        ok_y = (block_y + dy >= 0) & (block_y + dy + block_size <= height)
        ok_x = (block_x + dx >= 0) & (block_x + dx + block_size <= width)
        costs[index] = np.where(ok_y[:, None] & ok_x[None, :], sad, np.inf)

    best = costs.argmin(axis=0)
    chosen = np.take_along_axis(costs, best[None], axis=0)[0]
    offsets = np.array(candidates, dtype=float)  # (n_cand, 2)
    field = offsets[best]
    errors = np.where(
        np.isfinite(chosen), chosen / (block_size * block_size), 0.0
    )
    comparisons = len(candidates) * n_by * n_bx
    return field, errors, comparisons


def _refine(
    reference: np.ndarray,
    block: np.ndarray,
    origin: Tuple[int, int],
    start: Tuple[int, int],
    pattern: List[Tuple[int, int]],
    best_cost: float,
    comparisons: int,
    max_steps: int = 32,
) -> Tuple[Tuple[int, int], float, int]:
    """Greedy pattern descent shared by three-step and diamond searches."""
    current = start
    for _ in range(max_steps):
        improved = False
        for dy, dx in pattern:
            candidate = (current[0] + dy, current[1] + dx)
            cost = _sad(reference, block, origin[0], origin[1], *candidate)
            comparisons += 1
            if cost < best_cost:
                best_cost, current, improved = cost, candidate, True
        if not improved:
            break
    return current, best_cost, comparisons


def block_match(
    reference: np.ndarray,
    current: np.ndarray,
    block_size: int = 8,
    search_radius: int = 12,
    method: str = "exhaustive",
    search_stride: int = 1,
) -> BlockMatchResult:
    """Match ``current``'s blocks against ``reference``.

    Vectors follow the backward convention: ``field[by, bx]`` is where the
    block's content came from in the reference.
    """
    if reference.shape != current.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {current.shape}")
    if reference.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {reference.shape}")
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if block_size < 1 or search_radius < 0 or search_stride < 1:
        raise ValueError("block_size/search_stride must be >= 1, radius >= 0")

    height, width = current.shape
    n_by, n_bx = height // block_size, width // block_size
    if n_by == 0 or n_bx == 0:
        raise ValueError(f"frame {current.shape} smaller than one block")

    if method == "exhaustive":
        field, errors, comparisons = _exhaustive_batched(
            reference, current, block_size, search_radius, search_stride
        )
        return BlockMatchResult(
            field=VectorField(field),
            block_size=block_size,
            errors=errors,
            comparisons=comparisons,
        )

    field = np.zeros((n_by, n_bx, 2))
    errors = np.zeros((n_by, n_bx))
    comparisons = 0

    for by in range(n_by):
        for bx in range(n_bx):
            oy, ox = by * block_size, bx * block_size
            block = current[oy : oy + block_size, ox : ox + block_size]
            zero_cost = _sad(reference, block, oy, ox, 0, 0)
            comparisons += 1
            best_offset, best_cost = (0, 0), zero_cost

            if method == "three_step":
                step = max(search_radius // 2, 1)
                while True:
                    pattern = [
                        (dy, dx)
                        for dy in (-step, 0, step)
                        for dx in (-step, 0, step)
                        if (dy, dx) != (0, 0)
                    ]
                    best_offset, best_cost, comparisons = _refine(
                        reference, block, (oy, ox), best_offset, pattern,
                        best_cost, comparisons, max_steps=1,
                    )
                    if step == 1:
                        break
                    step //= 2
            else:  # diamond
                large = [(-2, 0), (2, 0), (0, -2), (0, 2), (-1, -1), (-1, 1), (1, -1), (1, 1)]
                best_offset, best_cost, comparisons = _refine(
                    reference, block, (oy, ox), best_offset, large,
                    best_cost, comparisons,
                )
                small = [(-1, 0), (1, 0), (0, -1), (0, 1)]
                best_offset, best_cost, comparisons = _refine(
                    reference, block, (oy, ox), best_offset, small,
                    best_cost, comparisons, max_steps=1,
                )

            field[by, bx] = best_offset
            errors[by, bx] = (
                best_cost / (block_size * block_size) if np.isfinite(best_cost) else 0.0
            )

    return BlockMatchResult(
        field=VectorField(field),
        block_size=block_size,
        errors=errors,
        comparisons=comparisons,
    )
