"""Classic block-matching motion estimation.

The algorithms video codecs use (paper §II-C1, refs [19, 20]): the current
frame is cut into fixed-size blocks and each block searches a window of the
reference frame for its best match under sum-of-absolute-differences (SAD).

Three search organisations are provided:

* ``exhaustive`` — every offset in the window (the quality ceiling; RFBME's
  producer uses a subsampled version of this search);
* ``three_step`` — the logarithmic three-step search of Li, Zeng & Liou;
* ``diamond`` — the diamond search of Zhu & Ma.

All return backward vectors (see :mod:`repro.motion.vector_field`) on the
block grid, with SAD statistics and comparison counts for cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .vector_field import VectorField

__all__ = ["BlockMatchResult", "block_match"]

_METHODS = ("exhaustive", "three_step", "diamond")


@dataclass
class BlockMatchResult:
    """Block-granularity motion field plus match diagnostics."""

    field: VectorField  # (n_by, n_bx, 2) backward vectors in pixels
    block_size: int
    #: per-block minimum SAD, normalised per pixel.
    errors: np.ndarray
    #: number of candidate blocks compared (cost proxy).
    comparisons: int

    def dense(self, shape: Tuple[int, int]) -> VectorField:
        """Upsample to pixel granularity by block replication."""
        height, width = shape
        reps = self.field.data.repeat(self.block_size, axis=0).repeat(
            self.block_size, axis=1
        )
        out = np.zeros((height, width, 2))
        h = min(height, reps.shape[0])
        w = min(width, reps.shape[1])
        out[:h, :w] = reps[:h, :w]
        return VectorField(out)


def _sad(
    reference: np.ndarray,
    block: np.ndarray,
    origin_y: int,
    origin_x: int,
    dy: int,
    dx: int,
) -> float:
    """SAD of ``block`` against the reference at (origin + offset).

    Returns inf when the candidate window leaves the reference frame.
    """
    size_y, size_x = block.shape
    y0, x0 = origin_y + dy, origin_x + dx
    if y0 < 0 or x0 < 0 or y0 + size_y > reference.shape[0] or x0 + size_x > reference.shape[1]:
        return np.inf
    return float(np.abs(block - reference[y0 : y0 + size_y, x0 : x0 + size_x]).sum())


def _search_exhaustive(radius: int, stride: int) -> List[Tuple[int, int]]:
    offsets = range(-radius, radius + 1, stride)
    return [(dy, dx) for dy in offsets for dx in offsets]


def _refine(
    reference: np.ndarray,
    block: np.ndarray,
    origin: Tuple[int, int],
    start: Tuple[int, int],
    pattern: List[Tuple[int, int]],
    best_cost: float,
    comparisons: int,
    max_steps: int = 32,
) -> Tuple[Tuple[int, int], float, int]:
    """Greedy pattern descent shared by three-step and diamond searches."""
    current = start
    for _ in range(max_steps):
        improved = False
        for dy, dx in pattern:
            candidate = (current[0] + dy, current[1] + dx)
            cost = _sad(reference, block, origin[0], origin[1], *candidate)
            comparisons += 1
            if cost < best_cost:
                best_cost, current, improved = cost, candidate, True
        if not improved:
            break
    return current, best_cost, comparisons


def block_match(
    reference: np.ndarray,
    current: np.ndarray,
    block_size: int = 8,
    search_radius: int = 12,
    method: str = "exhaustive",
    search_stride: int = 1,
) -> BlockMatchResult:
    """Match ``current``'s blocks against ``reference``.

    Vectors follow the backward convention: ``field[by, bx]`` is where the
    block's content came from in the reference.
    """
    if reference.shape != current.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {current.shape}")
    if reference.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {reference.shape}")
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if block_size < 1 or search_radius < 0 or search_stride < 1:
        raise ValueError("block_size/search_stride must be >= 1, radius >= 0")

    height, width = current.shape
    n_by, n_bx = height // block_size, width // block_size
    if n_by == 0 or n_bx == 0:
        raise ValueError(f"frame {current.shape} smaller than one block")

    field = np.zeros((n_by, n_bx, 2))
    errors = np.zeros((n_by, n_bx))
    comparisons = 0

    for by in range(n_by):
        for bx in range(n_bx):
            oy, ox = by * block_size, bx * block_size
            block = current[oy : oy + block_size, ox : ox + block_size]
            zero_cost = _sad(reference, block, oy, ox, 0, 0)
            comparisons += 1
            best_offset, best_cost = (0, 0), zero_cost

            if method == "exhaustive":
                for dy, dx in _search_exhaustive(search_radius, search_stride):
                    cost = _sad(reference, block, oy, ox, dy, dx)
                    comparisons += 1
                    if cost < best_cost:
                        best_cost, best_offset = cost, (dy, dx)
            elif method == "three_step":
                step = max(search_radius // 2, 1)
                while True:
                    pattern = [
                        (dy, dx)
                        for dy in (-step, 0, step)
                        for dx in (-step, 0, step)
                        if (dy, dx) != (0, 0)
                    ]
                    best_offset, best_cost, comparisons = _refine(
                        reference, block, (oy, ox), best_offset, pattern,
                        best_cost, comparisons, max_steps=1,
                    )
                    if step == 1:
                        break
                    step //= 2
            else:  # diamond
                large = [(-2, 0), (2, 0), (0, -2), (0, 2), (-1, -1), (-1, 1), (1, -1), (1, 1)]
                best_offset, best_cost, comparisons = _refine(
                    reference, block, (oy, ox), best_offset, large,
                    best_cost, comparisons,
                )
                small = [(-1, 0), (1, 0), (0, -1), (0, 1)]
                best_offset, best_cost, comparisons = _refine(
                    reference, block, (oy, ox), best_offset, small,
                    best_cost, comparisons, max_steps=1,
                )

            field[by, bx] = best_offset
            errors[by, bx] = (
                best_cost / (block_size * block_size) if np.isfinite(best_cost) else 0.0
            )

    return BlockMatchResult(
        field=VectorField(field),
        block_size=block_size,
        errors=errors,
        comparisons=comparisons,
    )
