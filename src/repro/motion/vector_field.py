"""Motion vector fields — the δ vectors of paper §II-B.

All motion estimators in this library produce a :class:`VectorField` in the
*backward-warp* convention: ``data[y, x] = (dy, dx)`` means the content now
at position (y, x) of the current frame came from position
(y + dy, x + dx) of the reference (key) frame. This is exactly the lookup
direction activation warping needs — for each predicted activation
coordinate, where in the stored key activation to sample (the pixel-space
δ that §II-B scales to activation space, and the per-coordinate output of
RFBME that Fig. 14's alternative estimators are swapped against).

Fields can live at two granularities:

* pixel granularity — one vector per pixel (optical-flow methods);
* receptive-field granularity — one vector per target-activation
  coordinate (RFBME's native output).

:func:`pool_to_grid` converts the former to the latter by averaging vectors
over each receptive field, which is how the paper adapts Lucas–Kanade and
FlowNet output for AMC (§IV-E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # avoid a circular import; only needed for annotations
    from ..core.receptive_field import ReceptiveField

__all__ = ["VectorField", "pool_to_grid", "zero_field"]


@dataclass
class VectorField:
    """A (H, W, 2) array of backward-warp displacement vectors, in pixels.

    ``grid_shape`` is (H, W) of the field itself; the vectors are always in
    input-pixel units regardless of granularity (scaling to activation
    units happens in the warp step, dividing by the receptive-field
    stride).
    """

    data: np.ndarray

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 3 or self.data.shape[2] != 2:
            raise ValueError(f"vector field must be (H, W, 2), got {self.data.shape}")

    @property
    def grid_shape(self) -> Tuple[int, int]:
        return self.data.shape[0], self.data.shape[1]

    def magnitudes(self) -> np.ndarray:
        """Per-vector Euclidean magnitude."""
        return np.hypot(self.data[..., 0], self.data[..., 1])

    def total_magnitude(self) -> float:
        """Sum of vector magnitudes — the paper's 'total motion magnitude'
        key-frame metric (§II-C4)."""
        return float(self.magnitudes().sum())

    def mean_magnitude(self) -> float:
        return float(self.magnitudes().mean()) if self.data.size else 0.0

    def scaled(self, factor: float) -> "VectorField":
        """A copy with every vector multiplied by ``factor``."""
        return VectorField(self.data * factor)

    def negated(self) -> "VectorField":
        """Flip between forward and backward conventions."""
        return VectorField(-self.data)

    def endpoint_error(self, other: "VectorField") -> float:
        """Mean Euclidean distance between corresponding vectors."""
        if self.grid_shape != other.grid_shape:
            raise ValueError(
                f"grid mismatch {self.grid_shape} vs {other.grid_shape}"
            )
        diff = self.data - other.data
        return float(np.hypot(diff[..., 0], diff[..., 1]).mean())


def zero_field(height: int, width: int) -> VectorField:
    """An all-zero field (the 'no motion' hypothesis)."""
    return VectorField(np.zeros((height, width, 2)))


def pool_to_grid(
    pixel_field: VectorField, rf: "ReceptiveField", grid_shape: Tuple[int, int]
) -> VectorField:
    """Average a pixel-granularity field over each receptive field.

    For each target-activation coordinate, averages the pixel vectors whose
    positions fall inside that coordinate's receptive field (clipped to the
    image). This is the conversion the paper applies to pixel-level optical
    flow before warping (§IV-E2).
    """
    height, width = pixel_field.grid_shape
    out_h, out_w = grid_shape
    pooled = np.zeros((out_h, out_w, 2))
    # Integral image over each component for O(1) box averages.
    integral = np.zeros((height + 1, width + 1, 2))
    integral[1:, 1:] = pixel_field.data.cumsum(axis=0).cumsum(axis=1)

    for i in range(out_h):
        y0, y1 = rf.input_extent(i)
        y0, y1 = max(y0, 0), min(y1, height)
        if y0 >= y1:
            continue
        for j in range(out_w):
            x0, x1 = rf.input_extent(j)
            x0, x1 = max(x0, 0), min(x1, width)
            if x0 >= x1:
                continue
            box = (
                integral[y1, x1]
                - integral[y0, x1]
                - integral[y1, x0]
                + integral[y0, x0]
            )
            pooled[i, j] = box / ((y1 - y0) * (x1 - x0))
    return VectorField(pooled)
