"""Fault tolerance for sharded serving: supervision, shedding, injection.

Three concerns live here, all downstream of one fact about this
pipeline: every clip's execution is deterministic and bit-identical
regardless of batch-mates or shard assignment, so *re-executing* a lost
request on another shard is exactly replayable — failover is safe by
construction, and the only job of this module is to notice failures and
re-dispatch explicitly.

* :class:`FaultPlan` / :class:`FaultEvent` — deterministic fault
  injection.  A plan is a seeded, picklable set of events ("kill shard
  k at virtual time t", "stall a shard for d steps", "drop the next
  ack") honoured by *both* serving backends: the inline discrete-event
  loop fires events against per-shard virtual clocks, and the process
  backend ships each shard its own slice of the plan to fire against
  its real post-release clock.  Plans round-trip through JSON so a
  failing chaos run can be replayed from an artifact.
* :class:`SupervisorConfig` / :class:`ShardSupervisor` — the parent-side
  supervisor for the shared-admission process backend.  Shards heartbeat
  and acknowledge every completed request; the parent detects a crashed
  (dead process) or stalled (silent past ``heartbeat_timeout``) shard,
  re-dispatches its unacknowledged requests to surviving shards — or to
  a respawned one, bounded by ``max_respawns`` — and records every
  failover as a :class:`FailoverEvent`.  Dispatch is credit-based (at
  most ``capacity`` unacknowledged requests per shard) and
  deadline-ordered, so the parent owns admission policy and a shard
  owns only its resident batch.
* Deadlines and shedding — a :class:`~repro.runtime.serving.ClipRequest`
  with a ``deadline`` that passes while the request is still queued is
  *shed*: dropped with an explicit :class:`ShedRecord` (whose
  ``error`` is a named :class:`RequestShedError`) instead of served
  late or silently dropped.  Admission among due requests is
  earliest-deadline-first.

The supervised child protocol (all messages flow through one shared
event queue; dispatches flow through per-shard inboxes)::

    child -> parent: ("ready", lane, shard, pid)
                     ("beat",  lane, shard, t)          throttled
                     ("ack",   lane, shard, seq, record) per completion
                     ("done",  lane, shard, tail)        final counters
    parent -> child: ("go", t0)     release, clock base = parent time t0
                     ("skip", dt)   virtual-time jump: advance clock dt
                     (seq, request) dispatch
                     None           retire sentinel

Virtual-time admission (``ShardSupervisor(virtual_time=True)``): when
every shard is idle and the next arrival is in the future, the parent
*jumps* its logical clock to that arrival instead of sleeping, and
broadcasts ``("skip", dt)`` so every shard advances its own clock by the
same ``dt`` (a shard's clock base just moves back).  All deadlines,
shedding, and admission stamps live on the logical timeline, so a large
simulated trace serves in real time proportional to its busy time, not
its simulated duration.  *Liveness* stays on the real clock — a jump
must never read as heartbeat silence — and ack timeouts are unaffected
because a jump only happens with zero dispatches in flight.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .scheduler import ShardCrashError
from .spec import PipelineSpec

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "SupervisorConfig",
    "ShardSupervisor",
    "SupervisionResult",
    "RequestShedError",
    "ShedRecord",
    "FailoverEvent",
]

#: the fault kinds both backends honour.
FAULT_KINDS = ("kill", "stall", "drop_ack")


class RequestShedError(RuntimeError):
    """A request was shed: its deadline passed before service began.

    Never raised during a serve — shedding is a per-request *outcome*,
    not a run failure.  :attr:`ShedRecord.error` materializes one so
    callers who want an exception per shed request (the CLI's verify
    path, a caller promoting sheds to failures) get a named type with
    the full context attached.
    """

    def __init__(self, request_id: object, lane: str, arrival_time: float,
                 deadline: float, shed_time: float):
        self.request_id = request_id
        self.lane = lane
        self.arrival_time = arrival_time
        self.deadline = deadline
        self.shed_time = shed_time
        super().__init__(
            f"request {request_id!r} shed on lane {lane!r}: deadline "
            f"{deadline:.6f}s passed unserved at t={shed_time:.6f}s "
            f"(arrived {arrival_time:.6f}s)"
        )


@dataclass(frozen=True)
class ShedRecord:
    """One shed request: who, where, and when the deadline lapsed."""

    seq: int
    request_id: object
    lane: str
    arrival_time: float
    deadline: float
    #: when the shed was decided, on the shedding loop's clock.
    shed_time: float
    #: shard whose admission boundary shed it; -1 = the parent
    #: supervisor (process backend sheds before dispatch).
    shard: int = -1

    @property
    def error(self) -> RequestShedError:
        return RequestShedError(
            self.request_id, self.lane, self.arrival_time, self.deadline,
            self.shed_time,
        )


@dataclass(frozen=True)
class FailoverEvent:
    """One detected shard failure and what was re-dispatched."""

    lane: str
    shard: int
    #: detection time on the supervising loop's clock.
    time: float
    #: "crash" (process died / DES kill) or "stall" (heartbeat silence).
    reason: str
    #: submission seqs whose in-flight work was re-dispatched.
    seqs: Tuple[int, ...]
    #: whether a replacement shard was spawned for this failure.
    respawned: bool = False


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault against one shard's (virtual) clock.

    ``kill`` terminates the shard at ``at``; ``stall`` freezes it for
    ``steps`` lockstep steps (inline DES, scaled by the shard's measured
    step time) or ``seconds`` (process backend, a literal sleep) — a
    stall longer than the supervisor's ``heartbeat_timeout`` is
    indistinguishable from death and is failed over as one; ``drop_ack``
    loses the acknowledgement of the next request the shard completes
    at or after ``at``, so the supervisor retries it after
    ``ack_timeout``.
    """

    kind: str
    at: float
    lane: str = "default"
    shard: int = 0
    steps: int = 0
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.kind == "stall" and self.steps <= 0 and self.seconds <= 0:
            raise ValueError("a stall needs steps > 0 or seconds > 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable set of injected faults.

    Events are stored sorted by fire time so iteration order never
    depends on construction order; a plan (with its seed) round-trips
    through JSON for CI artifacts, and :meth:`for_shard` slices out the
    events one shard must honour.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: the seed that generated this plan (None for hand-built plans) —
    #: carried for provenance in dumped artifacts.
    seed: Optional[int] = None

    def __post_init__(self):
        ordered = tuple(sorted(
            self.events,
            key=lambda e: (e.at, e.lane, e.shard, e.kind),
        ))
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    def lanes(self) -> Tuple[str, ...]:
        return tuple(sorted({event.lane for event in self.events}))

    def for_shard(self, lane: str, shard: int) -> Tuple[FaultEvent, ...]:
        """The events (fire-time order) targeting one shard."""
        return tuple(
            event for event in self.events
            if event.lane == lane and event.shard == shard
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        lanes: Sequence[str] = ("default",),
        shards_per_lane: int = 2,
        horizon: float = 1.0,
        kills: int = 1,
        stalls: int = 1,
        drops: int = 1,
        stall_steps: Tuple[int, int] = (2, 8),
        stall_seconds: float = 0.0,
    ) -> "FaultPlan":
        """A reproducible chaos plan over ``[0, horizon)`` seconds.

        Kills never target every shard of a lane — at least one original
        shard always survives, so a seeded plan cannot manufacture a
        total-loss run (hand-built plans still can, for testing the
        explicit :class:`~repro.runtime.scheduler.ShardCrashError`
        path).  Same seed and shape, same plan, on any host.
        """
        if shards_per_lane < 1:
            raise ValueError(
                f"shards_per_lane must be >= 1, got {shards_per_lane}"
            )
        rng = np.random.default_rng(seed)
        lanes = tuple(lanes)
        targets = [(lane, s) for lane in lanes for s in range(shards_per_lane)]

        def moment() -> float:
            return float(rng.uniform(0.05, 0.95) * horizon)

        events: List[FaultEvent] = []
        kill_budget = {lane: shards_per_lane - 1 for lane in lanes}
        killable = list(targets)
        for _ in range(kills):
            viable = [t for t in killable if kill_budget[t[0]] > 0]
            if not viable:
                break
            lane, shard = viable[int(rng.integers(len(viable)))]
            kill_budget[lane] -= 1
            killable.remove((lane, shard))
            events.append(FaultEvent("kill", at=moment(), lane=lane, shard=shard))
        for _ in range(stalls):
            lane, shard = targets[int(rng.integers(len(targets)))]
            events.append(FaultEvent(
                "stall", at=moment(), lane=lane, shard=shard,
                steps=int(rng.integers(stall_steps[0], stall_steps[1] + 1)),
                seconds=float(stall_seconds),
            ))
        for _ in range(drops):
            lane, shard = targets[int(rng.integers(len(targets)))]
            events.append(FaultEvent("drop_ack", at=moment(), lane=lane,
                                     shard=shard))
        return cls(events=tuple(events), seed=seed)

    # ---------------------------------------------------------------- #
    # JSON round-trip, for replaying a failing chaos run from CI.
    # ---------------------------------------------------------------- #
    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "events": [asdict(event) for event in self.events],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent(**event) for event in data["events"]),
            seed=data.get("seed"),
        )

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(json.load(handle))


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-detection and recovery knobs for supervised serving."""

    #: a shard silent for this long (no heartbeat; DES: declared stall
    #: duration) is considered dead and failed over.
    heartbeat_timeout: float = 30.0
    #: replacement shards the supervisor may spawn per serve; a lane
    #: that loses every shard with no budget left raises
    #: :class:`~repro.runtime.scheduler.ShardCrashError` instead of
    #: hanging.
    max_respawns: int = 1
    #: a dispatched request unacknowledged for this long is retried
    #: (defaults to 4x the heartbeat timeout — a live shard that lost
    #: only an ack, never the work).
    ack_timeout: Optional[float] = None
    #: how often a supervised shard heartbeats (process backend).
    beat_interval: float = 0.05
    #: hard no-progress bound: a supervised serve that neither acks,
    #: sheds, dispatches, nor detects a failure for this long is
    #: aborted with :class:`ShardCrashError` — a supervised run never
    #: hangs.
    drain_timeout: float = 120.0

    def __post_init__(self):
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.ack_timeout is not None and self.ack_timeout <= 0:
            raise ValueError(
                f"ack_timeout must be > 0, got {self.ack_timeout}"
            )
        if self.beat_interval <= 0:
            raise ValueError(
                f"beat_interval must be > 0, got {self.beat_interval}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be > 0, got {self.drain_timeout}"
            )

    @property
    def resolved_ack_timeout(self) -> float:
        return (
            self.ack_timeout if self.ack_timeout is not None
            else 4.0 * self.heartbeat_timeout
        )


# -------------------------------------------------------------------- #
# shared backlog bookkeeping (inline DES loop and process supervisor)
# -------------------------------------------------------------------- #
@dataclass
class _PendingEntry:
    """One undispatched (or re-dispatched) request in a lane backlog."""

    seq: int
    request: object  # ClipRequest; untyped to avoid a serving import
    lane: str
    #: earliest time this entry may be dispatched: the arrival time, or
    #: the failover/retry time for re-dispatched entries.
    available: float
    attempts: int = 1
    #: the outcome label its eventual record carries ("served",
    #: "failover", "retried") — rewritten when the entry re-enters the
    #: backlog through a recovery path.
    outcome: str = "served"
    #: when the current attempt was dispatched (process backend).
    dispatch_time: float = 0.0


def _edf_key(entry: _PendingEntry) -> Tuple[float, float, int]:
    """Earliest-deadline-first admission order (slack ordering).

    Deadline-less requests sort after every deadlined one; ties fall
    back to arrival order then submission order, which makes the
    no-deadline case exactly the historical FIFO admission.
    """
    deadline = getattr(entry.request, "deadline", None)
    return (
        deadline if deadline is not None else math.inf,
        entry.request.arrival_time,
        entry.seq,
    )


def _shed_expired(
    entries: List[_PendingEntry], now: float, shard: int = -1
) -> Tuple[List[_PendingEntry], List[ShedRecord]]:
    """Split a backlog into survivors and newly shed entries.

    A request is shed the moment its deadline passes while it is still
    waiting for a slot — service that has not begun by the deadline can
    no longer meet it.  Admitted requests are never shed: they run to
    completion and their record simply shows a missed deadline.
    """
    kept: List[_PendingEntry] = []
    shed: List[ShedRecord] = []
    for entry in entries:
        deadline = getattr(entry.request, "deadline", None)
        if deadline is not None and deadline <= now:
            shed.append(ShedRecord(
                seq=entry.seq,
                request_id=entry.request.request_id,
                lane=entry.lane,
                arrival_time=entry.request.arrival_time,
                deadline=deadline,
                shed_time=now,
                shard=shard,
            ))
        else:
            kept.append(entry)
    return kept, shed


# -------------------------------------------------------------------- #
# the supervised shard child
# -------------------------------------------------------------------- #
@dataclass(frozen=True)
class SupervisedShardTask:
    """Everything a supervised shard process needs (picklable)."""

    lane: str
    shard: int
    spec: PipelineSpec
    capacity: int
    #: manager queue the parent dispatches ``(seq, request)`` into.
    inbox: object
    #: shared manager queue for ready/beat/ack/done messages.
    events: object
    #: this shard's slice of the fault plan, on its post-release clock.
    faults: Tuple[FaultEvent, ...] = ()
    beat_interval: float = 0.05
    #: prefix-service knobs (each process owns an independent cache;
    #: counters come home in the shard's tail message).
    prefix_coalesce: bool = True
    prefix_cache_mb: float = 0.0


def _run_supervised_shard(task: SupervisedShardTask) -> None:
    """Shard main: build, sync clocks, then admit/step/ack until retired.

    Builds its own :class:`~repro.runtime.serving.LaneWorker` (network
    and plan compile stay out of latency accounting), reports ready,
    and blocks for the parent's ``("go", t0)`` — its clock base is set
    so readings land on the parent's timeline (``CLOCK_MONOTONIC`` is
    system-wide, so this holds up to message skew; a respawned shard
    gets the parent's *current* time and joins the same timeline).
    Every completed request is acknowledged with its full
    :class:`~repro.runtime.serving.RequestRecord`; injected faults fire
    against the shard's own clock: ``kill`` is ``os._exit`` (a real
    crash — no cleanup, no goodbyes), ``stall`` a literal sleep with
    heartbeats suppressed, ``drop_ack`` a swallowed acknowledgement.
    """
    import queue as queue_module
    from collections import deque

    from .serving import LaneWorker, _finalize_step

    worker = LaneWorker(
        task.lane, task.spec, task.capacity, shard=task.shard,
        prefix_coalesce=task.prefix_coalesce,
        prefix_cache_mb=task.prefix_cache_mb,
    )
    task.events.put(("ready", task.lane, task.shard, os.getpid()))
    go = task.inbox.get()  # parent always answers with go or a sentinel
    if go is None:
        task.events.put(("done", task.lane, task.shard, {}))
        return
    start = time.perf_counter() - float(go[1])

    def now() -> float:
        return time.perf_counter() - start

    kills = deque(e for e in task.faults if e.kind == "kill")
    stalls = deque(e for e in task.faults if e.kind == "stall")
    drops = deque(e for e in task.faults if e.kind == "drop_ack")

    done: Dict[int, object] = {}
    busy = 0.0
    idle = 0.0
    steps = 0
    mean_step = 1e-3
    last_beat = -math.inf
    draining = False
    while True:
        current = now()
        while stalls and stalls[0].at <= current:
            event = stalls.popleft()
            time.sleep(
                event.seconds if event.seconds > 0
                else event.steps * mean_step
            )
            current = now()
        if kills and kills[0].at <= current:
            os._exit(23)  # injected crash: no cleanup, no final ack
        if current - last_beat >= task.beat_interval:
            task.events.put(("beat", task.lane, task.shard, current))
            last_beat = current
        while not draining and worker.has_free_slot():
            try:
                item = task.inbox.get_nowait()
            except queue_module.Empty:
                break
            if item is None:
                draining = True
            elif item[0] == "skip":
                start -= float(item[1])  # virtual-time jump: clock leaps
            elif item[0] != "go":  # a duplicate release is inert
                worker.admit(item[0], item[1], now())
        if worker.has_active():
            step_start = time.perf_counter()
            finished = worker.step()
            duration = time.perf_counter() - step_start
            busy += duration
            mean_step = duration
            steps += 1
            _finalize_step(worker, finished, now(), done)
            for resident in finished:
                record = done.pop(resident.seq)
                if drops and drops[0].at <= now():
                    drops.popleft()  # the ack is lost; the work was not
                else:
                    task.events.put(
                        ("ack", task.lane, task.shard, resident.seq, record)
                    )
        elif draining:
            break
        else:
            wait_start = time.perf_counter()
            try:
                item = task.inbox.get(timeout=0.02)
            except queue_module.Empty:
                idle += time.perf_counter() - wait_start
                continue
            idle += time.perf_counter() - wait_start
            if item is None:
                draining = True
            elif item[0] == "skip":
                start -= float(item[1])
            elif item[0] != "go":
                worker.admit(item[0], item[1], now())
    stats = worker.executor.stats
    prefix = worker.prefix_service.stats
    task.events.put(("done", task.lane, task.shard, {
        "wall": busy,
        "idle": idle,
        "steps": steps,
        "pipelined": stats.pipelined_steps,
        "speculated": stats.speculated,
        "rollbacks": stats.rollbacks,
        "prefix_fused": prefix.fused_batches,
        "prefix_hits": prefix.hits,
        "prefix_misses": prefix.misses,
        "prefix_evictions": prefix.evictions,
        "prefix_saved_macs": prefix.saved_macs,
    }))


# -------------------------------------------------------------------- #
# the parent-side supervisor
# -------------------------------------------------------------------- #
@dataclass
class SupervisionResult:
    """What a supervised serve produced, for report aggregation."""

    outcomes: List[object]  # List[serving._ShardOutcome]
    shed: List[ShedRecord]
    failover_events: List[FailoverEvent]
    retries: int
    failovers: int
    respawns: int
    #: autoscaling decisions that changed a lane's shard count (empty
    #: without an autoscaler).
    scale_events: List[object] = field(default_factory=list)


@dataclass
class _ShardState:
    """Parent-side view of one supervised shard process."""

    lane: str
    shard: int
    process: object
    inbox: object
    ready: bool = False
    released: bool = False
    alive: bool = True
    done: bool = False
    #: sentinel sent by the autoscaler: finishing residents, admits
    #: nothing new, retires when empty.
    draining: bool = False
    #: last sign of life, on the REAL clock (``time.perf_counter()``) —
    #: virtual-time jumps must never read as heartbeat silence.
    last_beat: float = 0.0
    tail: Optional[dict] = None
    in_flight: Dict[int, _PendingEntry] = field(default_factory=dict)
    records: Dict[int, object] = field(default_factory=dict)


class ShardSupervisor:
    """Supervised shared-admission serving over real shard processes.

    The parent is dispatcher and failure detector in one loop: it
    releases requests at their arrival times, dispatches them
    earliest-deadline-first to the lane shard with the most free
    capacity (credit = ``capacity`` minus unacknowledged dispatches),
    sheds whatever expires while queued, and watches each shard's
    process liveness and heartbeats.  A dead or silent shard's
    unacknowledged requests go back into the backlog — their eventual
    records are flagged ``"failover"`` — and, when the lane would
    otherwise be shardless, a replacement is spawned (bounded by
    ``max_respawns``).  An unacknowledged request on a *live* shard is
    retried after ``ack_timeout`` (the drop-ack case); duplicate acks
    are idempotent because re-execution is bit-identical.  Total loss —
    a lane with work but no shards and no respawn budget — terminates
    everything and raises
    :class:`~repro.runtime.scheduler.ShardCrashError`; a run never
    hangs (``drain_timeout`` bounds any no-progress stretch).
    """

    def __init__(
        self,
        specs: Mapping[str, PipelineSpec],
        capacity: int,
        config: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        virtual_time: bool = False,
        autoscaler: Optional[object] = None,
        prefix_coalesce: bool = True,
        prefix_cache_mb: float = 0.0,
    ):
        self.specs = dict(specs)
        self.capacity = capacity
        self.config = config or SupervisorConfig()
        self.plan = fault_plan or FaultPlan()
        #: prefix-service knobs forwarded to every shard process.
        self.prefix_coalesce = bool(prefix_coalesce)
        self.prefix_cache_mb = float(prefix_cache_mb)
        #: release arrivals by logical timestamps: idle gaps are jumped
        #: (a ``("skip", dt)`` broadcast) instead of slept.
        self.virtual_time = bool(virtual_time)
        #: a :class:`~repro.runtime.frontdoor.Autoscaler`; when set, the
        #: supervisor grows lanes through its spawn machinery and
        #: shrinks them by draining idle shards (not charged against
        #: ``max_respawns`` — scaling is not failure recovery).
        self.autoscaler = autoscaler

    # ---------------------------------------------------------------- #
    def serve(
        self,
        per_lane: Mapping[str, Sequence[Tuple[int, object]]],
        lane_shards: Mapping[str, int],
    ) -> SupervisionResult:
        import multiprocessing

        manager = multiprocessing.Manager()
        shards: List[_ShardState] = []
        try:
            events = manager.Queue()

            def spawn(lane: str, shard: int) -> _ShardState:
                inbox = manager.Queue()
                task = SupervisedShardTask(
                    lane=lane,
                    shard=shard,
                    spec=self.specs[lane],
                    capacity=self.capacity,
                    inbox=inbox,
                    events=events,
                    faults=self.plan.for_shard(lane, shard),
                    beat_interval=self.config.beat_interval,
                    prefix_coalesce=self.prefix_coalesce,
                    prefix_cache_mb=self.prefix_cache_mb,
                )
                process = multiprocessing.Process(
                    target=_run_supervised_shard, args=(task,), daemon=True
                )
                process.start()
                state = _ShardState(lane, shard, process, inbox)
                shards.append(state)
                return state

            for lane, count in lane_shards.items():
                for shard in range(count):
                    spawn(lane, shard)
            return self._serve_loop(per_lane, lane_shards, events, spawn,
                                    shards)
        finally:
            for state in shards:
                if state.process.is_alive():
                    state.process.terminate()
            for state in shards:
                state.process.join(timeout=5)
            manager.shutdown()

    # ---------------------------------------------------------------- #
    def _serve_loop(self, per_lane, lane_shards, events, spawn, shards):
        import queue as queue_module

        config = self.config
        ack_timeout = config.resolved_ack_timeout

        # Build before release: wait until every shard reports ready so
        # no shard's records carry a sibling's build time.  A shard that
        # dies *building* is a systemic failure (its siblings share the
        # spec), surfaced immediately rather than supervised around.
        build_deadline = time.perf_counter() + 300
        while any(not s.ready for s in shards):
            for state in shards:
                if not state.ready and not state.process.is_alive():
                    raise ShardCrashError(
                        f"shard {state.lane}/{state.shard} died while "
                        f"building (exit code {state.process.exitcode}); "
                        f"nothing was dispatched",
                    )
            if time.perf_counter() > build_deadline:
                raise ShardCrashError(
                    "supervised shards failed to report ready within 300s"
                )
            try:
                message = events.get(timeout=0.05)
            except queue_module.Empty:
                continue
            if message[0] == "ready":
                self._state_of(shards, message[1], message[2]).ready = True

        base = time.perf_counter()
        offset = [0.0]  # virtual seconds jumped over idle gaps

        def now() -> float:
            return time.perf_counter() - base + offset[0]

        for state in shards:
            state.inbox.put(("go", now()))
            state.released = True
            state.last_beat = time.perf_counter()

        pending: List[_PendingEntry] = [
            _PendingEntry(seq=seq, request=request, lane=lane,
                          available=request.arrival_time)
            for lane, items in per_lane.items()
            for seq, request in items
        ]
        resolved: Dict[int, object] = {}
        shed: List[ShedRecord] = []
        failover_events: List[FailoverEvent] = []
        counters = {"retries": 0, "failovers": 0, "respawns": 0}
        next_shard = dict(lane_shards)
        last_progress = now()
        last_observe = 0.0  # real-clock autoscale observation throttle

        def fail_shard(state: _ShardState, reason: str) -> None:
            state.alive = False
            if state.process.is_alive():
                state.process.terminate()
            detect = now()
            seqs = tuple(sorted(state.in_flight))
            for seq in seqs:
                entry = state.in_flight.pop(seq)
                entry.attempts += 1
                entry.outcome = "failover"
                entry.available = detect
                pending.append(entry)
            counters["failovers"] += len(seqs)
            lane_live = [
                s for s in shards
                if s.lane == state.lane and s.alive and not s.done
                and not s.draining
            ]
            lane_work = seqs or any(
                e.lane == state.lane for e in pending
            ) or any(
                s.lane == state.lane and s.in_flight for s in shards
            )
            respawned = False
            if (not lane_live and lane_work
                    and counters["respawns"] < config.max_respawns):
                replacement = spawn(state.lane, next_shard[state.lane])
                next_shard[state.lane] += 1
                counters["respawns"] += 1
                respawned = True
                del replacement  # released when its "ready" arrives
            failover_events.append(FailoverEvent(
                lane=state.lane, shard=state.shard, time=detect,
                reason=reason, seqs=seqs, respawned=respawned,
            ))

        def handle(message) -> bool:
            """Apply one child message; True if it was progress."""
            kind = message[0]
            if kind == "beat":
                self._state_of(
                    shards, message[1], message[2]
                ).last_beat = time.perf_counter()
                return False
            if kind == "ready":  # a respawned or scaled-up shard came up
                state = self._state_of(shards, message[1], message[2])
                state.ready = True
                state.inbox.put(("go", now()))
                state.released = True
                state.last_beat = time.perf_counter()
                return True
            if kind == "ack":
                _, lane, shard, seq, record = message
                state = self._state_of(shards, lane, shard)
                state.last_beat = time.perf_counter()
                if seq in resolved:
                    return False  # duplicate of a retried request
                entry = state.in_flight.pop(seq, None)
                if entry is None:
                    # The request was retried elsewhere after an ack
                    # timeout, but the original attempt finished after
                    # all; results are bit-identical, so first ack wins.
                    entry = self._retract(pending, shards, seq)
                record.outcome = entry.outcome if entry else "served"
                record.attempts = entry.attempts if entry else 1
                resolved[seq] = record
                state.records[seq] = record
                return True
            if kind == "done":
                state = self._state_of(shards, message[1], message[2])
                state.done = True
                state.tail = message[3]
                return True
            return False

        # ---------------- the dispatch/monitor loop ---------------- #
        while pending or any(s.in_flight for s in shards):
            try:
                message = events.get(timeout=0.01)
            except queue_module.Empty:
                message = None
            while message is not None:
                if handle(message):
                    last_progress = now()
                try:
                    message = events.get_nowait()
                except queue_module.Empty:
                    message = None
            current = now()
            pending, newly_shed = _shed_expired(pending, current)
            if newly_shed:
                shed.extend(newly_shed)
                last_progress = current
            # Retry unacknowledged dispatches on shards that still look
            # alive — the ack (not the shard) may be what was lost.
            for state in shards:
                if not state.alive:
                    continue
                for seq in [
                    s for s, e in state.in_flight.items()
                    if current - e.dispatch_time > ack_timeout
                ]:
                    entry = state.in_flight.pop(seq)
                    entry.attempts += 1
                    entry.outcome = "retried"
                    entry.available = current
                    pending.append(entry)
                    counters["retries"] += 1
                    last_progress = current
            # Liveness: a dead process is a crash; heartbeat silence on
            # a released shard is a stall — both fail over identically.
            for state in shards:
                if not state.alive or state.done:
                    continue
                if not state.process.is_alive():
                    fail_shard(state, "crash")
                    last_progress = now()
                elif (state.released
                        and time.perf_counter() - state.last_beat
                        > config.heartbeat_timeout):
                    # Real-clock silence: virtual jumps never trip this.
                    fail_shard(state, "stall")
                    last_progress = now()
            # Autoscale: observe each lane's due backlog and deadline
            # slack on the real beat cadence.  Growth reuses the spawn
            # machinery without charging the respawn budget; shrink
            # marks the emptiest shard draining and sends its sentinel
            # — the FIFO inbox guarantees earlier dispatches are served
            # and acked before the child retires.
            if (self.autoscaler is not None
                    and time.perf_counter() - last_observe
                    >= config.beat_interval):
                last_observe = time.perf_counter()
                current = now()
                for lane in sorted(self.specs):
                    live = [
                        s for s in shards
                        if s.lane == lane and s.alive and not s.done
                        and not s.draining
                    ]
                    due = [
                        e for e in pending
                        if e.lane == lane and e.available <= current
                    ]
                    slack = min(
                        (getattr(e.request, "deadline", None) - current
                         for e in due
                         if getattr(e.request, "deadline", None) is not None),
                        default=None,
                    )
                    target = self.autoscaler.observe(
                        lane, len(live), len(due), current,
                        deadline_slack=slack,
                    )
                    if target > len(live):
                        for _ in range(target - len(live)):
                            spawn(lane, next_shard[lane])
                            next_shard[lane] += 1
                    elif target < len(live):
                        victims = [s for s in live if s.released]
                        for _ in range(len(live) - target):
                            if not victims:
                                break
                            victim = min(
                                victims,
                                key=lambda s: (len(s.in_flight), -s.shard),
                            )
                            victims.remove(victim)
                            victim.draining = True
                            victim.inbox.put(None)
            # A lane with work but no shards left: explicit total loss.
            # An autoscaled fleet self-heals instead — the policy clamp
            # restores the lane to min_shards on the next observation,
            # with drain_timeout as the backstop.
            lanes_with_work = {e.lane for e in pending} | {
                s.lane for s in shards if s.in_flight
            }
            for lane in sorted(lanes_with_work):
                if self.autoscaler is not None:
                    break
                if not any(
                    s.lane == lane and s.alive and not s.done for s in shards
                ):
                    lost = sorted(
                        e.seq for e in pending if e.lane == lane
                    )
                    raise ShardCrashError(
                        f"lane {lane!r} lost every shard with "
                        f"{len(lost)} request(s) unresolved (seqs {lost}) "
                        f"and no respawn budget left "
                        f"(max_respawns={config.max_respawns})",
                        lost=lost,
                    )
            # Virtual-time admission: with zero dispatches in flight
            # anywhere and only future arrivals pending, jump the
            # logical clock to the next arrival and broadcast the same
            # gap to every released shard instead of sleeping it out.
            if (self.virtual_time and pending
                    and not any(s.in_flight for s in shards)):
                earliest = min(e.available for e in pending)
                if earliest > now():
                    delta = earliest - now()
                    offset[0] += delta
                    for state in shards:
                        if state.alive and state.released and not state.done:
                            state.inbox.put(("skip", delta))
                    last_progress = now()
            # Dispatch: deadline order, to the emptiest shard (credit =
            # capacity minus unacknowledged dispatches on that shard).
            current = now()
            due = sorted(
                (e for e in pending if e.available <= current),
                key=_edf_key,
            )
            for entry in due:
                candidates = [
                    s for s in shards
                    if s.lane == entry.lane and s.alive and s.released
                    and not s.done and not s.draining
                    and len(s.in_flight) < self.capacity
                ]
                if not candidates:
                    continue
                target = min(
                    candidates, key=lambda s: (len(s.in_flight), s.shard)
                )
                pending.remove(entry)
                entry.dispatch_time = current
                target.in_flight[entry.seq] = entry
                target.inbox.put((entry.seq, entry.request))
                last_progress = current
            if now() - last_progress > config.drain_timeout:
                unresolved = sorted(
                    [e.seq for e in pending]
                    + [s2 for s in shards for s2 in s.in_flight]
                )
                raise ShardCrashError(
                    f"supervised serve made no progress for "
                    f"{config.drain_timeout:.0f}s with seqs {unresolved} "
                    f"unresolved; aborting instead of hanging",
                    lost=unresolved,
                )

        # Retire: sentinel every live shard, collect their tails.
        for state in shards:
            if state.alive and not state.done:
                state.inbox.put(None)
        drain_deadline = time.perf_counter() + min(config.drain_timeout, 60)
        while (any(s.alive and not s.done for s in shards)
               and time.perf_counter() < drain_deadline):
            for state in shards:
                if state.alive and not state.done \
                        and not state.process.is_alive():
                    state.alive = False  # died after its last ack
            try:
                message = events.get(timeout=0.05)
            except queue_module.Empty:
                continue
            handle(message)

        from .serving import _ShardOutcome

        outcomes = []
        for state in shards:
            tail = state.tail or {}
            outcomes.append(_ShardOutcome(
                lane=state.lane,
                shard=state.shard,
                records=state.records,
                wall_seconds=tail.get("wall", 0.0),
                idle_seconds=tail.get("idle", 0.0),
                steps=tail.get("steps", 0),
                pipelined_steps=tail.get("pipelined", 0),
                speculated=tail.get("speculated", 0),
                rollbacks=tail.get("rollbacks", 0),
                prefix_fused_batches=tail.get("prefix_fused", 0),
                prefix_cache_hits=tail.get("prefix_hits", 0),
                prefix_cache_misses=tail.get("prefix_misses", 0),
                prefix_cache_evictions=tail.get("prefix_evictions", 0),
                prefix_saved_macs=tail.get("prefix_saved_macs", 0),
            ))
        return SupervisionResult(
            outcomes=outcomes,
            shed=shed,
            failover_events=failover_events,
            retries=counters["retries"],
            failovers=counters["failovers"],
            respawns=counters["respawns"],
            scale_events=list(
                self.autoscaler.events
            ) if self.autoscaler is not None else [],
        )

    # ---------------------------------------------------------------- #
    @staticmethod
    def _state_of(shards: List[_ShardState], lane: str,
                  shard: int) -> _ShardState:
        for state in shards:
            if state.lane == lane and state.shard == shard:
                return state
        raise KeyError(f"unknown shard {lane}/{shard}")

    @staticmethod
    def _retract(pending: List[_PendingEntry], shards: List[_ShardState],
                 seq: int) -> Optional[_PendingEntry]:
        """Pull a retried seq back out of wherever it waits now."""
        for entry in pending:
            if entry.seq == seq:
                pending.remove(entry)
                return entry
        for state in shards:
            if seq in state.in_flight:
                return state.in_flight.pop(seq)
        return None
