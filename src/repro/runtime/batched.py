"""Lockstep multi-clip execution and workload-level results.

:class:`BatchedPipeline` advances every clip of a workload one frame at a
time, in lockstep, collapsing per-clip work into whole-batch calls at
every stage of the frame lifecycle:

* **RFBME** — the motion estimations of all ready clips run as one
  :meth:`~repro.core.rfbme.RFBMEEngine.estimate_batch` call (one compiled
  producer pass over the stacked pairs, one vectorized consumer).
* **Key frames** — clips whose policy chose precise execution run the
  CNN prefix as one batched
  :class:`~repro.nn.inference.InferencePlan` call instead of B
  batch-of-1 forwards.
* **Predicted frames** — stored activations are stacked and warped by
  one :func:`~repro.core.warp.warp_activation_batch` call (cached
  coordinate grids, four gathers for the whole batch).
* **Suffix** — the per-frame CNN tail runs once over the concatenated
  key and predicted activations.

Each step executes as the declared stage graph of
:func:`~repro.runtime.stage_graph.frame_lifecycle_graph` over a
:class:`~repro.core.stages.LaneState` — the same graph the serving
workers run.  Key-frame decisions stay per clip, and every batched
stage is bitwise equal to its per-clip form (the inference plan keeps
BLAS calls at serial shapes unless fusing is proven bit-identical on
the host), so a lockstep run reproduces the serial
:meth:`~repro.core.EVA2Pipeline.run_clips` results exactly: same
outputs, same key-frame decisions, same op counts.  Executor
construction, policy setup, and all workspace allocation happen once per
workload instead of per clip (or per frame).

``cnn_batching=False`` (or a spec with ``cnn_engine="legacy"``) keeps
the PR 1 behaviour — batched RFBME, per-clip CNN — which the runtime
benchmark measures speedups against.

:class:`WorkloadResult` aggregates the per-clip
:class:`~repro.core.pipeline.PipelineResult` records with the throughput
statistics (frames/sec, key fraction, total adder ops) that the CLI and
the runtime benchmarks report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.pipeline import FrameRecord, PipelineResult
from ..core.stages import LaneSlot, LaneState, PlanHandle, StepBatch
from ..hardware.fixed_point import QuantSavings
from ..nn.inference import quantized_savings, resolve_plan_dtype
from ..video.generator import VideoClip
from .prefix_service import PrefixService
from .scheduler import ClipScheduler, SchedulerConfig
from .spec import PipelineSpec
from .stage_graph import StageExecutor, frame_lifecycle_graph

__all__ = [
    "WorkloadResult",
    "BatchedPipeline",
    "run_workload",
    "execute_batched_step",
]

def execute_batched_step(plan, entries) -> List[FrameRecord]:
    """One lockstep step with whole-batch CNN execution.

    ``entries`` is a sequence of ``(executor, policy, frame, frame_index,
    estimation)`` tuples — one per clip taking part in this step, where
    ``frame_index`` is the clip-local frame number (policies see the same
    index they would in a serial run) and ``estimation`` is the clip's
    RFBME result for this frame (None before its first key frame).  All
    executors must share one network, target, and AMC config, and
    ``plan`` must have capacity for ``len(entries)``.

    This is now a thin compatibility wrapper over the stage graph
    (:func:`~repro.runtime.stage_graph.frame_lifecycle_graph`): it builds
    a transient :class:`~repro.core.stages.LaneState` from the entries,
    seeds the precomputed estimations (so the ``rfbme`` stage is
    skipped), and runs the remaining stages.  Every stage is bitwise
    equal to the per-clip path, so the returned records — aligned with
    ``entries`` — match serial execution exactly.
    """
    state = LaneState(
        slots=[
            LaneSlot(executor=executor, policy=policy, cursor=index)
            for executor, policy, _, index, _ in entries
        ]
    )
    batch = StepBatch(
        state=state,
        positions=range(len(entries)),
        frames=[frame for _, _, frame, _, _ in entries],
        plan=plan,
    )
    env = frame_lifecycle_graph(planned=True).run(
        batch, seed={"estimations": [entry[4] for entry in entries]}
    )
    return env["records"]


@dataclass
class WorkloadResult:
    """All per-clip results of one workload plus throughput accounting."""

    results: List[PipelineResult]
    #: wall-clock seconds spent executing (excludes clip generation).
    wall_seconds: float
    #: which execution path produced this ("serial", "lockstep", ...).
    path: str
    #: worker count used (1 for serial and lockstep).
    workers: int = 1
    #: lifecycle steps executed (0 for paths without a step executor).
    steps: int = 0
    #: steps whose head was precomputed by the pipelined executor.
    pipelined_steps: int = 0
    #: prefix executions that fused requests from more than one lane.
    prefix_fused_batches: int = 0
    #: content-addressed prefix cache hits (0 when the cache is off).
    prefix_cache_hits: int = 0
    #: prefix cache misses (counted only when a cache is configured).
    prefix_cache_misses: int = 0
    #: entries evicted from the prefix cache by the LRU bound.
    prefix_cache_evictions: int = 0
    #: prefix MACs skipped by cache hits (hardware-model accounting).
    prefix_saved_macs: int = 0
    #: plan family the CNN ran under ("float64", "float32", "int8", "q16").
    dtype: str = "float64"
    #: estimated MAC-energy / traffic savings for quantized dtypes.
    quant_savings: Optional[QuantSavings] = None

    @property
    def pipeline_engagement(self) -> float:
        """Fraction of steps that ran with their head precomputed."""
        return self.pipelined_steps / self.steps if self.steps else 0.0

    @property
    def num_clips(self) -> int:
        return len(self.results)

    @property
    def total_frames(self) -> int:
        return sum(len(result) for result in self.results)

    @property
    def frames_per_second(self) -> float:
        return self.total_frames / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def num_key_frames(self) -> int:
        return sum(result.num_key_frames for result in self.results)

    @property
    def key_fraction(self) -> float:
        """Fraction of all frames executed precisely (the paper's 'keys')."""
        return self.num_key_frames / max(self.total_frames, 1)

    @property
    def total_estimation_ops(self) -> int:
        """Total RFBME adder ops across the workload (energy-model input)."""
        return sum(
            record.estimation_ops.total
            for result in self.results
            for record in result.records
            if record.estimation_ops is not None
        )

    def outputs(self) -> np.ndarray:
        """(total_frames, num_outputs) network outputs, clip-major order."""
        if not self.results:
            return np.empty((0, 0))
        return np.concatenate([result.outputs() for result in self.results])

    def key_mask(self) -> np.ndarray:
        """(total_frames,) key-frame decisions, clip-major order."""
        if not self.results:
            return np.empty(0, dtype=bool)
        return np.concatenate([result.key_mask() for result in self.results])

    def matches(self, other: "WorkloadResult") -> bool:
        """Whether two runs produced identical outputs, decisions, and ops.

        The equivalence check the runtime benchmark enforces between the
        serial and batched/vectorized paths.
        """
        return (
            self.total_frames == other.total_frames
            and np.array_equal(self.key_mask(), other.key_mask())
            and np.array_equal(self.outputs(), other.outputs())
            and self.total_estimation_ops == other.total_estimation_ops
        )

    def summary_rows(self) -> List[List[object]]:
        """Rows for the CLI / bench summary table."""
        return [
            ["path", self.path],
            ["clips", self.num_clips],
            ["frames", self.total_frames],
            ["wall s", round(self.wall_seconds, 3)],
            ["frames/s", round(self.frames_per_second, 1)],
            ["key fraction", round(self.key_fraction, 3)],
            ["RFBME adds", self.total_estimation_ops],
        ] + (
            [["pipelined steps", f"{self.pipelined_steps}/{self.steps}"]]
            if self.pipelined_steps
            else []
        ) + (
            [["prefix batches fused", self.prefix_fused_batches]]
            if self.prefix_fused_batches
            else []
        ) + (
            [
                [
                    "prefix cache hits/misses",
                    f"{self.prefix_cache_hits}/{self.prefix_cache_misses}",
                ]
            ]
            if self.prefix_cache_hits or self.prefix_cache_misses
            else []
        ) + (
            [["prefix MMACs saved", round(self.prefix_saved_macs / 1e6, 1)]]
            if self.prefix_saved_macs
            else []
        ) + (
            [["dtype", self.dtype]] if self.dtype != "float64" else []
        ) + (
            [
                [
                    "est. MAC energy ratio",
                    round(self.quant_savings.mac_energy_ratio, 2),
                ],
                [
                    "est. traffic ratio",
                    round(self.quant_savings.traffic_ratio, 2),
                ],
            ]
            if self.quant_savings is not None
            else []
        )


class BatchedPipeline:
    """Run a multi-clip workload in lockstep with batched hot paths.

    ``cnn_batching`` selects whether CNN execution (prefix, warp, suffix)
    also runs as whole-batch calls (requires the planned CNN engine);
    ``None`` enables it exactly when the spec uses the planned engine.
    ``False`` reproduces the PR 1 lockstep: batched RFBME, per-clip CNN.

    ``pipeline_depth`` (default: the spec's) selects sequential step
    execution (1) or the software-pipelined
    :class:`~repro.runtime.stage_graph.StageExecutor` (2): step
    ``t+1``'s RFBME/decisions overlap step ``t``'s warp/suffix/record on
    a double-buffered engine.  Lockstep batches are static, so every
    step pipelines; results are bit-identical at any depth.

    ``prefix_cache_mb`` > 0 attaches a content-addressed
    :class:`~repro.runtime.prefix_service.PrefixService` cache to every
    step: key frames whose pixels were already run through this
    network's prefix reuse the stored activation (bit-identical by
    construction).  Lockstep already batches coincident key frames
    within a step, so the service runs with coalescing off — the cache
    is the knob that pays here.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        cnn_batching: Optional[bool] = None,
        pipeline_depth: Optional[int] = None,
        prefix_cache_mb: float = 0.0,
    ):
        if cnn_batching is None:
            cnn_batching = spec.cnn_engine == "planned"
        if cnn_batching and spec.cnn_engine != "planned":
            raise ValueError(
                "cross-clip CNN batching requires cnn_engine='planned', "
                f"got {spec.cnn_engine!r}"
            )
        self.spec = spec
        self.cnn_batching = cnn_batching
        self.pipeline_depth = (
            spec.pipeline_depth if pipeline_depth is None else pipeline_depth
        )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if prefix_cache_mb < 0:
            raise ValueError(
                f"prefix_cache_mb must be >= 0, got {prefix_cache_mb}"
            )
        self.prefix_cache_mb = float(prefix_cache_mb)

    def run_workload(self, clips: Sequence[VideoClip]) -> WorkloadResult:
        """Process every clip; bit-identical to the serial path."""
        start = time.perf_counter()
        network = self.spec.shared_network()  # executors never mutate it
        # One slot per clip.  Slot 0's executor lends its RFBME engine to
        # the whole lane (identical geometry, shared scratch workspace).
        state = LaneState(
            slots=[
                LaneSlot(
                    executor=self.spec.build_executor(network),
                    policy=self.spec.build_policy(),
                )
                for _ in clips
            ],
            plan=(
                PlanHandle(network, self.spec.dtype)
                if self.cnn_batching
                else None
            ),
        )
        for slot in state.slots:
            slot.executor.reset()
            slot.policy.reset()
        graph = frame_lifecycle_graph(planned=self.cnn_batching)
        executor = StageExecutor(graph, pipeline_depth=self.pipeline_depth)
        plan = state.plan.resolve(len(clips)) if state.plan and clips else None
        # Lockstep already fuses coincident key frames within a step, so
        # the service is pure cache here (coalesce off).
        service = (
            PrefixService(coalesce=False, cache_mb=self.prefix_cache_mb)
            if self.prefix_cache_mb > 0 and plan is not None
            else None
        )

        # The whole step stream is known statically (clip lengths fix the
        # positions, frame index == cursor), so batches are built up
        # front and every step can pipeline into the next.  Odd steps run
        # their RFBME on the double-buffer engine so the two in-flight
        # contexts never share scratch.
        max_frames = max((len(clip) for clip in clips), default=0)
        shadow = (
            state.build_pipeline_engine()
            if executor.pipelined and max_frames > 1
            else None
        )
        batches: List[StepBatch] = []
        for index in range(max_frames):
            positions = [i for i in range(len(clips)) if index < len(clips[i])]
            batches.append(
                StepBatch(
                    state=state,
                    positions=positions,
                    frames=[clips[i].frames[index] for i in positions],
                    plan=plan,
                    cursors=[index] * len(positions),
                    engine=shadow if index % 2 else None,
                    prefix_service=service,
                )
            )

        records: List[List[FrameRecord]] = [[] for _ in clips]
        try:
            for t, batch in enumerate(batches):
                next_batch = batches[t + 1] if t + 1 < len(batches) else None
                # The step stream is static, so every handoff is
                # definite — no checkpoint, no speculation needed.
                env = executor.step(batch, next_batch=next_batch)
                for k, i in enumerate(batch.positions):
                    records[i].append(env["records"][k])
                    state.slots[i].cursor += 1
        finally:
            executor.close()
        results = [PipelineResult(records=r) for r in records]
        wall = time.perf_counter() - start
        return WorkloadResult(
            results=results,
            wall_seconds=wall,
            path="lockstep",
            steps=executor.stats.steps,
            pipelined_steps=executor.stats.pipelined_steps,
            prefix_fused_batches=service.stats.fused_batches if service else 0,
            prefix_cache_hits=service.stats.hits if service else 0,
            prefix_cache_misses=service.stats.misses if service else 0,
            prefix_cache_evictions=service.stats.evictions if service else 0,
            prefix_saved_macs=service.stats.saved_macs if service else 0,
            dtype=resolve_plan_dtype(self.spec.dtype),
            quant_savings=quantized_savings(network, self.spec.dtype),
        )


def run_workload(
    spec: PipelineSpec,
    clips: Sequence[VideoClip],
    batch: bool = True,
    scheduler: Optional[SchedulerConfig] = None,
    cnn_batching: Optional[bool] = None,
    prefix_cache_mb: float = 0.0,
) -> WorkloadResult:
    """Execute a workload on the path implied by the arguments.

    ``scheduler`` with more than one worker selects the pooled
    :class:`~repro.runtime.scheduler.ClipScheduler`; otherwise ``batch``
    picks lockstep (default) or plain serial execution.
    ``cnn_batching`` forwards to :class:`BatchedPipeline` (None = batch
    the CNN whenever the spec's planned engine allows it), as does
    ``prefix_cache_mb`` (> 0 enables the content-addressed prefix cache
    on the lockstep path; serial and scheduled paths ignore it).  Every
    path returns identical per-clip results.
    """
    dtype = resolve_plan_dtype(spec.dtype)
    savings = quantized_savings(spec.shared_network(), spec.dtype)
    if scheduler is not None and scheduler.workers > 1:
        start = time.perf_counter()
        results = ClipScheduler(spec, scheduler).run(clips)
        wall = time.perf_counter() - start
        return WorkloadResult(
            results=results,
            wall_seconds=wall,
            path=scheduler.resolve(len(clips)),
            workers=scheduler.workers,
            dtype=dtype,
            quant_savings=savings,
        )
    if batch:
        return BatchedPipeline(
            spec, cnn_batching=cnn_batching, prefix_cache_mb=prefix_cache_mb
        ).run_workload(clips)
    start = time.perf_counter()
    results = spec.build().run_clips(clips)
    wall = time.perf_counter() - start
    return WorkloadResult(
        results=results,
        wall_seconds=wall,
        path="serial",
        dtype=dtype,
        quant_savings=savings,
    )
