"""Lockstep multi-clip execution and workload-level results.

:class:`BatchedPipeline` advances every clip of a workload one frame at a
time, in lockstep, collapsing per-clip work into whole-batch calls at
every stage of the frame lifecycle:

* **RFBME** — the motion estimations of all ready clips run as one
  :meth:`~repro.core.rfbme.RFBMEEngine.estimate_batch` call (one compiled
  producer pass over the stacked pairs, one vectorized consumer).
* **Key frames** — clips whose policy chose precise execution run the
  CNN prefix as one batched
  :class:`~repro.nn.inference.InferencePlan` call instead of B
  batch-of-1 forwards.
* **Predicted frames** — stored activations are stacked and warped by
  one :func:`~repro.core.warp.warp_activation_batch` call (cached
  coordinate grids, four gathers for the whole batch).
* **Suffix** — the per-frame CNN tail runs once over the concatenated
  key and predicted activations.

Key-frame decisions stay per clip, and every batched stage is bitwise
equal to its per-clip form (the inference plan keeps BLAS calls at
serial shapes unless fusing is proven bit-identical on the host), so a
lockstep run reproduces the serial
:meth:`~repro.core.EVA2Pipeline.run_clips` results exactly: same
outputs, same key-frame decisions, same op counts.  Executor
construction, policy setup, and all workspace allocation happen once per
workload instead of per clip (or per frame).

``cnn_batching=False`` (or a spec with ``cnn_engine="legacy"``) keeps
the PR 1 behaviour — batched RFBME, per-clip CNN — which the runtime
benchmark measures speedups against.

:class:`WorkloadResult` aggregates the per-clip
:class:`~repro.core.pipeline.PipelineResult` records with the throughput
statistics (frames/sec, key fraction, total adder ops) that the CLI and
the runtime benchmarks report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.pipeline import FrameRecord, PipelineResult
from ..core.warp import scale_to_activation, warp_activation_batch
from ..video.generator import VideoClip
from .scheduler import ClipScheduler, SchedulerConfig
from .spec import PipelineSpec

__all__ = [
    "WorkloadResult",
    "BatchedPipeline",
    "run_workload",
    "execute_batched_step",
]


def execute_batched_step(plan, entries) -> List[FrameRecord]:
    """One lockstep step with whole-batch CNN execution.

    ``entries`` is a sequence of ``(executor, policy, frame, frame_index,
    estimation)`` tuples — one per clip taking part in this step, where
    ``frame_index`` is the clip-local frame number (policies see the same
    index they would in a serial run) and ``estimation`` is the clip's
    RFBME result for this frame (None before its first key frame).  All
    executors must share one network, target, and AMC config, and
    ``plan`` must have capacity for ``len(entries)``.

    Decisions are taken per clip first; then coincident key frames run
    the prefix as one batch, predicted clips warp (or memoize) their
    stored activations as one batch, and a single suffix call covers
    everything.  Each stage is bitwise equal to the per-clip path, so
    the returned records — aligned with ``entries`` — match serial
    execution exactly.  Shared by :class:`BatchedPipeline` (all clips on
    frame t together) and the serving runtime
    (:class:`~repro.runtime.serving.ServingRuntime`, clips at arbitrary
    per-clip cursors).
    """
    executor0 = entries[0][0]
    target = executor0.target
    mode = executor0.config.mode
    keys: List[int] = []
    preds: List[int] = []
    decisions: List[bool] = []
    for pos, (executor, policy, frame, index, estimation) in enumerate(entries):
        is_key = policy.decide(index, estimation)
        decisions.append(is_key)
        (keys if is_key else preds).append(pos)

    key_acts = None
    if keys:
        frames = np.stack([entries[p][2] for p in keys])[:, None]
        key_acts = plan.run_prefix(frames, target)
        for row, p in enumerate(keys):
            entries[p][0].adopt_key(entries[p][2], key_acts[row])

    pred_acts = None
    if preds:
        stored = np.stack([entries[p][0].key_activation for p in preds])
        if mode == "memoize":
            pred_acts = stored
        else:
            fields = [
                scale_to_activation(entries[p][4].field, entries[p][0].rf)
                for p in preds
            ]
            pred_acts = warp_activation_batch(
                stored,
                fields,
                interpolation=executor0.config.interpolation,
                fixed_point=executor0.config.fixed_point,
            )

    if key_acts is not None and pred_acts is not None:
        suffix_in = np.concatenate(
            [key_acts, pred_acts.astype(key_acts.dtype, copy=False)]
        )
    elif key_acts is not None:
        suffix_in = key_acts
    else:
        suffix_in = pred_acts
    outputs = plan.run_suffix(suffix_in, target)

    records: List[Optional[FrameRecord]] = [None] * len(entries)
    for row, p in enumerate(keys + preds):
        records[p] = FrameRecord.from_step(
            entries[p][3], decisions[p], outputs[row : row + 1], entries[p][4]
        )
    return records


@dataclass
class WorkloadResult:
    """All per-clip results of one workload plus throughput accounting."""

    results: List[PipelineResult]
    #: wall-clock seconds spent executing (excludes clip generation).
    wall_seconds: float
    #: which execution path produced this ("serial", "lockstep", ...).
    path: str
    #: worker count used (1 for serial and lockstep).
    workers: int = 1

    @property
    def num_clips(self) -> int:
        return len(self.results)

    @property
    def total_frames(self) -> int:
        return sum(len(result) for result in self.results)

    @property
    def frames_per_second(self) -> float:
        return self.total_frames / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def num_key_frames(self) -> int:
        return sum(result.num_key_frames for result in self.results)

    @property
    def key_fraction(self) -> float:
        """Fraction of all frames executed precisely (the paper's 'keys')."""
        return self.num_key_frames / max(self.total_frames, 1)

    @property
    def total_estimation_ops(self) -> int:
        """Total RFBME adder ops across the workload (energy-model input)."""
        return sum(
            record.estimation_ops.total
            for result in self.results
            for record in result.records
            if record.estimation_ops is not None
        )

    def outputs(self) -> np.ndarray:
        """(total_frames, num_outputs) network outputs, clip-major order."""
        if not self.results:
            return np.empty((0, 0))
        return np.concatenate([result.outputs() for result in self.results])

    def key_mask(self) -> np.ndarray:
        """(total_frames,) key-frame decisions, clip-major order."""
        if not self.results:
            return np.empty(0, dtype=bool)
        return np.concatenate([result.key_mask() for result in self.results])

    def matches(self, other: "WorkloadResult") -> bool:
        """Whether two runs produced identical outputs, decisions, and ops.

        The equivalence check the runtime benchmark enforces between the
        serial and batched/vectorized paths.
        """
        return (
            self.total_frames == other.total_frames
            and np.array_equal(self.key_mask(), other.key_mask())
            and np.array_equal(self.outputs(), other.outputs())
            and self.total_estimation_ops == other.total_estimation_ops
        )

    def summary_rows(self) -> List[List[object]]:
        """Rows for the CLI / bench summary table."""
        return [
            ["path", self.path],
            ["clips", self.num_clips],
            ["frames", self.total_frames],
            ["wall s", round(self.wall_seconds, 3)],
            ["frames/s", round(self.frames_per_second, 1)],
            ["key fraction", round(self.key_fraction, 3)],
            ["RFBME adds", self.total_estimation_ops],
        ]


class BatchedPipeline:
    """Run a multi-clip workload in lockstep with batched hot paths.

    ``cnn_batching`` selects whether CNN execution (prefix, warp, suffix)
    also runs as whole-batch calls (requires the planned CNN engine);
    ``None`` enables it exactly when the spec uses the planned engine.
    ``False`` reproduces the PR 1 lockstep: batched RFBME, per-clip CNN.
    """

    def __init__(self, spec: PipelineSpec, cnn_batching: Optional[bool] = None):
        if cnn_batching is None:
            cnn_batching = spec.cnn_engine == "planned"
        if cnn_batching and spec.cnn_engine != "planned":
            raise ValueError(
                "cross-clip CNN batching requires cnn_engine='planned', "
                f"got {spec.cnn_engine!r}"
            )
        self.spec = spec
        self.cnn_batching = cnn_batching

    def run_workload(self, clips: Sequence[VideoClip]) -> WorkloadResult:
        """Process every clip; bit-identical to the serial path."""
        start = time.perf_counter()
        network = self.spec.shared_network()  # executors never mutate it
        executors = [self.spec.build_executor(network) for _ in clips]
        policies = [self.spec.build_policy() for _ in clips]
        for executor, policy in zip(executors, policies):
            executor.reset()
            policy.reset()
        # One shared engine: all executors have identical geometry, so its
        # scratch workspace serves the whole batch.
        engine = executors[0].rfbme_engine if executors else None
        plan = None
        if self.cnn_batching and clips:
            plan = network.inference_plan(
                max_batch=len(clips), dtype=self.spec.dtype
            )

        records: List[List[FrameRecord]] = [[] for _ in clips]
        max_frames = max((len(clip) for clip in clips), default=0)
        for index in range(max_frames):
            active = [i for i in range(len(clips)) if index < len(clips[i])]
            ready = [i for i in active if executors[i].has_key]
            estimations = engine.estimate_batch(
                [
                    (executors[i].stored_pixels(), clips[i].frames[index])
                    for i in ready
                ]
            )
            by_clip = dict(zip(ready, estimations))
            if plan is not None:
                self._step_batched(
                    plan, executors, policies, clips, records, index,
                    active, by_clip,
                )
                continue
            for i in active:
                frame = clips[i].frames[index]
                estimation = by_clip.get(i)
                is_key = policies[i].decide(index, estimation)
                if is_key:
                    output = executors[i].process_key(frame)
                else:
                    output = executors[i].process_predicted(frame, estimation)
                records[i].append(
                    FrameRecord.from_step(index, is_key, output, estimation)
                )
        results = [PipelineResult(records=r) for r in records]
        wall = time.perf_counter() - start
        return WorkloadResult(results=results, wall_seconds=wall, path="lockstep")

    def _step_batched(
        self, plan, executors, policies, clips, records, index, active, by_clip
    ) -> None:
        """One lockstep step, delegated to :func:`execute_batched_step`."""
        entries = [
            (executors[i], policies[i], clips[i].frames[index], index,
             by_clip.get(i))
            for i in active
        ]
        for i, record in zip(active, execute_batched_step(plan, entries)):
            records[i].append(record)


def run_workload(
    spec: PipelineSpec,
    clips: Sequence[VideoClip],
    batch: bool = True,
    scheduler: Optional[SchedulerConfig] = None,
    cnn_batching: Optional[bool] = None,
) -> WorkloadResult:
    """Execute a workload on the path implied by the arguments.

    ``scheduler`` with more than one worker selects the pooled
    :class:`~repro.runtime.scheduler.ClipScheduler`; otherwise ``batch``
    picks lockstep (default) or plain serial execution.
    ``cnn_batching`` forwards to :class:`BatchedPipeline` (None = batch
    the CNN whenever the spec's planned engine allows it).  Every path
    returns identical per-clip results.
    """
    if scheduler is not None and scheduler.workers > 1:
        start = time.perf_counter()
        results = ClipScheduler(spec, scheduler).run(clips)
        wall = time.perf_counter() - start
        return WorkloadResult(
            results=results,
            wall_seconds=wall,
            path=scheduler.resolve(len(clips)),
            workers=scheduler.workers,
        )
    if batch:
        return BatchedPipeline(spec, cnn_batching=cnn_batching).run_workload(clips)
    start = time.perf_counter()
    results = spec.build().run_clips(clips)
    wall = time.perf_counter() - start
    return WorkloadResult(results=results, wall_seconds=wall, path="serial")
