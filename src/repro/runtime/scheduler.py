"""Clip-level scheduling over worker pools.

:class:`ClipScheduler` fans a multi-clip workload out over a configurable
pool — serial, thread-backed, or process-backed — while preserving input
order and per-clip semantics.  Clips are independent by construction
(executor and policy state reset at clip boundaries), so every backend
returns results identical to the serial path; the pool only changes
wall-clock time.

Worker amortization: each worker builds its pipeline once from the
shipped :class:`~repro.runtime.spec.PipelineSpec` (process initializer /
thread-local), so per-clip cost excludes network construction.  The
parent warms the model cache first so workers never race to train.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import EVA2Pipeline
from ..core.pipeline import PipelineResult
from ..video.generator import VideoClip
from .spec import PipelineSpec

__all__ = ["SchedulerConfig", "ClipScheduler", "ShardPool"]

_BACKENDS = ("auto", "serial", "thread", "process")

#: pipeline of the current worker process (set by the pool initializer).
_WORKER_PIPELINE: Optional[EVA2Pipeline] = None


def _init_process_worker(spec: PipelineSpec) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = spec.build()


def _run_in_process_worker(clip: VideoClip) -> PipelineResult:
    return _WORKER_PIPELINE.run_clip(clip)


@dataclass(frozen=True)
class SchedulerConfig:
    """How to spread a workload over workers."""

    #: pool size; <= 1 means serial.
    workers: int = 0
    #: 'serial', 'thread', 'process', or 'auto' (process pool when the
    #: host has more than one core and more than one worker is requested).
    backend: str = "auto"

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def resolve(self, num_clips: int) -> str:
        """The concrete backend for a workload of ``num_clips``."""
        if self.workers <= 1 or num_clips <= 1:
            return "serial"  # a pool of one is just the serial path
        if self.backend != "auto":
            return self.backend
        return "process" if (os.cpu_count() or 1) > 1 else "serial"


class ShardPool:
    """Order-preserving map of picklable shard tasks over a worker pool.

    The scheduler/serving hybrid the serving layer shards lanes with:
    each task describes one lane shard (spec, capacity, assigned
    requests), the mapped function builds a warm
    :class:`~repro.runtime.serving.LaneWorker` inside the worker — its
    own network and inference plan, never a pickled live one — and runs
    the shard's serve loop.  ``backend`` resolution reuses
    :class:`SchedulerConfig`: ``process`` realizes shard concurrency on
    separate cores, ``serial`` runs shards inline (single-core hosts,
    deterministic debugging), ``auto`` picks between them by core count.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()

    def map(self, fn, tasks: Sequence) -> List:
        """``[fn(task) for task in tasks]``, possibly across processes.

        ``fn`` must be a module-level function and every task picklable
        when the process backend resolves.  Results keep task order.
        """
        tasks = list(tasks)
        backend = self.config.resolve(len(tasks))
        if backend == "process":
            with ProcessPoolExecutor(
                max_workers=min(self.config.workers, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks))
        if backend == "thread":
            with ThreadPoolExecutor(
                max_workers=min(self.config.workers, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks))
        return [fn(task) for task in tasks]

    def map_with_feeder(self, fn, tasks: Sequence, feeder) -> List:
        """Process-pool map with a parent-side ``feeder`` running alongside.

        The work-stealing admission shape: each task carries a proxy to
        a *shared per-lane admission queue*, and ``feeder()`` releases
        requests into those queues (honouring arrival times) while the
        shard workers pull — so an idle shard steals the next pending
        request instead of waiting for a statically assigned slice.  All
        tasks are submitted first, the feeder runs concurrently in the
        parent, and results keep task order.

        Unlike :meth:`map`'s batch jobs, these tasks are *long-lived
        concurrent consumers* — every shard must be resident to pull
        from its queue (and to reach the readiness barrier the caller
        may gate the feeder on) — so the pool is sized to the task
        count, not the configured worker count.

        Process backend only: stealing over a shared queue in a single
        thread would degenerate (the first inline shard would drain the
        whole queue before the second ever ran), so callers whose
        backend resolves ``serial`` must use their own inline loop —
        serving's discrete-event simulation — instead of this map.
        """
        tasks = list(tasks)
        backend = self.config.resolve(len(tasks))
        if backend != "process":
            raise ValueError(
                f"map_with_feeder needs the process backend, resolved "
                f"{backend!r} for {len(tasks)} task(s); run inline "
                f"work-stealing through the caller's own loop instead"
            )
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            feeder()
            return [future.result() for future in futures]


class ClipScheduler:
    """Order-preserving map of a pipeline over many clips."""

    def __init__(self, spec: PipelineSpec, config: Optional[SchedulerConfig] = None):
        self.spec = spec
        self.config = config or SchedulerConfig()

    def run(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        """Process every clip; results arrive in input order.

        All backends produce identical results — clips never share state —
        so callers may treat backend purely as a throughput knob.
        """
        backend = self.config.resolve(len(clips))
        if backend == "serial":
            return self._run_serial(clips)
        if backend == "thread":
            return self._run_threads(clips)
        return self._run_processes(clips)

    # ------------------------------------------------------------------ #
    def _run_serial(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        pipeline = self.spec.build()
        return pipeline.run_clips(clips)

    def _run_threads(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        # Pipelines hold per-clip state (stored key frame, scratch
        # buffers), so each thread gets its own, built once and reused
        # for every clip that lands on that thread.
        self.spec.warm()
        local = threading.local()

        def run_one(clip: VideoClip) -> PipelineResult:
            if not hasattr(local, "pipeline"):
                local.pipeline = self.spec.build()
            return local.pipeline.run_clip(clip)

        with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
            return list(pool.map(run_one, clips))

    def _run_processes(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        self.spec.warm()  # workers load the cache instead of racing to train
        with ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_process_worker,
            initargs=(self.spec,),
        ) as pool:
            return list(pool.map(_run_in_process_worker, clips))
