"""Clip-level scheduling over worker pools.

:class:`ClipScheduler` fans a multi-clip workload out over a configurable
pool — serial, thread-backed, or process-backed — while preserving input
order and per-clip semantics.  Clips are independent by construction
(executor and policy state reset at clip boundaries), so every backend
returns results identical to the serial path; the pool only changes
wall-clock time.

Worker amortization: each worker builds its pipeline once from the
shipped :class:`~repro.runtime.spec.PipelineSpec` (process initializer /
thread-local), so per-clip cost excludes network construction.  The
parent warms the model cache first so workers never race to train.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core import EVA2Pipeline
from ..core.pipeline import PipelineResult
from ..video.generator import VideoClip
from .spec import PipelineSpec

__all__ = [
    "SchedulerConfig",
    "ClipScheduler",
    "ShardPool",
    "ShardCrashError",
    "deal_shard_budget",
]


def deal_shard_budget(
    lane_names: Sequence[str],
    lane_counts: Mapping[str, int],
    budget: int,
) -> Dict[str, int]:
    """Deal a worker budget round-robin across lanes, capped per lane.

    Shards assigned here are concurrent queue consumers, so the total
    never exceeds ``budget``, and a lane never receives more shards
    than it has requests (``lane_counts``) — an extra shard could not
    admit anything, and its executors/plan compile aren't free.  Used
    by shared-admission serving to size each lane's fleet.
    """
    shards = {name: 0 for name in lane_names}
    while budget > 0:
        assigned = False
        for name in lane_names:
            if budget > 0 and shards[name] < lane_counts[name]:
                shards[name] += 1
                budget -= 1
                assigned = True
        if not assigned:
            break
    return shards


class ShardCrashError(RuntimeError):
    """A worker process died (or stopped progressing) mid-map.

    Raised instead of hanging or silently dropping work: the message
    names what was lost and ``lost`` carries the task indices (or
    request seqs, for supervised serving) whose results never arrived.
    """

    def __init__(self, message: str, lost: Sequence = ()):
        super().__init__(message)
        self.lost = tuple(lost)

_BACKENDS = ("auto", "serial", "thread", "process")

#: pipeline of the current worker process (set by the pool initializer).
_WORKER_PIPELINE: Optional[EVA2Pipeline] = None


def _run_feeder_task(fn, index: int, task, results_queue) -> None:
    """Worker entry for :meth:`ShardPool.map_with_feeder`.

    Ships ``(index, "ok"/"err", payload)`` back so the parent can match
    results to tasks without trusting completion order, and so a raised
    exception travels as a value instead of killing the map silently.
    """
    try:
        results_queue.put((index, "ok", fn(task)))
    except BaseException as exc:  # noqa: BLE001 — transported, re-raised
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        results_queue.put((index, "err", exc))


def _init_process_worker(spec: PipelineSpec) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = spec.build()


def _run_in_process_worker(clip: VideoClip) -> PipelineResult:
    return _WORKER_PIPELINE.run_clip(clip)


@dataclass(frozen=True)
class SchedulerConfig:
    """How to spread a workload over workers."""

    #: pool size; <= 1 means serial.
    workers: int = 0
    #: 'serial', 'thread', 'process', or 'auto' (process pool when the
    #: host has more than one core and more than one worker is requested).
    backend: str = "auto"

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def resolve(self, num_clips: int) -> str:
        """The concrete backend for a workload of ``num_clips``."""
        if self.workers <= 1 or num_clips <= 1:
            return "serial"  # a pool of one is just the serial path
        if self.backend != "auto":
            return self.backend
        return "process" if (os.cpu_count() or 1) > 1 else "serial"


class ShardPool:
    """Order-preserving map of picklable shard tasks over a worker pool.

    The scheduler/serving hybrid the serving layer shards lanes with:
    each task describes one lane shard (spec, capacity, assigned
    requests), the mapped function builds a warm
    :class:`~repro.runtime.serving.LaneWorker` inside the worker — its
    own network and inference plan, never a pickled live one — and runs
    the shard's serve loop.  ``backend`` resolution reuses
    :class:`SchedulerConfig`: ``process`` realizes shard concurrency on
    separate cores, ``serial`` runs shards inline (single-core hosts,
    deterministic debugging), ``auto`` picks between them by core count.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()

    def map(self, fn, tasks: Sequence) -> List:
        """``[fn(task) for task in tasks]``, possibly across processes.

        ``fn`` must be a module-level function and every task picklable
        when the process backend resolves.  Results keep task order.
        """
        tasks = list(tasks)
        backend = self.config.resolve(len(tasks))
        if backend == "process":
            with ProcessPoolExecutor(
                max_workers=min(self.config.workers, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks))
        if backend == "thread":
            with ThreadPoolExecutor(
                max_workers=min(self.config.workers, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks))
        return [fn(task) for task in tasks]

    def map_with_feeder(self, fn, tasks: Sequence, feeder,
                        join_timeout: float = 300.0) -> List:
        """Process-pool map with a parent-side ``feeder`` running alongside.

        The work-stealing admission shape: each task carries a proxy to
        a *shared per-lane admission queue*, and ``feeder()`` releases
        requests into those queues (honouring arrival times) while the
        shard workers pull — so an idle shard steals the next pending
        request instead of waiting for a statically assigned slice.  All
        tasks are submitted first, the feeder runs concurrently in the
        parent, and results keep task order.

        Unlike :meth:`map`'s batch jobs, these tasks are *long-lived
        concurrent consumers* — every shard must be resident to pull
        from its queue (and to reach the readiness barrier the caller
        may gate the feeder on) — so the pool is sized to the task
        count, not the configured worker count.

        Process backend only: stealing over a shared queue in a single
        thread would degenerate (the first inline shard would drain the
        whole queue before the second ever ran), so callers whose
        backend resolves ``serial`` must use their own inline loop —
        serving's discrete-event simulation — instead of this map.

        Crash safety: a worker that dies before returning (a concurrent
        consumer crashing leaves its queue forever undrained) can no
        longer hang the map.  Results are collected with liveness
        checks and a ``join_timeout`` tail bound; dead or stuck workers
        are reaped (exit codes read, stragglers terminated) and the map
        raises :class:`ShardCrashError` naming every lost task.
        """
        import multiprocessing
        import queue as queue_module

        tasks = list(tasks)
        backend = self.config.resolve(len(tasks))
        if backend != "process":
            raise ValueError(
                f"map_with_feeder needs the process backend, resolved "
                f"{backend!r} for {len(tasks)} task(s); run inline "
                f"work-stealing through the caller's own loop instead"
            )
        results_queue = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(
                target=_run_feeder_task,
                args=(fn, index, task, results_queue),
                daemon=True,
            )
            for index, task in enumerate(tasks)
        ]
        for proc in procs:
            proc.start()
        try:
            feeder()
            results: dict = {}
            deadline = time.monotonic() + join_timeout
            while len(results) < len(tasks):
                try:
                    index, status, payload = results_queue.get(timeout=0.1)
                    results[index] = (status, payload)
                    continue
                except queue_module.Empty:
                    pass
                missing = [i for i in range(len(tasks)) if i not in results]
                if all(not procs[i].is_alive() for i in missing):
                    # Every straggler is dead; one grace drain catches a
                    # result flushed between the check and the read.
                    try:
                        index, status, payload = results_queue.get(timeout=0.5)
                        results[index] = (status, payload)
                        continue
                    except queue_module.Empty:
                        break
                if time.monotonic() > deadline:
                    break
        finally:
            for proc in procs:
                proc.join(timeout=5)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1)
        missing = [i for i in range(len(tasks)) if i not in results]
        if missing:
            detail = ", ".join(
                f"task {i} (exit code {procs[i].exitcode})" for i in missing
            )
            raise ShardCrashError(
                f"{len(missing)} of {len(tasks)} shard worker(s) never "
                f"returned a result: {detail}",
                lost=missing,
            )
        for index in range(len(tasks)):
            status, payload = results[index]
            if status == "err":
                raise payload
        return [results[index][1] for index in range(len(tasks))]


class ClipScheduler:
    """Order-preserving map of a pipeline over many clips."""

    def __init__(self, spec: PipelineSpec, config: Optional[SchedulerConfig] = None):
        self.spec = spec
        self.config = config or SchedulerConfig()

    def run(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        """Process every clip; results arrive in input order.

        All backends produce identical results — clips never share state —
        so callers may treat backend purely as a throughput knob.
        """
        backend = self.config.resolve(len(clips))
        if backend == "serial":
            return self._run_serial(clips)
        if backend == "thread":
            return self._run_threads(clips)
        return self._run_processes(clips)

    # ------------------------------------------------------------------ #
    def _run_serial(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        pipeline = self.spec.build()
        return pipeline.run_clips(clips)

    def _run_threads(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        # Pipelines hold per-clip state (stored key frame, scratch
        # buffers), so each thread gets its own, built once and reused
        # for every clip that lands on that thread.
        self.spec.warm()
        local = threading.local()

        def run_one(clip: VideoClip) -> PipelineResult:
            if not hasattr(local, "pipeline"):
                local.pipeline = self.spec.build()
            return local.pipeline.run_clip(clip)

        with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
            return list(pool.map(run_one, clips))

    def _run_processes(self, clips: Sequence[VideoClip]) -> List[PipelineResult]:
        self.spec.warm()  # workers load the cache instead of racing to train
        with ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_process_worker,
            initargs=(self.spec,),
        ) as pool:
            return list(pool.map(_run_in_process_worker, clips))
