"""Declared stage graphs over the frame lifecycle — and their executor.

:class:`StageGraph` turns the lockstep step from an inlined call
sequence into a *schedulable object*: named :class:`Stage`\\ s with typed
dataflow inputs/outputs **and** declared :class:`~repro.core.stages`
resource read/write sets, topologically scheduled from their
declarations (declaration order only breaks ties), validated at
construction, and executed over a shared value environment.  The stage
bodies are the pure functions of :mod:`repro.core.stages`; this module
declares how they wire together and *when* they run.

Two graphs cover the two CNN engines:

* **planned** — ``rfbme → decide → cnn_prefix → warp → cnn_suffix →
  record``: the key-frame branch runs the batched CNN prefix, the
  predicted branch warps stored activations, and one suffix call covers
  both (the whole-batch lifecycle of PR 2/3).
* **legacy** — ``rfbme → decide → legacy_cnn → record``: batched RFBME
  with per-clip CNN execution (the PR 1 shape).

Validation raises *named* errors so callers can tell failure modes
apart: :class:`UndeclaredInputError` (an input no stage produces),
:class:`DuplicateOutputError` (two producers for one value),
:class:`StageCycleError` (no topological order exists), and — at run
time, opt-in — :class:`WriteSetViolationError` (a stage mutated lane
state it never declared).

**Pipelining.**  :class:`StageExecutor` runs a graph step after step.
At ``pipeline_depth=1`` that is plain sequential execution.  At depth 2
it keeps *two in-flight step contexts*: the graph's declared resource
sets prove which prefix of step ``t+1`` conflicts with which suffix of
step ``t`` (:meth:`StageGraph.overlap_split`), and the executor
software-pipelines the conflict-free head — ``rfbme``/``decide`` on the
lifecycle graphs — into step ``t``'s tail window
(``warp``/``cnn_suffix``/``record``), on a worker thread.  The head's
RFBME runs on a double-buffered engine (``StepBatch.engine``) and each
context carries its own cursor snapshot, so the overlapped steps touch
disjoint state and every output stays **bit-identical** to sequential
execution.  The overlap is never speculative: ``decide`` mutates policy
state, so a caller may only hand over ``next_batch`` when that batch is
*certain* to be the next step (:class:`PipelineContractError` otherwise)
— the lockstep driver knows its batches statically, and the serving
worker pipelines only when slot membership is provably stable.

Seeding: :meth:`StageGraph.run` accepts precomputed values; a stage
whose outputs are all seeded is skipped.  That is how callers that
already ran RFBME (e.g. :func:`~repro.runtime.batched.
execute_batched_step`'s entries) reuse the rest of the graph.
"""

from __future__ import annotations

import functools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core import stages as _stages
from ..core.stages import CHECKED_RESOURCES, StepBatch, fingerprint_resource

__all__ = [
    "Stage",
    "StageGraph",
    "StageExecutor",
    "frame_lifecycle_graph",
    "StageGraphError",
    "StageCycleError",
    "UndeclaredInputError",
    "DuplicateOutputError",
    "WriteSetViolationError",
    "PipelineContractError",
]

#: the seed value every graph starts from (the step's working set).
_SEED = "batch"


class StageGraphError(ValueError):
    """Base class for stage-graph declaration and execution errors."""


class UndeclaredInputError(StageGraphError):
    """A stage consumes a value that no stage produces (and no seed supplies)."""


class DuplicateOutputError(StageGraphError):
    """Two stages declare the same output value."""


class StageCycleError(StageGraphError):
    """The declared dataflow has no topological order."""


class WriteSetViolationError(StageGraphError):
    """A stage mutated a lane-state resource outside its declared write set."""


class PipelineContractError(RuntimeError):
    """A pipelined ``next_batch`` was not the batch of the following step.

    The head stages (``decide`` mutates policy state) are irreversible,
    so the executor refuses speculation: whoever hands over a next batch
    guarantees it.  Seeing this error means a driver broke that
    guarantee, not that data went wrong — the executor stops before
    running anything against the mismatched batch.
    """


@dataclass(frozen=True)
class Stage:
    """One declared stage: a pure function with named inputs/outputs.

    ``reads``/``writes`` are the stage's declared
    :class:`~repro.core.stages` resource sets — defaulted from the
    ``reads``/``writes`` attributes its function was declared with
    (see ``core.stages._effects``), empty otherwise.  Dataflow names
    order stages within a step; the resource sets prove which stages of
    *consecutive* steps may overlap.
    """

    name: str
    fn: Callable
    #: environment names passed positionally to ``fn``.
    inputs: Tuple[str, ...]
    #: environment names bound to ``fn``'s return value (one name binds
    #: the value itself; several unpack it).
    outputs: Tuple[str, ...]
    #: lane-state resources read / written (conflict analysis).
    reads: frozenset = field(default=None)
    writes: frozenset = field(default=None)

    def __post_init__(self):
        if not self.outputs:
            raise StageGraphError(f"stage {self.name!r} declares no outputs")
        if self.reads is None:
            object.__setattr__(
                self, "reads", frozenset(getattr(self.fn, "reads", ()))
            )
        if self.writes is None:
            object.__setattr__(
                self, "writes", frozenset(getattr(self.fn, "writes", ()))
            )

    def conflicts_with(self, other: "Stage") -> bool:
        """Whether this stage and ``other`` may NOT be reordered/overlapped.

        The classic dependence test over declared resources: a conflict
        exists iff one stage writes something the other reads or writes.
        Read-read sharing is free.
        """
        return bool(
            self.writes & (other.reads | other.writes)
            or other.writes & self.reads
        )


class StageGraph:
    """A validated, topologically scheduled set of stages.

    Stages may be declared in any order; construction builds the
    dataflow schedule from their inputs/outputs (Kahn's algorithm,
    declaration order breaking ties, so an already-ordered declaration
    executes exactly as written).  Validation names its failure modes:
    every input must be the ``batch`` seed or some stage's output
    (:class:`UndeclaredInputError`), no two stages may produce the same
    value (:class:`DuplicateOutputError`), and the dependency relation
    must be acyclic (:class:`StageCycleError`) — the properties that
    make the graph safe to reschedule.
    """

    def __init__(self, graph_stages: Sequence[Stage]):
        declared = tuple(graph_stages)
        producers: Dict[str, Stage] = {}
        for stage in declared:
            for name in stage.outputs:
                if name == _SEED or name in producers:
                    raise DuplicateOutputError(
                        f"stage {stage.name!r} would redefine {[name]}"
                    )
                producers[name] = stage
        for stage in declared:
            missing = [
                name
                for name in stage.inputs
                if name != _SEED and name not in producers
            ]
            if missing:
                raise UndeclaredInputError(
                    f"stage {stage.name!r} consumes {missing} which no "
                    f"stage produces (producible: "
                    f"{sorted(producers) + [_SEED]})"
                )
        # Kahn's algorithm, stable on declaration order.
        schedule: List[Stage] = []
        available = {_SEED}
        remaining = list(declared)
        while remaining:
            ready = next(
                (
                    stage
                    for stage in remaining
                    if all(name in available for name in stage.inputs)
                ),
                None,
            )
            if ready is None:
                cycle = [stage.name for stage in remaining]
                raise StageCycleError(
                    f"stages {cycle} form a dependency cycle: none of "
                    f"their input sets is satisfiable"
                )
            remaining.remove(ready)
            available.update(ready.outputs)
            schedule.append(ready)
        self.stages: Tuple[Stage, ...] = tuple(schedule)
        self.produces = frozenset(available - {_SEED})
        self._overlap_split: Optional[Tuple[Tuple[Stage, ...], ...]] = None

    def __iter__(self):
        return iter(self.stages)

    # ------------------------------------------------------------------ #
    def _run_stages(
        self,
        stages: Sequence[Stage],
        env: Dict[str, object],
        enforce_writes: bool = False,
    ) -> None:
        """Execute ``stages`` over ``env``, skipping fully seeded ones."""
        for stage in stages:
            if all(name in env for name in stage.outputs):
                continue
            if enforce_writes:
                batch = env.get(_SEED)
                guarded = [
                    resource
                    for resource in CHECKED_RESOURCES
                    if resource not in stage.writes
                ]
                before = {
                    resource: fingerprint_resource(batch, resource)
                    for resource in guarded
                }
            result = stage.fn(*[env[name] for name in stage.inputs])
            if enforce_writes:
                for resource in guarded:
                    if fingerprint_resource(batch, resource) != before[resource]:
                        raise WriteSetViolationError(
                            f"stage {stage.name!r} mutated resource "
                            f"{resource!r} outside its declared write set "
                            f"{sorted(stage.writes)}"
                        )
            if len(stage.outputs) == 1:
                env[stage.outputs[0]] = result
            else:
                env.update(zip(stage.outputs, result))

    def run(
        self,
        batch: StepBatch,
        seed: Optional[Mapping[str, object]] = None,
        enforce_writes: bool = False,
    ) -> Dict[str, object]:
        """Execute the graph for one step; returns the full environment.

        ``seed`` supplies precomputed values; stages whose outputs are
        all present (seeded) are skipped, which keeps re-running work the
        caller already did impossible by construction.
        ``enforce_writes`` fingerprints the checked lane-state resources
        around every stage and raises :class:`WriteSetViolationError` on
        an undeclared mutation — a debugging/testing mode, off on hot
        paths.
        """
        env: Dict[str, object] = {_SEED: batch}
        if seed:
            env.update(seed)
        self._run_stages(self.stages, env, enforce_writes=enforce_writes)
        return env

    # ------------------------------------------------------------------ #
    def overlap_split(self) -> Tuple[Tuple[Stage, ...], ...]:
        """``(head, mid, tail)``: the graph's software-pipeline shape.

        ``head`` is a prefix of the schedule, ``tail`` a suffix, chosen
        so that no head stage conflicts (declared resources) with any
        tail stage — which is exactly the proof that step ``t+1``'s head
        may run while step ``t``'s tail is still in flight.  ``mid`` is
        whatever sits between: it must finish in step ``t`` before the
        next head starts (on the lifecycle graphs that is ``cnn_prefix``,
        whose key-state adoption the next ``rfbme`` reads).  Among valid
        splits the largest tail wins (it is the overlap window), then
        the largest head; an empty head or tail means the graph cannot
        pipeline.  Memoised on the instance (geometry never changes).
        """
        if self._overlap_split is not None:
            return self._overlap_split
        schedule = self.stages
        n = len(schedule)
        best = (0, 0, 0)  # (tail_len, head_len, tail_start)
        for head_len in range(1, n):
            head = schedule[:head_len]
            tail_start = n
            for index in range(n - 1, head_len - 1, -1):
                if any(h.conflicts_with(schedule[index]) for h in head):
                    break
                tail_start = index
            tail_len = n - tail_start
            if (tail_len, head_len) > best[:2]:
                best = (tail_len, head_len, tail_start)
        tail_len, head_len, tail_start = best
        if tail_len == 0:
            self._overlap_split = ((), tuple(schedule), ())
        else:
            self._overlap_split = (
                tuple(schedule[:head_len]),
                tuple(schedule[head_len:tail_start]),
                tuple(schedule[tail_start:]),
            )
        return self._overlap_split


class StageExecutor:
    """Dependency-driven step executor over one :class:`StageGraph`.

    ``pipeline_depth=1`` (default) runs each step's full schedule
    sequentially.  ``pipeline_depth>=2`` keeps two in-flight step
    contexts: when :meth:`step` is handed the *definite* next batch, the
    graph's conflict-free head of step ``t+1`` is launched on a worker
    thread while step ``t``'s tail runs on the caller's thread — RFBME
    (a GIL-releasing compiled/BLAS call on the hot backends) genuinely
    overlaps the CNN stages.  The caller alternates
    ``StepBatch.engine`` between the lane engine and
    :meth:`~repro.core.stages.LaneState.build_pipeline_engine`'s double
    buffer so the two contexts' scratch never collides; every other
    piece of touched state is disjoint by the declared read/write sets,
    so results are bit-identical to sequential execution.

    One executor serves one lane/driver at a time; it is not itself
    thread-safe (the worker thread is an implementation detail).
    """

    def __init__(self, graph: StageGraph, pipeline_depth: int = 1):
        if pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        self.graph = graph
        self.pipeline_depth = int(pipeline_depth)
        if self.pipeline_depth > 1:
            head, mid, tail = graph.overlap_split()
        else:
            head, mid, tail = (), graph.stages, ()
        self.head = head
        self.mid = mid
        self.tail = tail
        self._inflight: Optional[Tuple[StepBatch, object]] = None
        self._worker: Optional[ThreadPoolExecutor] = None

    @property
    def pipelined(self) -> bool:
        """Whether this executor can overlap consecutive steps at all."""
        return bool(self.head) and bool(self.tail)

    # ------------------------------------------------------------------ #
    def _run_head(self, env: Dict[str, object]) -> Dict[str, object]:
        self.graph._run_stages(self.head, env)
        return env

    def _launch_head(self, next_batch: StepBatch) -> None:
        env: Dict[str, object] = {_SEED: next_batch}
        if self._worker is None:
            self._worker = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="stage-head"
            )
        future = self._worker.submit(self._run_head, env)
        self._inflight = (next_batch, future)

    def _join(
        self, batch: StepBatch, seed: Optional[Mapping[str, object]]
    ) -> Dict[str, object]:
        """The step's environment with head stages complete."""
        if self._inflight is None:
            env: Dict[str, object] = {_SEED: batch}
            if seed:
                env.update(seed)
            self.graph._run_stages(self.head, env)
            return env
        expected, future = self._inflight
        self._inflight = None
        if expected is not batch:
            future.result()  # surface head failures before complaining
            raise PipelineContractError(
                "the batch submitted to step() is not the next_batch the "
                "previous step pipelined; pipelined batches must be "
                "definite (head stages are irreversible)"
            )
        env = future.result()
        if seed:
            # Head outputs were already computed in flight — a seed for
            # them arrives too late to honour, and silently preferring
            # either value would hide the conflict.
            head_outputs = {
                name for stage in self.head for name in stage.outputs
            }
            clashes = sorted(set(seed) & head_outputs)
            if clashes:
                raise PipelineContractError(
                    f"seed supplies {clashes}, which the pipelined head "
                    f"already computed; seed head-stage outputs only on "
                    f"steps that were not pipelined into"
                )
            env.update(seed)
        return env

    def step(
        self,
        batch: StepBatch,
        next_batch: Optional[StepBatch] = None,
        seed: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """Execute one full step; optionally pipeline into the next.

        ``next_batch`` — when given and the graph pipelines — MUST be
        the exact batch of the following :meth:`step` call: its head
        stages run now, overlapped with this step's tail, and their
        effects (policy state advanced by ``decide``) are permanent.
        Pass ``None`` whenever the next step is not yet certain (the
        serving worker does so on any possible admission/departure).
        """
        env = self._join(batch, seed)
        self.graph._run_stages(self.mid, env)
        if next_batch is not None and self.pipelined:
            self._launch_head(next_batch)
        self.graph._run_stages(self.tail, env)
        return env

    def close(self) -> None:
        """Join any in-flight head and release the worker thread.

        The executor remains usable afterwards (the worker is rebuilt on
        the next pipelined launch); callers that pipelined to a batch
        they will never submit must close to avoid leaking the thread.
        """
        if self._inflight is not None:
            _, future = self._inflight
            self._inflight = None
            try:
                future.result()
            except Exception:
                pass  # the step that owned this head was abandoned
        if self._worker is not None:
            self._worker.shutdown(wait=True)
            self._worker = None


@functools.lru_cache(maxsize=None)
def frame_lifecycle_graph(planned: bool = True) -> StageGraph:
    """The EVA2 frame lifecycle as a stage graph.

    ``planned`` selects whole-batch CNN execution (prefix for coincident
    key frames, one warp batch, one suffix call); ``False`` gives the
    legacy per-clip CNN path behind the shared RFBME batch.  Graphs are
    stateless declarations, so each shape is built once and shared by
    every caller (lockstep and serving run the same objects).
    """
    head = [
        Stage("rfbme", _stages.stage_rfbme, ("batch",), ("estimations",)),
        Stage("decide", _stages.stage_decide, ("batch", "estimations"),
              ("decisions",)),
    ]
    if planned:
        body = [
            Stage("cnn_prefix", _stages.stage_cnn_prefix,
                  ("batch", "decisions"), ("key_acts",)),
            Stage("warp", _stages.stage_warp,
                  ("batch", "decisions", "estimations"), ("pred_acts",)),
            Stage("cnn_suffix", _stages.stage_cnn_suffix,
                  ("batch", "decisions", "key_acts", "pred_acts"),
                  ("outputs",)),
        ]
    else:
        body = [
            Stage("legacy_cnn", _stages.stage_legacy_cnn,
                  ("batch", "decisions", "estimations"), ("outputs",)),
        ]
    tail = [
        Stage("record", _stages.stage_record,
              ("batch", "decisions", "estimations", "outputs"), ("records",)),
    ]
    return StageGraph(head + body + tail)
