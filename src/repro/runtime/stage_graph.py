"""Declared stage graphs over the frame lifecycle — and their executor.

:class:`StageGraph` turns the lockstep step from an inlined call
sequence into a *schedulable object*: named :class:`Stage`\\ s with typed
dataflow inputs/outputs **and** declared :class:`~repro.core.stages`
resource read/write sets, topologically scheduled from their
declarations (declaration order only breaks ties), validated at
construction, and executed over a shared value environment.  The stage
bodies are the pure functions of :mod:`repro.core.stages`; this module
declares how they wire together and *when* they run.

Two graphs cover the two CNN engines:

* **planned** — ``rfbme → decide → cnn_prefix → warp → cnn_suffix →
  record``: the key-frame branch runs the batched CNN prefix, the
  predicted branch warps stored activations, and one suffix call covers
  both (the whole-batch lifecycle of PR 2/3).
* **legacy** — ``rfbme → decide → legacy_cnn → record``: batched RFBME
  with per-clip CNN execution (the PR 1 shape).

Validation raises *named* errors so callers can tell failure modes
apart: :class:`UndeclaredInputError` (an input no stage produces),
:class:`DuplicateOutputError` (two producers for one value),
:class:`StageCycleError` (no topological order exists), and — at run
time, opt-in — :class:`WriteSetViolationError` (a stage mutated lane
state it never declared).

**Pipelining.**  :class:`StageExecutor` runs a graph step after step.
At ``pipeline_depth=1`` that is plain sequential execution.  At depth 2
it keeps *two in-flight step contexts*: the graph's declared resource
sets prove which prefix of step ``t+1`` conflicts with which suffix of
step ``t`` (:meth:`StageGraph.overlap_split`), and the executor
software-pipelines the conflict-free head — ``rfbme``/``decide`` on the
lifecycle graphs — into step ``t``'s tail window
(``warp``/``cnn_suffix``/``record``), on a worker thread.  The head's
RFBME runs on a double-buffered engine (``StepBatch.engine``) and each
context carries its own cursor snapshot, so the overlapped steps touch
disjoint state and every output stays **bit-identical** to sequential
execution.

**Speculation.**  A *definite* handoff (``speculative=False``) promises
the executor that ``next_batch`` IS the following step — ``decide``
mutates policy state, so breaking that promise raises
:class:`PipelineContractError`.  A *speculative* handoff
(``speculative=True``) drops the promise: before the head launches, the
executor snapshots every :data:`~repro.core.stages.CHECKPOINT_RESOURCES`
resource of the speculated batch (the :class:`Checkpointable` contract —
policies checkpoint their mutable state, cursors are plain ints), and
if the batch actually submitted next is a *different* object the
executor quiesces the in-flight head, rolls the snapshot back, records
a named :class:`RollbackEvent`, and replays the head inline against the
true batch.  Either way every output is bit-identical to sequential
execution; speculation only moves work, never results.  The lockstep
driver still hands over definite batches (its step stream is static);
the serving worker speculates across possible admissions/evictions and
eats the occasional rollback.  :class:`SpeculationStats` counts steps,
engaged overlaps, speculative launches, and rollbacks per executor.

Seeding: :meth:`StageGraph.run` accepts precomputed values; a stage
whose outputs are all seeded is skipped.  That is how callers that
already ran RFBME (e.g. :func:`~repro.runtime.batched.
execute_batched_step`'s entries) reuse the rest of the graph.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core import stages as _stages
from ..core.stages import (
    CHECKED_RESOURCES,
    CHECKPOINT_RESOURCES,
    StepBatch,
    checkpoint_resource,
    fingerprint_resource,
    restore_resource,
)

__all__ = [
    "Stage",
    "StageGraph",
    "StageExecutor",
    "frame_lifecycle_graph",
    "StageGraphError",
    "StageCycleError",
    "UndeclaredInputError",
    "DuplicateOutputError",
    "WriteSetViolationError",
    "PipelineContractError",
    "Checkpointable",
    "RollbackEvent",
    "SpeculationStats",
]

#: the seed value every graph starts from (the step's working set).
_SEED = "batch"


class StageGraphError(ValueError):
    """Base class for stage-graph declaration and execution errors."""


class UndeclaredInputError(StageGraphError):
    """A stage consumes a value that no stage produces (and no seed supplies)."""


class DuplicateOutputError(StageGraphError):
    """Two stages declare the same output value."""


class StageCycleError(StageGraphError):
    """The declared dataflow has no topological order."""


class WriteSetViolationError(StageGraphError):
    """A stage mutated a lane-state resource outside its declared write set."""


class PipelineContractError(RuntimeError):
    """A pipelined next-batch handoff broke the executor's contract.

    For a *definite* handoff (``speculative=False``) the batch submitted
    to the following :meth:`StageExecutor.step` must be the exact
    ``next_batch`` object that was pipelined — without a checkpoint the
    head's effects (``decide`` mutates policy state) are irreversible,
    so the executor stops before running anything against the mismatched
    batch.  Also raised when a *speculative* handoff is requested on a
    graph whose head writes a resource that cannot be checkpointed
    (:attr:`StageExecutor.speculation_safe`), and when a seed supplies a
    value the in-flight head already computed.  Mismatches under a
    speculative handoff do NOT raise: they roll back and replay.
    """


@runtime_checkable
class Checkpointable(Protocol):
    """Structural contract for objects holding checkpointable resources.

    ``checkpoint()`` returns an opaque snapshot of all mutable state;
    ``rollback(snapshot)`` restores it exactly — after the round trip
    the object is observationally identical (same future behaviour, same
    :func:`~repro.core.stages.fingerprint_resource`) to the moment of
    the checkpoint, and one snapshot may be restored any number of
    times.  :class:`~repro.core.keyframe.KeyFramePolicy` implements
    this; the protocol is structural (``typing.Protocol``) so the core
    layer never has to import the runtime to participate.
    """

    def checkpoint(self) -> object: ...

    def rollback(self, snapshot: object) -> None: ...


@dataclass(frozen=True)
class RollbackEvent:
    """One named rollback of a speculative head.

    ``step`` is the executor's step count when the rollback happened;
    ``reason`` names why — ``"membership-mismatch"`` (the submitted
    batch was not the speculated one) or ``"abandoned"`` (the executor
    was closed with a speculative head still in flight); ``positions``
    are the speculated batch's slot positions (empty for non-lane
    batches).
    """

    step: int
    reason: str
    positions: Tuple[int, ...] = ()


@dataclass
class SpeculationStats:
    """What one :class:`StageExecutor` did with its overlap window.

    ``steps`` counts every :meth:`StageExecutor.step` call;
    ``pipelined_steps`` the steps that consumed an in-flight head
    (definite or speculative hit) — the engaged overlaps;
    ``speculated`` the speculative head launches; ``rollbacks`` the
    speculative launches that were rolled back (mismatch or abandon).
    """

    steps: int = 0
    pipelined_steps: int = 0
    speculated: int = 0
    rollbacks: int = 0
    events: List[RollbackEvent] = field(default_factory=list)

    @property
    def engagement(self) -> float:
        """Fraction of steps that ran with their head precomputed."""
        return self.pipelined_steps / self.steps if self.steps else 0.0

    @property
    def rollback_rate(self) -> float:
        """Fraction of speculative launches that were rolled back."""
        return self.rollbacks / self.speculated if self.speculated else 0.0


@dataclass(frozen=True)
class Stage:
    """One declared stage: a pure function with named inputs/outputs.

    ``reads``/``writes`` are the stage's declared
    :class:`~repro.core.stages` resource sets — defaulted from the
    ``reads``/``writes`` attributes its function was declared with
    (see ``core.stages._effects``), empty otherwise.  Dataflow names
    order stages within a step; the resource sets prove which stages of
    *consecutive* steps may overlap.
    """

    name: str
    fn: Callable
    #: environment names passed positionally to ``fn``.
    inputs: Tuple[str, ...]
    #: environment names bound to ``fn``'s return value (one name binds
    #: the value itself; several unpack it).
    outputs: Tuple[str, ...]
    #: lane-state resources read / written (conflict analysis).
    reads: frozenset = field(default=None)
    writes: frozenset = field(default=None)

    def __post_init__(self):
        if not self.outputs:
            raise StageGraphError(f"stage {self.name!r} declares no outputs")
        if self.reads is None:
            object.__setattr__(
                self, "reads", frozenset(getattr(self.fn, "reads", ()))
            )
        if self.writes is None:
            object.__setattr__(
                self, "writes", frozenset(getattr(self.fn, "writes", ()))
            )

    def conflicts_with(self, other: "Stage") -> bool:
        """Whether this stage and ``other`` may NOT be reordered/overlapped.

        The classic dependence test over declared resources: a conflict
        exists iff one stage writes something the other reads or writes.
        Read-read sharing is free.
        """
        return bool(
            self.writes & (other.reads | other.writes)
            or other.writes & self.reads
        )


class StageGraph:
    """A validated, topologically scheduled set of stages.

    Stages may be declared in any order; construction builds the
    dataflow schedule from their inputs/outputs (Kahn's algorithm,
    declaration order breaking ties, so an already-ordered declaration
    executes exactly as written).  Validation names its failure modes:
    every input must be the ``batch`` seed or some stage's output
    (:class:`UndeclaredInputError`), no two stages may produce the same
    value (:class:`DuplicateOutputError`), and the dependency relation
    must be acyclic (:class:`StageCycleError`) — the properties that
    make the graph safe to reschedule.
    """

    def __init__(self, graph_stages: Sequence[Stage]):
        declared = tuple(graph_stages)
        producers: Dict[str, Stage] = {}
        for stage in declared:
            for name in stage.outputs:
                if name == _SEED or name in producers:
                    raise DuplicateOutputError(
                        f"stage {stage.name!r} would redefine {[name]}"
                    )
                producers[name] = stage
        for stage in declared:
            missing = [
                name
                for name in stage.inputs
                if name != _SEED and name not in producers
            ]
            if missing:
                raise UndeclaredInputError(
                    f"stage {stage.name!r} consumes {missing} which no "
                    f"stage produces (producible: "
                    f"{sorted(producers) + [_SEED]})"
                )
        # Kahn's algorithm, stable on declaration order.
        schedule: List[Stage] = []
        available = {_SEED}
        remaining = list(declared)
        while remaining:
            ready = next(
                (
                    stage
                    for stage in remaining
                    if all(name in available for name in stage.inputs)
                ),
                None,
            )
            if ready is None:
                cycle = [stage.name for stage in remaining]
                raise StageCycleError(
                    f"stages {cycle} form a dependency cycle: none of "
                    f"their input sets is satisfiable"
                )
            remaining.remove(ready)
            available.update(ready.outputs)
            schedule.append(ready)
        self.stages: Tuple[Stage, ...] = tuple(schedule)
        self.produces = frozenset(available - {_SEED})
        self._overlap_split: Optional[Tuple[Tuple[Stage, ...], ...]] = None

    def __iter__(self):
        return iter(self.stages)

    # ------------------------------------------------------------------ #
    def _run_stages(
        self,
        stages: Sequence[Stage],
        env: Dict[str, object],
        enforce_writes: bool = False,
    ) -> None:
        """Execute ``stages`` over ``env``, skipping fully seeded ones."""
        for stage in stages:
            if all(name in env for name in stage.outputs):
                continue
            if enforce_writes:
                batch = env.get(_SEED)
                guarded = [
                    resource
                    for resource in CHECKED_RESOURCES
                    if resource not in stage.writes
                ]
                before = {
                    resource: fingerprint_resource(batch, resource)
                    for resource in guarded
                }
            result = stage.fn(*[env[name] for name in stage.inputs])
            if enforce_writes:
                for resource in guarded:
                    if fingerprint_resource(batch, resource) != before[resource]:
                        raise WriteSetViolationError(
                            f"stage {stage.name!r} mutated resource "
                            f"{resource!r} outside its declared write set "
                            f"{sorted(stage.writes)}"
                        )
            if len(stage.outputs) == 1:
                env[stage.outputs[0]] = result
            else:
                env.update(zip(stage.outputs, result))

    def run(
        self,
        batch: StepBatch,
        seed: Optional[Mapping[str, object]] = None,
        enforce_writes: bool = False,
    ) -> Dict[str, object]:
        """Execute the graph for one step; returns the full environment.

        ``seed`` supplies precomputed values; stages whose outputs are
        all present (seeded) are skipped, which keeps re-running work the
        caller already did impossible by construction.
        ``enforce_writes`` fingerprints the checked lane-state resources
        around every stage and raises :class:`WriteSetViolationError` on
        an undeclared mutation — a debugging/testing mode, off on hot
        paths.
        """
        env: Dict[str, object] = {_SEED: batch}
        if seed:
            env.update(seed)
        self._run_stages(self.stages, env, enforce_writes=enforce_writes)
        return env

    # ------------------------------------------------------------------ #
    def overlap_split(self) -> Tuple[Tuple[Stage, ...], ...]:
        """``(head, mid, tail)``: the graph's software-pipeline shape.

        ``head`` is a prefix of the schedule, ``tail`` a suffix, chosen
        so that no head stage conflicts (declared resources) with any
        tail stage — which is exactly the proof that step ``t+1``'s head
        may run while step ``t``'s tail is still in flight.  ``mid`` is
        whatever sits between: it must finish in step ``t`` before the
        next head starts (on the lifecycle graphs that is ``cnn_prefix``,
        whose key-state adoption the next ``rfbme`` reads).  Among valid
        splits the largest tail wins (it is the overlap window), then
        the largest head; an empty head or tail means the graph cannot
        pipeline.  Memoised on the instance (geometry never changes).
        """
        if self._overlap_split is not None:
            return self._overlap_split
        schedule = self.stages
        n = len(schedule)
        best = (0, 0, 0)  # (tail_len, head_len, tail_start)
        for head_len in range(1, n):
            head = schedule[:head_len]
            tail_start = n
            for index in range(n - 1, head_len - 1, -1):
                if any(h.conflicts_with(schedule[index]) for h in head):
                    break
                tail_start = index
            tail_len = n - tail_start
            if (tail_len, head_len) > best[:2]:
                best = (tail_len, head_len, tail_start)
        tail_len, head_len, tail_start = best
        if tail_len == 0:
            self._overlap_split = ((), tuple(schedule), ())
        else:
            self._overlap_split = (
                tuple(schedule[:head_len]),
                tuple(schedule[head_len:tail_start]),
                tuple(schedule[tail_start:]),
            )
        return self._overlap_split


class StageExecutor:
    """Dependency-driven step executor over one :class:`StageGraph`.

    ``pipeline_depth=1`` (default) runs each step's full schedule
    sequentially.  ``pipeline_depth>=2`` keeps two in-flight step
    contexts: when :meth:`step` is handed the *definite* next batch, the
    graph's conflict-free head of step ``t+1`` is launched on a worker
    thread while step ``t``'s tail runs on the caller's thread — RFBME
    (a GIL-releasing compiled/BLAS call on the hot backends) genuinely
    overlaps the CNN stages.  The caller alternates
    ``StepBatch.engine`` between the lane engine and
    :meth:`~repro.core.stages.LaneState.build_pipeline_engine`'s double
    buffer so the two contexts' scratch never collides; every other
    piece of touched state is disjoint by the declared read/write sets,
    so results are bit-identical to sequential execution.

    One executor serves one lane/driver at a time; it is not itself
    thread-safe (the worker thread is an implementation detail).
    """

    def __init__(self, graph: StageGraph, pipeline_depth: int = 1):
        if pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        self.graph = graph
        self.pipeline_depth = int(pipeline_depth)
        if self.pipeline_depth > 1:
            head, mid, tail = graph.overlap_split()
        else:
            head, mid, tail = (), graph.stages, ()
        self.head = head
        self.mid = mid
        self.tail = tail
        # The coalescing barrier: a serve round may pause between a
        # step's key decisions and its CNN stages so a shared
        # PrefixService can fuse coincident key frames across lanes
        # (see begin_step/finish_step).  Everything before the barrier
        # runs in phase 1, everything from it onward in phase 2; graphs
        # without a ``cnn_prefix`` stage put all of mid in phase 1.
        barrier = next(
            (i for i, stage in enumerate(self.mid)
             if stage.name == "cnn_prefix"),
            len(self.mid),
        )
        self._mid_pre = tuple(self.mid[:barrier])
        self._mid_post = tuple(self.mid[barrier:])
        #: (batch, future, checkpoint, busy_cell) of the in-flight head;
        #: the checkpoint is None for a definite (non-speculative)
        #: handoff, and busy_cell receives the head's measured busy
        #: seconds once the future resolves.
        self._inflight: Optional[Tuple[StepBatch, object, object, list]] = None
        self._worker: Optional[ThreadPoolExecutor] = None
        #: busy seconds of the most recently joined head (consumed by
        #: :meth:`consume_joined_head_busy`).
        self._joined_head_busy = 0.0
        #: per-executor speculation/pipelining counters.
        self.stats = SpeculationStats()
        #: union of the head stages' declared write sets — what a
        #: speculative checkpoint must cover.
        self._head_writes = frozenset().union(
            *(stage.writes for stage in self.head)
        ) if self.head else frozenset()

    @property
    def pipelined(self) -> bool:
        """Whether this executor can overlap consecutive steps at all."""
        return bool(self.head) and bool(self.tail)

    @property
    def speculation_safe(self) -> bool:
        """Whether the head's persistent writes can all be rolled back.

        The head stages may write scratch resources freely (dead between
        steps by definition) but every *persistent* resource they write
        must be checkpointable — on the lifecycle graphs that is
        ``decide``'s :data:`~repro.core.stages.POLICY_STATE`.  A graph
        whose head writes, say, key state cannot speculate: there is no
        checkpoint to roll back to.
        """
        persistent = frozenset(CHECKED_RESOURCES)
        checkpointable = frozenset(CHECKPOINT_RESOURCES)
        for stage in self.head:
            if (stage.writes & persistent) - checkpointable:
                return False
        return True

    def reset_stats(self) -> None:
        """Start a fresh :class:`SpeculationStats` window (per serve)."""
        self.stats = SpeculationStats()

    def consume_joined_head_busy(self) -> float:
        """Busy seconds of the head joined during the latest step, once.

        Returns 0.0 when the step joined no in-flight head (sequential
        step, or the first step of a stream).  The value is consumed:
        a second call before the next join returns 0.0.  This is the
        measurement behind serving's concurrent-overlap timeline — on a
        core-starved host the head and tail time-slice one CPU, so the
        measured step duration is their *sum*; charging
        ``sum - min(head_busy, sum - head_busy)`` instead models the
        ``max(head, tail)`` a concurrent deployment realizes, the same
        convention the shard-scaling benchmark uses for its per-shard
        clocks.
        """
        busy, self._joined_head_busy = self._joined_head_busy, 0.0
        return busy

    # ------------------------------------------------------------------ #
    def _run_head(self, env: Dict[str, object]) -> Dict[str, object]:
        self.graph._run_stages(self.head, env)
        return env

    def _launch_head(
        self, next_batch: StepBatch, speculative: bool = False
    ) -> None:
        checkpoint = None
        if speculative:
            # Snapshot BEFORE the head can run: the worker thread starts
            # mutating policy state the moment the future is submitted.
            # Only resources the head *writes* are captured — rolling
            # back anything else (e.g. cursors, which the driver
            # advances between launch and join) would undo legitimate
            # non-head mutations.
            checkpoint = {
                resource: checkpoint_resource(next_batch, resource)
                for resource in CHECKPOINT_RESOURCES
                if resource in self._head_writes
            }
            self.stats.speculated += 1
        env: Dict[str, object] = {_SEED: next_batch}
        if self._worker is None:
            self._worker = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="stage-head"
            )
        # The head measures its own busy seconds on the worker thread;
        # the cell is final once the future resolves.  Serving's
        # concurrent-overlap timeline reads it through
        # :meth:`consume_joined_head_busy` to credit the overlap window.
        # Thread CPU time, not wall time: on a core-starved host the
        # head thread's wall clock includes GIL waits behind the tail,
        # which would understate the hideable window by however long the
        # scheduler happened to interleave the two.
        busy_cell = [0.0]

        def run_timed() -> Dict[str, object]:
            start = time.thread_time()
            try:
                return self._run_head(env)
            finally:
                busy_cell[0] = time.thread_time() - start

        future = self._worker.submit(run_timed)
        self._inflight = (next_batch, future, checkpoint, busy_cell)

    def _rollback(
        self, batch: StepBatch, checkpoint: Mapping[str, object], reason: str
    ) -> None:
        """Undo a speculative head's effects and record the named event."""
        for resource, snapshot in checkpoint.items():
            restore_resource(batch, resource, snapshot)
        self.stats.rollbacks += 1
        self.stats.events.append(
            RollbackEvent(
                step=self.stats.steps,
                reason=reason,
                positions=tuple(getattr(batch, "positions", ()) or ()),
            )
        )

    def _join(
        self, batch: StepBatch, seed: Optional[Mapping[str, object]]
    ) -> Dict[str, object]:
        """The step's environment with head stages complete."""
        if self._inflight is None:
            env: Dict[str, object] = {_SEED: batch}
            if seed:
                env.update(seed)
            self.graph._run_stages(self.head, env)
            return env
        expected, future, checkpoint, busy_cell = self._inflight
        self._inflight = None
        if expected is not batch:
            if checkpoint is None:
                future.result()  # surface head failures before complaining
                raise PipelineContractError(
                    "the batch submitted to step() is not the next_batch "
                    "the previous step pipelined; a definite handoff must "
                    "be honoured (no checkpoint to roll back to) — "
                    "pipeline with speculative=True when the next step "
                    "is uncertain"
                )
            # Speculation missed: quiesce the in-flight head (it may
            # still be mutating policy state on the worker thread), roll
            # its effects back, and replay the head against the batch
            # that actually arrived.  A head failure still surfaces, but
            # only after the rollback restored consistent state.
            try:
                future.result()
            finally:
                self._joined_head_busy = busy_cell[0]
                self._rollback(expected, checkpoint, "membership-mismatch")
            env = {_SEED: batch}
            if seed:
                env.update(seed)
            self.graph._run_stages(self.head, env)
            return env
        env = future.result()
        self._joined_head_busy = busy_cell[0]
        self.stats.pipelined_steps += 1
        if seed:
            # Head outputs were already computed in flight — a seed for
            # them arrives too late to honour, and silently preferring
            # either value would hide the conflict.
            head_outputs = {
                name for stage in self.head for name in stage.outputs
            }
            clashes = sorted(set(seed) & head_outputs)
            if clashes:
                raise PipelineContractError(
                    f"seed supplies {clashes}, which the pipelined head "
                    f"already computed; seed head-stage outputs only on "
                    f"steps that were not pipelined into"
                )
            env.update(seed)
        return env

    def step(
        self,
        batch: StepBatch,
        next_batch: Optional[StepBatch] = None,
        seed: Optional[Mapping[str, object]] = None,
        speculative: bool = False,
    ) -> Dict[str, object]:
        """Execute one full step; optionally pipeline into the next.

        ``next_batch`` — when given and the graph pipelines — launches
        the next step's head stages now, overlapped with this step's
        tail.  With ``speculative=False`` (default) the handoff is
        *definite*: it MUST be the exact batch of the following
        :meth:`step` call, because the head's effects (policy state
        advanced by ``decide``) are applied permanently.  With
        ``speculative=True`` the executor checkpoints the speculated
        batch's :data:`~repro.core.stages.CHECKPOINT_RESOURCES` first;
        if the following step submits a different batch the head's
        effects are rolled back and the head replayed — results are
        bit-identical either way, a miss just forfeits the overlap.
        Pass ``next_batch=None`` when there is nothing to pipeline.
        """
        env = self.begin_step(batch, seed)
        return self.finish_step(
            env, next_batch=next_batch, speculative=speculative
        )

    def begin_step(
        self,
        batch: StepBatch,
        seed: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """Phase 1 of a two-phase step: everything up to the coalescing
        barrier.

        Joins (or runs inline) the head stages and the pre-barrier slice
        of ``mid``, so on the lifecycle graphs the returned env already
        holds this step's final ``decisions`` — including any rollback +
        replay a mispredicted speculative head required.  A serve round
        may ``begin_step`` every lane, hand their key-frame requests to
        a shared :class:`~repro.runtime.prefix_service.PrefixService`,
        flush it once, and only then :meth:`finish_step` each lane.
        :meth:`step` is exactly ``begin_step`` + ``finish_step``, so the
        two-phase round is bit-identical to sequential stepping.
        """
        self.stats.steps += 1
        env = self._join(batch, seed)
        self.graph._run_stages(self._mid_pre, env)
        return env

    def finish_step(
        self,
        env: Dict[str, object],
        next_batch: Optional[StepBatch] = None,
        speculative: bool = False,
    ) -> Dict[str, object]:
        """Phase 2 of a two-phase step: the barrier onward.

        Runs the CNN stages (``cnn_prefix`` consults the batch's prefix
        service, if any, for rows staged by the round's flush), launches
        the next head per :meth:`step`'s contract, then runs the tail.
        """
        self.graph._run_stages(self._mid_post, env)
        if next_batch is not None and self.pipelined:
            if speculative and not self.speculation_safe:
                raise PipelineContractError(
                    "cannot speculate on this graph: its head writes a "
                    "persistent resource outside CHECKPOINT_RESOURCES, "
                    "so a mispredicted head could not be rolled back"
                )
            self._launch_head(next_batch, speculative=speculative)
        self.graph._run_stages(self.tail, env)
        return env

    def close(self) -> None:
        """Join any in-flight head and release the worker thread.

        The executor remains usable afterwards (the worker is rebuilt on
        the next pipelined launch); callers that pipelined to a batch
        they will never submit must close to avoid leaking the thread.
        An abandoned *speculative* head is rolled back — its decide
        effects never happened as far as lane state is concerned.
        """
        if self._inflight is not None:
            expected, future, checkpoint, _busy = self._inflight
            self._inflight = None
            try:
                future.result()
            except Exception:
                pass  # the step that owned this head was abandoned
            if checkpoint is not None:
                self._rollback(expected, checkpoint, "abandoned")
        if self._worker is not None:
            self._worker.shutdown(wait=True)
            self._worker = None


@functools.lru_cache(maxsize=None)
def frame_lifecycle_graph(planned: bool = True) -> StageGraph:
    """The EVA2 frame lifecycle as a stage graph.

    ``planned`` selects whole-batch CNN execution (prefix for coincident
    key frames, one warp batch, one suffix call); ``False`` gives the
    legacy per-clip CNN path behind the shared RFBME batch.  Graphs are
    stateless declarations, so each shape is built once and shared by
    every caller (lockstep and serving run the same objects).
    """
    head = [
        Stage("rfbme", _stages.stage_rfbme, ("batch",), ("estimations",)),
        Stage("decide", _stages.stage_decide, ("batch", "estimations"),
              ("decisions",)),
    ]
    if planned:
        body = [
            Stage("cnn_prefix", _stages.stage_cnn_prefix,
                  ("batch", "decisions"), ("key_acts",)),
            Stage("warp", _stages.stage_warp,
                  ("batch", "decisions", "estimations"), ("pred_acts",)),
            Stage("cnn_suffix", _stages.stage_cnn_suffix,
                  ("batch", "decisions", "key_acts", "pred_acts"),
                  ("outputs",)),
        ]
    else:
        body = [
            Stage("legacy_cnn", _stages.stage_legacy_cnn,
                  ("batch", "decisions", "estimations"), ("outputs",)),
        ]
    tail = [
        Stage("record", _stages.stage_record,
              ("batch", "decisions", "estimations", "outputs"), ("records",)),
    ]
    return StageGraph(head + body + tail)
