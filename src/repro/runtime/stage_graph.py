"""Declared stage graphs over the frame lifecycle.

:class:`StageGraph` turns the lockstep step from an inlined call
sequence into a *schedulable object*: an ordered set of named
:class:`Stage`\\ s with typed inputs and outputs, validated at
construction (every input must be produced by an earlier stage or seeded
by the caller) and executed over a shared value environment.  The stage
bodies are the pure functions of :mod:`repro.core.stages`; this module
only declares how they wire together.

Two graphs cover the two CNN engines:

* **planned** — ``rfbme → decide → cnn_prefix → warp → cnn_suffix →
  record``: the key-frame branch runs the batched CNN prefix, the
  predicted branch warps stored activations, and one suffix call covers
  both (the whole-batch lifecycle of PR 2/3).
* **legacy** — ``rfbme → decide → legacy_cnn → record``: batched RFBME
  with per-clip CNN execution (the PR 1 shape).

Both the lockstep :class:`~repro.runtime.batched.BatchedPipeline` and
the serving :class:`~repro.runtime.serving.LaneWorker` execute these
graphs, so there is exactly one definition of the frame lifecycle to
keep bit-identical — and one place to later schedule stages differently
(sharding today; double-buffering RFBME against the CNN next).

Seeding: :meth:`StageGraph.run` accepts precomputed values; a stage
whose outputs are all seeded is skipped.  That is how callers that
already ran RFBME (e.g. :func:`~repro.runtime.batched.
execute_batched_step`'s entries) reuse the rest of the graph.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..core import stages as _stages
from ..core.stages import StepBatch

__all__ = ["Stage", "StageGraph", "frame_lifecycle_graph"]

#: the seed value every graph starts from (the step's working set).
_SEED = "batch"


@dataclass(frozen=True)
class Stage:
    """One declared stage: a pure function with named inputs/outputs."""

    name: str
    fn: Callable
    #: environment names passed positionally to ``fn``.
    inputs: Tuple[str, ...]
    #: environment names bound to ``fn``'s return value (one name binds
    #: the value itself; several unpack it).
    outputs: Tuple[str, ...]

    def __post_init__(self):
        if not self.outputs:
            raise ValueError(f"stage {self.name!r} declares no outputs")


class StageGraph:
    """An ordered, validated set of stages executed over one environment.

    Declaration order is execution order; construction validates that
    every stage's inputs are either the ``batch`` seed or an output of
    an earlier stage, and that no two stages produce the same value —
    the properties that make the graph safe to reschedule.
    """

    def __init__(self, graph_stages: Sequence[Stage]):
        available = {_SEED}
        for stage in graph_stages:
            missing = [name for name in stage.inputs if name not in available]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} consumes {missing} before any "
                    f"stage produces it (have: {sorted(available)})"
                )
            clashes = [name for name in stage.outputs if name in available]
            if clashes:
                raise ValueError(
                    f"stage {stage.name!r} would redefine {clashes}"
                )
            available.update(stage.outputs)
        self.stages: Tuple[Stage, ...] = tuple(graph_stages)
        self.produces = frozenset(available - {_SEED})

    def __iter__(self):
        return iter(self.stages)

    def run(
        self,
        batch: StepBatch,
        seed: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """Execute the graph for one step; returns the full environment.

        ``seed`` supplies precomputed values; stages whose outputs are
        all present (seeded) are skipped, which keeps re-running work the
        caller already did impossible by construction.
        """
        env: Dict[str, object] = {_SEED: batch}
        if seed:
            env.update(seed)
        for stage in self.stages:
            if all(name in env for name in stage.outputs):
                continue
            result = stage.fn(*[env[name] for name in stage.inputs])
            if len(stage.outputs) == 1:
                env[stage.outputs[0]] = result
            else:
                env.update(zip(stage.outputs, result))
        return env


@functools.lru_cache(maxsize=None)
def frame_lifecycle_graph(planned: bool = True) -> StageGraph:
    """The EVA2 frame lifecycle as a stage graph.

    ``planned`` selects whole-batch CNN execution (prefix for coincident
    key frames, one warp batch, one suffix call); ``False`` gives the
    legacy per-clip CNN path behind the shared RFBME batch.  Graphs are
    stateless declarations, so each shape is built once and shared by
    every caller (lockstep and serving run the same objects).
    """
    head = [
        Stage("rfbme", _stages.stage_rfbme, ("batch",), ("estimations",)),
        Stage("decide", _stages.stage_decide, ("batch", "estimations"),
              ("decisions",)),
    ]
    if planned:
        body = [
            Stage("cnn_prefix", _stages.stage_cnn_prefix,
                  ("batch", "decisions"), ("key_acts",)),
            Stage("warp", _stages.stage_warp,
                  ("batch", "decisions", "estimations"), ("pred_acts",)),
            Stage("cnn_suffix", _stages.stage_cnn_suffix,
                  ("batch", "decisions", "key_acts", "pred_acts"),
                  ("outputs",)),
        ]
    else:
        body = [
            Stage("legacy_cnn", _stages.stage_legacy_cnn,
                  ("batch", "decisions", "estimations"), ("outputs",)),
        ]
    tail = [
        Stage("record", _stages.stage_record,
              ("batch", "decisions", "estimations", "outputs"), ("records",)),
    ]
    return StageGraph(head + body + tail)
