"""Picklable pipeline descriptions for the runtime layer.

Worker processes cannot receive live :class:`~repro.core.EVA2Pipeline`
objects (they hold networks and scratch buffers), so the scheduler ships a
:class:`PipelineSpec` — a frozen, picklable recipe — and each worker builds
its pipeline once from it.  The same spec drives the serial, lockstep, and
pooled execution paths, which is what makes their results comparable
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import (
    AMCConfig,
    AMCExecutor,
    AlwaysKeyPolicy,
    EVA2Pipeline,
    KeyFramePolicy,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
    NeverKeyPolicy,
    StaticPolicy,
)
from ..core.rfbme import RFBMEConfig

__all__ = ["PipelineSpec", "PAPER_MODES"]

#: network -> AMC mode the paper pairs it with (§IV-E1: classification
#: memoizes, detection warps).
PAPER_MODES = {
    "mini_alexnet": "memoize",
    "mini_fasterm": "warp",
    "mini_faster16": "warp",
}

_POLICIES = ("match_error", "motion", "static", "always", "never")


@dataclass(frozen=True)
class PipelineSpec:
    """Everything needed to (re)build one EVA2 pipeline, anywhere.

    Plain data only — safe to pickle into worker processes and cheap to
    hash/compare.  ``build()`` trains or loads the zoo network on first
    use (the on-disk model cache makes rebuilds byte-identical).
    """

    network: str = "mini_fasterm"
    #: AMC mode; None selects the paper's mode for the network.
    mode: Optional[str] = None
    #: key-frame policy: one of match_error / motion / static / always / never.
    policy: str = "match_error"
    #: threshold for the adaptive policies.
    threshold: float = 2.0
    #: interval for the static policy.
    interval: int = 4
    #: RFBME search parameters.
    search_radius: int = 12
    search_stride: int = 2
    #: RFBME host backend; None = fastest available (see repro.core.rfbme).
    rfbme_backend: Optional[str] = None
    #: RFBME host tuning profile ("fast"/"pr1"); results are identical,
    #: "pr1" reproduces the previous release's wall-clock behaviour.
    rfbme_profile: str = "fast"
    #: CNN execution engine ("planned"/"legacy"); see
    #: :class:`repro.core.amc.AMCConfig`.
    cnn_engine: str = "planned"
    #: CNN arithmetic ("float64"/"float32"/"int8"/"q16").  float32 and
    #: the quantized lanes need the planned engine; the quantized lanes
    #: trade bit-identity for throughput under a calibrated
    #: :class:`~repro.nn.quantize.QuantTolerance` contract.
    dtype: str = "float64"
    #: runtime step pipelining depth (see
    #: :class:`~repro.core.amc.AMCConfig`): 1 = sequential steps, 2 =
    #: software-pipeline RFBME/decide of step t+1 against the CNN stages
    #: of step t.  Bit-identical either way.
    pipeline_depth: int = 1
    #: allow *speculative* pipelining across uncertain step boundaries
    #: (serving admissions/evictions): checkpoint, overlap, roll back +
    #: replay on a membership mismatch.  Default on — results are
    #: bit-identical regardless; False restores PR 5's stable-only
    #: overlap.  No effect at pipeline_depth=1.
    speculate: bool = True

    def __post_init__(self):
        if self.policy not in _POLICIES:
            raise ValueError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )
        if self.network not in PAPER_MODES:
            raise ValueError(
                f"network must be one of {sorted(PAPER_MODES)}, "
                f"got {self.network!r}"
            )
        # Fail on a bad backend now, not minutes later when the first
        # predicted frame lazily builds the RFBME engine.
        self.amc_config()

    # ------------------------------------------------------------------ #
    def amc_config(self) -> AMCConfig:
        mode = self.mode or PAPER_MODES[self.network]
        return AMCConfig(
            mode=mode,
            rfbme=RFBMEConfig(self.search_radius, self.search_stride),
            rfbme_backend=self.rfbme_backend,
            rfbme_profile=self.rfbme_profile,
            cnn_engine=self.cnn_engine,
            dtype=self.dtype,
            pipeline_depth=self.pipeline_depth,
            speculate=self.speculate,
        )

    def build_policy(self) -> KeyFramePolicy:
        if self.policy == "match_error":
            return MatchErrorPolicy(self.threshold)
        if self.policy == "motion":
            return MotionMagnitudePolicy(self.threshold)
        if self.policy == "static":
            return StaticPolicy(self.interval)
        if self.policy == "always":
            return AlwaysKeyPolicy()
        return NeverKeyPolicy()

    def build_executor(self, network=None) -> AMCExecutor:
        """An executor on the zoo network, or on a caller-shared one.

        Executors never mutate the network, so the lockstep runtime passes
        one shared instance to avoid per-clip weight copies.
        """
        if network is None:
            from ..nn.train import get_trained_network

            network = get_trained_network(self.network)
        return AMCExecutor(network, self.amc_config())

    def shared_network(self):
        """The cached zoo network without a defensive parameter copy."""
        from ..nn.train import get_trained_network

        return get_trained_network(self.network, fresh_copy=False)

    def build(self) -> EVA2Pipeline:
        return EVA2Pipeline(self.build_executor(), self.build_policy())

    def warm(self) -> None:
        """Train/load the network into the on-disk cache.

        Call in the parent before spawning workers so they load the cached
        weights instead of racing to train.
        """
        self.shared_network()
