"""Cross-lane CNN-prefix service: fused coincident batches + content cache.

The paper's whole economy is "run the expensive CNN prefix as rarely as
the workload allows" — yet the serving stack historically ran one
``InferencePlan.run_prefix`` call *per lane per step*, even when key
frames coincided across lanes (and simulated shards), and recomputed the
prefix for bit-identical frames (static stretches, repeated scenes).
:class:`PrefixService` closes both gaps without changing a single output
bit:

* **Cross-lane coalescing.**  A serve round runs in two phases: every
  lane first ``begin_step`` calls (RFBME + key decisions), the loop calls
  :meth:`PrefixService.flush`, and only then do lanes ``finish_step``
  (CNN stages).  ``flush`` groups the registered key-frame requests by
  fusion signature — the resolved :class:`~repro.nn.inference.InferencePlan`
  instance plus AMC ``target``, which pins ``(network, dtype, frame
  shape)`` — grows the plan with the existing ``reserve()`` path, and
  executes one fused ``run_prefix`` per group.  The plan's
  per-sample-vs-fused GEMM probe guarantees each row of a fused batch is
  bit-identical to the same frame run at batch 1, so fusion is pure
  scheduling.

* **Content-addressed cache.**  An LRU memo keyed by ``(frame-bytes
  digest, network weight version, target, dtype)`` returns the stored
  prefix activation for repeated frames.  Hits are bit-identical by
  construction: the cached array *is* the previously computed result
  (``InferencePlan._execute`` hands back an owned copy, and every
  consumer — ``AMCExecutor.adopt_key``, the suffix concat — copies
  again, so entries are never aliased or mutated).
  ``Network.load_state_dict`` bumps ``weight_version``, so a live
  weight swap invalidates without draining the cache explicitly.

Speculation stays sound for free: ``cnn_prefix`` lives in the executor's
*mid* segment, which only ever runs on committed steps — a rolled-back
speculative head has executed RFBME/decide at most, so neither fused
results nor cache entries can be poisoned by a rollback.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["PrefixStats", "PrefixService"]


@dataclass
class PrefixStats:
    """Counters for one serve/run (mirrors the executor's stats objects)."""

    #: fused ``run_prefix`` executions that combined key rows from more
    #: than one registered lane request.
    fused_batches: int = 0
    #: key rows that rode in those fused batches.
    fused_rows: int = 0
    #: cache lookups that returned a stored activation.
    hits: int = 0
    #: cache lookups that fell through to compute (only counted while a
    #: cache is configured — with the cache off nothing is a "miss").
    misses: int = 0
    #: entries dropped to keep the cache under its byte budget.
    evictions: int = 0
    #: prefix MACs avoided by cache hits.
    saved_macs: int = 0

    def merge(self, other: "PrefixStats") -> None:
        self.fused_batches += other.fused_batches
        self.fused_rows += other.fused_rows
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.saved_macs += other.saved_macs

    def reset(self) -> None:
        self.fused_batches = 0
        self.fused_rows = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.saved_macs = 0


class _PrefixCache:
    """Byte-bounded LRU of prefix activations."""

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.nbytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[np.ndarray]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, value: np.ndarray) -> int:
        """Insert (or refresh) ``key``; return how many entries were evicted."""
        if value.nbytes > self.capacity_bytes:
            # An entry that can never fit should not wipe the whole cache.
            return 0
        old = self._entries.pop(key, None)
        if old is not None:
            self.nbytes -= old.nbytes
        self._entries[key] = value
        self.nbytes += value.nbytes
        evicted = 0
        while self.nbytes > self.capacity_bytes:
            _, dropped = self._entries.popitem(last=False)
            self.nbytes -= dropped.nbytes
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._entries.clear()
        self.nbytes = 0


def _frame_digest(frame: np.ndarray) -> bytes:
    data = frame if frame.flags["C_CONTIGUOUS"] else np.ascontiguousarray(frame)
    return hashlib.blake2b(data.tobytes(), digest_size=16).digest()


class PrefixService:
    """Shared prefix executor for one serve/run.

    Two call protocols coexist:

    * **Direct** — ``stage_cnn_prefix`` finds the service on its
      :class:`~repro.core.stages.StepBatch` and calls :meth:`run_prefix`
      in place of ``batch.plan.run_prefix``; the service answers from
      the cache where it can and computes the rest in one plan call.
      This is the path for single-lane loops, the lockstep runtime, and
      any caller that never learned the round protocol.
    * **Round** — a serve loop that steps several lanes calls
      :meth:`prepare` with each lane's key decisions after the lane's
      ``begin_step``, then :meth:`flush` once, then lets every lane
      ``finish_step``; the staged (fused and/or cached) rows are handed
      back when each lane's ``stage_cnn_prefix`` asks.
    """

    def __init__(self, coalesce: bool = True, cache_mb: float = 0.0):
        self.coalesce = bool(coalesce)
        cache_bytes = int(float(cache_mb) * 1024 * 1024)
        self.cache = _PrefixCache(cache_bytes) if cache_bytes > 0 else None
        self.stats = PrefixStats()
        self._pending: List[Tuple[object, List[int]]] = []
        self._staged: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # round protocol
    # ------------------------------------------------------------------ #
    def prepare(self, batch, decisions) -> None:
        """Register one lane's key-frame rows for the next :meth:`flush`."""
        if not self.coalesce or decisions is None or batch.plan is None:
            return
        keys = [k for k, is_key in enumerate(decisions) if is_key]
        if keys:
            self._pending.append((batch, keys))

    def flush(self) -> None:
        """Execute all registered requests, one fused batch per signature."""
        self._staged.clear()
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        groups: Dict[tuple, List[Tuple[object, List[int]]]] = {}
        for batch, keys in pending:
            target = batch.slot(keys[0]).executor.target
            groups.setdefault((id(batch.plan), target), []).append((batch, keys))
        for entries in groups.values():
            self._flush_group(entries)

    def _flush_group(self, entries) -> None:
        plan = entries[0][0].plan
        target = entries[0][0].slot(entries[0][1][0]).executor.target
        # rows[i][j] is the activation for entries[i]'s j-th key frame.
        rows: List[List[Optional[np.ndarray]]] = []
        miss_frames: List[np.ndarray] = []
        miss_sites: List[Tuple[int, int, Optional[tuple]]] = []
        for i, (batch, keys) in enumerate(entries):
            rows.append([None] * len(keys))
            for j, k in enumerate(keys):
                frame = batch.frames[k]
                hit, ckey = self._lookup(plan, target, frame)
                if hit is not None:
                    rows[i][j] = hit
                else:
                    miss_frames.append(frame)
                    miss_sites.append((i, j, ckey))
        if miss_frames:
            stacked = np.stack(miss_frames)[:, None]
            plan.reserve(len(miss_frames))
            acts = plan.run_prefix(stacked, target)
            contributors = {i for i, _, _ in miss_sites}
            if len(contributors) > 1:
                self.stats.fused_batches += 1
                self.stats.fused_rows += len(miss_frames)
            for row, (i, j, ckey) in enumerate(miss_sites):
                rows[i][j] = acts[row]
                self._store(ckey, acts[row])
        for (batch, keys), batch_rows in zip(entries, rows):
            self._staged[id(batch)] = self._assemble(plan, batch_rows)

    # ------------------------------------------------------------------ #
    # direct protocol (stage-side)
    # ------------------------------------------------------------------ #
    def run_prefix(self, batch, keys: List[int]) -> np.ndarray:
        """Prefix activations for ``batch.frames[keys]``, staged or computed."""
        staged = self._staged.pop(id(batch), None)
        if staged is not None:
            return staged
        plan = batch.plan
        target = batch.slot(keys[0]).executor.target
        rows: List[Optional[np.ndarray]] = [None] * len(keys)
        miss_idx: List[int] = []
        miss_keys: List[Optional[tuple]] = []
        for j, k in enumerate(keys):
            hit, ckey = self._lookup(plan, target, batch.frames[k])
            if hit is not None:
                rows[j] = hit
            else:
                miss_idx.append(j)
                miss_keys.append(ckey)
        if miss_idx:
            stacked = np.stack([batch.frames[keys[j]] for j in miss_idx])[:, None]
            plan.reserve(len(miss_idx))
            acts = plan.run_prefix(stacked, target)
            if len(miss_idx) == len(keys):
                # No hits: hand the plan's owned result straight through.
                for ckey, row in zip(miss_keys, acts):
                    self._store(ckey, row)
                return acts
            for row, (j, ckey) in enumerate(zip(miss_idx, miss_keys)):
                rows[j] = acts[row]
                self._store(ckey, acts[row])
        return self._assemble(plan, rows)

    # ------------------------------------------------------------------ #
    # cache internals
    # ------------------------------------------------------------------ #
    def _lookup(self, plan, target, frame):
        """(cached activation or None, cache key or None) for one frame."""
        if self.cache is None:
            return None, None
        network = plan.network
        ckey = (
            id(network),
            getattr(network, "weight_version", 0),
            target,
            # The plan *family*, not the interchange dtype: quantized
            # plans exchange float32 at the boundary, and an int8
            # prefix must never be served to a float32 lane.
            getattr(plan, "dtype_name", np.dtype(plan.dtype).str),
            frame.shape,
            _frame_digest(frame),
        )
        hit = self.cache.get(ckey)
        if hit is not None:
            self.stats.hits += 1
            self.stats.saved_macs += network.prefix_macs(target)
            return hit, ckey
        self.stats.misses += 1
        return None, ckey

    def _store(self, ckey, row: np.ndarray) -> None:
        if self.cache is None or ckey is None:
            return
        # Stored entries must be bulletproof against any future mutation
        # of the batch result, so keep an owned contiguous copy.
        self.stats.evictions += self.cache.put(ckey, np.ascontiguousarray(row))

    @staticmethod
    def _assemble(plan, rows: List[np.ndarray]) -> np.ndarray:
        out = np.empty((len(rows),) + rows[0].shape, dtype=plan.dtype)
        for j, row in enumerate(rows):
            out[j] = row
        return out

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        self.stats.reset()
        self._pending.clear()
        self._staged.clear()
