"""Multi-clip serving runtime — throughput layer over the EVA2 pipeline.

The paper evaluates EVA2 on single clips; a deployment serves many camera
streams at once (§I's live-vision setting).  This package turns the
per-clip :class:`~repro.core.EVA2Pipeline` into a workload runtime:

* :class:`PipelineSpec` — picklable recipe for building identical
  pipelines in any worker.
* :class:`ClipScheduler` — fans clips over a serial / thread / process
  pool, order-preserving.
* :class:`BatchedPipeline` — lockstep execution that batches the RFBME
  hot path across all active clips in one vectorized call.
* :class:`WorkloadResult` — aggregate results plus throughput stats
  (frames/sec, key fraction, total adder ops).
* :func:`synthetic_workload` — deterministic mixed-scenario traffic.

Every execution path produces bit-identical per-clip results; the choice
is purely a throughput knob.  ``benchmarks/bench_runtime_throughput.py``
measures the paths against the seed serial loop.
"""

from .batched import BatchedPipeline, WorkloadResult, run_workload
from .scheduler import ClipScheduler, SchedulerConfig
from .spec import PAPER_MODES, PipelineSpec
from .workload import synthetic_workload

__all__ = [
    "BatchedPipeline",
    "WorkloadResult",
    "run_workload",
    "ClipScheduler",
    "SchedulerConfig",
    "PAPER_MODES",
    "PipelineSpec",
    "synthetic_workload",
]
