"""Multi-clip serving runtime — throughput layer over the EVA2 pipeline.

The paper evaluates EVA2 on single clips; a deployment serves many camera
streams at once (§I's live-vision setting).  This package turns the
per-clip :class:`~repro.core.EVA2Pipeline` into a workload runtime:

* :class:`PipelineSpec` — picklable recipe for building identical
  pipelines in any worker.
* :class:`ClipScheduler` — fans clips over a serial / thread / process
  pool, order-preserving.
* :class:`BatchedPipeline` — lockstep execution that batches the RFBME
  hot path across all active clips in one vectorized call.
* :class:`ServingRuntime` — streaming serving with continuous batching:
  requests join the running batch at step boundaries, evict on
  completion, and refill freed slots without draining; heterogeneous
  traffic buckets into shape-compatible lanes; :class:`ServingReport`
  carries per-request latency/throughput accounting.
* :class:`WorkloadResult` — aggregate results plus throughput stats
  (frames/sec, key fraction, total adder ops).
* :func:`synthetic_workload` / :func:`poisson_arrival_times` —
  deterministic mixed-scenario traffic and arrival processes.

Every execution path produces bit-identical per-clip results; the choice
is purely a throughput knob.  ``benchmarks/bench_runtime_throughput.py``
and ``benchmarks/bench_serving.py`` measure the paths against the seed
serial loop.
"""

from .batched import (
    BatchedPipeline,
    WorkloadResult,
    execute_batched_step,
    run_workload,
)
from .scheduler import ClipScheduler, SchedulerConfig
from .serving import ClipRequest, RequestRecord, ServingReport, ServingRuntime
from .spec import PAPER_MODES, PipelineSpec
from .workload import poisson_arrival_times, synthetic_workload

__all__ = [
    "BatchedPipeline",
    "WorkloadResult",
    "run_workload",
    "execute_batched_step",
    "ClipScheduler",
    "SchedulerConfig",
    "ClipRequest",
    "RequestRecord",
    "ServingReport",
    "ServingRuntime",
    "PAPER_MODES",
    "PipelineSpec",
    "synthetic_workload",
    "poisson_arrival_times",
]
