"""Multi-clip serving runtime — throughput layer over the EVA2 pipeline.

The paper evaluates EVA2 on single clips; a deployment serves many camera
streams at once (§I's live-vision setting).  This package turns the
per-clip :class:`~repro.core.EVA2Pipeline` into a workload runtime:

* :class:`PipelineSpec` — picklable recipe for building identical
  pipelines in any worker.
* :class:`ClipScheduler` / :class:`ShardPool` — fan clips (or lane
  shards) over a serial / thread / process pool, order-preserving.
* :class:`StageGraph` / :class:`StageExecutor` — the frame lifecycle as
  declared stages with typed inputs/outputs and resource read/write
  sets (:func:`frame_lifecycle_graph`), topologically scheduled, run
  over the picklable :class:`~repro.core.stages.LaneState`; the one
  definition of the step that lockstep and serving both execute.  At
  ``pipeline_depth=2`` the executor software-pipelines step t+1's
  RFBME/decisions against step t's CNN stages (double-buffered engine
  scratch, bit-identical) — definitely when the next batch is certain,
  speculatively (checkpoint → rollback + replay on a membership
  mismatch; :class:`Checkpointable`, :class:`RollbackEvent`,
  :class:`SpeculationStats`) when serving admissions/evictions make it
  uncertain.
* :class:`BatchedPipeline` — lockstep execution that batches the RFBME
  hot path across all active clips in one vectorized call.
* :class:`ServingRuntime` — streaming serving with continuous batching,
  split into a :class:`Router` front end (admission, shape bucketing,
  :class:`LaneRoutingError` rejections) and :class:`LaneWorker` back
  ends that run the stage graph — in-process, or sharded across worker
  processes (plan-per-worker ownership); configured by one validated
  :class:`ServerConfig` and dispatched through the :class:`Backend`
  protocol; :class:`ServingReport` carries per-request
  latency/throughput accounting with p50/p95/p99 tails and per-shard
  breakdowns.
* :class:`FrontDoor` / :class:`RequestSource` — the elastic front
  door: ``serve()`` accepts any request source (list, iterator or
  generator, thread-fed :class:`QueueSource`, ``asyncio.Queue``) with
  bounded in-flight admission (queue-depth watermarks, a named
  :class:`BackpressureError` on push-side overflow), a pure-function
  :class:`AutoscalePolicy` + :class:`Autoscaler` that grow and shrink
  a lane's shard fleet from observed backlog depth and deadline slack
  (:class:`ScaleEvent` log), and a virtual-time admission protocol
  that releases arrivals to process shards by logical timestamps so
  large simulated traces run at full speed.
* :class:`WorkloadResult` — aggregate results plus throughput stats
  (frames/sec, key fraction, total adder ops).
* :class:`FaultPlan` / :class:`ShardSupervisor` — fault-tolerant
  serving: deterministic fault injection (kill/stall/ack-drop, seeded
  and JSON-replayable), shard supervision with heartbeats and result
  acknowledgements, deadline-aware shedding
  (:class:`RequestShedError` / :class:`ShedRecord`), and explicit
  failover accounting (:class:`FailoverEvent`) — recovery re-executes
  bit-identically because every clip's execution is deterministic.
* :class:`PrefixService` — the cross-lane prefix service: within a
  step, coincident key-frame CNN prefix requests from every lane
  sharing a plan fuse into one batched ``run_prefix`` call, and an
  optional content-addressed LRU cache (keyed by frame bytes + weight
  version) returns stored prefix activations for repeated pixels —
  both bit-identical by construction, with fused-batch and hit/miss
  counters surfaced on :class:`ServingReport` (:class:`PrefixStats`).
* :func:`synthetic_workload` / :func:`static_stretch_workload` /
  :func:`poisson_arrival_times` / :func:`bursty_arrival_times` /
  :func:`slack_deadlines` — deterministic mixed-scenario traffic
  (plain or duplicate-frame repeated scenes), arrival processes, and
  deadline assignment.

Every execution path produces bit-identical per-clip results; the choice
is purely a throughput knob.  ``benchmarks/bench_runtime_throughput.py``
and ``benchmarks/bench_serving.py`` measure the paths against the seed
serial loop.
"""

from .batched import (
    BatchedPipeline,
    WorkloadResult,
    execute_batched_step,
    run_workload,
)
from .frontdoor import (
    AsyncQueueSource,
    AutoscaleDecision,
    AutoscalePolicy,
    Autoscaler,
    Backend,
    BackpressureError,
    FrontDoor,
    IteratorSource,
    ListSource,
    QueueSource,
    RequestSource,
    ScaleEvent,
    ServerConfig,
    as_request_source,
)
from .scheduler import (
    ClipScheduler,
    SchedulerConfig,
    ShardCrashError,
    ShardPool,
)
from .serving import (
    ClipRequest,
    DuplicateRequestError,
    LaneRoutingError,
    LaneWorker,
    RequestRecord,
    Router,
    ServingReport,
    ServingRuntime,
    ShardInfo,
)
from .prefix_service import PrefixService, PrefixStats
from .spec import PAPER_MODES, PipelineSpec
from .stage_graph import (
    Checkpointable,
    DuplicateOutputError,
    PipelineContractError,
    RollbackEvent,
    SpeculationStats,
    Stage,
    StageCycleError,
    StageExecutor,
    StageGraph,
    StageGraphError,
    UndeclaredInputError,
    WriteSetViolationError,
    frame_lifecycle_graph,
)
from .supervision import (
    FailoverEvent,
    FaultEvent,
    FaultPlan,
    RequestShedError,
    ShardSupervisor,
    ShedRecord,
    SupervisorConfig,
)
from .workload import (
    bursty_arrival_times,
    poisson_arrival_times,
    slack_deadlines,
    static_stretch_workload,
    synthetic_workload,
)

__all__ = [
    "BatchedPipeline",
    "WorkloadResult",
    "run_workload",
    "execute_batched_step",
    "ClipScheduler",
    "SchedulerConfig",
    "ShardPool",
    "ShardCrashError",
    "ClipRequest",
    "ServerConfig",
    "Backend",
    "FrontDoor",
    "RequestSource",
    "ListSource",
    "IteratorSource",
    "QueueSource",
    "AsyncQueueSource",
    "as_request_source",
    "BackpressureError",
    "AutoscalePolicy",
    "AutoscaleDecision",
    "Autoscaler",
    "ScaleEvent",
    "DuplicateRequestError",
    "LaneRoutingError",
    "LaneWorker",
    "RequestRecord",
    "Router",
    "ServingReport",
    "ServingRuntime",
    "ShardInfo",
    "Stage",
    "StageGraph",
    "StageExecutor",
    "StageGraphError",
    "StageCycleError",
    "UndeclaredInputError",
    "DuplicateOutputError",
    "WriteSetViolationError",
    "PipelineContractError",
    "Checkpointable",
    "RollbackEvent",
    "SpeculationStats",
    "frame_lifecycle_graph",
    "PAPER_MODES",
    "PipelineSpec",
    "FaultEvent",
    "FaultPlan",
    "FailoverEvent",
    "RequestShedError",
    "ShedRecord",
    "ShardSupervisor",
    "SupervisorConfig",
    "PrefixService",
    "PrefixStats",
    "synthetic_workload",
    "static_stretch_workload",
    "poisson_arrival_times",
    "bursty_arrival_times",
    "slack_deadlines",
]
