"""The serving front door: ingestion, backpressure, autoscaling, config.

Serving-systems practice says the front door — admission, backpressure,
elasticity — is where a deployment wins or loses tail latency.  This
module is that layer for the EVA2 serving runtime, split into four
pieces that :class:`~repro.runtime.serving.ServingRuntime` composes:

* :class:`RequestSource` and its adapters (:class:`ListSource`,
  :class:`IteratorSource`, :class:`QueueSource`,
  :class:`AsyncQueueSource`) — *streaming ingestion*.
  ``ServingRuntime.serve()`` accepts any of them (or a plain list /
  iterator / generator / :class:`asyncio.Queue`, coerced by
  :func:`as_request_source`): a source yields ``(seq, request)`` pairs
  in nondecreasing arrival order, and the historical list path is just
  one adapter that pre-sorts by ``(arrival_time, submission order)``.
* :class:`FrontDoor` — the bounded admission buffer between a source
  and a serve loop.  It validates routing and duplicate ids as traffic
  enters, exposes ``take(depth, now)`` for the loops to pull due
  arrivals, and enforces *queue-depth watermarks*: past ``max_pending``
  queued-but-unadmitted requests it stops pulling (a backpressure
  pause) until the loop drains back to ``resume_pending``.  Push-side
  backpressure is :class:`BackpressureError`, raised by a bounded
  :meth:`QueueSource.submit`.
* :class:`AutoscalePolicy` — a *pure function* from observed state
  (live shards, admission-queue depth, deadline slack, the sustained
  streak so far) to a target shard count, with hysteresis on both
  directions so transient spikes don't thrash the fleet.
  :class:`Autoscaler` is the thin stateful wrapper that carries streaks
  per lane and records every change as a :class:`ScaleEvent`; the DES
  and supervised-process backends both drive it.
* :class:`ServerConfig` — the validated configuration object that
  replaced ``ServingRuntime.__init__``'s nine keyword knobs, and
  :class:`Backend` — the protocol all serve entrypoints implement, so
  ``serve()`` dispatches on a resolved backend instead of branching
  inline.

Scaling never changes results: the bit-identity contract (every served
clip identical to its serial run) holds regardless of when shards were
spawned or drained, which is what makes elasticity safe to apply.
"""

from __future__ import annotations

import asyncio
import queue as queue_module
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .scheduler import SchedulerConfig
from .supervision import FaultPlan, SupervisorConfig

__all__ = [
    "BackpressureError",
    "RequestSource",
    "ListSource",
    "IteratorSource",
    "QueueSource",
    "AsyncQueueSource",
    "as_request_source",
    "FrontDoor",
    "ScaleEvent",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "Autoscaler",
    "ServerConfig",
    "Backend",
]


class BackpressureError(RuntimeError):
    """A bounded ingestion buffer refused a submission.

    Raised by :meth:`QueueSource.submit` when the source already holds
    ``maxsize`` unpulled requests — the push-side half of the front
    door's backpressure (the pull side is the watermark pause in
    :class:`FrontDoor`).  Producers should retry after the server
    drains, or widen ``maxsize`` if the burst is expected.
    """


# -------------------------------------------------------------------- #
# request sources — streaming ingestion adapters
# -------------------------------------------------------------------- #
class RequestSource:
    """A stream of clip requests in nondecreasing arrival order.

    Subclasses implement :meth:`_next_pair` returning the next
    ``(seq, request)`` or ``None`` when nothing is available *now*;
    :attr:`finished` says whether "nothing now" means "never again".
    The base class enforces the one ordering contract every serve loop
    relies on: arrivals must be nondecreasing across pulls (lists are
    pre-sorted by their adapter; live streams must submit in arrival
    order).
    """

    def __init__(self):
        self._count = 0
        self._last_arrival: Optional[float] = None

    # -- subclass surface ------------------------------------------- #
    def _next_pair(self) -> Optional[Tuple[int, object]]:
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        """Whether the source can never yield another request."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further pulls yield nothing."""

    # -- shared contract -------------------------------------------- #
    def _take_seq(self) -> int:
        seq = self._count
        self._count += 1
        return seq

    def pull(self) -> Optional[Tuple[int, object]]:
        """The next ``(seq, request)``, or None if nothing is ready."""
        pair = self._next_pair()
        if pair is None:
            return None
        seq, request = pair
        arrival = request.arrival_time
        if self._last_arrival is not None and arrival < self._last_arrival:
            raise ValueError(
                f"request {request.request_id!r} arrives at {arrival}, "
                f"before the previously pulled arrival "
                f"{self._last_arrival}; a streaming source must yield "
                f"requests in nondecreasing arrival order (list traffic "
                f"is sorted automatically)"
            )
        self._last_arrival = arrival
        return seq, request


class ListSource(RequestSource):
    """The historical list path as one adapter.

    Pre-sorts ``(submission index, request)`` by ``(arrival_time,
    submission index)`` — exactly :meth:`Router.partition`'s order — so
    seqs remain submission positions and a report's ``records`` stay in
    submission order.
    """

    def __init__(self, requests: Sequence):
        super().__init__()
        self.requests = list(requests)
        self._pairs = deque(sorted(
            enumerate(self.requests),
            key=lambda item: (item[1].arrival_time, item[0]),
        ))
        self._count = len(self.requests)  # seqs are preassigned

    def _next_pair(self) -> Optional[Tuple[int, object]]:
        return self._pairs.popleft() if self._pairs else None

    @property
    def finished(self) -> bool:
        return not self._pairs


class IteratorSource(RequestSource):
    """Wrap any iterator/generator of requests (``None`` ends it)."""

    def __init__(self, iterable: Iterable):
        super().__init__()
        self._iterator: Optional[Iterator] = iter(iterable)

    def _next_pair(self) -> Optional[Tuple[int, object]]:
        if self._iterator is None:
            return None
        request = next(self._iterator, None)
        if request is None:
            self._iterator = None
            return None
        return self._take_seq(), request

    @property
    def finished(self) -> bool:
        return self._iterator is None

    def close(self) -> None:
        self._iterator = None


class QueueSource(RequestSource):
    """A bounded submit/serve handoff — the push side of backpressure.

    Producers (any thread) call :meth:`submit`; past ``maxsize``
    unpulled requests that raises :class:`BackpressureError` instead of
    growing without bound.  Call :meth:`close` after the last submit so
    the serve loop knows the stream ended; until then an empty queue
    means "nothing *yet*" and the loop waits in real time.
    """

    def __init__(self, maxsize: Optional[int] = None):
        super().__init__()
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._queue: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        self._closed = False

    def submit(self, request) -> None:
        if self._closed:
            raise ValueError("cannot submit to a closed QueueSource")
        if (self.maxsize is not None
                and self._queue.qsize() >= self.maxsize):
            raise BackpressureError(
                f"QueueSource is full ({self.maxsize} queued "
                f"request(s)); retry after the server drains"
            )
        self._queue.put(request)

    def _next_pair(self) -> Optional[Tuple[int, object]]:
        try:
            request = self._queue.get_nowait()
        except queue_module.Empty:
            return None
        return self._take_seq(), request

    @property
    def finished(self) -> bool:
        return self._closed and self._queue.empty()

    def close(self) -> None:
        self._closed = True


class AsyncQueueSource(RequestSource):
    """Adapt an :class:`asyncio.Queue` fed by producer coroutines.

    The serve loop pulls with ``get_nowait`` (it never awaits), so the
    producing event loop must run concurrently (or have finished
    filling the queue).  Call :meth:`close` after the last put — until
    then an empty queue means "nothing yet", not end-of-stream.
    """

    def __init__(self, async_queue: "asyncio.Queue"):
        super().__init__()
        self._queue = async_queue
        self._closed = False

    def _next_pair(self) -> Optional[Tuple[int, object]]:
        try:
            request = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        if request is None:  # producer-side end-of-stream sentinel
            self._closed = True
            return None
        return self._take_seq(), request

    @property
    def finished(self) -> bool:
        return self._closed and self._queue.empty()

    def close(self) -> None:
        self._closed = True


def as_request_source(requests) -> RequestSource:
    """Coerce whatever ``serve()`` was handed into a request source."""
    if isinstance(requests, RequestSource):
        return requests
    if isinstance(requests, (list, tuple)):
        return ListSource(requests)
    if isinstance(requests, asyncio.Queue):
        return AsyncQueueSource(requests)
    if isinstance(requests, Iterable):
        return IteratorSource(requests)
    raise TypeError(
        f"serve() accepts a sequence of requests, an iterator/generator, "
        f"an asyncio.Queue, or a RequestSource; got "
        f"{type(requests).__name__}"
    )


# -------------------------------------------------------------------- #
# the front door proper — validation, watermarks, lane bookkeeping
# -------------------------------------------------------------------- #
class FrontDoor:
    """Bounded, validated admission between a source and a serve loop.

    The door owns ingestion-time correctness (routing failures and
    duplicate request ids surface here — eagerly for list traffic,
    keeping the historical fail-fast behaviour; incrementally for
    streams) and the pull-side watermark: :meth:`take` stops pulling
    once ``depth`` (the loop's queued-but-unadmitted count) reaches
    ``max_pending`` and resumes when it drains to ``resume_pending``.
    Hysteresis means the door toggles once per excursion, not once per
    request; ``backpressure_pauses`` counts the excursions.

    ``router=None`` (internal: a shard serving a preassigned slice)
    skips validation and lane bookkeeping.
    """

    def __init__(
        self,
        source: RequestSource,
        router=None,
        max_pending: Optional[int] = None,
        resume_pending: Optional[int] = None,
    ):
        self.source = source
        self.router = router
        self.max_pending = max_pending
        if max_pending is None:
            self.resume_pending = 0
        elif resume_pending is None:
            self.resume_pending = max_pending // 2
        else:
            self.resume_pending = resume_pending
        self._paused = False
        self._peeked: Optional[Tuple[int, object]] = None
        self._seen: Dict[object, int] = {}
        self.pulled = 0
        self.backpressure_pauses = 0
        if router is not None and isinstance(source, ListSource):
            # List traffic keeps the historical contract: every routing
            # or duplicate-id failure surfaces before serving starts.
            for position, request in enumerate(source.requests):
                router.lane_for(request)
                self._check_duplicate(request, position)

    # ---------------------------------------------------------------- #
    def _check_duplicate(self, request, position: int) -> None:
        from .serving import DuplicateRequestError

        try:
            first = self._seen.setdefault(request.request_id, position)
        except TypeError:
            return  # unhashable ids cannot be checked cheaply
        if first != position:
            raise DuplicateRequestError(
                f"duplicate request_id {request.request_id!r}: "
                f"submissions #{first} and #{position} both use it; "
                f"records are keyed by id, so aliased requests would "
                f"silently merge"
            )

    def _fill_peek(self) -> Optional[Tuple[int, object]]:
        if self._peeked is None:
            pair = self.source.pull()
            if pair is not None:
                seq, request = pair
                if self.router is not None:
                    self.router.lane_for(request)  # reject before buffering
                    if not isinstance(self.source, ListSource):
                        self._check_duplicate(request, seq)
                self._peeked = pair
        return self._peeked

    # ---------------------------------------------------------------- #
    @property
    def exhausted(self) -> bool:
        """No buffered request and the source can yield no more."""
        return self._fill_peek() is None and self.source.finished

    @property
    def starved(self) -> bool:
        """Nothing available *now* from a source that is still open."""
        return self._fill_peek() is None and not self.source.finished

    def next_arrival(self) -> Optional[float]:
        """Arrival time of the next pullable request (None = none yet)."""
        pair = self._fill_peek()
        return pair[1].arrival_time if pair is not None else None

    def lane_of(self, request) -> str:
        return self.router.lane_for(request)

    def take(
        self, depth: int, now: Optional[float] = None
    ) -> List[Tuple[int, object]]:
        """Pull every request due at ``now`` that the watermark allows.

        ``depth`` is the loop's current queued-but-unadmitted count;
        the watermark compares against ``depth`` plus what this call
        already pulled.  ``now=None`` ignores arrival times (the DES
        loop orders events by arrival itself).  Progress is guaranteed:
        at ``depth == 0`` the door always resumes, so a paused serve
        can never deadlock against its own backpressure.
        """
        out: List[Tuple[int, object]] = []
        while True:
            pair = self._fill_peek()
            if pair is None:
                break
            if now is not None and pair[1].arrival_time > now:
                break
            queued = depth + len(out)
            if self.max_pending is not None:
                if self._paused:
                    if queued <= self.resume_pending:
                        self._paused = False
                    else:
                        break
                if queued >= self.max_pending:
                    self._paused = True
                    self.backpressure_pauses += 1
                    break
            self._peeked = None
            self.pulled += 1
            out.append(pair)
        return out

    def drain_per_lane(self) -> Dict[str, List[Tuple[int, object]]]:
        """Pull *everything* into per-lane lists (batch backends).

        The static-shard and supervised-process backends need the full
        request set up front (slice assignment, shard-budget dealing),
        so they drain the source — streaming traffic is consumed whole,
        watermarks do not apply.  Source order is arrival order, which
        is exactly :meth:`Router.partition`'s per-lane order.
        """
        per_lane: Dict[str, List[Tuple[int, object]]] = {
            name: [] for name in self.router.specs
        }
        while True:
            pair = self._fill_peek()
            if pair is None:
                if self.source.finished:
                    break
                raise ValueError(
                    "this backend needs the full trace up front, but the "
                    "request source is still open; close() it after the "
                    "last submit, or serve with an autoscaling/in-process "
                    "configuration that streams"
                )
            self._peeked = None
            self.pulled += 1
            per_lane[self.lane_of(pair[1])].append(pair)
        return per_lane


# -------------------------------------------------------------------- #
# autoscaling — pure policy, thin stateful wrapper
# -------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision that changed a lane's shard count."""

    lane: str
    #: decision time on the deciding loop's (virtual) clock.
    time: float
    from_shards: int
    to_shards: int
    #: "queue-depth" / "deadline-slack" for growth, "idle" for shrink.
    reason: str
    #: the admission-queue depth that drove the decision.
    queue_depth: int = 0


@dataclass(frozen=True)
class AutoscaleDecision:
    """What the policy wants: a target and the streak to carry forward."""

    target: int
    streak: int
    reason: str = "hold"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Pure-function shard-count policy with two-sided hysteresis.

    :meth:`decide` maps observed state to a target shard count and is
    referentially transparent — same inputs, same decision, no clock,
    no hidden counters — so it unit-tests as a plain function and both
    serving backends (inline DES and supervised processes) share it
    verbatim.  Pressure is queue depth *per live shard*; a sustained
    excursion above ``high_depth`` grows by one, a sustained stretch at
    or below ``low_depth`` shrinks by one, and ``sustain_up`` /
    ``sustain_down`` observations of hysteresis keep one bursty step
    from thrashing the fleet (scale-down is deliberately the slower
    side: spare shards are cheap, cold starts are not).  A lane whose
    earliest pending deadline has ``slack_floor`` or less of slack
    grows immediately — deadline pressure outranks depth hysteresis.
    """

    min_shards: int = 1
    max_shards: int = 4
    #: grow when depth per live shard sustains >= this.
    high_depth: float = 2.0
    #: shrink when depth per live shard sustains <= this.
    low_depth: float = 0.25
    #: consecutive high-pressure observations before growing.
    sustain_up: int = 2
    #: consecutive low-pressure observations before shrinking.
    sustain_down: int = 8
    #: grow immediately when the earliest pending deadline has this
    #: little slack left (seconds); <= 0 only fires on already-due work.
    slack_floor: float = 0.0

    def __post_init__(self):
        if self.min_shards < 1:
            raise ValueError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )
        if self.low_depth < 0 or self.high_depth <= self.low_depth:
            raise ValueError(
                f"need high_depth > low_depth >= 0, got "
                f"high_depth={self.high_depth}, low_depth={self.low_depth}"
            )
        if self.sustain_up < 1 or self.sustain_down < 1:
            raise ValueError(
                f"sustain_up/sustain_down must be >= 1, got "
                f"{self.sustain_up}/{self.sustain_down}"
            )

    def decide(
        self,
        shards: int,
        queue_depth: int,
        streak: int = 0,
        deadline_slack: Optional[float] = None,
    ) -> AutoscaleDecision:
        """Target shard count for one observation — a pure function.

        ``shards`` is the lane's live (non-draining) shard count,
        ``queue_depth`` its admission backlog, ``streak`` the signed
        sustained-pressure counter returned by the previous decision
        (positive = consecutive high, negative = consecutive low), and
        ``deadline_slack`` the seconds until the earliest pending
        deadline (None = no deadlines waiting).
        """
        pressure = queue_depth / max(shards, 1)
        urgent = (
            queue_depth > 0
            and deadline_slack is not None
            and deadline_slack <= self.slack_floor
        )
        if urgent or pressure >= self.high_depth:
            streak = streak + 1 if streak > 0 else 1
            needed = 1 if urgent else self.sustain_up
            if streak >= needed and shards < self.max_shards:
                return AutoscaleDecision(
                    target=shards + 1,
                    streak=0,
                    reason="deadline-slack" if urgent else "queue-depth",
                )
        elif pressure <= self.low_depth:
            streak = streak - 1 if streak < 0 else -1
            if -streak >= self.sustain_down and shards > self.min_shards:
                return AutoscaleDecision(
                    target=shards - 1, streak=0, reason="idle"
                )
        else:
            streak = 0
        # Clamp to the configured band.  The min-shards floor also
        # self-heals a lane whose live fleet dropped to zero (crashes
        # outpacing the supervisor): the restore is a scale decision,
        # not a "hold".
        target = min(max(shards, self.min_shards), self.max_shards)
        if target != shards:
            reason = "min-shards" if target > shards else "max-shards"
            return AutoscaleDecision(target=target, streak=streak,
                                     reason=reason)
        return AutoscaleDecision(target=target, streak=streak)


class Autoscaler:
    """Per-lane streak state and the :class:`ScaleEvent` log.

    The only mutable autoscaling state: the policy itself stays pure.
    Both serving backends call :meth:`observe` at admission boundaries
    and act on the returned target (spawn via the supervisor's respawn
    machinery, or drain an idle shard).
    """

    def __init__(self, policy: AutoscalePolicy):
        self.policy = policy
        self.events: List[ScaleEvent] = []
        self._streaks: Dict[str, int] = {}

    def observe(
        self,
        lane: str,
        shards: int,
        queue_depth: int,
        now: float,
        deadline_slack: Optional[float] = None,
    ) -> int:
        """The lane's target shard count after this observation."""
        decision = self.policy.decide(
            shards,
            queue_depth,
            streak=self._streaks.get(lane, 0),
            deadline_slack=deadline_slack,
        )
        self._streaks[lane] = decision.streak
        if decision.target != shards:
            self.events.append(ScaleEvent(
                lane=lane,
                time=now,
                from_shards=shards,
                to_shards=decision.target,
                reason=decision.reason,
                queue_depth=queue_depth,
            ))
        return decision.target


# -------------------------------------------------------------------- #
# server configuration — the nine-knob collapse
# -------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServerConfig:
    """Validated configuration for :class:`ServingRuntime`.

    Collapses the historical nine keyword knobs into one object (the
    old keywords still work as deprecated aliases on ``ServingRuntime``
    and emit a single :class:`DeprecationWarning`).  Field validation
    happens here; *plan/lane* validation — which needs the router —
    happens when the runtime is constructed with a spec.
    """

    #: per-shard slot capacity (continuous batch width).
    max_batch: int = 8
    #: fixed shard count (1 = in-process); superseded by ``autoscale``.
    serve_workers: int = 1
    #: shard pool backend: auto / serial / process (thread is refused —
    #: concurrent thread shards would share one plan's scratch).
    shard_backend: str = "auto"
    #: "static" round-robin slices or a "shared" per-lane queue.
    #: Autoscaling requires the shared queue and coerces this field.
    admission: str = "static"
    #: charge pipelined steps their concurrent-overlap duration.
    overlap_timeline: bool = False
    #: deterministic fault injection (shared-admission backends only).
    fault_plan: FaultPlan = None  # normalized to FaultPlan() below
    #: failure detection / recovery knobs.
    supervisor: SupervisorConfig = None  # normalized below
    #: injectable monotonic clock for in-process / inline serving.
    clock: Optional[Callable[[], float]] = None
    #: elastic shard pool: grow/shrink per lane between the policy's
    #: min_shards and max_shards from observed queue depth and deadline
    #: slack.  None = fixed ``serve_workers`` shards.
    autoscale: Optional[AutoscalePolicy] = None
    #: release arrivals to process shards by logical timestamps instead
    #: of real sleeps, so large simulated traces run at full speed (the
    #: in-process and inline-DES loops are already virtual-time).
    virtual_time: bool = False
    #: pull-side watermark: stop ingesting past this many queued
    #: requests (None = unbounded, the historical behaviour) …
    max_pending: Optional[int] = None
    #: … and resume once the queue drains to this (default: half).
    resume_pending: Optional[int] = None
    #: fuse coincident key-frame CNN prefixes across lanes (and across
    #: inline-DES simulated shards) into one ``run_prefix`` batch per
    #: step.  Bit-identical either way; False restores per-lane calls.
    prefix_coalesce: bool = True
    #: content-addressed prefix activation cache budget in MiB (0 = off).
    #: Keyed by frame digest + network weight version, so repeated
    #: frames skip the prefix entirely and live weight swaps invalidate
    #: without draining.
    prefix_cache_mb: float = 0.0
    #: inference plan family every lane runs under ("float64",
    #: "float32", "int8", "q16"); None keeps each lane spec's own dtype.
    #: The quantized families need the planned CNN engine — validated
    #: against the lane specs when the runtime is constructed.
    inference_dtype: Optional[str] = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.serve_workers < 1:
            raise ValueError(
                f"serve_workers must be >= 1, got {self.serve_workers}"
            )
        if self.admission not in ("static", "shared"):
            raise ValueError(
                f"admission must be 'static' or 'shared', got "
                f"{self.admission!r}"
            )
        if self.shard_backend == "thread":
            # Thread shards of one lane would share the process-global
            # cached network — and therefore one InferencePlan whose
            # scratch buffers they'd mutate concurrently, breaking the
            # bit-identity contract (and the GIL voids the throughput
            # win anyway).  Refuse rather than serve wrong bits.
            raise ValueError(
                "shard_backend='thread' cannot shard serving: concurrent "
                "thread shards would share one inference plan's scratch; "
                "use 'process', 'serial', or 'auto'"
            )
        # Reuses the scheduler's backend-name validation and error text.
        SchedulerConfig(workers=self.serve_workers,
                        backend=self.shard_backend)
        object.__setattr__(self, "max_batch", int(self.max_batch))
        object.__setattr__(self, "serve_workers", int(self.serve_workers))
        object.__setattr__(self, "overlap_timeline",
                           bool(self.overlap_timeline))
        object.__setattr__(self, "virtual_time", bool(self.virtual_time))
        if self.fault_plan is None:
            object.__setattr__(self, "fault_plan", FaultPlan())
        if self.supervisor is None:
            object.__setattr__(self, "supervisor", SupervisorConfig())
        if self.autoscale is not None and self.admission == "static":
            # Static slices are fixed at dispatch time, so an elastic
            # pool is meaningless there; autoscaling implies the shared
            # per-lane queue.
            object.__setattr__(self, "admission", "shared")
        object.__setattr__(self, "prefix_coalesce",
                           bool(self.prefix_coalesce))
        object.__setattr__(self, "prefix_cache_mb",
                           float(self.prefix_cache_mb))
        if self.prefix_cache_mb < 0:
            raise ValueError(
                f"prefix_cache_mb must be >= 0 (0 = off), got "
                f"{self.prefix_cache_mb}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1 (None = unbounded), got "
                f"{self.max_pending}"
            )
        if self.resume_pending is not None:
            if self.max_pending is None:
                raise ValueError(
                    "resume_pending needs max_pending (there is no "
                    "watermark to resume from)"
                )
            if not 0 <= self.resume_pending < self.max_pending:
                raise ValueError(
                    f"need 0 <= resume_pending < max_pending, got "
                    f"resume_pending={self.resume_pending}, "
                    f"max_pending={self.max_pending}"
                )
        if self.inference_dtype is not None:
            # Canonicalize here so every consumer (router, report,
            # prefix-cache keys) sees one spelling per family.
            from ..nn.inference import resolve_plan_dtype

            object.__setattr__(
                self, "inference_dtype",
                resolve_plan_dtype(self.inference_dtype),
            )

    @property
    def pool_workers(self) -> int:
        """The worker budget backend resolution sizes pools against."""
        if self.autoscale is not None:
            return max(self.serve_workers, self.autoscale.max_shards)
        return self.serve_workers

    @property
    def sharded(self) -> bool:
        """Whether this config serves through shard workers at all."""
        return self.serve_workers > 1 or self.autoscale is not None


# -------------------------------------------------------------------- #
# the backend protocol
# -------------------------------------------------------------------- #
class Backend:
    """One serve entrypoint: a strategy over a :class:`FrontDoor`.

    ``ServingRuntime.serve()`` resolves exactly one backend from its
    config and calls :meth:`serve` — the historical inline branching
    (in-process loop vs static shards vs shared DES vs supervised
    processes) now lives behind this protocol, and capabilities like
    autoscaling or fault injection are backend properties rather than
    more branches.
    """

    #: stable name, surfaced by ``ServingRuntime.resolve_backend()``.
    name: str = "backend"
    #: what this entrypoint supports (informational; config validation
    #: happens in :class:`ServerConfig` / the runtime constructor).
    capabilities: frozenset = frozenset()

    def __init__(self, runtime):
        self.runtime = runtime

    def serve(self, door: FrontDoor):
        """Serve everything the door yields; returns a ServingReport."""
        raise NotImplementedError


# re-exported for the runtime package namespace
field = field  # noqa: F811 — keep dataclasses.field importable here
