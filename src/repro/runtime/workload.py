"""Synthetic multi-clip workload construction.

The runtime layer serves *workloads* — many clips at once, the way a
deployment would see concurrent camera streams (the paper's motivating
live-vision setting, §I).  :func:`synthetic_workload` builds a
deterministic mixed-scenario workload from the synthetic video substrate;
the CLI, benchmarks, and tests all draw their traffic from here so runs
are comparable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..video import generate_clip, scenario, scenario_names
from ..video.generator import VideoClip

__all__ = ["synthetic_workload"]


def synthetic_workload(
    num_clips: int,
    num_frames: int = 16,
    scenarios: Optional[Sequence[str]] = None,
    base_seed: int = 0,
) -> List[VideoClip]:
    """A deterministic workload of ``num_clips`` annotated clips.

    Scenarios are cycled (all library scenarios by default) and each clip
    gets a distinct seed, so the workload mixes motion regimes the way
    real traffic mixes content. Fully reproducible given ``base_seed``.
    """
    if num_clips < 1:
        raise ValueError(f"num_clips must be >= 1, got {num_clips}")
    names = list(scenarios) if scenarios is not None else list(scenario_names())
    if not names:
        raise ValueError("no scenarios to build a workload from")
    return [
        generate_clip(
            scenario(names[i % len(names)]),
            seed=base_seed + i,
            num_frames=num_frames,
        )
        for i in range(num_clips)
    ]
