"""Synthetic multi-clip workload construction.

The runtime layer serves *workloads* — many clips at once, the way a
deployment would see concurrent camera streams (the paper's motivating
live-vision setting, §I).  :func:`synthetic_workload` builds a
deterministic mixed-scenario workload from the synthetic video substrate;
the CLI, benchmarks, and tests all draw their traffic from here so runs
are comparable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..video import generate_clip, scenario, scenario_names
from ..video.generator import VideoClip

__all__ = [
    "synthetic_workload",
    "static_stretch_workload",
    "poisson_arrival_times",
    "bursty_arrival_times",
    "slack_deadlines",
]


def synthetic_workload(
    num_clips: int,
    num_frames: int = 16,
    scenarios: Optional[Sequence[str]] = None,
    base_seed: int = 0,
) -> List[VideoClip]:
    """A deterministic workload of ``num_clips`` annotated clips.

    Scenarios are cycled (all library scenarios by default) and each clip
    gets a distinct seed, so the workload mixes motion regimes the way
    real traffic mixes content. Fully reproducible given ``base_seed``.
    """
    if num_clips < 1:
        raise ValueError(f"num_clips must be >= 1, got {num_clips}")
    names = list(scenarios) if scenarios is not None else list(scenario_names())
    if not names:
        raise ValueError("no scenarios to build a workload from")
    return [
        generate_clip(
            scenario(names[i % len(names)]),
            seed=base_seed + i,
            num_frames=num_frames,
        )
        for i in range(num_clips)
    ]


def static_stretch_workload(
    num_clips: int,
    num_frames: int = 16,
    stretch: int = 4,
    scenarios: Optional[Sequence[str]] = None,
    base_seed: int = 0,
) -> List[VideoClip]:
    """A workload whose clips hold every frame for ``stretch`` steps.

    Each clip is a normal :func:`synthetic_workload` clip *time-stretched*:
    only ``ceil(num_frames / stretch)`` distinct frames are generated and
    each one (with its annotation) repeats ``stretch`` times — a
    repeated-scene trace, the synthetic analogue of near-frozen security
    footage or a paused feed.  Byte-identical consecutive frames are
    guaranteed by construction (the repeats are the same array rows), so
    this is the canonical duplicate-frame traffic for the
    content-addressed prefix cache: every key frame after the first of a
    stretch run hits.  Deterministic given ``base_seed``; ``stretch=1``
    degenerates to :func:`synthetic_workload`.
    """
    if num_frames < 1:
        raise ValueError(f"num_frames must be >= 1, got {num_frames}")
    if stretch < 1:
        raise ValueError(f"stretch must be >= 1, got {stretch}")
    distinct = -(-num_frames // stretch)  # ceil
    base = synthetic_workload(
        num_clips,
        num_frames=distinct,
        scenarios=scenarios,
        base_seed=base_seed,
    )
    stretched = []
    for clip in base:
        frames = np.repeat(clip.frames, stretch, axis=0)[:num_frames]
        annotations = [
            annotation
            for annotation in clip.annotations
            for _ in range(stretch)
        ][:num_frames]
        stretched.append(
            VideoClip(
                frames=frames,
                annotations=annotations,
                scenario=clip.scenario,
                fps=clip.fps,
            )
        )
    return stretched


def poisson_arrival_times(
    num_arrivals: int, rate: float, seed: int = 0
) -> List[float]:
    """Arrival instants (seconds) of a Poisson process with ``rate`` /s.

    Deterministic given ``seed``; the serving benchmark and ``repro
    serve`` both draw their traffic timing from here so runs are
    comparable.
    """
    if num_arrivals < 0:
        raise ValueError(f"num_arrivals must be >= 0, got {num_arrivals}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0 arrivals/s, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_arrivals)
    return [float(t) for t in np.cumsum(gaps)]


def bursty_arrival_times(
    num_arrivals: int,
    burst_size: int,
    period: float,
    spread: float = 0.0,
    seed: int = 0,
) -> List[float]:
    """Arrival instants of bursty traffic: ``burst_size`` near-simultaneous
    arrivals every ``period`` seconds.

    The antagonist of :func:`poisson_arrival_times`: instead of a smooth
    memoryless stream, whole bursts land at once and the fleet idles in
    between — the regime where a fixed shard count either over-provisions
    the lulls or drowns in the bursts, and where the autoscaler earns its
    keep.  Within a burst, arrivals are smeared over ``[0, spread)``
    seconds (deterministic given ``seed``) so admission doesn't collapse
    to one instant.  Arrivals are returned sorted.
    """
    if num_arrivals < 0:
        raise ValueError(f"num_arrivals must be >= 0, got {num_arrivals}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    if period <= 0:
        raise ValueError(f"period must be > 0 seconds, got {period}")
    if spread < 0:
        raise ValueError(f"spread must be >= 0 seconds, got {spread}")
    rng = np.random.default_rng(seed)
    offsets = (
        rng.uniform(0.0, spread, size=num_arrivals)
        if spread > 0
        else np.zeros(num_arrivals)
    )
    arrivals = [
        float((i // burst_size) * period + offsets[i])
        for i in range(num_arrivals)
    ]
    return sorted(arrivals)


def slack_deadlines(
    arrivals: Sequence[float],
    slack: float,
    jitter: float = 0.0,
    seed: int = 0,
) -> List[float]:
    """Absolute deadlines: each arrival plus ``slack`` (+ U[0, jitter)).

    The deadline vocabulary of ``repro serve --deadline`` and the chaos
    benchmark: a request must produce its first output within its slack
    budget or be shed.  Deterministic given ``seed``; ``jitter``
    de-synchronizes deadlines so shedding decisions don't all land on
    one step boundary.
    """
    if slack <= 0:
        raise ValueError(f"slack must be > 0 seconds, got {slack}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0 seconds, got {jitter}")
    rng = np.random.default_rng(seed)
    extra = (
        rng.uniform(0.0, jitter, size=len(arrivals))
        if jitter > 0
        else np.zeros(len(arrivals))
    )
    return [
        float(arrival + slack + extra[i])
        for i, arrival in enumerate(arrivals)
    ]
