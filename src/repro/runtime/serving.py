"""Streaming serving — a routing front end over sharded lane workers.

The serving layer is split along the line a deployment would draw:

* :class:`Router` — the front end.  Owns the lane registry (one
  :class:`~repro.runtime.spec.PipelineSpec` per lane), buckets incoming
  requests into shape-compatible lanes (by frame shape, or lane name
  when shapes are ambiguous), and rejects unrouteable traffic with a
  :class:`LaneRoutingError` that names every registered lane.  Pure
  bookkeeping — it never touches an executor.
* :class:`LaneWorker` — the back end.  One *shard* of one lane: warm
  executor slots, the lane's compiled inference plan, and the admission
  queue, all driving the declared stage graph
  (:func:`~repro.runtime.stage_graph.frame_lifecycle_graph`) one step at
  a time through a :class:`~repro.runtime.stage_graph.StageExecutor`.
  With a ``pipeline_depth=2`` spec the worker software-pipelines every
  step it can: at provably stable membership (full occupancy, no
  departure due) the handoff is definite, and across uncertain
  boundaries — possible admissions or evictions — it speculates
  (``spec.speculate``, default on): the surviving residents' next step
  is launched under a policy-state checkpoint and rolled back + replayed
  if membership actually changes.  Double-buffered and bit-identical in
  every case; :class:`ServingReport` surfaces the engagement and
  rollback rates.  A worker runs
  in-process, or — because its execution state is the picklable
  :class:`~repro.core.stages.LaneState` recipe away from a
  spec — inside a worker process, where it builds **its own** network
  and plan (plan-per-worker ownership: live plans never cross a process
  boundary; see :meth:`~repro.nn.network.Network.__getstate__`).
* :class:`ServingRuntime` — the facade that composes them.
  ``serve_workers=1`` (default) runs every lane's worker in-process
  under one virtual clock — the continuous-batching behaviour of PR 3,
  bit-identical and within its throughput envelope.  ``serve_workers=N``
  shards lanes across a process pool
  (:class:`~repro.runtime.scheduler.ShardPool`): each lane gets
  ``ceil(N / num_lanes)`` shards.  ``admission="static"`` splits each
  lane's requests round-robin in arrival order and every shard serves
  its slice independently; ``admission="shared"`` keeps one admission
  queue per lane that all of the lane's shards pull from, so an idle
  shard *steals* the next pending request — the tail-latency fix for
  skewed traffic.

Continuous batching semantics are unchanged from PR 3: requests wait in
per-lane FIFO queues and join the running batch at step boundaries; a
clip's slot is released the moment its last frame is served and the next
queued request takes it over; any occupancy up to capacity runs against
the same compiled plan geometry.  The correctness contract is also
unchanged — and is what makes sharding safe: every served clip's
outputs, key-frame decisions, and op counts are bit-identical to running
that clip alone through the serial pipeline, regardless of which
batch-mates (or which shard) shared its steps.

Time is virtual per serve loop: arrivals are honoured against a
monotonic clock, idle stretches with no arrival due are skipped rather
than slept, and ``wall_seconds`` counts busy time only.  A sharded
report aggregates under the concurrent-deployment model — shards run
side by side, so the aggregate busy/idle time is the *slowest shard's*
and throughput divides total frames by it; with the process backend on
enough cores that is also the elapsed time you observe.

Failure domains (see :mod:`repro.runtime.supervision` and
ARCHITECTURE.md): requests may carry a ``deadline`` — queued past it
they are *shed* with an explicit
:class:`~repro.runtime.supervision.ShedRecord`, and admission among
waiting requests is earliest-deadline-first on every path.  The
shared-admission backends are additionally *supervised*: the process
backend runs under a
:class:`~repro.runtime.supervision.ShardSupervisor` (heartbeats, acks,
failover, bounded respawn), the inline DES loop simulates the same
supervisor against virtual clocks, and both honour a deterministic
:class:`~repro.runtime.supervision.FaultPlan` for chaos testing.
Failed-over work re-executes bit-identically — the serving contract
makes recovery exactly replayable.

Traffic enters through the *front door*
(:mod:`repro.runtime.frontdoor`): ``serve()`` accepts any
:class:`~repro.runtime.frontdoor.RequestSource` (a list is one adapter),
ingestion is bounded by queue-depth watermarks
(:class:`~repro.runtime.frontdoor.BackpressureError` on the push side),
an :class:`~repro.runtime.frontdoor.AutoscalePolicy` can grow and
shrink a lane's shard pool from observed queue depth and deadline
slack, and configuration lives in one validated
:class:`~repro.runtime.frontdoor.ServerConfig` (the historical keyword
knobs survive as deprecated aliases).  ``serve()`` dispatches on a
resolved :class:`~repro.runtime.frontdoor.Backend` — in-process loop,
static shards, or shared admission — instead of branching inline.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.pipeline import FrameRecord, PipelineResult
from ..core.stages import LaneSlot, LaneState, PlanHandle, StepBatch
from ..hardware.fixed_point import QuantSavings
from ..nn.inference import (
    QUANT_DTYPES,
    quantized_savings,
    resolve_plan_dtype,
)
from ..video.generator import VideoClip
from .batched import WorkloadResult
from .frontdoor import (
    Autoscaler,
    Backend,
    FrontDoor,
    ListSource,
    RequestSource,
    ScaleEvent,
    ServerConfig,
    as_request_source,
)
from .prefix_service import PrefixService, PrefixStats
from .scheduler import (
    SchedulerConfig,
    ShardCrashError,
    ShardPool,
    deal_shard_budget,
)
from .spec import PipelineSpec
from .stage_graph import StageExecutor, frame_lifecycle_graph
from .supervision import (
    FailoverEvent,
    FaultPlan,
    ShardSupervisor,
    ShedRecord,
    SupervisorConfig,
    _edf_key,
    _PendingEntry,
    _shed_expired,
)

__all__ = [
    "ClipRequest",
    "RequestRecord",
    "ServingReport",
    "ServingRuntime",
    "ServerConfig",
    "Backend",
    "Router",
    "LaneWorker",
    "LaneRoutingError",
    "DuplicateRequestError",
    "ShardInfo",
]

#: latency percentiles the report surfaces (tails matter under load).
PERCENTILES = (50, 95, 99)


class LaneRoutingError(KeyError, ValueError):
    """A request could not be routed to any registered lane.

    Subclasses both :class:`KeyError` (unknown lane names are lookup
    failures) and :class:`ValueError` (shape mismatches are value
    failures), so existing callers catching either keep working; the
    message always names every registered lane and its frame shape.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0] if self.args else ""


class DuplicateRequestError(ValueError):
    """Two submitted requests share one ``request_id``.

    Records are keyed by request id downstream (verification, shed
    bookkeeping, failover re-dispatch), so aliased ids would silently
    merge two requests' accounting; the serve refuses up front and the
    message names both offending submission positions.
    """


@dataclass(frozen=True)
class ClipRequest:
    """One clip submitted to the serving runtime."""

    request_id: object
    clip: VideoClip
    #: when the request becomes visible to the server, in seconds on the
    #: runtime's (virtual) clock.
    arrival_time: float = 0.0
    #: explicit lane name; None routes by frame shape.
    lane: Optional[str] = None
    #: absolute time (same clock as ``arrival_time``) by which the
    #: first output must exist.  None = no deadline.  A request still
    #: queued when its deadline passes is *shed* — dropped with an
    #: explicit :class:`~repro.runtime.supervision.ShedRecord` outcome
    #: rather than served late; admission among waiting requests is
    #: earliest-deadline-first.
    deadline: Optional[float] = None

    def __post_init__(self):
        if len(self.clip) < 1:
            raise ValueError(f"request {self.request_id!r} has an empty clip")
        if self.arrival_time < 0:
            raise ValueError(
                f"arrival_time must be >= 0, got {self.arrival_time}"
            )
        if self.deadline is not None and self.deadline <= self.arrival_time:
            raise ValueError(
                f"request {self.request_id!r} deadline ({self.deadline}) "
                f"must be after its arrival ({self.arrival_time})"
            )


@dataclass
class RequestRecord:
    """Full accounting for one served request."""

    request_id: object
    lane: str
    arrival_time: float
    #: when the clip joined the running batch (a step boundary).
    admit_time: float
    #: when its first frame's output existed.
    first_output_time: float
    #: when its last frame's output existed and the slot was released.
    finish_time: float
    result: PipelineResult
    #: which shard of the lane served it (0 when unsharded).
    shard: int = 0
    #: how the request reached completion: "served" (first dispatch
    #: succeeded), "failover" (re-dispatched after its shard died), or
    #: "retried" (re-dispatched after an acknowledgement was lost).
    #: Results are bit-identical in every case — the label is purely
    #: provenance.
    outcome: str = "served"
    #: dispatch attempts (1 = no recovery was needed).
    attempts: int = 1
    #: the request's deadline, copied for accounting (None = none).
    deadline: Optional[float] = None

    @property
    def num_frames(self) -> int:
        return len(self.result)

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the first output beat the deadline (None = no deadline).

        Admitted requests always run to completion, so a recovered
        (failover/retried) request can finish past its deadline — that
        shows up here, never as a silent drop.
        """
        if self.deadline is None:
            return None
        return self.first_output_time <= self.deadline

    @property
    def enqueue_latency(self) -> float:
        """Seconds spent queued before joining the batch."""
        return self.admit_time - self.arrival_time

    @property
    def time_to_first_frame(self) -> float:
        """Seconds from arrival to the first served output."""
        return self.first_output_time - self.arrival_time

    @property
    def service_seconds(self) -> float:
        return self.finish_time - self.admit_time

    @property
    def frames_per_second(self) -> float:
        """This clip's service rate while resident in the batch."""
        return (
            self.num_frames / self.service_seconds
            if self.service_seconds > 0
            else 0.0
        )


@dataclass
class ShardInfo:
    """What one lane shard did during a sharded serve."""

    lane: str
    shard: int
    requests: int
    frames: int
    #: busy seconds of this shard's serve loop (its own clock).
    wall_seconds: float
    idle_seconds: float
    steps: int
    #: steps that consumed a pipelined (precomputed) head.
    pipelined_steps: int = 0
    #: speculative head launches.
    speculated: int = 0
    #: speculative launches rolled back (membership mismatch/abandon).
    rollbacks: int = 0
    #: fused prefix batches this shard's service executed (0 when the
    #: shard ran without a prefix service or nothing coincided).
    prefix_fused_batches: int = 0
    #: prefix-cache hits / misses / evictions on this shard's service.
    prefix_cache_hits: int = 0
    prefix_cache_misses: int = 0
    prefix_cache_evictions: int = 0
    #: prefix MACs the cache hits avoided.
    prefix_saved_macs: int = 0

    @property
    def frames_per_second(self) -> float:
        return self.frames / self.wall_seconds if self.wall_seconds else 0.0


@dataclass
class ServingReport:
    """What one serving run did, per request and in aggregate."""

    #: per-request accounting, in submission order.
    records: List[RequestRecord]
    #: busy wall-clock seconds (idle gaps with no arrival due are skipped,
    #: not counted).  For a sharded run this is the slowest shard's busy
    #: time — shards run concurrently, so it is the aggregate's divisor.
    wall_seconds: float
    #: virtual seconds skipped while idle (slowest shard's, when sharded).
    idle_seconds: float
    #: lockstep steps executed across all lanes and shards.
    steps: int
    #: per-lane slot capacity the runtime was configured with.
    max_batch: int
    #: worker processes the run was sharded over (1 = in-process).
    serve_workers: int = 1
    #: per-shard accounting (empty for in-process runs).
    shards: List[ShardInfo] = field(default_factory=list)
    #: how sharded requests were assigned: "static" round-robin slices
    #: or a "shared" per-lane admission queue (work stealing).
    admission: str = "static"
    #: steps that consumed a pipelined (precomputed) head, across all
    #: lanes and shards.  0 on a sequential (pipeline_depth=1) run.
    pipelined_steps: int = 0
    #: speculative head launches across all lanes and shards.
    speculated: int = 0
    #: speculative launches rolled back on a membership mismatch.
    rollbacks: int = 0
    #: requests dropped because their deadline passed while queued —
    #: explicit rejections, never silent.  ``records`` holds completed
    #: requests only; every submission is exactly one of the two.
    shed: List[ShedRecord] = field(default_factory=list)
    #: re-dispatches after a lost acknowledgement (the work may have
    #: run; only the ack vanished).
    retries: int = 0
    #: requests re-dispatched because their shard crashed or stalled.
    failovers: int = 0
    #: replacement shards spawned after failures.
    respawns: int = 0
    #: every detected shard failure, in detection order.
    failover_events: List[FailoverEvent] = field(default_factory=list)
    #: every autoscaling decision that changed a lane's shard count,
    #: in decision order (empty without an autoscale policy).
    scale_events: List[ScaleEvent] = field(default_factory=list)
    #: ingestion pauses: excursions past the front door's ``max_pending``
    #: watermark (0 = unbounded or never reached).
    backpressure_pauses: int = 0
    #: fused ``run_prefix`` batches: coincident key frames from more
    #: than one lane/shard executed as one plan call (0 with the prefix
    #: service off or nothing coinciding).
    prefix_fused_batches: int = 0
    #: content-addressed prefix-cache hits / misses / evictions
    #: (0/0/0 with ``prefix_cache_mb=0``).
    prefix_cache_hits: int = 0
    prefix_cache_misses: int = 0
    prefix_cache_evictions: int = 0
    #: prefix MACs the cache hits avoided recomputing.
    prefix_saved_macs: int = 0
    #: plan family each lane ran under, by lane name ("float64",
    #: "float32", "int8", "q16") — lanes can mix dtypes.
    lane_dtypes: Dict[str, str] = field(default_factory=dict)
    #: estimated MAC-energy / traffic savings per *quantized* lane
    #: (float lanes are absent — there is nothing to compare).
    lane_quant_savings: Dict[str, QuantSavings] = field(default_factory=dict)

    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def num_shed(self) -> int:
        return len(self.shed)

    def outcome_counts(self) -> Dict[str, int]:
        """Completed-request outcomes plus the shed count, by label."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        if self.shed:
            counts["shed"] = len(self.shed)
        return counts

    @property
    def total_frames(self) -> int:
        return sum(record.num_frames for record in self.records)

    @property
    def frames_per_second(self) -> float:
        """Steady-state throughput: frames served per busy second.

        Sharded runs divide by the slowest shard's busy time (the
        concurrent-deployment model the process backend realizes).
        """
        return self.total_frames / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_occupancy(self) -> float:
        """Average clips resident per step (frames served per step)."""
        return self.total_frames / self.steps if self.steps else 0.0

    @property
    def speculation_engagement(self) -> float:
        """Fraction of steps whose head was precomputed in flight.

        Counts definite and speculative overlaps alike — it answers
        "how often did pipelining actually engage", which PR 5 could
        only say yes to at provably stable membership.
        """
        return self.pipelined_steps / self.steps if self.steps else 0.0

    @property
    def rollback_rate(self) -> float:
        """Fraction of speculative launches that were rolled back."""
        return self.rollbacks / self.speculated if self.speculated else 0.0

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-cache lookups answered from the cache."""
        lookups = self.prefix_cache_hits + self.prefix_cache_misses
        return self.prefix_cache_hits / lookups if lookups else 0.0

    def enqueue_latencies(self) -> np.ndarray:
        return np.array([record.enqueue_latency for record in self.records])

    def times_to_first_frame(self) -> np.ndarray:
        return np.array([record.time_to_first_frame for record in self.records])

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of enqueue latency and time-to-first-frame (s).

        Keys are ``enqueue_p50`` … ``ttff_p99``.  Means alone hide tail
        latency under load; these are what the CLI and the serving
        benchmark surface.

        A report with zero completed requests has no tails: the result
        is explicitly the **empty dict** (``np.percentile`` over empty
        samples would raise) — callers must treat a missing key as "no
        data", never as zero latency.
        """
        out: Dict[str, float] = {}
        if not self.records:
            return out
        series = {
            "enqueue": self.enqueue_latencies(),
            "ttff": self.times_to_first_frame(),
        }
        for prefix, values in series.items():
            for p in PERCENTILES:
                out[f"{prefix}_p{p}"] = float(np.percentile(values, p))
        return out

    def workload_result(self) -> WorkloadResult:
        """The per-clip results as a :class:`WorkloadResult`.

        Request order is submission order, so this compares directly
        (``matches``) against a serial/lockstep run of the same clips —
        sharded or not.  Shed requests have no result and are absent:
        with a nonempty ``shed`` list, compare per-record by request id
        against the serial run instead of positionally.
        """
        # dtype only carries over when every lane agrees on one — a
        # mixed deployment has no single workload-level answer.
        dtypes = set(self.lane_dtypes.values())
        shared = dtypes.pop() if len(dtypes) == 1 else "float64"
        return WorkloadResult(
            results=[record.result for record in self.records],
            wall_seconds=self.wall_seconds,
            path="serving",
            workers=self.serve_workers,
            prefix_fused_batches=self.prefix_fused_batches,
            prefix_cache_hits=self.prefix_cache_hits,
            prefix_cache_misses=self.prefix_cache_misses,
            prefix_cache_evictions=self.prefix_cache_evictions,
            prefix_saved_macs=self.prefix_saved_macs,
            dtype=shared,
            quant_savings=next(
                iter(self.lane_quant_savings.values()), None
            ) if len(self.lane_dtypes) == 1 else None,
        )

    def summary_rows(self) -> List[List[object]]:
        """Rows for the CLI / bench summary table."""
        rows: List[List[object]] = [
            ["path", "serving"],
            ["requests", self.num_requests],
            ["frames", self.total_frames],
            ["busy s", round(self.wall_seconds, 3)],
            ["idle s (skipped)", round(self.idle_seconds, 3)],
            ["frames/s", round(self.frames_per_second, 1)],
            ["steps", self.steps],
            ["mean occupancy", round(self.mean_occupancy, 2)],
            ["serve workers", self.serve_workers],
        ]
        if self.serve_workers > 1:
            rows.append(["admission", self.admission])
        for name in sorted(self.lane_dtypes):
            if self.lane_dtypes[name] == "float64":
                continue
            rows.append([f"lane {name} dtype", self.lane_dtypes[name]])
            savings = self.lane_quant_savings.get(name)
            if savings is not None:
                rows.append(
                    [
                        f"lane {name} est. MAC energy/traffic",
                        f"{savings.mac_energy_ratio:.2f}x / "
                        f"{savings.traffic_ratio:.2f}x",
                    ]
                )
        if self.shed or self.retries or self.failovers or self.respawns:
            rows.append(["shed", self.num_shed])
            rows.append(["retries", self.retries])
            rows.append(["failovers", self.failovers])
            rows.append(["respawns", self.respawns])
            recovered = sum(
                1 for record in self.records if record.outcome != "served"
            )
            rows.append(["recovered requests", recovered])
        missed = [
            record for record in self.records if record.met_deadline is False
        ]
        if missed:
            rows.append(["missed deadlines (served late)", len(missed)])
        if self.scale_events:
            peak = max(event.to_shards for event in self.scale_events)
            rows.append(["scale events", len(self.scale_events)])
            rows.append(["peak shards", peak])
        if self.backpressure_pauses:
            rows.append(["backpressure pauses", self.backpressure_pauses])
        if self.pipelined_steps or self.speculated:
            rows.append(["pipelined steps", self.pipelined_steps])
            rows.append(
                ["speculation engagement",
                 round(self.speculation_engagement, 3)]
            )
            rows.append(["rollbacks", self.rollbacks])
            rows.append(["rollback rate", round(self.rollback_rate, 3)])
        if (self.prefix_fused_batches or self.prefix_cache_hits
                or self.prefix_cache_misses):
            rows.append(["prefix batches fused", self.prefix_fused_batches])
            rows.append(
                ["prefix cache hits/misses",
                 f"{self.prefix_cache_hits}/{self.prefix_cache_misses}"]
            )
            rows.append(["prefix hit rate", round(self.prefix_hit_rate, 3)])
            if self.prefix_cache_evictions:
                rows.append(
                    ["prefix cache evictions", self.prefix_cache_evictions]
                )
            if self.prefix_saved_macs:
                rows.append(
                    ["prefix MMACs saved",
                     round(self.prefix_saved_macs / 1e6, 1)]
                )
        for key, value in self.latency_percentiles().items():
            # rsplit: percentile keys are "<metric>_p<NN>" and a metric
            # name may itself contain underscores.
            prefix, pct = key.rsplit("_", 1)
            rows.append([f"{prefix} {pct} ms", round(value * 1e3, 2)])
        for shard in self.shards:
            rows.append(
                [
                    f"shard {shard.lane}/{shard.shard}",
                    f"{shard.requests} req, {shard.frames} frames, "
                    f"{round(shard.frames_per_second, 1)} f/s",
                ]
            )
        return rows


@dataclass
class _Resident:
    """Request bookkeeping for one occupied slot.

    Execution state (executor, policy, cursor) lives in the worker's
    :class:`~repro.core.stages.LaneState`; this is the serving-side
    record of who occupies the slot and when.
    """

    seq: int
    request: ClipRequest
    admit_time: float
    first_output_time: Optional[float] = None
    records: List[FrameRecord] = field(default_factory=list)


class LaneWorker:
    """One shard of one lane: slots, plan, queue, and the stage graph.

    Holds the lane's picklable execution state
    (:class:`~repro.core.stages.LaneState`: warm executor slots, plan
    handle, per-clip cursors) plus the serving bookkeeping (admission
    queue, per-slot residents), and advances everything one lifecycle
    step at a time by running the declared stage graph at the current
    occupancy.

    A worker is cheap to build from its spec, which is how the sharded
    path works: the parent ships ``(lane, spec, capacity, requests)`` to
    a worker process and the process builds its own worker — its own
    network, its own compiled plan.
    """

    def __init__(self, name: str, spec: PipelineSpec, capacity: int,
                 shard: int = 0, prefix_coalesce: bool = True,
                 prefix_cache_mb: float = 0.0):
        self.name = name
        self.spec = spec
        self.capacity = capacity
        self.shard = shard
        #: the worker's prefix service (fused key-frame batches +
        #: content-addressed cache).  Built per worker here; runtime
        #: serve paths that share one service across workers — the
        #: in-process loop and the inline DES — overwrite the attribute
        #: with the shared instance before serving.
        self.prefix_service = PrefixService(
            coalesce=prefix_coalesce, cache_mb=prefix_cache_mb
        )
        network = spec.shared_network()
        self.frame_shape: Tuple[int, int] = tuple(network.input_shape[1:])
        # Slots hold warm executors for the worker's lifetime; admitted
        # clips borrow one and release it on departure.
        slots = []
        for _ in range(capacity):
            executor = spec.build_executor(network)
            executor.reset()
            slots.append(LaneSlot(executor=executor))
        plan_handle = (
            PlanHandle(network, spec.dtype)
            if spec.cnn_engine == "planned"
            else None
        )
        if plan_handle is not None:
            plan_handle.resolve(capacity)  # compile at capacity up front
        self.state = LaneState(slots=slots, plan=plan_handle)
        self.graph = frame_lifecycle_graph(planned=plan_handle is not None)
        self.executor = StageExecutor(
            self.graph, pipeline_depth=spec.pipeline_depth
        )
        #: whether uncertain step boundaries may pipeline speculatively.
        #: Requires a speculation-safe graph: the legacy graph's head
        #: includes per-clip CNN execution (un-checkpointable key
        #: state), so it falls back to PR 5's stable-only overlap.
        self.speculate = spec.speculate and self.executor.speculation_safe
        #: the pipelined next-step batch (its head stages already ran).
        self._pending: Optional[StepBatch] = None
        #: the in-flight (batch, positions, env) between ``begin_step``
        #: and its ``finish_step``.
        self._round = None
        #: lazy double-buffer engine for pipelined RFBME.
        self._shadow_engine = None
        #: memoised ``[occupancy, min frames remaining]`` behind the
        #: stability predicate; None = must rescan (membership event).
        self._stable_cache: Optional[List[int]] = None
        #: how many times the stability predicate actually scanned the
        #: slots (membership events), vs. answering from the cache.
        self._membership_scans = 0
        self.residents: List[Optional[_Resident]] = [None] * capacity
        self.queue: "deque[Tuple[int, ClipRequest]]" = deque()

    # -------------------------------------------------------------- #
    @property
    def plan(self):
        """The lane's live inference plan (None on the legacy engine)."""
        return self.state.plan.resolve() if self.state.plan else None

    def has_free_slot(self) -> bool:
        return any(resident is None for resident in self.residents)

    def has_active(self) -> bool:
        return any(resident is not None for resident in self.residents)

    def active_residents(self) -> List[_Resident]:
        return [resident for resident in self.residents if resident is not None]

    def admit(self, seq: int, request: ClipRequest, now: float) -> None:
        """Seat ``request`` in a free slot, fresh-executor state."""
        index = self.residents.index(None)
        slot = self.state.slots[index]
        slot.executor.reset()  # identical start state to a fresh serial run
        slot.policy = self.spec.build_policy()
        slot.policy.reset()
        slot.cursor = 0
        self.residents[index] = _Resident(seq, request, now)
        self._stable_cache = None  # membership changed: predicate rescans

    def _build_batch(self, positions: List[int], advance: int = 0,
                     engine=None) -> StepBatch:
        """The step batch ``advance`` frames ahead of the slot cursors."""
        return StepBatch(
            state=self.state,
            positions=positions,
            frames=[
                self.residents[i].request.clip.frames[
                    self.state.slots[i].cursor + advance
                ]
                for i in positions
            ],
            plan=(
                self.state.plan.resolve(len(positions))
                if self.state.plan
                else None
            ),
            cursors=[self.state.slots[i].cursor + advance for i in positions],
            engine=engine,
            prefix_service=self.prefix_service,
        )

    def _membership_stable(self, positions: List[int]) -> bool:
        """Whether the next step is *guaranteed* to run these same slots.

        True only when every slot is occupied (a free slot could admit a
        queued request at the next boundary) and no resident serves its
        last frame this step (no departure frees a slot).  This is the
        full-occupancy steady state, where the pipelined next batch is
        definite — no checkpoint needed; anywhere else the worker may
        still overlap, but only speculatively.

        The scan is memoised: membership only changes at admissions and
        departures, so between membership events the predicate answers
        from a cached ``[occupancy, min frames remaining]`` pair that
        :meth:`step` decrements as cursors advance — a lockstep-like run
        (everyone admitted up front, equal lengths) pays exactly one
        scan, not one per step.
        """
        if self._stable_cache is None:
            self._membership_scans += 1
            remaining = [
                len(self.residents[i].request.clip) - self.state.slots[i].cursor
                for i in positions
            ]
            self._stable_cache = [len(positions), min(remaining, default=0)]
        occupancy, min_remaining = self._stable_cache
        return occupancy == self.capacity and min_remaining > 1

    def step(self) -> List[_Resident]:
        """Serve one frame of every resident clip; return departures.

        One pass of the stage executor at current occupancy: batched
        RFBME over the slots with a stored key, per-clip decisions at
        clip-local cursors, then the batched (or legacy per-clip) CNN
        stages.  Slots whose clip finished release their executor and
        free up for the next admission.

        With a pipelined spec (``pipeline_depth >= 2``) the next step's
        RFBME/decisions are launched against this step's CNN tail
        (double-buffered engine) and picked up by the next :meth:`step`
        call.  At provably stable membership the handoff is *definite*;
        anywhere else — a free slot that might admit, a departure due —
        the worker (``spec.speculate``) hands over the *survivors*
        batch speculatively: the clips certain to still be resident
        continue at their next cursors, and if an admission changes
        membership the executor rolls the speculation back and replays
        (bit-identical, the overlap is merely forfeited for that step).
        """
        self.begin_step(register=False)
        return self.finish_step()

    def begin_step(self, register: bool = True) -> None:
        """Phase 1 of a serve round: head stages + this step's decisions.

        Resolves the step batch (reusing or discarding a pipelined
        handoff), runs the stage executor up to the coalescing barrier —
        so the step's key-frame decisions are final, including any
        speculation rollback — and, with ``register=True``, registers
        the key rows with the worker's prefix service for the round's
        :meth:`~repro.runtime.prefix_service.PrefixService.flush`.  Must
        be paired with exactly one :meth:`finish_step`.
        """
        positions = [
            i for i, resident in enumerate(self.residents) if resident is not None
        ]
        batch = None
        if self._pending is not None:
            pending, self._pending = self._pending, None
            if list(pending.positions) == positions and all(
                pending.cursors[k] == self.state.slots[i].cursor
                for k, i in enumerate(positions)
            ):
                batch = pending  # the pipelined head is for this step
            else:
                # Membership changed under a speculative handoff; the
                # executor recognises the fresh batch is not the one it
                # speculated on, rolls back, and replays the head.
                batch = self._build_batch(positions)
        if batch is None:
            batch = self._build_batch(positions)
        env = self.executor.begin_step(batch)
        self._round = (batch, positions, env)
        if register and self.prefix_service is not None:
            self.prefix_service.prepare(batch, env.get("decisions"))

    def finish_step(self) -> List[_Resident]:
        """Phase 2 of a serve round: CNN stages, handoff, bookkeeping."""
        batch, positions, env = self._round
        self._round = None
        next_batch = None
        speculative = False
        if self.executor.pipelined:
            if self._membership_stable(positions):
                survivors = positions
            elif self.speculate:
                # Slots past their last frame depart this step for sure;
                # everyone else survives into step t+1 (admissions can
                # only fill *other* slots).
                survivors = [
                    i
                    for i in positions
                    if self.state.slots[i].cursor + 1
                    < len(self.residents[i].request.clip)
                ]
                speculative = True
            else:
                survivors = []
            if survivors:
                if self._shadow_engine is None:
                    self._shadow_engine = self.state.build_pipeline_engine()
                # Alternate engines between the two in-flight contexts.
                alternate = (
                    self._shadow_engine if batch.engine is None else None
                )
                next_batch = self._build_batch(survivors, advance=1,
                                               engine=alternate)
                self._pending = next_batch
        self.executor.finish_step(env, next_batch=next_batch,
                                  speculative=speculative)
        finished: List[_Resident] = []
        for k, i in enumerate(positions):
            resident = self.residents[i]
            resident.records.append(env["records"][k])
            slot = self.state.slots[i]
            slot.cursor += 1
            if slot.cursor >= len(resident.request.clip):
                slot.executor.release()
                slot.policy = None
                self.residents[i] = None
                finished.append(resident)
        if finished:
            self._stable_cache = None  # departures: predicate rescans
        elif self._stable_cache is not None:
            self._stable_cache[1] -= 1  # same slots, one frame closer
        return finished

    def overlap_credit(
        self, raw_step_seconds: float, inline_cpu_seconds: float
    ) -> float:
        """Concurrent-overlap timeline credit for the step just run.

        On a core-starved host the pipelined head time-slices the same
        CPU as the tail it nominally overlaps, so the measured wall
        duration of a step is ``head + tail`` (plus whatever the OS
        preempted) rather than what a concurrent deployment realizes:
        the classic two-stage pipeline bound ``max(head, tail)``.  The
        credit is the difference between the raw wall duration and that
        modeled duration — ``max(inline CPU, joined-head CPU)`` when the
        step consumed an in-flight head, plain inline CPU otherwise
        (rolled-back heads replay inline, so their cost is already in
        the inline term and the wasted speculative work stays hidden,
        exactly as it would be on a spare core).  Charging CPU time
        rather than wall slices keeps the attribution per-step exact:
        the *next* head's work, which physically executes inside this
        step's wall window on one core, is charged to the step that
        joins it.  This is the per-step analogue of the shard-scaling
        benchmark's per-shard-clock convention.
        """
        head_busy = self.executor.consume_joined_head_busy()
        modeled = max(inline_cpu_seconds, head_busy)
        return max(0.0, raw_step_seconds - modeled)

    def serve_shard(
        self,
        assigned: Sequence[Tuple[int, ClipRequest]],
        clock: Optional[Callable[[], float]] = None,
    ) -> "_ShardOutcome":
        """Run the full serve loop for this shard's slice of traffic.

        The single-worker form of the loop :class:`ServingRuntime` runs
        across all in-process workers: same admission discipline, same
        virtual-time idle skipping, on this shard's own clock.
        """
        clock = clock or time.perf_counter
        self.executor.reset_stats()
        if self.prefix_service is not None:
            self.prefix_service.reset_stats()
        # Router-less pair door: seqs are preassigned by the parent, so
        # the shard replays its slice without validation or watermarks.
        door = FrontDoor(_PairSource(assigned))
        done, wall, idle, steps, shed = _serve_loop(
            [self], lambda request: self, door, clock,
            prefix_service=self.prefix_service,
        )
        stats = self.executor.stats
        prefix = (
            self.prefix_service.stats if self.prefix_service is not None
            else None
        )
        return _ShardOutcome(
            lane=self.name,
            shard=self.shard,
            records=done,
            wall_seconds=wall,
            idle_seconds=idle,
            steps=steps,
            pipelined_steps=stats.pipelined_steps,
            speculated=stats.speculated,
            rollbacks=stats.rollbacks,
            shed=shed,
            prefix_fused_batches=prefix.fused_batches if prefix else 0,
            prefix_cache_hits=prefix.hits if prefix else 0,
            prefix_cache_misses=prefix.misses if prefix else 0,
            prefix_cache_evictions=prefix.evictions if prefix else 0,
            prefix_saved_macs=prefix.saved_macs if prefix else 0,
        )

    def release(self) -> None:
        """Drop resident state and hand plan scratch back."""
        self._pending = None
        self._round = None
        self._stable_cache = None
        self.executor.close()  # rolls back any abandoned speculation
        for index, resident in enumerate(self.residents):
            if resident is not None:
                self.state.slots[index].executor.release()
                self.state.slots[index].policy = None
                self.residents[index] = None
        self.queue.clear()
        if self.state.plan is not None:
            self.state.plan.resolve().shrink(1)


class _PairSource(RequestSource):
    """Replay preassigned ``(seq, request)`` pairs (a shard's slice).

    Unlike :class:`~repro.runtime.frontdoor.ListSource`, seqs are the
    parent's submission numbers, not list positions — the shard's
    records must key by them so the aggregate stays in submission
    order.
    """

    def __init__(self, pairs: Sequence[Tuple[int, ClipRequest]]):
        super().__init__()
        self._pairs = deque(sorted(
            pairs, key=lambda item: (item[1].arrival_time, item[0])
        ))

    def _next_pair(self) -> Optional[Tuple[int, ClipRequest]]:
        return self._pairs.popleft() if self._pairs else None

    @property
    def finished(self) -> bool:
        return not self._pairs


class Router:
    """Serving front end: lane registry, shape bucketing, shard assignment.

    Pure routing — admission timing and execution belong to the workers.
    A request routes by explicit lane name, or by frame shape when the
    shape identifies exactly one lane; anything else raises
    :class:`LaneRoutingError` naming every registered lane.
    """

    def __init__(self, specs: Mapping[str, PipelineSpec]):
        if not specs:
            raise ValueError("at least one lane spec is required")
        self.specs: Dict[str, PipelineSpec] = dict(specs)
        self.frame_shapes: Dict[str, Tuple[int, int]] = {
            name: tuple(spec.shared_network().input_shape[1:])
            for name, spec in self.specs.items()
        }
        self._by_shape: Dict[Tuple[int, int], List[str]] = {}
        for name, shape in self.frame_shapes.items():
            self._by_shape.setdefault(shape, []).append(name)

    def describe_lanes(self) -> str:
        """``name=shape`` for every registered lane (error messages)."""
        return ", ".join(
            f"{name}={self.frame_shapes[name]}" for name in self.specs
        )

    def lane_for(self, request: ClipRequest) -> str:
        """The lane name that will serve ``request`` (shape bucketing)."""
        shape = tuple(request.clip.frames.shape[1:])
        if request.lane is not None:
            if request.lane not in self.specs:
                raise LaneRoutingError(
                    f"unknown lane {request.lane!r}; registered lanes: "
                    f"{self.describe_lanes()}"
                )
            if shape != self.frame_shapes[request.lane]:
                raise LaneRoutingError(
                    f"request {request.request_id!r} has {shape} frames; "
                    f"lane {request.lane!r} serves "
                    f"{self.frame_shapes[request.lane]} (registered lanes: "
                    f"{self.describe_lanes()})"
                )
            return request.lane
        names = self._by_shape.get(shape, [])
        if not names:
            raise LaneRoutingError(
                f"no lane serves frame shape {shape}; registered lanes: "
                f"{self.describe_lanes()}"
            )
        if len(names) > 1:
            raise LaneRoutingError(
                f"frame shape {shape} matches lanes {names}; set "
                f"ClipRequest.lane (registered lanes: {self.describe_lanes()})"
            )
        return names[0]

    def partition(
        self, requests: Sequence[ClipRequest]
    ) -> Dict[str, List[Tuple[int, ClipRequest]]]:
        """Requests per lane, ``(submission seq, request)`` in arrival
        order (stable on submission order for ties)."""
        ordered = sorted(
            enumerate(requests),
            key=lambda item: (item[1].arrival_time, item[0]),
        )
        per_lane: Dict[str, List[Tuple[int, ClipRequest]]] = {
            name: [] for name in self.specs
        }
        for seq, request in ordered:
            per_lane[self.lane_for(request)].append((seq, request))
        return per_lane


@dataclass
class _ShardOutcome:
    """What one shard's serve loop returned (picklable)."""

    lane: str
    shard: int
    records: Dict[int, RequestRecord]
    wall_seconds: float
    idle_seconds: float
    steps: int
    pipelined_steps: int = 0
    speculated: int = 0
    rollbacks: int = 0
    #: requests this shard shed at its admission boundary.
    shed: List[ShedRecord] = field(default_factory=list)
    #: per-shard prefix-service counters (0s when shards shared one
    #: service — the aggregate then reads the service directly).
    prefix_fused_batches: int = 0
    prefix_cache_hits: int = 0
    prefix_cache_misses: int = 0
    prefix_cache_evictions: int = 0
    prefix_saved_macs: int = 0

    def info(self) -> ShardInfo:
        """This outcome's report row — the one place it is derived."""
        return ShardInfo(
            lane=self.lane,
            shard=self.shard,
            requests=len(self.records),
            frames=sum(
                record.num_frames for record in self.records.values()
            ),
            wall_seconds=self.wall_seconds,
            idle_seconds=self.idle_seconds,
            steps=self.steps,
            pipelined_steps=self.pipelined_steps,
            speculated=self.speculated,
            rollbacks=self.rollbacks,
            prefix_fused_batches=self.prefix_fused_batches,
            prefix_cache_hits=self.prefix_cache_hits,
            prefix_cache_misses=self.prefix_cache_misses,
            prefix_cache_evictions=self.prefix_cache_evictions,
            prefix_saved_macs=self.prefix_saved_macs,
        )


@dataclass(frozen=True)
class _ShardTask:
    """Everything a worker process needs to serve one lane shard."""

    lane: str
    shard: int
    spec: PipelineSpec
    capacity: int
    assigned: Tuple[Tuple[int, ClipRequest], ...]
    #: prefix-service knobs, rebuilt per process (a cache never crosses
    #: a process boundary — each shard owns its own).
    prefix_coalesce: bool = True
    prefix_cache_mb: float = 0.0


def _run_shard(task: _ShardTask) -> _ShardOutcome:
    """Build a warm worker for the shard and serve its slice.

    Module-level so :class:`~repro.runtime.scheduler.ShardPool` can ship
    it to worker processes; construction (network load, plan compile at
    capacity) happens before the shard's clock starts, so shard busy
    time measures serving, not setup.
    """
    worker = LaneWorker(
        task.lane, task.spec, task.capacity, shard=task.shard,
        prefix_coalesce=task.prefix_coalesce,
        prefix_cache_mb=task.prefix_cache_mb,
    )
    return worker.serve_shard(task.assigned)


def _admission_key(seq: int, request: ClipRequest) -> Tuple[float, float, int]:
    """Earliest-deadline-first admission order for a ``(seq, request)``.

    Deadline-less requests sort last by deadline and fall back to
    arrival then submission order — exactly the historical FIFO — so
    slack ordering only reorders traffic that actually has slack.
    """
    return (
        request.deadline if request.deadline is not None else float("inf"),
        request.arrival_time,
        seq,
    )


def _finalize_step(
    worker: "LaneWorker",
    finished: Sequence[_Resident],
    current: float,
    done: Dict[int, RequestRecord],
) -> None:
    """Post-step accounting shared by every serve loop.

    Stamps first-output times (for residents and departures alike) at
    ``current`` on the loop's clock and turns each departure into its
    :class:`RequestRecord`.  One definition, so the static, stealing,
    and discrete-event loops can never drift apart in how they account
    a step.
    """
    for resident in worker.active_residents():
        if resident.first_output_time is None:
            resident.first_output_time = current
    for resident in finished:
        if resident.first_output_time is None:
            resident.first_output_time = current
        done[resident.seq] = RequestRecord(
            request_id=resident.request.request_id,
            lane=worker.name,
            arrival_time=resident.request.arrival_time,
            admit_time=resident.admit_time,
            first_output_time=resident.first_output_time,
            finish_time=current,
            result=PipelineResult(records=resident.records),
            shard=worker.shard,
            deadline=resident.request.deadline,
        )


def _serve_work_stealing(
    workers: List[LaneWorker],
    pending_by_lane: Mapping[str, Sequence[Tuple[int, ClipRequest]]],
    clock: Callable[[], float],
    fault_plan: Optional[FaultPlan] = None,
    supervisor: Optional[SupervisorConfig] = None,
    spawn_worker: Optional[Callable[[str, int], LaneWorker]] = None,
    door: Optional[FrontDoor] = None,
    autoscaler: Optional[Autoscaler] = None,
    prefix_service: Optional[PrefixService] = None,
) -> Tuple[List[_ShardOutcome], List[ShedRecord], List[FailoverEvent],
           Dict[str, int]]:
    """Discrete-event serve loop: concurrent shards, shared lane queues.

    Simulates N shards running side by side in one thread: each shard
    keeps its own virtual clock (the sum of its real step durations plus
    idle skips), and at every event the shard with the earliest
    actionable time acts — shedding expired requests, admitting due
    ones earliest-deadline-first from its *lane's* shared backlog while
    it has free slots, then stepping its residents.  A request is
    therefore admitted by whichever shard reaches a free slot earliest
    in virtual time: work stealing under the same concurrent-shard
    model the static path's per-shard loops realize, deterministic
    given step durations, honouring an injected clock.

    This loop is also the inline backend for deterministic fault
    injection — the simulated twin of the process backend's
    :class:`~repro.runtime.supervision.ShardSupervisor`, firing the
    same ``fault_plan`` against per-shard virtual clocks: a ``kill``
    ends the shard at its fire time and the residents' requests are
    re-dispatched (outcome ``"failover"``) once the virtual supervisor
    notices — ``heartbeat_timeout`` after death; a ``stall`` freezes
    the shard's clock for its duration, or fails it over exactly like a
    kill when the stall exceeds ``heartbeat_timeout`` (silence and
    death are indistinguishable to a supervisor); a ``drop_ack``
    discards a completed record and re-dispatches the request after
    ``ack_timeout`` (outcome ``"retried"``).  Re-execution is
    bit-identical by the serving contract, so every recovery is exactly
    replayable.  A lane that loses every shard spawns a replacement via
    ``spawn_worker`` while ``max_respawns`` budget remains; past that,
    remaining work raises an explicit
    :class:`~repro.runtime.scheduler.ShardCrashError` — never a hang.

    With a ``door`` the lane backlogs are fed incrementally from the
    front door (streaming sources serve without being drained up
    front, and ingestion honours the door's watermark); with an
    ``autoscaler`` each admission boundary also observes its lane —
    backlog depth per live shard, earliest-deadline slack — and acts on
    the policy's target: growth spawns a shard via ``spawn_worker``
    (not counted as a respawn), shrinkage marks the least-loaded sibling
    *draining* — it steps its residents to completion, admits nothing
    new, and retires once empty.  Scaling never touches results: every
    admitted request runs the same bit-identical serve regardless of
    when its shard was spawned.

    With a ``prefix_service`` the simulation also coalesces *across
    simulated shards*: when other live, active shards are tied with the
    acting shard at exactly its event time (the lockstep the injected
    deterministic clocks produce), the whole cohort steps as one
    two-phase round — every member's key decisions first, one fused
    prefix flush, then every member's CNN stages — and each member is
    charged the full round duration (tied shards stay tied, keeping
    event order deterministic).  The shared service also shares its
    content cache across all simulated shards.  Results are
    bit-identical either way.

    Returns ``(outcomes, shed, failover events, counters)`` with one
    outcome per worker (dead and respawned shards included) in spawn
    order and ``counters`` keying ``retries``/``failovers``/``respawns``.
    """
    config = supervisor or SupervisorConfig()
    plan = fault_plan or FaultPlan()
    lane_pending: Dict[str, List[_PendingEntry]] = {
        name: [
            _PendingEntry(seq=seq, request=request, lane=name,
                          available=request.arrival_time)
            for seq, request in items
        ]
        for name, items in pending_by_lane.items()
    }
    virtual = {worker: 0.0 for worker in workers}
    busy = {worker: 0.0 for worker in workers}
    idle = {worker: 0.0 for worker in workers}
    steps = {worker: 0 for worker in workers}
    records: Dict[LaneWorker, Dict[int, RequestRecord]] = {
        worker: {} for worker in workers
    }
    mean_step = {worker: 1e-3 for worker in workers}
    kills = {
        worker: deque(plan.for_shard(worker.name, worker.shard))
        for worker in workers
    }
    for worker in workers:
        kills[worker] = deque(
            e for e in kills[worker] if e.kind == "kill"
        )
    stalls = {
        worker: deque(
            e for e in plan.for_shard(worker.name, worker.shard)
            if e.kind == "stall"
        )
        for worker in workers
    }
    drops = {
        worker: deque(
            e for e in plan.for_shard(worker.name, worker.shard)
            if e.kind == "drop_ack"
        )
        for worker in workers
    }
    alive = set(workers)
    draining: set = set()
    in_flight: Dict[int, _PendingEntry] = {}
    shed: List[ShedRecord] = []
    failover_events: List[FailoverEvent] = []
    counters = {"retries": 0, "failovers": 0, "respawns": 0}

    def add_worker(lane: str, at: float, scale: bool = False) -> LaneWorker:
        shard_index = max(w.shard for w in workers if w.name == lane) + 1
        replacement = spawn_worker(lane, shard_index)
        workers.append(replacement)
        for table, default in (
            (virtual, at), (busy, 0.0), (idle, 0.0), (steps, 0),
            (mean_step, 1e-3),
        ):
            table[replacement] = default
        records[replacement] = {}
        kills[replacement] = deque()
        stalls[replacement] = deque()
        drops[replacement] = deque()
        alive.add(replacement)
        if not scale:  # autoscale growth is not failure recovery
            counters["respawns"] += 1
        return replacement

    def fail_worker(worker: LaneWorker, death_time: float,
                    reason: str) -> None:
        """Kill a shard at ``death_time`` on its clock and fail it over.

        The virtual supervisor notices ``heartbeat_timeout`` later;
        the residents' requests rejoin the lane backlog at that
        detection time, partial per-frame work discarded (their
        re-execution is bit-identical from frame zero).
        """
        detect = death_time + config.heartbeat_timeout
        seqs = []
        for resident in worker.active_residents():
            entry = in_flight.pop(resident.seq)
            entry.attempts += 1
            entry.outcome = "failover"
            entry.available = detect
            lane_pending[worker.name].append(entry)
            seqs.append(resident.seq)
        counters["failovers"] += len(seqs)
        alive.discard(worker)
        respawned = False
        if (
            spawn_worker is not None
            and not any(w.name == worker.name for w in alive)
            and lane_pending[worker.name]
            and counters["respawns"] < config.max_respawns
        ):
            add_worker(worker.name, detect)
            respawned = True
        failover_events.append(FailoverEvent(
            lane=worker.name, shard=worker.shard, time=detect,
            reason=reason, seqs=tuple(sorted(seqs)), respawned=respawned,
        ))

    while True:
        if door is not None:
            # Feed lane backlogs from the front door; depth is the
            # queued-but-unadmitted total the watermark bounds.
            depth = sum(len(entries) for entries in lane_pending.values())
            for seq, request in door.take(depth):
                lane = door.lane_of(request)
                lane_pending[lane].append(_PendingEntry(
                    seq=seq, request=request, lane=lane,
                    available=request.arrival_time,
                ))
        chosen = None
        chosen_key = None
        for worker in workers:
            if worker not in alive:
                continue
            if worker in draining:
                if not worker.has_active():
                    # Drained dry: retire from the fleet.
                    alive.discard(worker)
                    draining.discard(worker)
                    continue
                key = (virtual[worker], worker.name, worker.shard)
            else:
                entries = lane_pending[worker.name]
                if worker.has_active():
                    key = (virtual[worker], worker.name, worker.shard)
                elif entries:
                    key = (
                        max(virtual[worker],
                            min(e.available for e in entries)),
                        worker.name,
                        worker.shard,
                    )
                else:
                    continue
            if chosen_key is None or key < chosen_key:
                chosen, chosen_key = worker, key
        if chosen is None:
            if door is not None and not door.exhausted:
                # A live source with nothing submitted yet: the only
                # place this loop touches real time — there is no
                # virtual event to jump to until traffic exists.
                if door.starved:
                    time.sleep(0.001)
                continue
            stranded = {
                name: entries for name, entries in lane_pending.items()
                if entries
            }
            if not stranded:
                break
            # Lanes with work but no live shard and no respawn budget
            # (in-budget respawns happen at failover time): explicit.
            lost = sorted(
                entry.seq
                for entries in stranded.values()
                for entry in entries
            )
            lanes = ", ".join(sorted(stranded))
            raise ShardCrashError(
                f"lane(s) {lanes} lost every shard with {len(lost)} "
                f"request(s) unresolved (seqs {lost}) and no respawn "
                f"budget left (max_respawns={config.max_respawns})",
                lost=lost,
            )
        worker = chosen
        event_time = chosen_key[0]
        # Injected faults fire before the shard acts at this boundary.
        if kills[worker] and kills[worker][0].at <= event_time:
            event = kills[worker].popleft()
            fail_worker(worker, max(event.at, virtual[worker]), "crash")
            continue
        if stalls[worker] and stalls[worker][0].at <= event_time:
            event = stalls[worker].popleft()
            duration = (
                event.seconds if event.seconds > 0
                else event.steps * mean_step[worker]
            )
            if duration > config.heartbeat_timeout:
                # Silent past the heartbeat: indistinguishable from
                # death, failed over as one (the stalled shard is
                # terminated; its residents re-dispatch).
                fail_worker(worker, max(event.at, virtual[worker]),
                            "stall")
                continue
            begin = max(virtual[worker], event.at)
            idle[worker] += (begin - virtual[worker]) + duration
            virtual[worker] = begin + duration
            continue
        entries = lane_pending[worker.name]
        if event_time > virtual[worker]:
            # Idle until the next arrival: skip virtually, never sleep.
            idle[worker] += event_time - virtual[worker]
            virtual[worker] = event_time
        kept, newly_shed = _shed_expired(
            entries, virtual[worker], shard=worker.shard
        )
        if newly_shed:
            lane_pending[worker.name] = entries = kept
            shed.extend(newly_shed)
        if autoscaler is not None and worker not in draining:
            # One observation per admission boundary: backlog depth per
            # live shard plus the earliest pending deadline's slack.
            live = [
                w for w in alive
                if w.name == worker.name and w not in draining
            ]
            slack = min(
                (e.request.deadline - virtual[worker]
                 for e in entries if e.request.deadline is not None),
                default=None,
            )
            target = autoscaler.observe(
                worker.name, len(live), len(entries), virtual[worker],
                deadline_slack=slack,
            )
            if target > len(live) and spawn_worker is not None:
                add_worker(worker.name, virtual[worker], scale=True)
            elif target < len(live):
                # Drain the least-loaded sibling (never the acting
                # shard if another exists): it finishes its residents,
                # admits nothing new, and retires once empty.
                victim = min(
                    [w for w in live if w is not worker] or live,
                    key=lambda w: (len(w.active_residents()), -w.shard),
                )
                draining.add(victim)
        while worker not in draining and worker.has_free_slot():
            due = [e for e in entries if e.available <= virtual[worker]]
            if not due:
                break
            entry = min(due, key=_edf_key)
            entries.remove(entry)
            worker.admit(entry.seq, entry.request, virtual[worker])
            in_flight[entry.seq] = entry
        if not worker.has_active():
            continue

        def account(member: LaneWorker, finished: List[_Resident],
                    duration: float) -> None:
            """Charge one stepped shard and settle its departures."""
            virtual[member] += duration
            busy[member] += duration
            steps[member] += 1
            mean_step[member] = duration
            _finalize_step(member, finished, virtual[member],
                           records[member])
            for resident in finished:
                entry = in_flight.pop(resident.seq)
                if drops[member] and drops[member][0].at <= virtual[member]:
                    # The ack is lost: the completed record never
                    # reaches the supervisor, which re-dispatches after
                    # ack_timeout.
                    drops[member].popleft()
                    del records[member][resident.seq]
                    entry.attempts += 1
                    entry.outcome = "retried"
                    entry.available = (
                        virtual[member] + config.resolved_ack_timeout
                    )
                    lane_pending[member.name].append(entry)
                    counters["retries"] += 1
                else:
                    record = records[member][resident.seq]
                    record.outcome = entry.outcome
                    record.attempts = entry.attempts

        cohort = [worker]
        if prefix_service is not None and prefix_service.coalesce:
            # Live, active shards tied at exactly this event time step
            # as one fused round (no pending fault may be due: fault
            # firing stays at the shard's own turn).
            cohort += [
                other for other in workers
                if other is not worker
                and other in alive
                and other.has_active()
                and virtual[other] == event_time
                and not (kills[other] and kills[other][0].at <= event_time)
                and not (stalls[other] and stalls[other][0].at <= event_time)
            ]
        if len(cohort) > 1:
            step_start = clock()
            for member in cohort:
                member.begin_step()
            prefix_service.flush()
            round_finished = [
                (member, member.finish_step()) for member in cohort
            ]
            duration = clock() - step_start
            # Concurrent-barrier model: every member pays the full
            # round, so tied shards stay tied (deterministic order).
            for member, finished in round_finished:
                account(member, finished, duration)
        else:
            step_start = clock()
            finished = worker.step()
            duration = clock() - step_start
            account(worker, finished, duration)
    outcomes = [
        _ShardOutcome(
            lane=worker.name,
            shard=worker.shard,
            records=records[worker],
            wall_seconds=busy[worker],
            idle_seconds=idle[worker],
            steps=steps[worker],
            pipelined_steps=worker.executor.stats.pipelined_steps,
            speculated=worker.executor.stats.speculated,
            rollbacks=worker.executor.stats.rollbacks,
        )
        for worker in workers
    ]
    return outcomes, shed, failover_events, counters


def _serve_loop(
    workers: Sequence[LaneWorker],
    route: Callable[[ClipRequest], LaneWorker],
    door: FrontDoor,
    clock: Callable[[], float],
    overlap_timeline: bool = False,
    prefix_service: Optional[PrefixService] = None,
) -> Tuple[Dict[int, RequestRecord], float, float, int, List[ShedRecord]]:
    """The continuous-batching serve loop over a set of lane workers.

    Traffic arrives through the ``door`` (nondecreasing arrival order —
    the source contract).  Requests become visible at their
    ``arrival_time``; admission and eviction happen at step boundaries;
    when no worker has a resident and no arrival is due, virtual time
    jumps to the next arrival instead of spinning (a *live* source with
    nothing submitted yet is the one place the loop waits in real
    time).  The door's watermark bounds how much traffic is pulled
    ahead of admission.  Queued requests whose deadline passes before
    admission are shed at the boundary (explicit :class:`ShedRecord`,
    never served late), and admission among waiting requests is
    earliest-deadline-first — deadline-less traffic keeps the
    historical FIFO order exactly.
    With ``overlap_timeline`` each pipelined step is charged its
    concurrent-overlap duration (:meth:`LaneWorker.overlap_credit`)
    instead of the host-serialized one, so latency accounting is
    comparable across hosts with any core count.

    ``prefix_service`` — the workers' shared
    :class:`~repro.runtime.prefix_service.PrefixService` (every worker's
    ``prefix_service`` attribute must be this instance) — turns each
    multi-worker step round into two phases: every active worker
    ``begin_step`` calls (head stages + key decisions), the service
    flushes once (fusing coincident key-frame prefixes across lanes
    into one plan call and answering repeats from the content cache),
    then every worker ``finish_step`` calls.  Bit-identical to per-worker
    stepping; with one active worker (or ``overlap_timeline``, whose
    per-step wall attribution a shared flush would blur) the loop
    falls back to plain ``step()`` and the service still serves its
    cache on the direct path.
    Returns ``(records by seq, busy seconds, idle seconds, steps,
    shed)``.
    """
    done: Dict[int, RequestRecord] = {}
    shed: List[ShedRecord] = []
    steps = 0
    skipped = 0.0
    credited = 0.0
    start = clock()

    def now() -> float:
        return (clock() - start) + skipped - credited

    while not door.exhausted or any(
        worker.queue or worker.has_active() for worker in workers
    ):
        current = now()
        depth = sum(len(worker.queue) for worker in workers)
        for seq, request in door.take(depth, now=current):
            route(request).queue.append((seq, request))
        for worker in workers:
            if worker.queue and any(
                request.deadline is not None
                for _, request in worker.queue
            ):
                entries = [
                    _PendingEntry(seq=seq, request=request,
                                  lane=worker.name, available=current)
                    for seq, request in worker.queue
                ]
                kept, newly_shed = _shed_expired(
                    entries, current, shard=worker.shard
                )
                if newly_shed:
                    shed.extend(newly_shed)
                    worker.queue = deque(
                        (entry.seq, entry.request) for entry in kept
                    )
            while worker.queue and worker.has_free_slot():
                index = min(
                    range(len(worker.queue)),
                    key=lambda i: _admission_key(*worker.queue[i]),
                )
                seq, request = worker.queue[index]
                del worker.queue[index]
                worker.admit(seq, request, current)
        if not any(worker.has_active() for worker in workers):
            # Idle with work still to come: skip ahead to the next
            # arrival instead of spinning.
            next_arrival = door.next_arrival()
            if next_arrival is not None:
                gap = next_arrival - current
                if gap > 0:
                    skipped += gap
            elif door.starved and not any(
                worker.queue for worker in workers
            ):
                # Live source, nothing submitted yet: no virtual event
                # exists to jump to, so wait briefly in real time.
                time.sleep(0.001)
            continue
        active = [worker for worker in workers if worker.has_active()]
        if (
            prefix_service is not None
            and prefix_service.coalesce
            and not overlap_timeline
            and len(active) > 1
        ):
            # Two-phase round: decisions for every lane first, one
            # fused/cached prefix flush, then the CNN stages per lane.
            for worker in active:
                worker.begin_step()
            prefix_service.flush()
            for worker in active:
                finished = worker.finish_step()
                steps += 1
                _finalize_step(worker, finished, now(), done)
            continue
        for worker in active:
            if overlap_timeline:
                step_start = now()
                cpu_start = time.thread_time()
                finished = worker.step()
                inline_cpu = time.thread_time() - cpu_start
                raw = now() - step_start
                credited += worker.overlap_credit(raw, inline_cpu)
            else:
                finished = worker.step()
            steps += 1
            _finalize_step(worker, finished, now(), done)
    wall = clock() - start - credited
    return done, wall, skipped, steps, shed


class ServingRuntime:
    """Serve clip requests with continuous batching, optionally sharded.

    ``spec`` is a single :class:`PipelineSpec` (one lane named
    ``"default"``) or a mapping of lane name to spec for heterogeneous
    deployments.  ``max_batch`` is the per-shard slot capacity: a shard
    never holds more than ``max_batch`` resident clips, and its
    inference plan is compiled once at that capacity.

    ``serve_workers`` selects the execution shape: ``1`` (default) runs
    every lane in-process under one virtual clock; ``N > 1`` shards
    lanes across a worker pool — each lane split into ``ceil(N /
    num_lanes)`` shards, requests assigned round-robin in arrival order,
    results aggregated into one :class:`ServingReport`.  Results are
    bit-identical either way; sharding only changes wall-clock time and
    latency accounting (each shard keeps its own clock).
    ``shard_backend`` resolves like
    :class:`~repro.runtime.scheduler.SchedulerConfig` backends: ``process``
    realizes shard concurrency, ``serial`` runs shards inline — useful on
    single-core hosts, where the report still aggregates under the
    concurrent model (slowest shard's busy time); ``auto`` picks between
    them by core count.  ``thread`` is refused: concurrent thread shards
    would share one plan's scratch and break bit identity.

    ``admission`` selects how a sharded run assigns requests to a lane's
    shards.  ``"static"`` (default) splits each lane's traffic
    round-robin in arrival order — the PR 4 shape, fully independent
    shards.  ``"shared"`` keeps one admission queue per lane that every
    shard of the lane pulls from, so an idle shard *steals* the next
    pending request instead of idling beside a backlogged sibling —
    under skewed traffic (e.g. long clips landing on one shard's slice)
    that is what fixes tail latency.  Inline (``serial``-resolved)
    shared-admission runs execute as a deterministic discrete-event
    simulation of concurrent shards (per-shard virtual clocks, the
    injected ``clock`` honoured); the ``process`` backend realizes the
    shared queue with a real cross-process queue on the real clock
    (arrivals released by the parent, no virtual-time skipping).
    Admission policy never changes results: per-clip bit identity holds
    regardless of which shard served a clip.

    ``clock`` is injectable (monotonic seconds) for deterministic tests
    and applies to unsharded and inline-shard serving; process shards
    always use :func:`time.perf_counter` (unless ``virtual_time``
    releases arrivals by logical timestamps).

    Configuration lives in one validated
    :class:`~repro.runtime.frontdoor.ServerConfig` —
    ``ServingRuntime(spec, ServerConfig(...))``.  The historical
    keyword knobs (``max_batch=...``, ``serve_workers=...``, …) still
    work as deprecated aliases and emit one :class:`DeprecationWarning`
    per construction.
    """

    #: the legacy keyword knobs accepted as deprecated aliases.
    _CONFIG_ALIASES = (
        "max_batch", "clock", "serve_workers", "shard_backend",
        "admission", "overlap_timeline", "fault_plan", "supervisor",
    )

    def __init__(
        self,
        spec: Union[PipelineSpec, Mapping[str, PipelineSpec]],
        config: Optional[Union[ServerConfig, int]] = None,
        **legacy,
    ):
        if isinstance(spec, PipelineSpec):
            specs: Dict[str, PipelineSpec] = {"default": spec}
        else:
            specs = dict(spec)
        if config is not None and not isinstance(config, ServerConfig):
            # Historical positional form: ServingRuntime(spec, max_batch).
            if isinstance(config, int):
                legacy.setdefault("max_batch", config)
                config = None
            else:
                raise TypeError(
                    f"config must be a ServerConfig, got "
                    f"{type(config).__name__}"
                )
        if legacy:
            unknown = sorted(
                name for name in legacy if name not in self._CONFIG_ALIASES
            )
            if unknown:
                raise TypeError(
                    f"unknown keyword argument(s) {unknown}; "
                    f"ServingRuntime accepts a ServerConfig plus the "
                    f"deprecated aliases {list(self._CONFIG_ALIASES)}"
                )
            if config is not None:
                raise TypeError(
                    "pass either a ServerConfig or the deprecated "
                    "keyword aliases, not both"
                )
            warnings.warn(
                "ServingRuntime(spec, max_batch=..., serve_workers=..., "
                "...) keywords are deprecated; pass "
                "ServingRuntime(spec, ServerConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            legacy.setdefault("fault_plan", None)
            legacy.setdefault("supervisor", None)
            config = ServerConfig(**legacy)
        if config is None:
            config = ServerConfig()
        #: the validated :class:`ServerConfig` this runtime serves under.
        self.config = config
        if config.inference_dtype is not None:
            # One dtype for every lane (per-lane dtypes come from per-lane
            # specs).  The quantized families exist only in the planned
            # engine — refuse a legacy-engine lane rather than silently
            # serving float.
            for name, lane_spec in specs.items():
                if (config.inference_dtype in QUANT_DTYPES
                        and lane_spec.cnn_engine != "planned"):
                    raise ValueError(
                        f"inference_dtype={config.inference_dtype!r} needs "
                        f"cnn_engine='planned', but lane {name!r} uses "
                        f"{lane_spec.cnn_engine!r}"
                    )
            specs = {
                name: replace(lane_spec, dtype=config.inference_dtype)
                for name, lane_spec in specs.items()
            }
        self.router = Router(specs)
        # Plan/lane validation happens here — the one place that always
        # has the router — not in ServerConfig, which a caller may build
        # long before any spec exists.
        _validate_fault_plan(config, self.router)
        self._workers: Optional[Dict[str, LaneWorker]] = None
        #: the shared prefix service of an in-flight inline DES serve
        #: (respawned/scaled shards spawned mid-serve must join it).
        self._des_prefix_service: Optional[PrefixService] = None

    # -- config accessors (the knobs' historical names) ------------- #
    @property
    def max_batch(self) -> int:
        return self.config.max_batch

    @property
    def serve_workers(self) -> int:
        return self.config.serve_workers

    @property
    def admission(self) -> str:
        return self.config.admission

    @property
    def overlap_timeline(self) -> bool:
        return self.config.overlap_timeline

    @property
    def fault_plan(self) -> FaultPlan:
        return self.config.fault_plan

    @property
    def supervisor(self) -> SupervisorConfig:
        return self.config.supervisor

    @property
    def clock(self) -> Callable[[], float]:
        return self.config.clock or time.perf_counter

    @property
    def shard_config(self) -> SchedulerConfig:
        """Pool resolution, sized to the worker budget (autoscale's
        ``max_shards`` when elastic, ``serve_workers`` otherwise)."""
        return SchedulerConfig(
            workers=self.config.pool_workers,
            backend=self.config.shard_backend,
        )

    # -------------------------------------------------------------- #
    @property
    def lanes(self) -> Dict[str, LaneWorker]:
        """In-process lane workers, built on first use.

        Sharded serves never touch these (worker processes build their
        own); in-process serves reuse them across calls so executors and
        plans stay warm.
        """
        if self._workers is None:
            self._workers = {
                name: LaneWorker(
                    name, lane_spec, self.max_batch,
                    prefix_coalesce=self.config.prefix_coalesce,
                    prefix_cache_mb=self.config.prefix_cache_mb,
                )
                for name, lane_spec in self.router.specs.items()
            }
        return self._workers

    def _build_prefix_service(self) -> PrefixService:
        """A fresh shared service for one serve (per-serve counters)."""
        return PrefixService(
            coalesce=self.config.prefix_coalesce,
            cache_mb=self.config.prefix_cache_mb,
        )

    def lane_for(self, request: ClipRequest) -> LaneWorker:
        """The in-process worker that would serve ``request``."""
        return self.lanes[self.router.lane_for(request)]

    def resolve_backend(self) -> Backend:
        """The one backend this config serves through.

        ``serve()`` dispatches here: the in-process loop (a single
        worker per lane, no elasticity), static shard slices, or the
        shared-admission family — which is also where autoscaling and
        fault injection live, as backend capabilities.
        """
        if self.config.autoscale is None and self.config.serve_workers == 1:
            return InProcessBackend(self)
        if self.config.admission == "static":
            return StaticShardBackend(self)
        return SharedAdmissionBackend(self)

    def serve(self, requests) -> ServingReport:
        """Serve a request stream; returns per-request accounting.

        ``requests`` is anything :func:`as_request_source` accepts: a
        sequence (the historical path — routing and duplicate-id
        failures surface before any serving starts), an iterator or
        generator, an :class:`asyncio.Queue`, or a
        :class:`~repro.runtime.frontdoor.RequestSource` such as a
        bounded :class:`~repro.runtime.frontdoor.QueueSource`.  The
        resolved backend then serves everything the front door yields.
        """
        source = as_request_source(requests)
        door = FrontDoor(
            source,
            router=self.router,
            max_pending=self.config.max_pending,
            resume_pending=self.config.resume_pending,
        )
        try:
            report = self.resolve_backend().serve(door)
        finally:
            source.close()
        report.backpressure_pauses = door.backpressure_pauses
        return report

    # -------------------------------------------------------------- #
    def _lane_quant_info(self):
        """(lane → plan family, lane → savings estimate) for the report.

        Derived from the lane specs, not the workers: the estimate is
        pure shape arithmetic, so sharded backends get it without
        shipping anything across the process boundary.
        """
        dtypes: Dict[str, str] = {}
        savings: Dict[str, QuantSavings] = {}
        for name, spec in self.router.specs.items():
            dtypes[name] = resolve_plan_dtype(spec.dtype)
            estimate = quantized_savings(spec.shared_network(), spec.dtype)
            if estimate is not None:
                savings[name] = estimate
        return dtypes, savings

    def _serve_in_process(self, door: FrontDoor) -> ServingReport:
        workers = list(self.lanes.values())
        # One shared service across every in-process lane: coincident
        # key frames fuse cross-lane and the content cache is global.
        service = self._build_prefix_service()
        for worker in workers:
            worker.executor.reset_stats()  # per-serve counters
            worker.prefix_service = service
        done, wall, idle, steps, shed = _serve_loop(
            workers, self.lane_for, door, self.clock,
            overlap_timeline=self.overlap_timeline,
            prefix_service=service,
        )
        lane_dtypes, lane_savings = self._lane_quant_info()
        return ServingReport(
            records=[done[seq] for seq in sorted(done)],
            wall_seconds=wall,
            idle_seconds=idle,
            steps=steps,
            max_batch=self.max_batch,
            serve_workers=1,
            admission=self.admission,
            shed=sorted(shed, key=lambda record: record.seq),
            pipelined_steps=sum(
                worker.executor.stats.pipelined_steps for worker in workers
            ),
            speculated=sum(
                worker.executor.stats.speculated for worker in workers
            ),
            rollbacks=sum(
                worker.executor.stats.rollbacks for worker in workers
            ),
            prefix_fused_batches=service.stats.fused_batches,
            prefix_cache_hits=service.stats.hits,
            prefix_cache_misses=service.stats.misses,
            prefix_cache_evictions=service.stats.evictions,
            prefix_saved_macs=service.stats.saved_macs,
            lane_dtypes=lane_dtypes,
            lane_quant_savings=lane_savings,
        )

    def _serve_sharded(
        self, per_lane: Dict[str, List[Tuple[int, ClipRequest]]]
    ) -> ServingReport:
        """Static assignment: slice each lane and serve on the pool."""
        shards_per_lane = -(-self.serve_workers // len(self.router.specs))
        tasks: List[_ShardTask] = []
        for name, lane_spec in self.router.specs.items():
            lane_spec.warm()  # workers load the cache, never race to train
            lane_requests = per_lane[name]
            for shard in range(shards_per_lane):
                assigned = tuple(lane_requests[shard::shards_per_lane])
                if not assigned:
                    continue  # an empty shard has nothing to build
                tasks.append(
                    _ShardTask(
                        name, shard, lane_spec, self.max_batch, assigned,
                        prefix_coalesce=self.config.prefix_coalesce,
                        prefix_cache_mb=self.config.prefix_cache_mb,
                    )
                )
        if self.shard_config.resolve(len(tasks)) == "serial":
            # Inline shards run in this process, so the injected clock
            # (deterministic tests) is honoured; each shard still gets
            # its own serve loop and its own busy/idle accounting (and,
            # mirroring the process backend, its own prefix cache).
            outcomes = [
                LaneWorker(
                    task.lane, task.spec, task.capacity, shard=task.shard,
                    prefix_coalesce=task.prefix_coalesce,
                    prefix_cache_mb=task.prefix_cache_mb,
                ).serve_shard(task.assigned, clock=self.clock)
                for task in tasks
            ]
        else:
            outcomes = ShardPool(self.shard_config).map(_run_shard, tasks)

        return self._aggregate_shards(outcomes)

    def _aggregate_shards(
        self,
        outcomes: Sequence[_ShardOutcome],
        shed: Sequence[ShedRecord] = (),
        failover_events: Sequence[FailoverEvent] = (),
        retries: int = 0,
        failovers: int = 0,
        respawns: int = 0,
        scale_events: Sequence[ScaleEvent] = (),
        prefix: Optional[PrefixStats] = None,
    ) -> ServingReport:
        """One report from per-shard outcomes, under the concurrent
        model: the slowest shard bounds the run, and its idle time is
        the one paired with that wall (mixing fields from different
        shards would describe a timeline no shard had).

        ``prefix`` carries the counters of a service *shared* across
        the shards (the inline DES); without it the per-shard counters
        are summed (independent services, the static/process paths)."""
        done: Dict[int, RequestRecord] = {}
        all_shed = list(shed)
        for outcome in outcomes:
            done.update(outcome.records)
            all_shed.extend(outcome.shed)
        shards = [outcome.info() for outcome in outcomes]
        slowest = max(shards, key=lambda s: s.wall_seconds, default=None)
        lane_dtypes, lane_savings = self._lane_quant_info()
        return ServingReport(
            records=[done[seq] for seq in sorted(done)],
            wall_seconds=slowest.wall_seconds if slowest else 0.0,
            idle_seconds=slowest.idle_seconds if slowest else 0.0,
            steps=sum(s.steps for s in shards),
            max_batch=self.max_batch,
            serve_workers=self.serve_workers,
            shards=shards,
            admission=self.admission,
            pipelined_steps=sum(s.pipelined_steps for s in shards),
            speculated=sum(s.speculated for s in shards),
            rollbacks=sum(s.rollbacks for s in shards),
            shed=sorted(all_shed, key=lambda record: record.seq),
            retries=retries,
            failovers=failovers,
            respawns=respawns,
            failover_events=list(failover_events),
            scale_events=list(scale_events),
            prefix_fused_batches=(
                prefix.fused_batches if prefix is not None
                else sum(s.prefix_fused_batches for s in shards)
            ),
            prefix_cache_hits=(
                prefix.hits if prefix is not None
                else sum(s.prefix_cache_hits for s in shards)
            ),
            prefix_cache_misses=(
                prefix.misses if prefix is not None
                else sum(s.prefix_cache_misses for s in shards)
            ),
            prefix_cache_evictions=(
                prefix.evictions if prefix is not None
                else sum(s.prefix_cache_evictions for s in shards)
            ),
            prefix_saved_macs=(
                prefix.saved_macs if prefix is not None
                else sum(s.prefix_saved_macs for s in shards)
            ),
            lane_dtypes=lane_dtypes,
            lane_quant_savings=lane_savings,
        )

    def _spawn_lane_worker(self, lane: str, shard: int) -> LaneWorker:
        worker = LaneWorker(lane, self.router.specs[lane],
                            self.max_batch, shard=shard,
                            prefix_coalesce=self.config.prefix_coalesce,
                            prefix_cache_mb=self.config.prefix_cache_mb)
        if self._des_prefix_service is not None:
            # Mid-serve spawns (respawn, autoscale growth) join the
            # DES-wide shared service: one cache, fused cohorts.
            worker.prefix_service = self._des_prefix_service
        return worker

    def _serve_shared(self, door: FrontDoor) -> ServingReport:
        """Sharded serving over shared per-lane admission queues.

        Inline (``serial``-resolved) runs simulate the concurrent shards
        with the discrete-event loop — deterministic, injected-clock
        friendly, and directly comparable to the static path's
        per-shard timelines.  The ``process`` backend realizes the
        shared queue for real: the parent releases requests at their
        arrival times into manager queues that the shard processes pull
        from (work stealing at request granularity, real clock — or
        logical timestamps under ``virtual_time``).

        With an autoscale policy each lane starts at the policy's
        ``min_shards`` and grows/shrinks from observed queue depth and
        deadline slack; the inline form streams straight from the front
        door, so an open (live) source can be served elastically without
        being drained up front.
        """
        config = self.config
        for lane_spec in self.router.specs.values():
            lane_spec.warm()  # workers load the cache, never race to train
        if config.autoscale is not None:
            return self._serve_autoscaled(door)
        per_lane = door.drain_per_lane()
        # Shards here are *concurrent* queue consumers (the process pool
        # is sized to the task count), so — unlike the static path's
        # per-lane ceil — the total never exceeds serve_workers: the
        # budget is dealt round-robin across lanes, and a shard beyond a
        # lane's request count is never built (it could not admit
        # anything, and its executors/plan compile aren't free).
        lane_names = list(self.router.specs)
        lane_shards = deal_shard_budget(
            lane_names,
            {name: len(per_lane[name]) for name in lane_names},
            self.serve_workers,
        )
        num_tasks = sum(lane_shards.values())
        if self.shard_config.resolve(num_tasks) == "process":
            return self._serve_shared_process(per_lane, lane_shards)
        service = self._build_prefix_service()
        self._des_prefix_service = service
        try:
            workers = [
                self._spawn_lane_worker(name, shard)
                for name, count in lane_shards.items()
                for shard in range(count)
            ]
            pending_by_lane = {
                name: list(per_lane[name]) for name in self.router.specs
            }
            outcomes, shed, failover_events, counters = _serve_work_stealing(
                workers, pending_by_lane, self.clock,
                fault_plan=self.fault_plan, supervisor=self.supervisor,
                spawn_worker=self._spawn_lane_worker,
                prefix_service=service,
            )
        finally:
            self._des_prefix_service = None
        return self._aggregate_shards(
            outcomes, shed=shed, failover_events=failover_events,
            retries=counters["retries"], failovers=counters["failovers"],
            respawns=counters["respawns"],
            prefix=service.stats,
        )

    def _serve_autoscaled(self, door: FrontDoor) -> ServingReport:
        """Elastic shared admission: min_shards per lane, policy-grown."""
        config = self.config
        policy = config.autoscale
        autoscaler = Autoscaler(policy)
        if self.shard_config.resolve(config.pool_workers) == "process":
            # The supervisor owns spawn/drain; it needs the full trace
            # for release scheduling, so streaming sources are drained
            # (closed sources only — an open one raises in the door).
            per_lane = door.drain_per_lane()
            lane_shards = {
                name: min(policy.min_shards, len(items)) if items else 0
                for name, items in per_lane.items()
            }
            return self._serve_shared_process(
                per_lane, lane_shards, autoscaler=autoscaler
            )
        service = self._build_prefix_service()
        self._des_prefix_service = service
        try:
            workers = [
                self._spawn_lane_worker(name, shard)
                for name in self.router.specs
                for shard in range(policy.min_shards)
            ]
            outcomes, shed, failover_events, counters = _serve_work_stealing(
                workers, {name: [] for name in self.router.specs}, self.clock,
                fault_plan=self.fault_plan, supervisor=self.supervisor,
                spawn_worker=self._spawn_lane_worker,
                door=door, autoscaler=autoscaler,
                prefix_service=service,
            )
        finally:
            self._des_prefix_service = None
        return self._aggregate_shards(
            outcomes, shed=shed, failover_events=failover_events,
            retries=counters["retries"], failovers=counters["failovers"],
            respawns=counters["respawns"],
            scale_events=autoscaler.events,
            prefix=service.stats,
        )

    def _serve_shared_process(
        self,
        per_lane: Dict[str, List[Tuple[int, ClipRequest]]],
        lane_shards: Dict[str, int],
        autoscaler: Optional[Autoscaler] = None,
    ) -> ServingReport:
        """Shared admission on real processes, under shard supervision.

        The parent *is* the shared queue now: a
        :class:`~repro.runtime.supervision.ShardSupervisor` releases
        requests at their arrival times (real clock — or by logical
        timestamps under ``virtual_time``, jumping idle gaps instead of
        sleeping them), dispatches them earliest-deadline-first to
        whichever shard of the lane has the most free capacity, and
        recovers from crashed/stalled shards by re-dispatching
        unacknowledged requests — bit-identical by the serving
        contract.  Deadline shedding, failover, retries, respawns, and
        scale events all land in the report's explicit counters.
        """
        supervisor = ShardSupervisor(
            self.router.specs, self.max_batch,
            config=self.supervisor, fault_plan=self.fault_plan,
            virtual_time=self.config.virtual_time,
            autoscaler=autoscaler,
            prefix_coalesce=self.config.prefix_coalesce,
            prefix_cache_mb=self.config.prefix_cache_mb,
        )
        result = supervisor.serve(per_lane, lane_shards)
        return self._aggregate_shards(
            result.outcomes,
            shed=result.shed,
            failover_events=result.failover_events,
            retries=result.retries,
            failovers=result.failovers,
            respawns=result.respawns,
            scale_events=result.scale_events,
        )

    def close(self) -> None:
        """Evict all residents and shrink lane plans to capacity 1."""
        if self._workers:
            for worker in self._workers.values():
                worker.release()


def _validate_fault_plan(config: ServerConfig, router: Router) -> None:
    """Structural and lane validation for an injected fault plan.

    The one home for both checks — it always has the router, so the
    unknown-lane message can list ``Router.describe_lanes()`` (a bare
    :class:`ServerConfig` cannot).  Faults require a supervised
    backend: fixed shared-admission shards, or an elastic pool whose
    ``max_shards`` leaves a survivor to fail over to.
    """
    if not config.fault_plan:
        return
    elastic = config.autoscale is not None and config.autoscale.max_shards >= 2
    if (config.serve_workers < 2 and not elastic) \
            or config.admission != "shared":
        raise ValueError(
            "fault_plan requires serve_workers >= 2 and "
            "admission='shared' (the supervised backends); got "
            f"serve_workers={config.serve_workers}, "
            f"admission={config.admission!r}"
        )
    unknown = [
        lane for lane in config.fault_plan.lanes()
        if lane not in router.specs
    ]
    if unknown:
        raise ValueError(
            f"fault_plan targets unknown lane(s) {unknown}; "
            f"registered lanes: {router.describe_lanes()}"
        )


class InProcessBackend(Backend):
    """All lanes in one process under one virtual clock (PR 3 shape)."""

    name = "in-process"
    capabilities = frozenset(
        {"streaming", "watermarks", "overlap-timeline", "virtual-time"}
    )

    def serve(self, door: FrontDoor) -> ServingReport:
        return self.runtime._serve_in_process(door)


class StaticShardBackend(Backend):
    """Round-robin slices, fully independent shards (PR 4 shape).

    Slices are fixed at dispatch time, so this backend needs the whole
    trace up front — the door is drained, not streamed.
    """

    name = "static-shards"
    capabilities = frozenset({"sharded"})

    def serve(self, door: FrontDoor) -> ServingReport:
        return self.runtime._serve_sharded(door.drain_per_lane())


class SharedAdmissionBackend(Backend):
    """Shared per-lane queues: work stealing, supervision, elasticity.

    The capability home for everything that needs a shared queue —
    fault injection, autoscaling, virtual-time process admission —
    realized inline as a deterministic DES (``serial``-resolved) or on
    supervised worker processes (``process``-resolved).
    """

    name = "shared-admission"
    capabilities = frozenset(
        {"sharded", "work-stealing", "fault-injection", "autoscale",
         "streaming", "watermarks", "virtual-time"}
    )

    def serve(self, door: FrontDoor) -> ServingReport:
        return self.runtime._serve_shared(door)
