"""Streaming serving runtime — continuous batching over the lockstep core.

The lockstep :class:`~repro.runtime.batched.BatchedPipeline` batches a
*fixed* set of clips that start and finish together; a deployment sees
clips arrive and depart continuously.  :class:`ServingRuntime` closes
that gap with the continuous-batching discipline of modern serving
systems, applied to the EVA2 frame lifecycle:

* **Admission** — requests wait in per-lane FIFO queues and join the
  running batch at the next step boundary; nothing drains, nothing
  restarts.
* **Lanes** — heterogeneous traffic is bucketed into shape-compatible
  lanes (one per registered :class:`~repro.runtime.spec.PipelineSpec`):
  every clip in a lane shares frame resolution, network, and AMC config,
  which is exactly the compatibility the batched RFBME/CNN calls need.
  Requests route by frame shape, or explicitly by lane name when shapes
  alone are ambiguous.
* **Eviction** — a clip's slot is released the moment its last frame is
  served (:meth:`~repro.core.amc.AMCExecutor.release`); the next queued
  request takes the slot over at the following step, so batch occupancy
  tracks offered load.
* **Occupancy-flexible execution** — each lane holds one
  :class:`~repro.nn.inference.InferencePlan` at lane capacity; any
  occupancy up to capacity runs against the same compiled geometry
  (plans grow with :meth:`~repro.nn.inference.InferencePlan.reserve`
  and can hand scratch back with ``shrink`` when a deployment scales
  down).

The correctness contract is inherited unchanged from the lockstep core:
every served clip's outputs, key-frame decisions, and op counts are
bit-identical to running that clip alone through the serial pipeline,
regardless of which batch-mates shared its steps.  Decisions are per
clip at clip-local frame indices, and every batched stage
(:func:`~repro.runtime.batched.execute_batched_step`) is bitwise equal
to its per-clip form.

Time is virtual: arrival times are honoured against a monotonic clock,
and stretches where the server is idle with no arrival due are *skipped*
rather than slept, so a simulation runs at full speed while latency
accounting (enqueue wait, time to first frame) still reflects the
arrival process.  ``wall_seconds`` counts only busy time, which is what
the steady-state throughput metric divides by.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.pipeline import FrameRecord, PipelineResult
from ..video.generator import VideoClip
from .batched import WorkloadResult, execute_batched_step
from .spec import PipelineSpec

__all__ = ["ClipRequest", "RequestRecord", "ServingReport", "ServingRuntime"]


@dataclass(frozen=True)
class ClipRequest:
    """One clip submitted to the serving runtime."""

    request_id: object
    clip: VideoClip
    #: when the request becomes visible to the server, in seconds on the
    #: runtime's (virtual) clock.
    arrival_time: float = 0.0
    #: explicit lane name; None routes by frame shape.
    lane: Optional[str] = None

    def __post_init__(self):
        if len(self.clip) < 1:
            raise ValueError(f"request {self.request_id!r} has an empty clip")
        if self.arrival_time < 0:
            raise ValueError(
                f"arrival_time must be >= 0, got {self.arrival_time}"
            )


@dataclass
class RequestRecord:
    """Full accounting for one served request."""

    request_id: object
    lane: str
    arrival_time: float
    #: when the clip joined the running batch (a step boundary).
    admit_time: float
    #: when its first frame's output existed.
    first_output_time: float
    #: when its last frame's output existed and the slot was released.
    finish_time: float
    result: PipelineResult

    @property
    def num_frames(self) -> int:
        return len(self.result)

    @property
    def enqueue_latency(self) -> float:
        """Seconds spent queued before joining the batch."""
        return self.admit_time - self.arrival_time

    @property
    def time_to_first_frame(self) -> float:
        """Seconds from arrival to the first served output."""
        return self.first_output_time - self.arrival_time

    @property
    def service_seconds(self) -> float:
        return self.finish_time - self.admit_time

    @property
    def frames_per_second(self) -> float:
        """This clip's service rate while resident in the batch."""
        return (
            self.num_frames / self.service_seconds
            if self.service_seconds > 0
            else 0.0
        )


@dataclass
class ServingReport:
    """What one serving run did, per request and in aggregate."""

    #: per-request accounting, in submission order.
    records: List[RequestRecord]
    #: busy wall-clock seconds (idle gaps with no arrival due are skipped,
    #: not counted).
    wall_seconds: float
    #: virtual seconds skipped while idle.
    idle_seconds: float
    #: lockstep steps executed across all lanes.
    steps: int
    #: per-lane slot capacity the runtime was configured with.
    max_batch: int

    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def total_frames(self) -> int:
        return sum(record.num_frames for record in self.records)

    @property
    def frames_per_second(self) -> float:
        """Steady-state throughput: frames served per busy second."""
        return self.total_frames / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_occupancy(self) -> float:
        """Average clips resident per step (frames served per step)."""
        return self.total_frames / self.steps if self.steps else 0.0

    def enqueue_latencies(self) -> np.ndarray:
        return np.array([record.enqueue_latency for record in self.records])

    def times_to_first_frame(self) -> np.ndarray:
        return np.array([record.time_to_first_frame for record in self.records])

    def workload_result(self) -> WorkloadResult:
        """The per-clip results as a :class:`WorkloadResult`.

        Request order is submission order, so this compares directly
        (``matches``) against a serial/lockstep run of the same clips.
        """
        return WorkloadResult(
            results=[record.result for record in self.records],
            wall_seconds=self.wall_seconds,
            path="serving",
        )

    def summary_rows(self) -> List[List[object]]:
        """Rows for the CLI / bench summary table."""
        enqueue = self.enqueue_latencies()
        ttff = self.times_to_first_frame()
        rows: List[List[object]] = [
            ["path", "serving"],
            ["requests", self.num_requests],
            ["frames", self.total_frames],
            ["busy s", round(self.wall_seconds, 3)],
            ["idle s (skipped)", round(self.idle_seconds, 3)],
            ["frames/s", round(self.frames_per_second, 1)],
            ["steps", self.steps],
            ["mean occupancy", round(self.mean_occupancy, 2)],
        ]
        if self.num_requests:
            rows += [
                ["enqueue p50 ms", round(float(np.percentile(enqueue, 50)) * 1e3, 2)],
                ["enqueue p95 ms", round(float(np.percentile(enqueue, 95)) * 1e3, 2)],
                ["ttff p50 ms", round(float(np.percentile(ttff, 50)) * 1e3, 2)],
                ["ttff p95 ms", round(float(np.percentile(ttff, 95)) * 1e3, 2)],
            ]
        return rows


class _Slot:
    """One resident clip: its executor/policy pair plus progress state."""

    __slots__ = (
        "seq", "request", "executor", "policy", "cursor", "records",
        "admit_time", "first_output_time",
    )

    def __init__(self, seq, request, executor, policy, admit_time):
        self.seq = seq
        self.request = request
        self.executor = executor
        self.policy = policy
        self.cursor = 0  # clip-local index of the next frame to serve
        self.records: List[FrameRecord] = []
        self.admit_time = admit_time
        self.first_output_time: Optional[float] = None

    def frame(self) -> np.ndarray:
        return self.request.clip.frames[self.cursor]

    def done(self) -> bool:
        return self.cursor >= len(self.request.clip)


class _Lane:
    """One shape-compatible batch: shared network, engine, plan, slots."""

    def __init__(self, name: str, spec: PipelineSpec, capacity: int):
        self.name = name
        self.spec = spec
        self.network = spec.shared_network()
        self.frame_shape: Tuple[int, int] = tuple(self.network.input_shape[1:])
        self.capacity = capacity
        # Slots hold warm executors for the lane's lifetime; admitted
        # clips borrow one and release it on departure.
        self.executors = [spec.build_executor(self.network) for _ in range(capacity)]
        for executor in self.executors:
            executor.reset()
        self.engine = self.executors[0].rfbme_engine
        self.plan = None
        if spec.cnn_engine == "planned":
            self.plan = self.network.inference_plan(
                max_batch=capacity, dtype=spec.dtype
            )
        self.slots: List[Optional[_Slot]] = [None] * capacity
        self.queue: "deque[Tuple[int, ClipRequest]]" = deque()

    # -------------------------------------------------------------- #
    def has_free_slot(self) -> bool:
        return any(slot is None for slot in self.slots)

    def has_active(self) -> bool:
        return any(slot is not None for slot in self.slots)

    def admit(self, seq: int, request: ClipRequest, now: float) -> None:
        index = self.slots.index(None)
        executor = self.executors[index]
        executor.reset()  # identical start state to a fresh serial run
        slot = _Slot(seq, request, executor, self.spec.build_policy(), now)
        slot.policy.reset()
        self.slots[index] = slot

    def step(self) -> List[_Slot]:
        """Serve one frame of every resident clip; return departures.

        The step is the lockstep core at the lane's current occupancy:
        one RFBME batch over the clips that have a stored key, per-clip
        decisions at clip-local indices, then the batched CNN stages
        (planned engine) or the per-clip serial path (legacy engine).
        """
        active = [slot for slot in self.slots if slot is not None]
        ready = [slot for slot in active if slot.executor.has_key]
        estimations = self.engine.estimate_batch(
            [(slot.executor.stored_pixels(), slot.frame()) for slot in ready]
        )
        by_slot = {id(slot): est for slot, est in zip(ready, estimations)}

        if self.plan is not None:
            # No-op at steady state; regrows scratch after a shrink (e.g.
            # a close() between serve calls).
            self.plan.reserve(len(active))
            entries = [
                (slot.executor, slot.policy, slot.frame(), slot.cursor,
                 by_slot.get(id(slot)))
                for slot in active
            ]
            for slot, record in zip(
                active, execute_batched_step(self.plan, entries)
            ):
                slot.records.append(record)
        else:
            for slot in active:
                estimation = by_slot.get(id(slot))
                is_key = slot.policy.decide(slot.cursor, estimation)
                if is_key:
                    output = slot.executor.process_key(slot.frame())
                else:
                    output = slot.executor.process_predicted(
                        slot.frame(), estimation
                    )
                slot.records.append(
                    FrameRecord.from_step(
                        slot.cursor, is_key, output, estimation
                    )
                )

        finished: List[_Slot] = []
        for index, slot in enumerate(self.slots):
            if slot is None:
                continue
            slot.cursor += 1
            if slot.done():
                slot.executor.release()
                self.slots[index] = None
                finished.append(slot)
        return finished

    def release(self) -> None:
        """Drop resident state and hand plan scratch back."""
        for index, slot in enumerate(self.slots):
            if slot is not None:
                slot.executor.release()
                self.slots[index] = None
        self.queue.clear()
        if self.plan is not None:
            self.plan.shrink(1)


class ServingRuntime:
    """Serve clip requests with continuous batching.

    ``spec`` is a single :class:`PipelineSpec` (one lane named
    ``"default"``) or a mapping of lane name to spec for heterogeneous
    deployments.  ``max_batch`` is the per-lane slot capacity: a lane
    never holds more than ``max_batch`` resident clips, and its
    inference plan is compiled once at that capacity.

    ``clock`` is injectable (monotonic seconds) for deterministic tests;
    the default is :func:`time.perf_counter`.
    """

    def __init__(
        self,
        spec: Union[PipelineSpec, Mapping[str, PipelineSpec]],
        max_batch: int = 8,
        clock: Optional[Callable[[], float]] = None,
    ):
        if isinstance(spec, PipelineSpec):
            specs: Dict[str, PipelineSpec] = {"default": spec}
        else:
            specs = dict(spec)
        if not specs:
            raise ValueError("at least one lane spec is required")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = int(max_batch)
        self.clock = clock or time.perf_counter
        self.lanes: Dict[str, _Lane] = {
            name: _Lane(name, lane_spec, self.max_batch)
            for name, lane_spec in specs.items()
        }
        self._by_shape: Dict[Tuple[int, int], List[_Lane]] = {}
        for lane in self.lanes.values():
            self._by_shape.setdefault(lane.frame_shape, []).append(lane)

    # -------------------------------------------------------------- #
    def lane_for(self, request: ClipRequest) -> _Lane:
        """The lane that will serve ``request`` (shape bucketing)."""
        shape = tuple(request.clip.frames.shape[1:])
        if request.lane is not None:
            lane = self.lanes.get(request.lane)
            if lane is None:
                raise KeyError(
                    f"unknown lane {request.lane!r}; have {sorted(self.lanes)}"
                )
            if shape != lane.frame_shape:
                raise ValueError(
                    f"request {request.request_id!r} has {shape} frames; "
                    f"lane {lane.name!r} serves {lane.frame_shape}"
                )
            return lane
        lanes = self._by_shape.get(shape, [])
        if not lanes:
            raise ValueError(
                f"no lane serves frame shape {shape}; lanes: "
                + ", ".join(
                    f"{lane.name}={lane.frame_shape}"
                    for lane in self.lanes.values()
                )
            )
        if len(lanes) > 1:
            raise ValueError(
                f"frame shape {shape} matches lanes "
                f"{[lane.name for lane in lanes]}; set ClipRequest.lane"
            )
        return lanes[0]

    def serve(self, requests: Sequence[ClipRequest]) -> ServingReport:
        """Serve every request; returns per-request accounting.

        Requests become visible at their ``arrival_time``; admission and
        eviction happen at step boundaries.  When the server is idle and
        no arrival is due, virtual time jumps to the next arrival so a
        simulation runs at full speed.
        """
        # Arrival order, stable on submission order for ties.
        pending: "deque[Tuple[int, ClipRequest]]" = deque(
            sorted(
                enumerate(requests), key=lambda item: (item[1].arrival_time, item[0])
            )
        )
        for _, request in pending:
            self.lane_for(request)  # route (and fail) before serving starts

        done: Dict[int, RequestRecord] = {}
        steps = 0
        skipped = 0.0
        start = self.clock()

        def now() -> float:
            return (self.clock() - start) + skipped

        while pending or any(
            lane.queue or lane.has_active() for lane in self.lanes.values()
        ):
            current = now()
            while pending and pending[0][1].arrival_time <= current:
                seq, request = pending.popleft()
                self.lane_for(request).queue.append((seq, request))
            for lane in self.lanes.values():
                while lane.queue and lane.has_free_slot():
                    seq, request = lane.queue.popleft()
                    lane.admit(seq, request, current)
            if not any(lane.has_active() for lane in self.lanes.values()):
                # Idle with work still to come: skip ahead to the next
                # arrival instead of spinning.
                if pending:
                    gap = pending[0][1].arrival_time - current
                    if gap > 0:
                        skipped += gap
                continue
            for lane in self.lanes.values():
                if not lane.has_active():
                    continue
                finished = lane.step()
                steps += 1
                current = now()
                for slot in self._active_slots(lane):
                    if slot.first_output_time is None:
                        slot.first_output_time = current
                for slot in finished:
                    if slot.first_output_time is None:
                        slot.first_output_time = current
                    done[slot.seq] = RequestRecord(
                        request_id=slot.request.request_id,
                        lane=lane.name,
                        arrival_time=slot.request.arrival_time,
                        admit_time=slot.admit_time,
                        first_output_time=slot.first_output_time,
                        finish_time=current,
                        result=PipelineResult(records=slot.records),
                    )

        wall = self.clock() - start
        return ServingReport(
            records=[done[seq] for seq in sorted(done)],
            wall_seconds=wall,
            idle_seconds=skipped,
            steps=steps,
            max_batch=self.max_batch,
        )

    def close(self) -> None:
        """Evict all residents and shrink lane plans to capacity 1."""
        for lane in self.lanes.values():
            lane.release()

    @staticmethod
    def _active_slots(lane: _Lane) -> List[_Slot]:
        return [slot for slot in lane.slots if slot is not None]
