"""Layer classes for the sequential CNN framework.

Each layer exposes:

* ``forward(x, train=False)`` / ``backward(grad_out)`` — the compute pair;
  backward must follow a forward because it consumes the cached activations.
* ``params`` / ``grads`` — dicts of trainable tensors and their gradients.
* ``is_spatial`` — whether the layer preserves the 2D spatial structure AMC's
  activation warping relies on. Fully-connected (and flatten) layers are
  non-spatial and must stay in the CNN suffix (paper §II-C5).
* ``geometry()`` — ``(field, stride, pad)`` for receptive-field propagation
  (:mod:`repro.core.receptive_field`); identity layers report (1, 1, 0).

Layers also count multiply-accumulate operations (``macs(input_shape)``),
which drives the hardware cost model exactly as the paper's first-order
model does (§IV-A).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import functional as F
from . import init as winit

__all__ = ["Layer", "Conv2d", "MaxPool2d", "AvgPool2d", "ReLU", "Flatten", "Linear"]


class Layer:
    """Base class. Subclasses override the hooks they need."""

    is_spatial: bool = True

    def __init__(self, name: str):
        self.name = name
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def geometry(self) -> Tuple[int, int, int]:
        """(field, stride, pad) seen by receptive-field propagation."""
        return (1, 1, 0)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape produced for a single (C, H, W) input shape (no batch dim)."""
        return input_shape

    def macs(self, input_shape: Tuple[int, ...]) -> int:
        """Multiply-accumulate operations for one input of ``input_shape``."""
        return 0

    def param_count(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    def zero_grad(self) -> None:
        for key in self.grads:
            self.grads[key][...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Conv2d(Layer):
    """2D convolution with square kernels."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name)
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.params["weight"] = winit.kaiming_conv(
            (out_channels, in_channels, kernel, kernel), rng
        )
        self.params["bias"] = winit.zeros(out_channels)
        self.grads["weight"] = np.zeros_like(self.params["weight"])
        self.grads["bias"] = np.zeros_like(self.params["bias"])

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, cache = F.conv2d_forward(
            x, self.params["weight"], self.params["bias"], self.stride, self.pad
        )
        self._cache = cache if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward on {self.name} without train-mode forward")
        grad_x, gw, gb = F.conv2d_backward(grad_out, self._cache)
        self.grads["weight"] += gw
        self.grads["bias"] += gb
        return grad_x

    def geometry(self) -> Tuple[int, int, int]:
        return (self.kernel, self.stride, self.pad)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} channels, got {c}"
            )
        oh = F.conv_output_size(h, self.kernel, self.stride, self.pad)
        ow = F.conv_output_size(w, self.kernel, self.stride, self.pad)
        return (self.out_channels, oh, ow)

    def macs(self, input_shape) -> int:
        # outputs x (in_channels x kh x kw) MACs per output — paper §IV-A.
        _, oh, ow = self.output_shape(input_shape)
        per_output = self.in_channels * self.kernel * self.kernel
        return oh * ow * self.out_channels * per_output


class MaxPool2d(Layer):
    """Max pooling with square windows."""

    def __init__(self, name: str, field: int, stride: int):
        super().__init__(name)
        self.field = field
        self.stride = stride

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, cache = F.maxpool2d_forward(x, self.field, self.stride)
        self._cache = cache if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward on {self.name} without train-mode forward")
        return F.maxpool2d_backward(grad_out, self._cache)

    def geometry(self) -> Tuple[int, int, int]:
        return (self.field, self.stride, 0)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.field, self.stride, 0)
        ow = F.conv_output_size(w, self.field, self.stride, 0)
        return (c, oh, ow)


class AvgPool2d(Layer):
    """Average pooling with square windows."""

    def __init__(self, name: str, field: int, stride: int):
        super().__init__(name)
        self.field = field
        self.stride = stride

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, cache = F.avgpool2d_forward(x, self.field, self.stride)
        self._cache = cache if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward on {self.name} without train-mode forward")
        return F.avgpool2d_backward(grad_out, self._cache)

    def geometry(self) -> Tuple[int, int, int]:
        return (self.field, self.stride, 0)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.field, self.stride, 0)
        ow = F.conv_output_size(w, self.field, self.stride, 0)
        return (c, oh, ow)


class ReLU(Layer):
    """Rectified linear unit. Spatial (element-wise) and parameter-free."""

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, mask = F.relu_forward(x)
        self._cache = mask if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward on {self.name} without train-mode forward")
        return F.relu_backward(grad_out, self._cache)


class Flatten(Layer):
    """Collapse (C, H, W) to a feature vector. Destroys spatial structure."""

    is_spatial = False

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._cache = x.shape if train else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward on {self.name} without train-mode forward")
        return grad_out.reshape(self._cache)

    def output_shape(self, input_shape):
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class Linear(Layer):
    """Fully-connected layer. Non-spatial: must live in the CNN suffix."""

    is_spatial = False

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name)
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.params["weight"] = winit.kaiming_linear((out_features, in_features), rng)
        self.params["bias"] = winit.zeros(out_features)
        self.grads["weight"] = np.zeros_like(self.params["weight"])
        self.grads["bias"] = np.zeros_like(self.params["bias"])

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, cache = F.linear_forward(x, self.params["weight"], self.params["bias"])
        self._cache = cache if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward on {self.name} without train-mode forward")
        grad_x, gw, gb = F.linear_backward(grad_out, self._cache)
        self.grads["weight"] += gw
        self.grads["bias"] += gb
        return grad_x

    def output_shape(self, input_shape):
        return (self.out_features,)

    def macs(self, input_shape) -> int:
        return self.in_features * self.out_features
