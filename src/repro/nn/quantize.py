"""Activation quantization for fixed-point inference.

EVA2 stores and warps activations in 16-bit fixed point. The accuracy
experiments therefore optionally run the AMC datapath through
:class:`repro.hardware.fixed_point.QFormat` round-trips. This module picks
per-tensor formats and measures the quantization impact.

Since the quantized planned-engine lanes landed, this module is also the
calibration home for ``dtype="int8"`` / ``dtype="q16"`` inference plans:
:func:`calibrate_layer` sizes one layer's activation and weight formats
from a seeded sample forward pass (the execution side lives in
:mod:`repro.nn.inference`, which captures the per-layer sample inputs and
builds the quantized steps from the resulting
:class:`LayerCalibration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..hardware.fixed_point import QFormat

__all__ = [
    "choose_format",
    "quantize_activation",
    "QuantStats",
    "QuantTolerance",
    "LayerCalibration",
    "calibrate_layer",
    "CALIBRATION_SEED",
    "CALIBRATION_SAMPLES",
    "CALIBRATION_MARGIN",
    "SATURATION_THRESHOLD",
]

#: Seed of the synthetic calibration sample set.  Fixed, never derived
#: from wall clock or process state: two processes that compile a
#: quantized plan for the same network (sharded serving workers, a
#: pickle round-trip) must arrive at bit-identical Q-formats and weight
#: snapshots.
CALIBRATION_SEED = 0x0CA11B

#: Frames in the calibration sample set.  Enough to exercise every
#: layer's dynamic range; small enough that compiling a quantized plan
#: stays cheap (a LaneWorker compiles one per shard process).
CALIBRATION_SAMPLES = 8

#: Headroom factor applied to the observed activation peak before
#: sizing the integer bits — real traffic can run slightly hotter than
#: the synthetic calibration set, and saturation errors are much larger
#: than one extra integer bit's resolution loss.
CALIBRATION_MARGIN = 1.25

#: A layer whose calibration round-trip saturates more than this
#: fraction of samples falls back to float execution (the format cannot
#: cover the dynamic range even after the margin).
SATURATION_THRESHOLD = 1e-3


@dataclass(frozen=True)
class QuantStats:
    """Quantization quality report for one tensor."""

    max_abs_error: float
    mean_abs_error: float
    saturated_fraction: float


@dataclass(frozen=True)
class QuantTolerance:
    """The documented accuracy contract of one quantized plan.

    Replaces the float lanes' bit-identity contract: a quantized lane's
    outputs must stay within ``max_abs_error`` of the float64 reference
    and agree with its per-sample argmax on at least a
    ``top1_agreement`` fraction of samples.  ``max_abs_error`` is
    calibrated per plan (the measured error over the calibration set
    times a safety factor), so ``verify``-style comparisons have an
    explicit, machine-checkable bound instead of "close enough".
    """

    max_abs_error: float
    top1_agreement: float


@dataclass(frozen=True)
class LayerCalibration:
    """One layer's calibrated formats for a quantized inference plan.

    ``input_format`` sizes the layer's incoming activations,
    ``output_format`` its pre-activation outputs (both from the
    observed sample peak times :data:`CALIBRATION_MARGIN`).  Weights
    are fully known at compile time, so they get no margin and are
    sized *per output channel* (``weight_channel_formats``, one
    :class:`QFormat` per row of the flattened weight matrix — channel
    dynamic ranges differ by orders of magnitude and a per-tensor
    format would waste most of an 8-bit budget); ``weight_format`` is
    the per-tensor envelope kept for reporting.  The ``*_stats`` fields
    are the round-trip errors over the calibration tensors — the
    per-layer ``QuantStats`` the tolerance contract is built from
    (``weight_stats`` measures the per-channel round trip, the one the
    engine actually runs).  ``fallback`` is true when any round-trip
    saturated more than :data:`SATURATION_THRESHOLD` of its tensor
    (the format ran out of integer bits for the observed dynamic
    range): the layer then runs in float inside the otherwise-quantized
    plan.
    """

    layer: str
    input_format: QFormat
    output_format: QFormat
    weight_format: QFormat
    weight_channel_formats: Tuple[QFormat, ...]
    input_stats: QuantStats
    output_stats: QuantStats
    weight_stats: QuantStats
    fallback: bool


def choose_format(values: np.ndarray, total_bits: int = 16) -> QFormat:
    """Pick the Q-format with the fewest integer bits that avoids saturation.

    Mirrors how a hardware designer sizes the warp-engine datapath: enough
    integer bits for the observed dynamic range, all remaining bits spent on
    fraction.
    """
    if total_bits < 2:
        raise ValueError("need at least sign + 1 value bit")
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    int_bits = 0
    while (1 << int_bits) <= peak and int_bits < total_bits - 1:
        int_bits += 1
    return QFormat(int_bits=int_bits, frac_bits=total_bits - 1 - int_bits, signed=True)


def quantize_activation(values: np.ndarray, fmt: QFormat):
    """Round-trip ``values`` through ``fmt``; return (quantized, stats)."""
    quantized = fmt.roundtrip(values)
    err = np.abs(quantized - values)
    saturated = np.logical_or(values > fmt.max_value, values < fmt.min_value)
    stats = QuantStats(
        max_abs_error=float(err.max()) if values.size else 0.0,
        mean_abs_error=float(err.mean()) if values.size else 0.0,
        saturated_fraction=float(saturated.mean()) if values.size else 0.0,
    )
    return quantized, stats


def _activation_format(values: np.ndarray, total_bits: int, margin: float) -> QFormat:
    """Format for an activation tensor: observed peak plus headroom."""
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    return choose_format(np.asarray([peak * margin]), total_bits=total_bits)


def calibrate_layer(
    name: str,
    sample_inputs: np.ndarray,
    sample_outputs: np.ndarray,
    weight: np.ndarray,
    total_bits: int = 16,
    *,
    weight_bits: int = None,
    in_bits: int = None,
    out_bits: int = None,
    margin: float = CALIBRATION_MARGIN,
    saturation_threshold: float = SATURATION_THRESHOLD,
) -> LayerCalibration:
    """Size one layer's activation and weight formats from samples.

    ``sample_inputs`` / ``sample_outputs`` are the layer's input and
    pre-activation output tensors over the seeded calibration set
    (float64, as produced by the bit-exact reference path); ``weight``
    the layer's float64 weight tensor, whose leading axis is the output
    channel.  All formats come from :func:`choose_format`; the
    activation peaks get ``margin`` headroom because future inputs are
    only sampled, the weights none (and a per-channel sizing) because
    they are fully known at compile time.

    ``total_bits`` is the uniform budget; ``weight_bits`` / ``in_bits``
    / ``out_bits`` override it per tensor class.  The split exists
    because weight and activation budgets are priced differently in the
    quantized engine: weights are the multiplier operand (narrow keeps
    the integer-exact GEMM in float32), while activation widths can
    spend whatever headroom the accumulator budget leaves over
    (see ``repro.nn.inference._QuantSpec``).
    """
    weight_bits = total_bits if weight_bits is None else weight_bits
    in_bits = total_bits if in_bits is None else in_bits
    out_bits = total_bits if out_bits is None else out_bits
    input_format = _activation_format(sample_inputs, in_bits, margin)
    output_format = _activation_format(sample_outputs, out_bits, margin)
    weight_format = choose_format(weight, total_bits=weight_bits)
    w2d = np.asarray(weight).reshape(weight.shape[0], -1)
    weight_channel_formats = tuple(
        choose_format(row, total_bits=weight_bits) for row in w2d
    )
    _, input_stats = quantize_activation(sample_inputs, input_format)
    _, output_stats = quantize_activation(sample_outputs, output_format)
    channel_stats = [
        quantize_activation(row, fmt)[1]
        for row, fmt in zip(w2d, weight_channel_formats)
    ]
    weight_stats = QuantStats(
        max_abs_error=max((s.max_abs_error for s in channel_stats), default=0.0),
        mean_abs_error=(
            float(np.mean([s.mean_abs_error for s in channel_stats]))
            if channel_stats else 0.0
        ),
        saturated_fraction=(
            float(np.mean([s.saturated_fraction for s in channel_stats]))
            if channel_stats else 0.0
        ),
    )
    fallback = (
        input_stats.saturated_fraction > saturation_threshold
        or output_stats.saturated_fraction > saturation_threshold
        or weight_stats.saturated_fraction > saturation_threshold
    )
    return LayerCalibration(
        layer=name,
        input_format=input_format,
        output_format=output_format,
        weight_format=weight_format,
        weight_channel_formats=weight_channel_formats,
        input_stats=input_stats,
        output_stats=output_stats,
        weight_stats=weight_stats,
        fallback=fallback,
    )
