"""Activation quantization for fixed-point inference.

EVA2 stores and warps activations in 16-bit fixed point. The accuracy
experiments therefore optionally run the AMC datapath through
:class:`repro.hardware.fixed_point.QFormat` round-trips. This module picks
per-tensor formats and measures the quantization impact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.fixed_point import QFormat

__all__ = ["choose_format", "quantize_activation", "QuantStats"]


@dataclass(frozen=True)
class QuantStats:
    """Quantization quality report for one tensor."""

    max_abs_error: float
    mean_abs_error: float
    saturated_fraction: float


def choose_format(values: np.ndarray, total_bits: int = 16) -> QFormat:
    """Pick the Q-format with the fewest integer bits that avoids saturation.

    Mirrors how a hardware designer sizes the warp-engine datapath: enough
    integer bits for the observed dynamic range, all remaining bits spent on
    fraction.
    """
    if total_bits < 2:
        raise ValueError("need at least sign + 1 value bit")
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    int_bits = 0
    while (1 << int_bits) <= peak and int_bits < total_bits - 1:
        int_bits += 1
    return QFormat(int_bits=int_bits, frac_bits=total_bits - 1 - int_bits, signed=True)


def quantize_activation(values: np.ndarray, fmt: QFormat):
    """Round-trip ``values`` through ``fmt``; return (quantized, stats)."""
    quantized = fmt.roundtrip(values)
    err = np.abs(quantized - values)
    saturated = np.logical_or(values > fmt.max_value, values < fmt.min_value)
    stats = QuantStats(
        max_abs_error=float(err.max()) if err.size else 0.0,
        mean_abs_error=float(err.mean()) if err.size else 0.0,
        saturated_fraction=float(saturated.mean()) if err.size else 0.0,
    )
    return quantized, stats
