"""Training loops and the model zoo.

Networks train on the synthetic video dataset in seconds, so benches and
examples train on first use; trained weights are cached on disk (keyed by
network name and dataset fingerprint) to keep repeated runs fast and
byte-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from . import functional as F
from .models import NUM_CLASSES, build_network, split_detection_output
from .network import Network
from .optim import Adam
from ..video.dataset import training_arrays

__all__ = [
    "TrainResult",
    "train_classifier",
    "train_detector",
    "classification_accuracy",
    "detection_loss",
    "get_trained_network",
    "clear_model_cache",
]

#: Weight on the box-regression term of the detection loss.
BOX_LOSS_WEIGHT = 5.0

_CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", ".cache", "models")
_MEMORY_CACHE: Dict[str, Network] = {}


@dataclass
class TrainResult:
    """Summary of one training run."""

    losses: Tuple[float, ...]
    final_metric: float  # accuracy for classifiers, -loss for detectors


def _iterate_batches(n: int, batch_size: int, rng: np.random.Generator):
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def classification_accuracy(net: Network, frames: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``net`` on a frame/label array pair."""
    correct = 0
    for start in range(0, len(frames), 64):
        logits = net.forward(frames[start : start + 64])
        correct += int((logits.argmax(axis=1) == labels[start : start + 64]).sum())
    return correct / max(len(frames), 1)


def detection_loss(
    output: np.ndarray, labels: np.ndarray, boxes: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Combined CE + smooth-L1 loss and its gradient w.r.t. the output."""
    logits, pred_boxes = split_detection_output(output)
    ce = F.cross_entropy(logits, labels)
    box = F.smooth_l1(pred_boxes, boxes, beta=0.1)
    grad = np.zeros_like(output)
    grad[:, :NUM_CLASSES] = F.cross_entropy_grad(logits, labels)
    grad[:, NUM_CLASSES:] = BOX_LOSS_WEIGHT * F.smooth_l1_grad(
        pred_boxes, boxes, beta=0.1
    )
    return ce + BOX_LOSS_WEIGHT * box, grad


def train_classifier(
    net: Network,
    frames: np.ndarray,
    labels: np.ndarray,
    epochs: int = 6,
    batch_size: int = 32,
    lr: float = 2e-3,
    seed: int = 0,
) -> TrainResult:
    """Train a classification network with Adam and cross-entropy."""
    rng = np.random.default_rng(seed)
    opt = Adam(net.layers, lr=lr)
    losses = []
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for idx in _iterate_batches(len(frames), batch_size, rng):
            opt.zero_grad()
            logits = net.forward(frames[idx], train=True)
            loss = F.cross_entropy(logits, labels[idx])
            net.backward(F.cross_entropy_grad(logits, labels[idx]))
            opt.step()
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    accuracy = classification_accuracy(net, frames, labels)
    return TrainResult(losses=tuple(losses), final_metric=accuracy)


def train_detector(
    net: Network,
    frames: np.ndarray,
    labels: np.ndarray,
    boxes: np.ndarray,
    epochs: int = 6,
    batch_size: int = 32,
    lr: float = 2e-3,
    seed: int = 0,
) -> TrainResult:
    """Train a detection network (class CE + box smooth-L1)."""
    rng = np.random.default_rng(seed)
    opt = Adam(net.layers, lr=lr)
    losses = []
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for idx in _iterate_batches(len(frames), batch_size, rng):
            opt.zero_grad()
            output = net.forward(frames[idx], train=True)
            loss, grad = detection_loss(output, labels[idx], boxes[idx])
            net.backward(grad)
            opt.step()
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return TrainResult(losses=tuple(losses), final_metric=-losses[-1])


# ---------------------------------------------------------------------- #
# model zoo
# ---------------------------------------------------------------------- #
_TASKS = {
    "mini_alexnet": "classification",
    "mini_fasterm": "detection",
    "mini_faster16": "detection",
}

#: Dataset and schedule used to produce zoo weights: 2800 training frames
#: across all scenario families. Chosen as the knee of the generalization
#: curve — test-set top-1 ~0.77 for classification and ~0.95 class / ~2.4 px
#: box error for detection, i.e. well above chance with headroom to measure
#: AMC-induced degradation, while keeping first-use training to ~1 min per
#: network.
_ZOO_CLIPS_PER_SCENARIO = 40
_ZOO_FRAMES_PER_CLIP = 10
_ZOO_EPOCHS = 10


#: Bump when the synthetic dataset's generation logic changes, so stale
#: cached weights are never reused against regenerated data.
_ZOO_DATA_VERSION = 2


def _cache_path(name: str) -> str:
    tag = (
        f"{name}-v{_ZOO_DATA_VERSION}"
        f"-c{_ZOO_CLIPS_PER_SCENARIO}f{_ZOO_FRAMES_PER_CLIP}e{_ZOO_EPOCHS}"
    )
    return os.path.join(os.path.abspath(_CACHE_DIR), f"{tag}.npz")


def clear_model_cache() -> None:
    """Drop in-memory and on-disk cached weights (test hook)."""
    _MEMORY_CACHE.clear()
    cache_dir = os.path.abspath(_CACHE_DIR)
    if os.path.isdir(cache_dir):
        for fname in os.listdir(cache_dir):
            if fname.endswith(".npz"):
                os.remove(os.path.join(cache_dir, fname))


def get_trained_network(name: str, fresh_copy: bool = True) -> Network:
    """Return a trained network from the zoo, training it on first use.

    With ``fresh_copy`` (default) callers receive an independent parameter
    copy, so fine-tuning experiments (Table III) cannot corrupt the zoo.
    """
    if name not in _TASKS:
        raise KeyError(f"unknown zoo network {name!r}; have {sorted(_TASKS)}")

    if name not in _MEMORY_CACHE:
        net = build_network(name)
        path = _cache_path(name)
        if os.path.exists(path):
            with np.load(path) as data:
                net.load_state_dict({key: data[key] for key in data.files})
        else:
            net = _train_zoo_network(name, net)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            np.savez_compressed(path, **net.state_dict())
        _MEMORY_CACHE[name] = net

    cached = _MEMORY_CACHE[name]
    if not fresh_copy:
        return cached
    copy = build_network(name)
    copy.load_state_dict(cached.state_dict())
    return copy


def _train_zoo_network(name: str, net: Network) -> Network:
    data = training_arrays(
        clips_per_scenario=_ZOO_CLIPS_PER_SCENARIO,
        num_frames=_ZOO_FRAMES_PER_CLIP,
    )
    frames, labels, boxes = data["train"]
    if _TASKS[name] == "classification":
        train_classifier(net, frames, labels, epochs=_ZOO_EPOCHS, seed=42)
    else:
        train_detector(net, frames, labels, boxes, epochs=_ZOO_EPOCHS, seed=42)
    return net
