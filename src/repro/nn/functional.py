"""Low-level neural-network kernels.

All operators work on ``float64`` numpy arrays in NCHW layout
(batch, channels, height, width) and come in forward/backward pairs so the
framework supports training (needed for Table III's suffix fine-tuning and
for producing the accuracy-experiment networks in the first place).

Convolution is implemented with im2col/col2im: the only practical way to get
acceptable CNN throughput out of pure numpy, and numerically identical to
direct convolution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "pool_windows",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "relu_forward",
    "relu_backward",
    "linear_forward",
    "linear_backward",
    "softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "smooth_l1",
    "smooth_l1_grad",
]


def conv_output_size(in_size: int, field: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window sweep.

    Raises ``ValueError`` when the geometry is inconsistent (window larger
    than the padded input, or the sweep does not tile evenly enough to
    produce at least one output).
    """
    if field <= 0 or stride <= 0:
        raise ValueError(f"field and stride must be positive, got {field}, {stride}")
    padded = in_size + 2 * pad
    if padded < field:
        raise ValueError(
            f"window {field} exceeds padded input {padded} (in={in_size}, pad={pad})"
        )
    return (padded - field) // stride + 1


def im2col(
    x: np.ndarray, field_h: int, field_w: int, stride: int, pad: int
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns (N*OH*OW, C*field_h*field_w).

    Each row is the flattened receptive field for one output position; a
    convolution then reduces to a single matrix multiply.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, field_h, stride, pad)
    out_w = conv_output_size(w, field_w, stride, pad)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    cols = np.empty((n, c, field_h, field_w, out_h, out_w), dtype=x.dtype)
    for fy in range(field_h):
        y_max = fy + stride * out_h
        for fx in range(field_w):
            x_max = fx + stride * out_w
            cols[:, :, fy, fx, :, :] = x[:, :, fy:y_max:stride, fx:x_max:stride]
    # Pin the result to one canonical memory layout.  For most geometries
    # the reshape below copies (C-contiguous), but for some it can merge
    # strides into a non-contiguous *view* — and BLAS results for strided
    # operands are not bitwise identical to contiguous ones, which would
    # make convolution output bits depend on numpy's stride heuristics.
    return np.ascontiguousarray(
        cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    )


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    field_h: int,
    field_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into an (N, C, H, W) array, summing overlaps.

    The adjoint of :func:`im2col`; used for convolution input gradients.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, field_h, stride, pad)
    out_w = conv_output_size(w, field_w, stride, pad)

    cols = cols.reshape(n, out_h, out_w, c, field_h, field_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for fy in range(field_h):
        y_max = fy + stride * out_h
        for fx in range(field_w):
            x_max = fx + stride * out_w
            padded[:, :, fy:y_max:stride, fx:x_max:stride] += cols[:, :, fy, fx, :, :]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int, pad: int
):
    """2D convolution. ``weight`` is (out_c, in_c, kh, kw), ``bias`` (out_c,).

    Returns ``(output, cache)`` where ``cache`` feeds the backward pass.
    """
    n, c, h, w = x.shape
    out_c, in_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"weight expects {in_c} input channels, input has {c}")
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)

    cols = im2col(x, kh, kw, stride, pad)
    w_mat = weight.reshape(out_c, -1)
    out = cols @ w_mat.T + bias
    out = out.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)
    cache = (x.shape, cols, weight, stride, pad)
    return out, cache


def conv2d_backward(grad_out: np.ndarray, cache):
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    x_shape, cols, weight, stride, pad = cache
    out_c, in_c, kh, kw = weight.shape
    n = x_shape[0]

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_c)
    grad_bias = grad_flat.sum(axis=0)
    grad_weight = (grad_flat.T @ cols).reshape(weight.shape)
    grad_cols = grad_flat @ weight.reshape(out_c, -1)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, pad)
    return grad_x, grad_weight, grad_bias


def pool_windows(x: np.ndarray, field: int, stride: int) -> np.ndarray:
    """Zero-copy view of ``x`` (N, C, H, W) as pooling windows.

    Returns (N, C, OH, OW, field, field) where ``[..., i, j, :, :]`` is the
    window reduced into output position (i, j) — the shared geometry of
    max and average pooling.  Pure stride arithmetic: no data moves, so
    reductions over the last two axes read ``x`` directly instead of
    round-tripping through a generic im2col copy.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, field, stride, 0)
    out_w = conv_output_size(w, field, stride, 0)
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, c, out_h, out_w, field, field),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def maxpool2d_forward(x: np.ndarray, field: int, stride: int):
    """Max pooling with square windows (no padding, as in the paper's nets)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, field, stride, 0)
    out_w = conv_output_size(w, field, stride, 0)

    # One copy (window flattening) instead of im2col's scratch + fold;
    # row layout matches im2col's (N*C*OH*OW, field*field) exactly, so the
    # cache stays interchangeable with earlier releases.
    cols = pool_windows(x, field, stride).reshape(-1, field * field)
    arg = np.argmax(cols, axis=1)
    out = cols[np.arange(cols.shape[0]), arg]
    out = out.reshape(n, c, out_h, out_w)
    cache = (x.shape, arg, field, stride, cols.shape)
    return out, cache


def maxpool2d_backward(grad_out: np.ndarray, cache):
    """Backward pass of max pooling: route gradients to the argmax inputs."""
    x_shape, arg, field, stride, cols_shape = cache
    n, c, h, w = x_shape
    grad_cols = np.zeros(cols_shape, dtype=grad_out.dtype)
    grad_cols[np.arange(cols_shape[0]), arg] = grad_out.reshape(-1)
    grad_x = col2im(grad_cols, (n * c, 1, h, w), field, field, stride, 0)
    return grad_x.reshape(x_shape)


def avgpool2d_forward(x: np.ndarray, field: int, stride: int):
    """Average pooling with square windows (no padding)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, field, stride, 0)
    out_w = conv_output_size(w, field, stride, 0)
    cols = pool_windows(x, field, stride).reshape(-1, field * field)
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    cache = (x.shape, field, stride, cols.shape)
    return out, cache


def avgpool2d_backward(grad_out: np.ndarray, cache):
    """Backward pass of average pooling: spread gradients uniformly.

    Every input position inside a window receives grad/field² from that
    window, so the fold is a direct strided scatter-add of the scaled
    output gradient — no (N*C*OH*OW, field*field) repeat intermediate.
    """
    x_shape, field, stride, cols_shape = cache
    n, c, h, w = x_shape
    out_h = conv_output_size(h, field, stride, 0)
    out_w = conv_output_size(w, field, stride, 0)
    g = grad_out.reshape(n, c, out_h, out_w) / (field * field)
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    for fy in range(field):
        y_max = fy + stride * out_h
        for fx in range(field):
            x_max = fx + stride * out_w
            grad_x[:, :, fy:y_max:stride, fx:x_max:stride] += g
    return grad_x


def relu_forward(x: np.ndarray):
    """Rectified linear unit."""
    mask = x > 0
    return x * mask, mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Backward pass of ReLU."""
    return grad_out * mask


def linear_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray):
    """Fully-connected layer: flattens all non-batch dims.

    ``weight`` is (out_features, in_features), ``bias`` (out_features,).
    """
    flat = x.reshape(x.shape[0], -1)
    if flat.shape[1] != weight.shape[1]:
        raise ValueError(
            f"linear expects {weight.shape[1]} features, input has {flat.shape[1]}"
        )
    out = flat @ weight.T + bias
    return out, (x.shape, flat, weight)


def linear_backward(grad_out: np.ndarray, cache):
    """Backward pass of :func:`linear_forward`."""
    x_shape, flat, weight = cache
    grad_bias = grad_out.sum(axis=0)
    grad_weight = grad_out.T @ flat
    grad_x = (grad_out @ weight).reshape(x_shape)
    return grad_x, grad_weight, grad_bias


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy loss of (N, K) logits against (N,) integer labels."""
    probs = softmax(logits)
    n = logits.shape[0]
    eps = 1e-12
    return float(-np.log(probs[np.arange(n), labels] + eps).mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. logits."""
    probs = softmax(logits)
    n = logits.shape[0]
    probs[np.arange(n), labels] -= 1.0
    return probs / n


def smooth_l1(pred: np.ndarray, target: np.ndarray, beta: float = 1.0) -> float:
    """Mean smooth-L1 (Huber) loss, the standard box-regression loss."""
    diff = np.abs(pred - target)
    loss = np.where(diff < beta, 0.5 * diff**2 / beta, diff - 0.5 * beta)
    return float(loss.mean())


def smooth_l1_grad(
    pred: np.ndarray, target: np.ndarray, beta: float = 1.0
) -> np.ndarray:
    """Gradient of mean smooth-L1 w.r.t. ``pred``."""
    diff = pred - target
    grad = np.where(np.abs(diff) < beta, diff / beta, np.sign(diff))
    return grad / pred.size
