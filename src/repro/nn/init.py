"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so every network
in the repository is reproducible from a seed — benches train the accuracy
networks on first use and must get identical weights every run.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_conv", "kaiming_linear", "zeros"]


def kaiming_conv(
    shape: Tuple[int, int, int, int], rng: np.random.Generator
) -> np.ndarray:
    """He-normal init for conv weights (out_c, in_c, kh, kw)."""
    out_c, in_c, kh, kw = shape
    fan_in = in_c * kh * kw
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_linear(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He-normal init for linear weights (out_features, in_features)."""
    fan_in = shape[1]
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    """Zero init (biases)."""
    return np.zeros(shape)
