"""Optimisers for training the accuracy-experiment networks.

Plain SGD with momentum matches the Caffe recipes the paper trains with;
Adam is provided because the synthetic-task networks converge in far fewer
steps with it, keeping the benches fast.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over a set of layers (optionally a subset: the suffix)."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        layers: Sequence[Layer],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(layers)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self) -> None:
        for layer in self.layers:
            vel = self._velocity.setdefault(id(layer), {})
            for key, param in layer.params.items():
                grad = layer.grads[key]
                if self.weight_decay:
                    grad = grad + self.weight_decay * param
                v = vel.get(key)
                if v is None:
                    v = np.zeros_like(param)
                v = self.momentum * v - self.lr * grad
                vel[key] = v
                param += v


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba)."""

    def __init__(
        self,
        layers: Sequence[Layer],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(layers)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, Dict[str, np.ndarray]] = {}
        self._v: Dict[int, Dict[str, np.ndarray]] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for layer in self.layers:
            m_state = self._m.setdefault(id(layer), {})
            v_state = self._v.setdefault(id(layer), {})
            for key, param in layer.params.items():
                grad = layer.grads[key]
                if self.weight_decay:
                    grad = grad + self.weight_decay * param
                m = m_state.get(key)
                v = v_state.get(key)
                if m is None:
                    m = np.zeros_like(param)
                    v = np.zeros_like(param)
                m = self.beta1 * m + (1 - self.beta1) * grad
                v = self.beta2 * v + (1 - self.beta2) * grad**2
                m_state[key] = m
                v_state[key] = v
                param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
