"""Sequential CNN container with the prefix/suffix split AMC needs.

AMC (paper §II-A) splits a network at a *target layer*: the prefix (input →
target) runs only on key frames; the suffix (target → output) runs on every
frame. :class:`Network` supports running arbitrary layer ranges so the AMC
executor can invoke exactly those two pieces, and exposes the structural
queries the paper's target-layer policy uses ("last spatial layer", "layer
after the first pooling layer").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .layers import Layer, MaxPool2d, AvgPool2d

__all__ = ["Network"]


class Network:
    """An ordered list of uniquely-named layers."""

    def __init__(self, name: str, layers: Sequence[Layer], input_shape: Tuple[int, int, int]):
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in network {name}: {names}")
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self._index: Dict[str, int] = {layer.name: i for i, layer in enumerate(layers)}
        # Validate shape propagation eagerly so bad architectures fail at
        # construction, not mid-experiment.
        self.layer_input_shapes = self._propagate_shapes()
        #: compiled inference plans keyed by dtype name (capacity grows in
        #: place); see :meth:`inference_plan`.
        self._plans: Dict[str, "InferencePlan"] = {}
        #: monotonically increasing weight snapshot id.  Bumped whenever
        #: cached derived state becomes stale (``invalidate_plans``, hit
        #: by ``load_state_dict``), so content-addressed caches keyed on
        #: it invalidate across live weight swaps without draining.
        self.weight_version = 0

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def _propagate_shapes(self) -> List[Tuple[int, ...]]:
        shapes = []
        shape: Tuple[int, ...] = self.input_shape
        for layer in self.layers:
            shapes.append(shape)
            shape = layer.output_shape(shape)
        self.output_shape = shape
        return shapes

    def index_of(self, layer_name: str) -> int:
        if layer_name not in self._index:
            raise KeyError(f"no layer named {layer_name!r} in network {self.name}")
        return self._index[layer_name]

    def layer_output_shape(self, layer_name: str) -> Tuple[int, ...]:
        """Shape of the activation produced by ``layer_name`` (no batch dim)."""
        idx = self.index_of(layer_name)
        return self.layers[idx].output_shape(self.layer_input_shapes[idx])

    def last_spatial_layer(self) -> str:
        """Name of the last layer that still has 2D structure.

        Spatial structure, once destroyed by a non-spatial layer (Flatten,
        Linear), never returns, so this is the layer just before the first
        non-spatial one — the paper's default (late) AMC target (§II-C5).
        """
        spatial = self.spatial_layers()
        if not spatial:
            raise ValueError(f"network {self.name} has no spatial layers")
        return spatial[-1]

    def first_post_pool_layer(self) -> str:
        """Name of the first pooling layer — the paper's *early* target."""
        for layer in self.layers:
            if isinstance(layer, (MaxPool2d, AvgPool2d)):
                return layer.name
        raise ValueError(f"network {self.name} has no pooling layers")

    def spatial_layers(self) -> List[str]:
        """Names of the leading run of spatial layers (valid AMC targets)."""
        names: List[str] = []
        for layer in self.layers:
            if not layer.is_spatial:
                break
            names.append(layer.name)
        return names

    def prefix_layers(self, target: str) -> List[Layer]:
        """Layers from the input through ``target`` inclusive."""
        return self.layers[: self.index_of(target) + 1]

    def suffix_layers(self, target: str) -> List[Layer]:
        """Layers strictly after ``target``."""
        return self.layers[self.index_of(target) + 1 :]

    def validate_target(self, target: str) -> None:
        """Ensure every prefix layer is spatial (AMC's warping requirement)."""
        for layer in self.prefix_layers(target):
            if not layer.is_spatial:
                raise ValueError(
                    f"target {target!r} places non-spatial layer {layer.name!r} "
                    "in the AMC prefix; warping is undefined there"
                )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the whole network."""
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def forward_prefix(self, x: np.ndarray, target: str, train: bool = False) -> np.ndarray:
        """Run input → target layer inclusive (key-frame path)."""
        for layer in self.prefix_layers(target):
            x = layer.forward(x, train=train)
        return x

    def forward_suffix(
        self, activation: np.ndarray, target: str, train: bool = False
    ) -> np.ndarray:
        """Run the layers after ``target`` on a (possibly warped) activation."""
        x = activation
        for layer in self.suffix_layers(target):
            x = layer.forward(x, train=train)
        return x

    def inference_plan(self, max_batch: int = 1, dtype="float64"):
        """The compiled forward-only executor for this network.

        One plan is cached per dtype; geometry compiles once and the
        scratch capacity grows on demand (never shrinks here — callers
        that want memory back use :meth:`InferencePlan.shrink` and the
        cache regrows it when needed).  The AMC executor at occupancy 1,
        the lockstep runtime at workload width, and the serving runtime
        at fluctuating occupancy therefore all share one plan per
        network.  See :class:`repro.nn.inference.InferencePlan`.
        """
        from .inference import InferencePlan, resolve_plan_dtype

        key = resolve_plan_dtype(dtype)
        plan = self._plans.get(key)
        if plan is None:
            plan = InferencePlan(self, max_batch=max_batch, dtype=dtype)
            self._plans[key] = plan
        elif plan.max_batch < max_batch:
            plan.reserve(max_batch)
        return plan

    def __getstate__(self):
        """Pickle without compiled inference plans (scratch, snapshots).

        Plans rebuild on demand from :meth:`inference_plan`, so a network
        shipped to a worker process arrives light and compiles its own —
        the plan-per-worker ownership rule of the sharded serving layer.
        """
        state = self.__dict__.copy()
        state["_plans"] = {}
        return state

    def invalidate_plans(self) -> None:
        """Drop cached inference plans (needed after parameter rebinding;
        float32 plans also snapshot weights at compile time) and bump the
        weight version so content-addressed activation caches expire."""
        self._plans.clear()
        self.weight_version += 1

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the whole network (after a train-mode forward)."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def backward_suffix(self, grad_out: np.ndarray, target: str) -> np.ndarray:
        """Backprop through the suffix only (Table III suffix fine-tuning)."""
        for layer in reversed(self.suffix_layers(target)):
            grad_out = layer.backward(grad_out)
        return grad_out

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self):
        """Yield (layer, key, array) triples for every trainable tensor."""
        for layer in self.layers:
            for key in layer.params:
                yield layer, key, layer.params[key]

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def macs_per_layer(self) -> Dict[str, int]:
        """MAC count of every layer for one input frame (hardware model)."""
        return {
            layer.name: layer.macs(shape)
            for layer, shape in zip(self.layers, self.layer_input_shapes)
        }

    def prefix_macs(self, target: str) -> int:
        """Total MACs in the AMC prefix — the work predicted frames skip."""
        idx = self.index_of(target)
        return sum(
            layer.macs(shape)
            for layer, shape in zip(self.layers[: idx + 1], self.layer_input_shapes)
        )

    def suffix_macs(self, target: str) -> int:
        """Total MACs in the AMC suffix — the work every frame pays."""
        idx = self.index_of(target)
        return sum(
            layer.macs(shape)
            for layer, shape in zip(
                self.layers[idx + 1 :], self.layer_input_shapes[idx + 1 :]
            )
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat copy of all parameters, keyed ``layer.param``."""
        return {
            f"{layer.name}.{key}": layer.params[key].copy()
            for layer in self.layers
            for key in layer.params
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for layer in self.layers:
            for key in layer.params:
                full = f"{layer.name}.{key}"
                if full not in state:
                    raise KeyError(f"state dict missing {full}")
                if state[full].shape != layer.params[key].shape:
                    raise ValueError(
                        f"shape mismatch for {full}: "
                        f"{state[full].shape} vs {layer.params[key].shape}"
                    )
                layer.params[key] = state[full].copy()
        # Parameter arrays were rebound (and float32 plans snapshot
        # weights), so compiled plans must not serve stale tensors.
        self.invalidate_plans()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network({self.name}, {len(self.layers)} layers)"
