"""Planned CNN inference — the execution engine behind AMC's hot path.

Training needs autograd caches and tolerates allocation churn; inference
runs the same prefix/suffix every frame of every clip and should not.  An
:class:`InferencePlan` is compiled once per (network, batch capacity,
dtype) and then executes layer ranges against preallocated scratch:

* **im2col as a gather** — each convolution's unfold geometry is compiled
  to one flat index array; per call the input is staged into a persistent
  padded buffer and a single ``np.take`` materialises the column matrix.
  No 6-D scratch, no transpose copy, no per-frame allocation.
* **per-sample GEMMs with a batched probe** — BLAS does not guarantee
  that one matmul over ``B`` stacked samples is bitwise equal to ``B``
  single-sample matmuls (it is not for this repo's FC shapes), and AMC's
  contract is that batched execution reproduces the serial pipeline
  exactly.  The plan therefore defaults to one GEMM per sample — the
  serial shapes — and, on the first call at each batch size, probes
  whether the fused batched GEMM is bitwise identical on this host;
  if it is, later calls take the fused path.
* **no training caches** — forward-only; pooling skips argmax entirely
  (the strided-window max needs no unfold), ReLU reuses one mask buffer.
* **opt-in float32** — ``dtype="float32"`` snapshots casted weights at
  compile time for roughly half the memory traffic.  float64 remains the
  default and is bit-identical to :meth:`repro.nn.network.Network.forward`.
* **quantized lanes** — ``dtype="int8"`` and ``dtype="q16"`` compile the
  paper's accuracy-for-throughput trade into the plan itself: per-layer
  Q-formats calibrated over a seeded sample set
  (:func:`repro.nn.quantize.calibrate_layer`), quantized weight
  snapshots, im2col over int8/int16 activations, and integer-exact
  GEMMs with per-layer requantization.  See the "quantized plans" notes
  on :class:`InferencePlan` for the execution scheme and the tolerance
  contract that replaces bit-identity for these lanes.

Plans are obtained through :meth:`Network.inference_plan`, which caches
one plan per dtype and grows its capacity on demand; calls with any batch
size up to the capacity reuse the same scratch through leading-axis
views, and :meth:`InferencePlan.reserve` / :meth:`InferencePlan.shrink`
resize the scratch without recompiling geometry — the mechanism the
serving runtime uses to track occupancy without ever rebuilding a plan.

Ownership: arrays returned by ``run``/``run_prefix``/``run_suffix`` are
fresh copies, safe to store (the executor stores key activations, the
runtime stores per-frame outputs).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hardware.fixed_point import QFormat, QuantSavings, estimate_quantized_savings
from . import functional as F
from .layers import AvgPool2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU
from .quantize import (
    CALIBRATION_SAMPLES,
    CALIBRATION_SEED,
    LayerCalibration,
    QuantTolerance,
    calibrate_layer,
)

__all__ = [
    "InferencePlan",
    "resolve_plan_dtype",
    "quantized_savings",
    "QUANT_DTYPES",
]

_DTYPES = {"float64": np.float64, "float32": np.float32}


class _QuantSpec:
    """Per-family constants of a quantized plan lane.

    ``conv_bits`` sizes convolution weights *and* activations — for the
    int8 family both ride in one byte, which is where the speed lives:
    the im2col gathers (the planned engine's dominant memory traffic)
    move a quarter of float32's bytes, and the 8-bit operands feed the
    AVX512-VNNI integer GEMM when the host kernel has it.
    ``linear_bits`` sizes the fully-connected layers: they carry under
    2% of the MACs, so the int8 family keeps them at 16 bits — logit
    accuracy is nearly free while the convolutions still move the
    narrow operands (the same asymmetry EVA2 exploits: narrow where the
    traffic is).  The systematic part of the 8-bit rounding error is
    folded back into the quantized biases at compile time
    (:func:`_fold_bias_correction`), which is what keeps the lane's
    top-1 agreement at the contract bound despite the one-byte
    activations.

    The widths are fixed per family, never derived from host kernel
    availability: every process — VNNI, plain C, or the
    ``REPRO_FORCE_NUMPY`` lane — must pick identical Q-formats and
    produce bit-identical raws.  Storage and GEMM dtypes are derived
    per layer from the calibrated formats (:func:`_storage_for`,
    :func:`_gemm_dtype_for`).
    """

    def __init__(self, name, conv_bits, linear_bits):
        self.name = name
        self.conv_bits = conv_bits
        self.linear_bits = linear_bits

    def weight_bits(self, layer) -> int:
        return self.linear_bits if isinstance(layer, Linear) else self.conv_bits

    def act_in_bits(self, layer) -> int:
        """Width of the activation feeding ``layer``'s GEMM."""
        return self.linear_bits if isinstance(layer, Linear) else self.conv_bits


QUANT_DTYPES = ("int8", "q16")

_QUANT_SPECS = {
    "int8": _QuantSpec("int8", 8, 16),
    "q16": _QuantSpec("q16", 16, 16),
}


def _storage_for(fmt: QFormat) -> np.dtype:
    """Integer dtype that holds raws of ``fmt`` between steps."""
    return np.dtype(np.int8) if fmt.total_bits <= 8 else np.dtype(np.int16)


def _gemm_dtype_for(in_fmt: QFormat, w_fmts, terms: int) -> np.dtype:
    """Float dtype whose mantissa makes the integer GEMM *exact*.

    A product of raws needs ``(in_bits-1) + (w_bits-1)`` bits, a
    reduction over ``terms`` of them adds ``ceil(log2(terms))``, and one
    more bit covers the folded-in quantized bias.  When that fits
    float32's 24-bit mantissa the GEMM runs in float32 (full sgemm
    throughput); otherwise float64 — still exact (53 bits), still
    order-independent, still fused.
    """
    w_bits = max(f.total_bits for f in w_fmts)
    bits = (
        (in_fmt.total_bits - 1)
        + (w_bits - 1)
        + math.ceil(math.log2(max(terms, 2)))
        + 1
    )
    return np.dtype(np.float32) if bits <= 24 else np.dtype(np.float64)

#: Safety factor on the calibration-set error when sizing a quantized
#: plan's ``max_abs_error`` bound.  The headroom covers two effects the
#: calibration pass cannot see: live traffic is only *sampled* by the
#: seeded calibration set, and under AMC the plan's prefix error is
#: amplified before it reaches the output — predicted frames warp the
#: quantized prefix activations and re-enter the suffix, compounding the
#: per-pass error severalfold.  Measured across the serving workloads,
#: end-to-end error stays within ~6x the single-pass calibration error;
#: 16x promises comfortably past that while still rejecting
#: wrong-by-construction outputs.
_TOLERANCE_SAFETY = 16.0

#: Absolute floor of the ``max_abs_error`` bound (a plan whose
#: calibration error rounds to zero still promises a non-trivial bound).
_TOLERANCE_FLOOR = 1e-6

#: Top-1 agreement fraction a quantized lane promises against the
#: float64 reference — the second leg of the tolerance contract.
_TOP1_BOUND = 0.98


def _dtype_error(dtype) -> ValueError:
    supported = sorted((*_DTYPES, *QUANT_DTYPES))
    return ValueError(f"dtype must be one of {supported}, got {dtype!r}")


def resolve_plan_dtype(dtype) -> str:
    """Canonical plan-family name for ``dtype``: ``"float64"``,
    ``"float32"``, ``"int8"``, or ``"q16"``.

    Accepts the family names as strings plus anything ``np.dtype``
    resolves to one of the float families.  This name keys the
    per-network plan cache and the prefix-service content cache, so two
    spellings of the same family must always map to one string.
    """
    if isinstance(dtype, str):
        if dtype in _DTYPES or dtype in _QUANT_SPECS:
            return dtype
        raise _dtype_error(dtype)
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        raise _dtype_error(dtype) from None
    for name, np_type in _DTYPES.items():
        if resolved == np.dtype(np_type):
            return name
    raise _dtype_error(dtype)


def _resolve_dtype(dtype) -> np.dtype:
    """The numpy dtype a plan family exchanges with its callers.

    Float families compute in their own dtype; the quantized families
    hold integers internally but accept and return float32 at the plan
    boundary (inputs are quantized on entry, outputs dequantized on
    exit), so their external dtype is float32.
    """
    name = resolve_plan_dtype(dtype)
    if name in _DTYPES:
        return np.dtype(_DTYPES[name])
    return np.dtype(np.float32)


def quantized_savings(network, dtype) -> Optional[QuantSavings]:
    """Estimated MAC-energy / memory-traffic savings of a quantized lane.

    Pure shape arithmetic over the network's weighted layers and the
    family's fixed bit widths — no compiled plan needed, because the
    widths are family constants, not calibration outputs.  Returns
    ``None`` for the float families (there is nothing to compare).
    Surfaced on ``WorkloadResult`` / ``ServingReport`` so a serving run
    reports the hardware story (what an EVA2-style datapath at these
    widths would save) next to the measured host throughput.
    """
    name = resolve_plan_dtype(dtype)
    spec = _QUANT_SPECS.get(name)
    if spec is None:
        return None
    rows = []
    for layer, in_shape in zip(network.layers, network.layer_input_shapes):
        if not isinstance(layer, (Conv2d, Linear)):
            continue
        rows.append((
            int(layer.macs(in_shape)),
            int(np.prod(in_shape)),
            int(layer.params["weight"].size),
            spec.weight_bits(layer),
            spec.act_in_bits(layer),
        ))
    return estimate_quantized_savings(rows)


class _Step:
    """One compiled layer: preallocated scratch plus a forward method."""

    def __init__(self, layer: Layer):
        self.layer = layer

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        raise NotImplementedError

    def resize(self, capacity: int) -> None:
        """Reallocate scratch for a new batch capacity.

        Only leading-axis scratch changes; compiled geometry (gather
        indices, weight snapshots, fused-GEMM probe results) is
        capacity-independent and survives every resize.
        """


class _MatmulMixin:
    """Shared per-sample-vs-fused GEMM dispatch.

    ``_matmul_rows(a2d, w_t, out2d, rows_per_sample, batch)`` computes
    ``a2d @ w_t`` into ``out2d``.  The default is one GEMM per sample —
    exactly the shapes the serial pipeline issues, hence bitwise equal to
    it by construction.  On first encountering a batch size, a probe on
    synthetic full-range random data (never the live activations, which
    could be degenerate — e.g. mostly zero after a ReLU — and pass by
    coincidence) compares the fused single GEMM against the per-sample
    loop: when BLAS produces identical bits for the stacked shape
    (shape-dependent, so probed per host), the fused call — fewer kernel
    launches and numpy round-trips — serves all later calls at that
    batch size.
    """

    def _init_matmul(self):
        self._fused_ok: Dict[int, bool] = {}

    def _probe_fused(self, w_t: np.ndarray, rows: int, batch: int) -> bool:
        rng = np.random.default_rng(0x5EED + batch)
        a = rng.standard_normal((batch * rows, w_t.shape[0])).astype(
            w_t.dtype, copy=False
        )
        fused = a @ w_t
        looped = np.empty_like(fused)
        for s in range(batch):
            np.matmul(a[s * rows : (s + 1) * rows], w_t,
                      out=looped[s * rows : (s + 1) * rows])
        return bool(np.array_equal(fused, looped))

    def _matmul_rows(
        self,
        a2d: np.ndarray,
        w_t: np.ndarray,
        out2d: np.ndarray,
        rows: int,
        batch: int,
    ) -> None:
        if batch == 1:
            np.matmul(a2d, w_t, out=out2d)
            return
        fused = self._fused_ok.get(batch)
        if fused is None:
            fused = self._fused_ok[batch] = self._probe_fused(w_t, rows, batch)
        if fused:
            np.matmul(a2d, w_t, out=out2d)
            return
        for s in range(batch):
            np.matmul(a2d[s * rows : (s + 1) * rows], w_t,
                      out=out2d[s * rows : (s + 1) * rows])


class _ConvStep(_Step, _MatmulMixin):
    def __init__(self, layer: Conv2d, in_shape, capacity: int, dtype,
                 weights: Optional[Tuple[np.ndarray, np.ndarray]]):
        super().__init__(layer)
        self._init_matmul()
        c, h, w = in_shape
        k, stride, pad = layer.kernel, layer.stride, layer.pad
        self.out_h = F.conv_output_size(h, k, stride, pad)
        self.out_w = F.conv_output_size(w, k, stride, pad)
        self.out_c = layer.out_channels
        self.rows = self.out_h * self.out_w
        hp, wp = h + 2 * pad, w + 2 * pad
        self._interior = (slice(None), slice(pad, pad + h), slice(pad, pad + w))
        self.padded = np.zeros((capacity, c, hp, wp), dtype=dtype)
        # Gather geometry: cols[b, (oy, ox), (c, ky, kx)] =
        # padded[b, c, ky + stride*oy, kx + stride*ox] — im2col's exact
        # column layout, compiled to flat indices once.
        oy = np.arange(self.out_h) * stride
        ox = np.arange(self.out_w) * stride
        ci = np.arange(c)
        ky = np.arange(k)
        kx = np.arange(k)
        idx = (
            ci[None, None, :, None, None] * (hp * wp)
            + (ky[None, None, None, :, None] + oy[:, None, None, None, None]) * wp
            + (kx[None, None, None, None, :] + ox[None, :, None, None, None])
        )
        self.gather = np.ascontiguousarray(idx.reshape(-1), dtype=np.int64)
        self.ckk = c * k * k
        self._dtype = dtype
        self._padded_shape = (c, hp, wp)
        self.cols = np.empty((capacity, self.rows * self.ckk), dtype=dtype)
        self.out2d = np.empty((capacity * self.rows, self.out_c), dtype=dtype)
        self._weights = weights  # None = read live float64 params
        # The compiled gather (when the optional kernel built) moves the
        # column materialisation off np.take's generic path; float64 only.
        self._ckernel = None
        if dtype == np.float64:
            from ..core.sad_kernel import get_kernel

            self._ckernel = get_kernel()

    def resize(self, capacity: int) -> None:
        # The padded buffer's border must stay zero — np.zeros, not empty.
        self.padded = np.zeros((capacity,) + self._padded_shape, dtype=self._dtype)
        self.cols = np.empty((capacity, self.rows * self.ckk), dtype=self._dtype)
        self.out2d = np.empty(
            (capacity * self.rows, self.out_c), dtype=self._dtype
        )

    def _operands(self):
        if self._weights is not None:
            return self._weights
        w_mat = self.layer.params["weight"].reshape(self.out_c, -1)
        return w_mat.T, self.layer.params["bias"]

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        padded = self.padded[:batch]
        padded[(slice(None),) + self._interior] = x
        cols = self.cols[:batch]
        if self._ckernel is not None:
            self._ckernel.gather_rows(padded.reshape(batch, -1), self.gather, cols)
        else:
            np.take(padded.reshape(batch, -1), self.gather, axis=1, out=cols)
        cols2d = cols.reshape(batch * self.rows, self.ckk)
        out2d = self.out2d[: batch * self.rows]
        w_t, bias = self._operands()
        self._matmul_rows(cols2d, w_t, out2d, self.rows, batch)
        np.add(out2d, bias, out=out2d)
        return out2d.reshape(batch, self.out_h, self.out_w, self.out_c).transpose(
            0, 3, 1, 2
        )


class _LinearStep(_Step, _MatmulMixin):
    def __init__(self, layer: Linear, capacity: int, dtype,
                 weights: Optional[Tuple[np.ndarray, np.ndarray]]):
        super().__init__(layer)
        self._init_matmul()
        self.out = np.empty((capacity, layer.out_features), dtype=dtype)
        self._weights = weights

    def resize(self, capacity: int) -> None:
        self.out = np.empty((capacity,) + self.out.shape[1:], dtype=self.out.dtype)

    def _operands(self):
        if self._weights is not None:
            return self._weights
        return self.layer.params["weight"].T, self.layer.params["bias"]

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        flat = x.reshape(batch, -1)
        out = self.out[:batch]
        w_t, bias = self._operands()
        self._matmul_rows(flat, w_t, out, 1, batch)
        np.add(out, bias, out=out)
        return out


class _ReLUStep(_Step):
    def __init__(self, layer: ReLU, in_shape, capacity: int, dtype,
                 nhwc: bool = False):
        super().__init__(layer)
        # A ReLU fed by a convolution sees an NHWC-contiguous transpose
        # view (the conv GEMM's natural layout); computing in that layout
        # keeps both ufunc passes on contiguous memory.  ReLU is
        # elementwise, so the layout cannot change a single bit.
        self.nhwc = nhwc and len(in_shape) == 3
        # Integer raws (quantized plans) have no signed zeros, so a
        # single max(x, 0) pass is exact and the mask pass is dead
        # weight.  Float lanes keep the two-pass x * (x > 0) form, which
        # is bitwise the training path.
        self.integer = np.issubdtype(np.dtype(dtype), np.integer)
        if self.nhwc:
            c, h, w = in_shape
            shape = (capacity, h, w, c)
        else:
            shape = (capacity,) + tuple(in_shape)
        self.mask = None if self.integer else np.empty(shape, dtype=bool)
        self.out = np.empty(shape, dtype=dtype)

    def resize(self, capacity: int) -> None:
        shape = (capacity,) + self.out.shape[1:]
        if not self.integer:
            self.mask = np.empty(shape, dtype=bool)
        self.out = np.empty(shape, dtype=self.out.dtype)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        if self.nhwc:
            base = x.transpose(0, 2, 3, 1)
            if not base.flags["C_CONTIGUOUS"]:
                # Unexpected layout (custom caller): stay correct.
                return x * (x > 0)
            out = self.out[:batch]
            if self.integer:
                np.maximum(base, 0, out=out)
                return out.transpose(0, 3, 1, 2)
            mask = self.mask[:batch]
            np.greater(base, 0, out=mask)
            np.multiply(base, mask, out=out)
            return out.transpose(0, 3, 1, 2)
        out = self.out[:batch]
        if self.integer:
            np.maximum(x, 0, out=out)
            return out
        mask = self.mask[:batch]
        np.greater(x, 0, out=mask)
        # x * mask, exactly as the training path computes it (bitwise
        # including signed zeros), into reused scratch.
        np.multiply(x, mask, out=out)
        return out


class _MaxPoolStep(_Step):
    def __init__(self, layer: MaxPool2d, in_shape, capacity: int, dtype):
        super().__init__(layer)
        c, h, w = in_shape
        self.field, self.stride = layer.field, layer.stride
        self.out_h = F.conv_output_size(h, self.field, self.stride, 0)
        self.out_w = F.conv_output_size(w, self.field, self.stride, 0)
        self.out = np.empty((capacity, c, self.out_h, self.out_w), dtype=dtype)

    def resize(self, capacity: int) -> None:
        self.out = np.empty((capacity,) + self.out.shape[1:], dtype=self.out.dtype)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        out = self.out[:batch]
        # field² shifted strided slices folded with elementwise maximum —
        # max is exact, so any fold order matches the unfold+argmax
        # training path bit for bit, and each pass is a plain vectorised
        # ufunc instead of a windowed gather.
        first = True
        for fy in range(self.field):
            y_max = fy + self.stride * self.out_h
            for fx in range(self.field):
                x_max = fx + self.stride * self.out_w
                window = x[:, :, fy:y_max:self.stride, fx:x_max:self.stride]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out


class _AvgPoolStep(_Step):
    def __init__(self, layer: AvgPool2d, in_shape, capacity: int, dtype):
        super().__init__(layer)
        c, h, w = in_shape
        self.field, self.stride = layer.field, layer.stride
        out_h = F.conv_output_size(h, self.field, self.stride, 0)
        out_w = F.conv_output_size(w, self.field, self.stride, 0)
        self.flat = np.empty(
            (capacity, c, out_h, out_w, self.field * self.field), dtype=dtype
        )
        self.out = np.empty((capacity, c, out_h, out_w), dtype=dtype)

    def resize(self, capacity: int) -> None:
        self.flat = np.empty(
            (capacity,) + self.flat.shape[1:], dtype=self.flat.dtype
        )
        self.out = np.empty((capacity,) + self.out.shape[1:], dtype=self.out.dtype)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        windows = F.pool_windows(x, self.field, self.stride)
        flat = self.flat[:batch]
        # Materialise windows once so the mean reduces a contiguous last
        # axis — the same reduction order as the unfold-based layer path.
        np.copyto(flat, windows.reshape(windows.shape[:4] + (-1,)))
        out = self.out[:batch]
        np.mean(flat, axis=-1, out=out)
        return out


class _FlattenStep(_Step):
    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        return x.reshape(batch, -1)


class _GenericStep(_Step):
    """Fallback for layer types the planner does not specialise."""

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        return self.layer.forward(x, train=False)


# --------------------------------------------------------------------- #
# quantized-lane steps
# --------------------------------------------------------------------- #
def _quantize_raws(x: np.ndarray, fmt: QFormat, storage: np.dtype) -> np.ndarray:
    """Float activations → raw integers in ``fmt`` (round, saturate)."""
    raw = np.rint(np.asarray(x, dtype=np.float64) * fmt.scale)
    np.clip(raw, fmt.min_raw, fmt.max_raw, out=raw)
    return raw.astype(storage)


def _quantize_operands(w_t, bias, cal, in_fmt, out_fmt, gemm_dtype):
    """Quantized GEMM operands for one Conv/Linear layer.

    ``w_t`` is the (in, out)-shaped transposed weight matrix; each
    output column gets its own calibrated scale
    (``cal.weight_channel_formats``).  Returns
    ``(w_q, bias_q, acc_scales, out_scale, requant_mult)`` — the last
    two are per-channel vectors, one of which is None depending on
    whether the layer requantizes (mid-plan) or dequantizes (final
    layer); ``acc_scales`` (float64, value→accumulator units) is kept
    for the calibration-time bias correction.  Every scale involved is
    a power of two, so the requant/dequant multiplies stay exact.
    """
    w_fmts = cal.weight_channel_formats
    w_scales = np.array([f.scale for f in w_fmts], dtype=np.float64)
    w_raw = np.rint(np.asarray(w_t, dtype=np.float64) * w_scales[None, :])
    np.clip(w_raw, w_fmts[0].min_raw, w_fmts[0].max_raw, out=w_raw)
    w_q = np.ascontiguousarray(w_raw.astype(gemm_dtype))
    acc_scales = float(in_fmt.scale) * w_scales
    bias_q = np.rint(bias * acc_scales).astype(gemm_dtype)
    if out_fmt is None:
        return w_q, bias_q, acc_scales, (1.0 / acc_scales).astype(gemm_dtype), None
    return (
        w_q, bias_q, acc_scales, None,
        (out_fmt.scale / acc_scales).astype(gemm_dtype),
    )


def _fold_bias_correction(step, out, ref, axes) -> None:
    """Shift ``step.bias_q`` by the mean (ref - quantized output) error.

    ``out`` is the step's raw (or final-layer float) output over the
    calibration samples; the per-channel mean deviation is rounded into
    accumulator units, so the folded bias stays integer-valued and the
    GEMM stays exact.
    """
    if step.out_fmt is not None:
        deq = np.asarray(out, dtype=np.float64) / step.out_fmt.scale
    else:
        deq = np.asarray(out, dtype=np.float64)
    delta = np.mean(np.asarray(ref, dtype=np.float64) - deq, axis=axes)
    corr = np.rint(delta * step.acc_scales)
    step.bias_q += corr.astype(step.bias_q.dtype)


def _requant_gemm_out(out2d, mult, lo, hi, store) -> None:
    """Rescale integer-exact GEMM output into the next format's raws.

    ``mult`` is a power of two (both scales are), so the multiply only
    shifts exponents and stays exact; ``np.rint`` then resolves exact
    .5 ties deterministically (half-to-even) and the clip saturates —
    the same round/saturate semantics as :meth:`QFormat.quantize`.
    """
    np.multiply(out2d, mult, out=out2d)
    np.rint(out2d, out=out2d)
    np.clip(out2d, lo, hi, out=out2d)
    np.copyto(store, out2d, casting="unsafe")


class _QuantConvStep(_Step):
    """A convolution over raw integer activations.

    Same im2col-as-gather geometry as :class:`_ConvStep`, but the padded
    buffer and gather run over int8/int16 raws and the GEMM multiplies
    integer-valued float operands — exact integer arithmetic (see
    ``_QuantSpec``), so the fused batched GEMM is *always* bitwise equal
    to the per-sample loop and no probe is needed.  The accumulator
    (scale ``in_fmt.scale * w_fmt.scale``) absorbs the quantized bias
    and is then requantized to ``out_fmt`` — or dequantized to float32
    when this is the plan's final compute layer (``out_fmt is None``).
    """

    def __init__(self, layer: Conv2d, in_shape, capacity: int, spec,
                 cal: LayerCalibration, in_fmt: Optional[QFormat],
                 out_fmt: Optional[QFormat]):
        super().__init__(layer)
        c, h, w = in_shape
        k, stride, pad = layer.kernel, layer.stride, layer.pad
        self.out_h = F.conv_output_size(h, k, stride, pad)
        self.out_w = F.conv_output_size(w, k, stride, pad)
        self.out_c = layer.out_channels
        self.rows = self.out_h * self.out_w
        hp, wp = h + 2 * pad, w + 2 * pad
        self._interior = (slice(None), slice(pad, pad + h), slice(pad, pad + w))
        oy = np.arange(self.out_h) * stride
        ox = np.arange(self.out_w) * stride
        ci = np.arange(c)
        ky = np.arange(k)
        kx = np.arange(k)
        idx = (
            ci[None, None, :, None, None] * (hp * wp)
            + (ky[None, None, None, :, None] + oy[:, None, None, None, None]) * wp
            + (kx[None, None, None, None, :] + ox[None, :, None, None, None])
        )
        self.gather = np.ascontiguousarray(idx.reshape(-1), dtype=np.int64)
        self.ckk = c * k * k
        self._in_shape = (c, h, w)
        self.in_fmt = in_fmt if in_fmt is not None else cal.input_format
        self.quantize_input = in_fmt is None
        self.out_fmt = out_fmt
        self.storage = _storage_for(self.in_fmt)
        self.gemm_dtype = _gemm_dtype_for(
            self.in_fmt, cal.weight_channel_formats, self.ckk
        )
        w_mat = layer.params["weight"].reshape(self.out_c, -1).T
        (self.w_q, self.bias_q, self.acc_scales, self.out_scale,
         self.requant_mult) = (
            _quantize_operands(
                w_mat, layer.params["bias"], cal, self.in_fmt, out_fmt,
                self.gemm_dtype,
            )
        )
        self._padded_shape = (c, hp, wp)
        from ..core.sad_kernel import get_kernel

        ck = get_kernel()
        # Fused gather-and-widen: only for the storage/GEMM pairs the
        # kernel implements (the common ones; exotic escalations fall
        # back to np.take + cast, still exact).
        self._gather_fn = None if ck is None else {
            (np.int8, np.float32): ck.gather_rows_q8,
            (np.int16, np.float32): ck.gather_rows_q16f,
            (np.int16, np.float64): ck.gather_rows_q16,
        }.get((self.storage, self.gemm_dtype))
        # Single-pass bias-fold + requantize; the NumPy fallback adds
        # the bias separately first.
        out_storage = None if out_fmt is None else _storage_for(out_fmt)
        self._requant_fn = None if ck is None else {
            (np.float32, np.int8): ck.requant_rows_q8,
            (np.float32, np.int16): ck.requant_rows_q16f,
            (np.float64, np.int16): ck.requant_rows_q16,
        }.get((self.gemm_dtype, out_storage))
        self._quant_kernel = ck
        # AVX512-VNNI route: with one-byte operands and a requantized
        # output, the whole conv collapses into a byte gather plus one
        # fused integer-GEMM/requant call — no float column matrix, no
        # separate requant pass.  ckk <= 512 keeps the offset
        # accumulator (activations ride as u8 = raw + 128) and the
        # offset-corrected bias inside float32's 24-bit mantissa, so the
        # kernel is bitwise the sgemm/NumPy chain it replaces.
        self._vnni = (
            ck is not None
            and ck.has_vnni
            and self.storage == np.int8
            and out_storage is not None
            and max(f.total_bits for f in cal.weight_channel_formats) <= 8
            and self.out_c <= 32
            and self.ckk <= 512
        )
        if self._vnni:
            self._vnni_kernel = ck
            self._kp = -(-self.ckk // 4) * 4
            w_raw = np.ascontiguousarray(self.w_q.T).astype(np.int8)
            wt_pad = np.zeros((32, self._kp), dtype=np.int8)
            wt_pad[: self.out_c, : self.ckk] = w_raw
            self._w_packed = np.ascontiguousarray(
                wt_pad.reshape(32, self._kp // 4, 4).transpose(1, 0, 2)
            )
            self._w_colsum = w_raw.astype(np.int64).sum(axis=1)
            self._pack_vnni_operands()
        self._alloc(capacity)

    def _pack_vnni_operands(self) -> None:
        """32-padded bias/mult vectors for the VNNI kernel.

        The +128 activation offset adds ``128 * sum_k(w)`` to each
        channel's accumulator; subtracting it from the quantized bias
        restores the true sum.  Re-run after any ``bias_q`` update (the
        calibration-time bias correction mutates it).
        """
        bias_eff = np.zeros(32, dtype=np.float32)
        bias_eff[: self.out_c] = (
            self.bias_q.astype(np.float64) - 128.0 * self._w_colsum
        ).astype(np.float32)
        mult = np.zeros(32, dtype=np.float32)
        mult[: self.out_c] = self.requant_mult
        self._vnni_bias = bias_eff
        self._vnni_mult = mult

    def _alloc(self, capacity: int) -> None:
        c, hp, wp = self._padded_shape
        # Border must stay zero — np.zeros, not empty (same as _ConvStep).
        self.padded = np.zeros((capacity, c, hp, wp), dtype=self.storage)
        if self._vnni:
            # One byte per operand; the kp-ckk pad columns stay zero
            # forever (the gather never writes them), matching the
            # zero-padded packed weights.
            self.cols_u8 = np.zeros(
                (capacity * self.rows, self._kp), dtype=np.uint8
            )
            self.cols = self.cols_raw = self.out2d = None
        else:
            self.cols = np.empty(
                (capacity, self.rows * self.ckk), dtype=self.gemm_dtype
            )
            # np.take cannot widen in place, so the NumPy fallback
            # gathers into a raw-typed staging buffer first; the
            # compiled kernel widens during the gather and never
            # touches it.
            self.cols_raw = (
                None
                if self._gather_fn is not None
                else np.empty((capacity, self.rows * self.ckk), self.storage)
            )
            self.out2d = np.empty(
                (capacity * self.rows, self.out_c), dtype=self.gemm_dtype
            )
        if self.quantize_input:
            # Kernel path: one-pass quantize into integer staging, then
            # a cheap strided int copy into the padded interior.  NumPy
            # fallback: float64 scratch for the multiply/rint/clip chain
            # (float64 so a float64 input from an unspecialised
            # predecessor quantizes identically).
            if self._quant_kernel is not None:
                self.quant_raw = np.empty(
                    (capacity,) + self._in_shape, dtype=self.storage
                )
                self.quant_buf = None
            else:
                self.quant_raw = None
                self.quant_buf = np.empty(
                    (capacity,) + self._in_shape, dtype=np.float64
                )
        if self.out_fmt is None:
            self.out_f = np.empty(
                (capacity, self.out_h, self.out_w, self.out_c), np.float32
            )
        else:
            self.out_q = np.empty(
                (capacity, self.out_h, self.out_w, self.out_c),
                dtype=_storage_for(self.out_fmt),
            )

    def resize(self, capacity: int) -> None:
        self._alloc(capacity)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        padded = self.padded[:batch]
        if self.quantize_input:
            fmt = self.in_fmt
            if (
                self._quant_kernel is not None
                and x.dtype == np.float32
                and x.flags["C_CONTIGUOUS"]
            ):
                raw = self.quant_raw[:batch]
                qfn = (
                    self._quant_kernel.quantize_q8
                    if self.storage == np.int8
                    else self._quant_kernel.quantize_q16
                )
                qfn(x, float(fmt.scale), float(fmt.min_raw),
                    float(fmt.max_raw), raw)
                padded[(slice(None),) + self._interior] = raw
            else:
                buf = self.quant_buf
                if buf is None:
                    buf = np.empty(x.shape, dtype=np.float64)
                else:
                    buf = buf[:batch]
                np.multiply(x, fmt.scale, out=buf)
                np.rint(buf, out=buf)
                np.clip(buf, fmt.min_raw, fmt.max_raw, out=buf)
                np.copyto(padded[(slice(None),) + self._interior], buf,
                          casting="unsafe")
        else:
            padded[(slice(None),) + self._interior] = x
        if self._vnni:
            m = batch * self.rows
            cols_u = self.cols_u8[:m]
            self._vnni_kernel.gather_cols_q8u(
                padded.reshape(batch, -1), self.gather, self.rows,
                self.ckk, cols_u,
            )
            store = self.out_q[:batch]
            self._vnni_kernel.gemm_requant_u8s8(
                cols_u, self._w_packed, self.out_c, self._vnni_bias,
                self._vnni_mult, float(self.out_fmt.min_raw),
                float(self.out_fmt.max_raw),
                store.reshape(m, self.out_c),
            )
            return store.transpose(0, 3, 1, 2)
        cols = self.cols[:batch]
        if self._gather_fn is not None:
            self._gather_fn(padded.reshape(batch, -1), self.gather, cols)
        else:
            raws = self.cols_raw[:batch]
            np.take(padded.reshape(batch, -1), self.gather, axis=1, out=raws)
            np.copyto(cols, raws, casting="unsafe")
        cols2d = cols.reshape(batch * self.rows, self.ckk)
        out2d = self.out2d[: batch * self.rows]
        # Integer-exact, hence order-independent: always fused.
        np.matmul(cols2d, self.w_q, out=out2d)
        if self.out_fmt is None:
            np.add(out2d, self.bias_q, out=out2d)
            out4 = out2d.reshape(batch, self.out_h, self.out_w, self.out_c)
            out = self.out_f[:batch]
            np.multiply(out4, self.out_scale, out=out, casting="unsafe")
            return out.transpose(0, 3, 1, 2)
        store = self.out_q[:batch]
        store2d = store.reshape(batch * self.rows, self.out_c)
        if self._requant_fn is not None:
            # The kernel folds the bias into its single requant pass.
            self._requant_fn(
                out2d, self.bias_q, self.requant_mult,
                float(self.out_fmt.min_raw), float(self.out_fmt.max_raw),
                store2d,
            )
        else:
            np.add(out2d, self.bias_q, out=out2d)
            _requant_gemm_out(
                out2d, self.requant_mult,
                self.out_fmt.min_raw, self.out_fmt.max_raw, store2d,
            )
        return store.transpose(0, 3, 1, 2)

    def apply_bias_correction(self, x, ref, batch: int) -> None:
        _fold_bias_correction(self, self.run(x, batch), ref, (0, 2, 3))
        if self._vnni:
            self._pack_vnni_operands()


class _QuantLinearStep(_Step):
    """A fully-connected layer over raw integer activations.

    Same integer-exact GEMM scheme as :class:`_QuantConvStep`, minus the
    gather (the flattened raws are the operand, widened into a staging
    buffer).  The plan's final layer dequantizes instead of requantizing
    so the network outputs keep full float32 resolution.
    """

    def __init__(self, layer: Linear, capacity: int, spec,
                 cal: LayerCalibration, in_fmt: Optional[QFormat],
                 out_fmt: Optional[QFormat]):
        super().__init__(layer)
        self.in_fmt = in_fmt if in_fmt is not None else cal.input_format
        self.quantize_input = in_fmt is None
        self.out_fmt = out_fmt
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        self.gemm_dtype = _gemm_dtype_for(
            self.in_fmt, cal.weight_channel_formats, self.in_features
        )
        (self.w_q, self.bias_q, self.acc_scales, self.out_scale,
         self.requant_mult) = (
            _quantize_operands(
                layer.params["weight"].T, layer.params["bias"], cal,
                self.in_fmt, out_fmt, self.gemm_dtype,
            )
        )
        self._alloc(capacity)

    def _alloc(self, capacity: int) -> None:
        self.operand = np.empty(
            (capacity, self.in_features), dtype=self.gemm_dtype
        )
        self.out2d = np.empty(
            (capacity, self.out_features), dtype=self.gemm_dtype
        )
        if self.out_fmt is None:
            self.out_f = np.empty((capacity, self.out_features), np.float32)
        else:
            self.out_q = np.empty(
                (capacity, self.out_features), dtype=_storage_for(self.out_fmt)
            )

    def resize(self, capacity: int) -> None:
        self._alloc(capacity)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        flat = x.reshape(batch, -1)
        operand = self.operand[:batch]
        if self.quantize_input:
            np.multiply(flat, self.in_fmt.scale, out=operand, casting="unsafe")
            np.rint(operand, out=operand)
            np.clip(operand, self.in_fmt.min_raw, self.in_fmt.max_raw,
                    out=operand)
        else:
            np.copyto(operand, flat, casting="unsafe")
        out2d = self.out2d[:batch]
        np.matmul(operand, self.w_q, out=out2d)
        np.add(out2d, self.bias_q, out=out2d)
        if self.out_fmt is None:
            out = self.out_f[:batch]
            np.multiply(out2d, self.out_scale, out=out, casting="unsafe")
            return out
        store = self.out_q[:batch]
        _requant_gemm_out(
            out2d, self.requant_mult,
            self.out_fmt.min_raw, self.out_fmt.max_raw, store,
        )
        return store

    def apply_bias_correction(self, x, ref, batch: int) -> None:
        _fold_bias_correction(self, self.run(x, batch), ref, (0,))


class _DequantWrapStep(_Step):
    """Dequantize raw integer input, then run a float step.

    Wraps the float-fallback layers of a quantized plan (calibration
    saturated, or a layer type with no integer path) so the steps list
    stays one-per-layer — ``run_prefix``/``run_suffix`` slice by layer
    index and must keep doing so.
    """

    def __init__(self, inner: _Step, fmt: QFormat, in_shape, capacity: int):
        super().__init__(inner.layer)
        self.inner = inner
        self.fmt = fmt
        self._in_shape = tuple(in_shape)
        self._alloc(capacity)

    def _alloc(self, capacity: int) -> None:
        self.buf = np.empty((capacity,) + self._in_shape, dtype=np.float32)

    def resize(self, capacity: int) -> None:
        self._alloc(capacity)
        self.inner.resize(capacity)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        buf = self.buf[:batch]
        np.multiply(x, np.float32(1.0 / self.fmt.scale), out=buf,
                    casting="unsafe")
        return self.inner.run(buf, batch)


class InferencePlan:
    """Forward-only executor for one network at one batch capacity.

    ``max_batch`` is a capacity: any call with ``1 <= batch <= max_batch``
    reuses the same scratch through leading-axis views.  With the default
    float64 dtype the plan reads the live layer parameters on every call
    (so in-place weight updates are picked up); ``float32`` snapshots
    casted copies at compile time — recompile (or let
    :meth:`Network.load_state_dict` invalidate the cache) after retraining.

    **Quantized plans** (``dtype="int8"`` / ``dtype="q16"``) compile a
    calibration pass first: :data:`~repro.nn.quantize.CALIBRATION_SAMPLES`
    seeded frames run through the float64 reference path and size one
    :class:`~repro.nn.quantize.LayerCalibration` per Conv/Linear layer
    (``self.calibration``).  Weights are quantized and snapshotted at
    compile time; activations flow between steps as raw int8/int16 and
    every GEMM multiplies integer-valued float operands whose products
    and partial sums fit the mantissa exactly — integer arithmetic with
    BLAS throughput, order-independent, so quantized plans are bitwise
    deterministic across batch sizes, batch capacities, and processes.
    Layers whose calibration saturates fall back to float32 snapshots
    inside the plan (``self.quant_fallback_layers``).  The accuracy
    contract is ``self.tolerance`` (a
    :class:`~repro.nn.quantize.QuantTolerance` sized from the measured
    calibration error) instead of bit-identity with the float64 path.
    """

    def __init__(self, network, max_batch: int = 1, dtype="float64"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.network = network
        self.max_batch = int(max_batch)
        self.dtype_name = resolve_plan_dtype(dtype)
        self.dtype = _resolve_dtype(dtype)
        self._quant = _QUANT_SPECS.get(self.dtype_name)
        #: For quantized plans: the Q-format of the activation *after*
        #: each step (None = float).  ``_execute`` consults it to
        #: quantize a float activation entering mid-plan (``run_suffix``)
        #: and to dequantize raws leaving mid-plan (``run_prefix``) —
        #: the plan boundary always exchanges float.
        self._boundary: List[Optional[QFormat]] = []
        self.calibration: Dict[str, LayerCalibration] = {}
        self.tolerance: Optional[QuantTolerance] = None
        self.calibration_top1: Optional[float] = None
        self._steps: List[_Step] = []
        if self._quant is not None:
            samples, refs, reference = self._calibrate()
        prev: Optional[Layer] = None
        current: Optional[QFormat] = None
        layers = list(zip(network.layers, network.layer_input_shapes))
        for i, (layer, in_shape) in enumerate(layers):
            if self._quant is None:
                self._steps.append(self._compile(layer, in_shape, prev))
            else:
                step, current = self._compile_quant(
                    layer, in_shape, prev, current, last=(i == len(layers) - 1)
                )
                self._steps.append(step)
                self._boundary.append(current)
            prev = layer
        if self._quant is not None:
            self._bias_correct(samples, refs)
            self._measure_tolerance(samples, reference)

    @property
    def quant_fallback_layers(self) -> Tuple[str, ...]:
        """Names of layers calibration sent back to float execution."""
        return tuple(
            name for name, cal in self.calibration.items() if cal.fallback
        )

    # ------------------------------------------------------------------ #
    def _float_snapshot(self, layer, dt):
        out_features = (
            layer.out_channels if isinstance(layer, Conv2d)
            else layer.out_features
        )
        w_t = np.ascontiguousarray(
            layer.params["weight"].reshape(out_features, -1).T, dtype=dt
        )
        return (w_t, layer.params["bias"].astype(dt))

    def _compile(self, layer: Layer, in_shape, prev: Optional[Layer]) -> _Step:
        cap, dt = self.max_batch, self.dtype
        snapshot = None
        if dt == np.float32 and isinstance(layer, (Conv2d, Linear)):
            snapshot = self._float_snapshot(layer, dt)
        if isinstance(layer, Conv2d):
            return _ConvStep(layer, in_shape, cap, dt, snapshot)
        if isinstance(layer, Linear):
            return _LinearStep(layer, cap, dt, snapshot)
        if isinstance(layer, ReLU):
            return _ReLUStep(layer, in_shape, cap, dt, nhwc=isinstance(prev, Conv2d))
        if isinstance(layer, MaxPool2d):
            return _MaxPoolStep(layer, in_shape, cap, dt)
        if isinstance(layer, AvgPool2d):
            return _AvgPoolStep(layer, in_shape, cap, dt)
        if isinstance(layer, Flatten):
            return _FlattenStep(layer)
        return _GenericStep(layer)

    # ------------------------------------------------------------------ #
    # quantized plans
    # ------------------------------------------------------------------ #
    def _calibrate(self):
        """Seeded sample forward pass: per-layer formats + float64 reference.

        Uses the training-path ``layer.forward`` (pure NumPy, bit-exact
        in both kernel lanes) so two processes that compile the same
        network at the same dtype derive identical Q-formats, identical
        quantized weight snapshots, and an identical tolerance bound.
        """
        rng = np.random.default_rng(CALIBRATION_SEED)
        shape = (CALIBRATION_SAMPLES,) + tuple(
            self.network.layer_input_shapes[0]
        )
        samples = rng.random(shape)
        # Each activation is one layer's output and the next GEMM's
        # input, so its width is the *consumer's* accumulator budget:
        # layer k requantizes to act_in_bits(k+1).  The last weighted
        # layer's pre-dequant accumulator gets the family envelope.
        weighted = [
            layer for layer in self.network.layers
            if isinstance(layer, (Conv2d, Linear))
        ]
        out_bits = {
            layer.name: self._quant.act_in_bits(nxt)
            for layer, nxt in zip(weighted, weighted[1:])
        }
        refs: Dict[str, np.ndarray] = {}
        x = samples
        for layer in self.network.layers:
            y = layer.forward(x, train=False)
            if isinstance(layer, (Conv2d, Linear)):
                refs[layer.name] = y
                self.calibration[layer.name] = calibrate_layer(
                    layer.name, x, y, layer.params["weight"],
                    max(self._quant.conv_bits, self._quant.linear_bits),
                    weight_bits=self._quant.weight_bits(layer),
                    in_bits=self._quant.act_in_bits(layer),
                    out_bits=out_bits.get(layer.name),
                )
            x = y
        return samples, refs, x

    def _bias_correct(self, samples, refs) -> None:
        """Fold the calibration-set mean quantization error into biases.

        Weight and activation rounding inject a *systematic* per-channel
        shift (the classic post-training-quantization bias shift), which
        downstream layers then amplify.  Walking the compiled steps over
        the calibration samples, each weighted layer's mean deviation
        from its float64 reference is rounded into accumulator units and
        absorbed into ``bias_q`` — sequentially, so every layer is
        corrected against the *already-corrected* prefix.  The
        correction is an integer in the accumulator's scale, so the
        integer-exact GEMM contract (and with it batch invariance and
        cross-process determinism — the samples are seeded) is
        untouched.
        """
        n = samples.shape[0]
        orig = self.max_batch
        self.reserve(n)
        x = np.ascontiguousarray(samples, dtype=self.dtype)
        for step in self._steps:
            if isinstance(step, (_QuantConvStep, _QuantLinearStep)):
                step.apply_bias_correction(x, refs[step.layer.name], n)
            x = step.run(x, n)
        if orig < n:
            self.shrink(orig)

    def _compile_quant(self, layer, in_shape, prev, current, last):
        """Compile one layer of a quantized plan.

        ``current`` is the Q-format of the incoming activation (None =
        float); returns ``(step, format-after-this-step)``.  Conv/Linear
        layers whose calibration flagged saturation fall back to float32
        snapshots (dequantizing first when raws arrive); the final layer
        dequantizes its accumulator directly so network outputs keep
        full float32 resolution.
        """
        cap, spec = self.max_batch, self._quant
        if isinstance(layer, (Conv2d, Linear)):
            cal = self.calibration[layer.name]
            if cal.fallback:
                snapshot = self._float_snapshot(layer, np.float32)
                if isinstance(layer, Conv2d):
                    step = _ConvStep(layer, in_shape, cap, np.float32, snapshot)
                else:
                    step = _LinearStep(layer, cap, np.float32, snapshot)
                if current is not None:
                    step = _DequantWrapStep(step, current, in_shape, cap)
                return step, None
            out_fmt = None if last else cal.output_format
            if isinstance(layer, Conv2d):
                step = _QuantConvStep(
                    layer, in_shape, cap, spec, cal, current, out_fmt
                )
            else:
                step = _QuantLinearStep(layer, cap, spec, cal, current, out_fmt)
            return step, out_fmt
        if isinstance(layer, ReLU):
            dt = _storage_for(current) if current is not None else np.float32
            return (
                _ReLUStep(layer, in_shape, cap, dt,
                          nhwc=isinstance(prev, Conv2d)),
                current,
            )
        if isinstance(layer, MaxPool2d):
            # Max is monotone and the scale positive: max over raws is
            # the raw of the max — runs on integers unchanged.
            dt = _storage_for(current) if current is not None else np.float32
            return _MaxPoolStep(layer, in_shape, cap, dt), current
        if isinstance(layer, Flatten):
            return _FlattenStep(layer), current
        # No integer path (AvgPool's mean, unspecialised layers): float.
        if isinstance(layer, AvgPool2d):
            step = _AvgPoolStep(layer, in_shape, cap, np.float32)
        else:
            step = _GenericStep(layer)
        if current is not None:
            step = _DequantWrapStep(step, current, in_shape, cap)
        return step, None

    def _measure_tolerance(self, samples, reference):
        """Run the calibration set through the compiled plan and size
        the :class:`QuantTolerance` contract from the measured error."""
        outs = np.stack(
            [self.run(samples[i : i + 1])[0] for i in range(samples.shape[0])]
        )
        err = float(np.max(np.abs(outs.astype(np.float64) - reference)))
        flat_q = outs.reshape(samples.shape[0], -1)
        flat_r = np.asarray(reference).reshape(samples.shape[0], -1)
        self.calibration_top1 = float(
            np.mean(flat_q.argmax(axis=1) == flat_r.argmax(axis=1))
        )
        self.tolerance = QuantTolerance(
            max_abs_error=max(_TOLERANCE_SAFETY * err, _TOLERANCE_FLOOR),
            top1_agreement=_TOP1_BOUND,
        )

    def _execute(self, x: np.ndarray, start: int, stop: int) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 0 or x.shape[0] == 0:
            raise ValueError("inference batch must contain at least one sample")
        batch = x.shape[0]
        if batch > self.max_batch:
            raise ValueError(
                f"batch {batch} exceeds plan capacity {self.max_batch}"
            )
        if start < len(self._steps):
            expected = tuple(self.network.layer_input_shapes[start])
            where = f"layer {self.network.layers[start].name!r}"
        else:
            expected = tuple(self.network.output_shape)
            where = "the network output"
        if tuple(x.shape[1:]) != expected:
            raise ValueError(
                f"expected input shape {expected} for {where}, "
                f"got {tuple(x.shape[1:])}"
            )
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        if self._quant is not None and start < stop:
            # The plan boundary exchanges float32; raws live only between
            # steps.  Entering mid-plan (run_suffix) re-quantizes into the
            # boundary format, leaving mid-plan dequantizes below.  The
            # round trip is lossless: raws fit float32's mantissa and the
            # scales are powers of two.
            if start > 0:
                fmt = self._boundary[start - 1]
                if fmt is not None:
                    x = _quantize_raws(x, fmt, _storage_for(fmt))
            for step in self._steps[start:stop]:
                x = step.run(x, batch)
            fmt = self._boundary[stop - 1]
            if fmt is not None:
                out = np.empty(x.shape, np.float32)
                np.multiply(x, np.float32(1.0 / fmt.scale), out=out,
                            casting="unsafe")
                return out
            return np.array(x, order="C")
        for step in self._steps[start:stop]:
            x = step.run(x, batch)
        # Hand back an owned copy: every scratch buffer is reused on the
        # next call, and callers (executor, runtime) store results.  A
        # view (ascontiguousarray of contiguous scratch is a no-op) would
        # silently mutate previously returned frames.
        return np.array(x, order="C")

    # ------------------------------------------------------------------ #
    def reserve(self, capacity: int) -> "InferencePlan":
        """Grow batch capacity to at least ``capacity`` without recompiling.

        Only the leading-axis scratch buffers reallocate; gather geometry,
        weight snapshots, and fused-GEMM probe results are untouched, so a
        grown plan stays bit-identical at every occupancy it already
        served.  The serving runtime uses this to widen a lane when
        traffic exceeds the capacity the plan was first compiled for.
        No-op when the plan is already large enough.
        """
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity > self.max_batch:
            self._resize(capacity)
        return self

    def shrink(self, capacity: int = 1) -> "InferencePlan":
        """Release scratch down to ``capacity`` (grows back on demand).

        The reverse of :meth:`reserve`, for long-lived deployments whose
        peak occupancy has passed; numerics are unaffected because batch
        semantics depend on occupancy, never on capacity.
        """
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity < self.max_batch:
            self._resize(capacity)
        return self

    def _resize(self, capacity: int) -> None:
        for step in self._steps:
            step.resize(capacity)
        self.max_batch = capacity

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """Whole-network forward pass for a (B, ...) batch."""
        return self._execute(x, 0, len(self._steps))

    def run_prefix(self, x: np.ndarray, target: str) -> np.ndarray:
        """Input through ``target`` inclusive — the key-frame path."""
        return self._execute(x, 0, self.network.index_of(target) + 1)

    def run_suffix(self, activation: np.ndarray, target: str) -> np.ndarray:
        """Layers after ``target`` — the every-frame path."""
        return self._execute(
            activation, self.network.index_of(target) + 1, len(self._steps)
        )
