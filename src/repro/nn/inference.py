"""Planned CNN inference — the execution engine behind AMC's hot path.

Training needs autograd caches and tolerates allocation churn; inference
runs the same prefix/suffix every frame of every clip and should not.  An
:class:`InferencePlan` is compiled once per (network, batch capacity,
dtype) and then executes layer ranges against preallocated scratch:

* **im2col as a gather** — each convolution's unfold geometry is compiled
  to one flat index array; per call the input is staged into a persistent
  padded buffer and a single ``np.take`` materialises the column matrix.
  No 6-D scratch, no transpose copy, no per-frame allocation.
* **per-sample GEMMs with a batched probe** — BLAS does not guarantee
  that one matmul over ``B`` stacked samples is bitwise equal to ``B``
  single-sample matmuls (it is not for this repo's FC shapes), and AMC's
  contract is that batched execution reproduces the serial pipeline
  exactly.  The plan therefore defaults to one GEMM per sample — the
  serial shapes — and, on the first call at each batch size, probes
  whether the fused batched GEMM is bitwise identical on this host;
  if it is, later calls take the fused path.
* **no training caches** — forward-only; pooling skips argmax entirely
  (the strided-window max needs no unfold), ReLU reuses one mask buffer.
* **opt-in float32** — ``dtype="float32"`` snapshots casted weights at
  compile time for roughly half the memory traffic.  float64 remains the
  default and is bit-identical to :meth:`repro.nn.network.Network.forward`.

Plans are obtained through :meth:`Network.inference_plan`, which caches
one plan per dtype and grows its capacity on demand; calls with any batch
size up to the capacity reuse the same scratch through leading-axis
views, and :meth:`InferencePlan.reserve` / :meth:`InferencePlan.shrink`
resize the scratch without recompiling geometry — the mechanism the
serving runtime uses to track occupancy without ever rebuilding a plan.

Ownership: arrays returned by ``run``/``run_prefix``/``run_suffix`` are
fresh copies, safe to store (the executor stores key activations, the
runtime stores per-frame outputs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from . import functional as F
from .layers import AvgPool2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU

__all__ = ["InferencePlan"]

_DTYPES = {"float64": np.float64, "float32": np.float32}


def _resolve_dtype(dtype) -> np.dtype:
    if isinstance(dtype, str):
        if dtype not in _DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(_DTYPES)}, got {dtype!r}"
            )
        return np.dtype(_DTYPES[dtype])
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValueError(f"unsupported inference dtype {resolved}")
    return resolved


class _Step:
    """One compiled layer: preallocated scratch plus a forward method."""

    def __init__(self, layer: Layer):
        self.layer = layer

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        raise NotImplementedError

    def resize(self, capacity: int) -> None:
        """Reallocate scratch for a new batch capacity.

        Only leading-axis scratch changes; compiled geometry (gather
        indices, weight snapshots, fused-GEMM probe results) is
        capacity-independent and survives every resize.
        """


class _MatmulMixin:
    """Shared per-sample-vs-fused GEMM dispatch.

    ``_matmul_rows(a2d, w_t, out2d, rows_per_sample, batch)`` computes
    ``a2d @ w_t`` into ``out2d``.  The default is one GEMM per sample —
    exactly the shapes the serial pipeline issues, hence bitwise equal to
    it by construction.  On first encountering a batch size, a probe on
    synthetic full-range random data (never the live activations, which
    could be degenerate — e.g. mostly zero after a ReLU — and pass by
    coincidence) compares the fused single GEMM against the per-sample
    loop: when BLAS produces identical bits for the stacked shape
    (shape-dependent, so probed per host), the fused call — fewer kernel
    launches and numpy round-trips — serves all later calls at that
    batch size.
    """

    def _init_matmul(self):
        self._fused_ok: Dict[int, bool] = {}

    def _probe_fused(self, w_t: np.ndarray, rows: int, batch: int) -> bool:
        rng = np.random.default_rng(0x5EED + batch)
        a = rng.standard_normal((batch * rows, w_t.shape[0])).astype(
            w_t.dtype, copy=False
        )
        fused = a @ w_t
        looped = np.empty_like(fused)
        for s in range(batch):
            np.matmul(a[s * rows : (s + 1) * rows], w_t,
                      out=looped[s * rows : (s + 1) * rows])
        return bool(np.array_equal(fused, looped))

    def _matmul_rows(
        self,
        a2d: np.ndarray,
        w_t: np.ndarray,
        out2d: np.ndarray,
        rows: int,
        batch: int,
    ) -> None:
        if batch == 1:
            np.matmul(a2d, w_t, out=out2d)
            return
        fused = self._fused_ok.get(batch)
        if fused is None:
            fused = self._fused_ok[batch] = self._probe_fused(w_t, rows, batch)
        if fused:
            np.matmul(a2d, w_t, out=out2d)
            return
        for s in range(batch):
            np.matmul(a2d[s * rows : (s + 1) * rows], w_t,
                      out=out2d[s * rows : (s + 1) * rows])


class _ConvStep(_Step, _MatmulMixin):
    def __init__(self, layer: Conv2d, in_shape, capacity: int, dtype,
                 weights: Optional[Tuple[np.ndarray, np.ndarray]]):
        super().__init__(layer)
        self._init_matmul()
        c, h, w = in_shape
        k, stride, pad = layer.kernel, layer.stride, layer.pad
        self.out_h = F.conv_output_size(h, k, stride, pad)
        self.out_w = F.conv_output_size(w, k, stride, pad)
        self.out_c = layer.out_channels
        self.rows = self.out_h * self.out_w
        hp, wp = h + 2 * pad, w + 2 * pad
        self._interior = (slice(None), slice(pad, pad + h), slice(pad, pad + w))
        self.padded = np.zeros((capacity, c, hp, wp), dtype=dtype)
        # Gather geometry: cols[b, (oy, ox), (c, ky, kx)] =
        # padded[b, c, ky + stride*oy, kx + stride*ox] — im2col's exact
        # column layout, compiled to flat indices once.
        oy = np.arange(self.out_h) * stride
        ox = np.arange(self.out_w) * stride
        ci = np.arange(c)
        ky = np.arange(k)
        kx = np.arange(k)
        idx = (
            ci[None, None, :, None, None] * (hp * wp)
            + (ky[None, None, None, :, None] + oy[:, None, None, None, None]) * wp
            + (kx[None, None, None, None, :] + ox[None, :, None, None, None])
        )
        self.gather = np.ascontiguousarray(idx.reshape(-1), dtype=np.int64)
        self.ckk = c * k * k
        self._dtype = dtype
        self._padded_shape = (c, hp, wp)
        self.cols = np.empty((capacity, self.rows * self.ckk), dtype=dtype)
        self.out2d = np.empty((capacity * self.rows, self.out_c), dtype=dtype)
        self._weights = weights  # None = read live float64 params
        # The compiled gather (when the optional kernel built) moves the
        # column materialisation off np.take's generic path; float64 only.
        self._ckernel = None
        if dtype == np.float64:
            from ..core.sad_kernel import get_kernel

            self._ckernel = get_kernel()

    def resize(self, capacity: int) -> None:
        # The padded buffer's border must stay zero — np.zeros, not empty.
        self.padded = np.zeros((capacity,) + self._padded_shape, dtype=self._dtype)
        self.cols = np.empty((capacity, self.rows * self.ckk), dtype=self._dtype)
        self.out2d = np.empty(
            (capacity * self.rows, self.out_c), dtype=self._dtype
        )

    def _operands(self):
        if self._weights is not None:
            return self._weights
        w_mat = self.layer.params["weight"].reshape(self.out_c, -1)
        return w_mat.T, self.layer.params["bias"]

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        padded = self.padded[:batch]
        padded[(slice(None),) + self._interior] = x
        cols = self.cols[:batch]
        if self._ckernel is not None:
            self._ckernel.gather_rows(padded.reshape(batch, -1), self.gather, cols)
        else:
            np.take(padded.reshape(batch, -1), self.gather, axis=1, out=cols)
        cols2d = cols.reshape(batch * self.rows, self.ckk)
        out2d = self.out2d[: batch * self.rows]
        w_t, bias = self._operands()
        self._matmul_rows(cols2d, w_t, out2d, self.rows, batch)
        np.add(out2d, bias, out=out2d)
        return out2d.reshape(batch, self.out_h, self.out_w, self.out_c).transpose(
            0, 3, 1, 2
        )


class _LinearStep(_Step, _MatmulMixin):
    def __init__(self, layer: Linear, capacity: int, dtype,
                 weights: Optional[Tuple[np.ndarray, np.ndarray]]):
        super().__init__(layer)
        self._init_matmul()
        self.out = np.empty((capacity, layer.out_features), dtype=dtype)
        self._weights = weights

    def resize(self, capacity: int) -> None:
        self.out = np.empty((capacity,) + self.out.shape[1:], dtype=self.out.dtype)

    def _operands(self):
        if self._weights is not None:
            return self._weights
        return self.layer.params["weight"].T, self.layer.params["bias"]

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        flat = x.reshape(batch, -1)
        out = self.out[:batch]
        w_t, bias = self._operands()
        self._matmul_rows(flat, w_t, out, 1, batch)
        np.add(out, bias, out=out)
        return out


class _ReLUStep(_Step):
    def __init__(self, layer: ReLU, in_shape, capacity: int, dtype,
                 nhwc: bool = False):
        super().__init__(layer)
        # A ReLU fed by a convolution sees an NHWC-contiguous transpose
        # view (the conv GEMM's natural layout); computing in that layout
        # keeps both ufunc passes on contiguous memory.  ReLU is
        # elementwise, so the layout cannot change a single bit.
        self.nhwc = nhwc and len(in_shape) == 3
        if self.nhwc:
            c, h, w = in_shape
            shape = (capacity, h, w, c)
        else:
            shape = (capacity,) + tuple(in_shape)
        self.mask = np.empty(shape, dtype=bool)
        self.out = np.empty(shape, dtype=dtype)

    def resize(self, capacity: int) -> None:
        shape = (capacity,) + self.out.shape[1:]
        self.mask = np.empty(shape, dtype=bool)
        self.out = np.empty(shape, dtype=self.out.dtype)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        if self.nhwc:
            base = x.transpose(0, 2, 3, 1)
            if not base.flags["C_CONTIGUOUS"]:
                # Unexpected layout (custom caller): stay correct.
                return x * (x > 0)
            mask, out = self.mask[:batch], self.out[:batch]
            np.greater(base, 0, out=mask)
            np.multiply(base, mask, out=out)
            return out.transpose(0, 3, 1, 2)
        mask, out = self.mask[:batch], self.out[:batch]
        np.greater(x, 0, out=mask)
        # x * mask, exactly as the training path computes it (bitwise
        # including signed zeros), into reused scratch.
        np.multiply(x, mask, out=out)
        return out


class _MaxPoolStep(_Step):
    def __init__(self, layer: MaxPool2d, in_shape, capacity: int, dtype):
        super().__init__(layer)
        c, h, w = in_shape
        self.field, self.stride = layer.field, layer.stride
        self.out_h = F.conv_output_size(h, self.field, self.stride, 0)
        self.out_w = F.conv_output_size(w, self.field, self.stride, 0)
        self.out = np.empty((capacity, c, self.out_h, self.out_w), dtype=dtype)

    def resize(self, capacity: int) -> None:
        self.out = np.empty((capacity,) + self.out.shape[1:], dtype=self.out.dtype)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        out = self.out[:batch]
        # field² shifted strided slices folded with elementwise maximum —
        # max is exact, so any fold order matches the unfold+argmax
        # training path bit for bit, and each pass is a plain vectorised
        # ufunc instead of a windowed gather.
        first = True
        for fy in range(self.field):
            y_max = fy + self.stride * self.out_h
            for fx in range(self.field):
                x_max = fx + self.stride * self.out_w
                window = x[:, :, fy:y_max:self.stride, fx:x_max:self.stride]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out


class _AvgPoolStep(_Step):
    def __init__(self, layer: AvgPool2d, in_shape, capacity: int, dtype):
        super().__init__(layer)
        c, h, w = in_shape
        self.field, self.stride = layer.field, layer.stride
        out_h = F.conv_output_size(h, self.field, self.stride, 0)
        out_w = F.conv_output_size(w, self.field, self.stride, 0)
        self.flat = np.empty(
            (capacity, c, out_h, out_w, self.field * self.field), dtype=dtype
        )
        self.out = np.empty((capacity, c, out_h, out_w), dtype=dtype)

    def resize(self, capacity: int) -> None:
        self.flat = np.empty(
            (capacity,) + self.flat.shape[1:], dtype=self.flat.dtype
        )
        self.out = np.empty((capacity,) + self.out.shape[1:], dtype=self.out.dtype)

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        windows = F.pool_windows(x, self.field, self.stride)
        flat = self.flat[:batch]
        # Materialise windows once so the mean reduces a contiguous last
        # axis — the same reduction order as the unfold-based layer path.
        np.copyto(flat, windows.reshape(windows.shape[:4] + (-1,)))
        out = self.out[:batch]
        np.mean(flat, axis=-1, out=out)
        return out


class _FlattenStep(_Step):
    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        return x.reshape(batch, -1)


class _GenericStep(_Step):
    """Fallback for layer types the planner does not specialise."""

    def run(self, x: np.ndarray, batch: int) -> np.ndarray:
        return self.layer.forward(x, train=False)


class InferencePlan:
    """Forward-only executor for one network at one batch capacity.

    ``max_batch`` is a capacity: any call with ``1 <= batch <= max_batch``
    reuses the same scratch through leading-axis views.  With the default
    float64 dtype the plan reads the live layer parameters on every call
    (so in-place weight updates are picked up); ``float32`` snapshots
    casted copies at compile time — recompile (or let
    :meth:`Network.load_state_dict` invalidate the cache) after retraining.
    """

    def __init__(self, network, max_batch: int = 1, dtype="float64"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.network = network
        self.max_batch = int(max_batch)
        self.dtype = _resolve_dtype(dtype)
        self._steps: List[_Step] = []
        prev: Optional[Layer] = None
        for layer, in_shape in zip(network.layers, network.layer_input_shapes):
            self._steps.append(self._compile(layer, in_shape, prev))
            prev = layer

    # ------------------------------------------------------------------ #
    def _compile(self, layer: Layer, in_shape, prev: Optional[Layer]) -> _Step:
        cap, dt = self.max_batch, self.dtype
        snapshot = None
        if dt == np.float32 and isinstance(layer, (Conv2d, Linear)):
            out_features = (
                layer.out_channels if isinstance(layer, Conv2d)
                else layer.out_features
            )
            w_t = np.ascontiguousarray(
                layer.params["weight"].reshape(out_features, -1).T, dtype=dt
            )
            snapshot = (w_t, layer.params["bias"].astype(dt))
        if isinstance(layer, Conv2d):
            return _ConvStep(layer, in_shape, cap, dt, snapshot)
        if isinstance(layer, Linear):
            return _LinearStep(layer, cap, dt, snapshot)
        if isinstance(layer, ReLU):
            return _ReLUStep(layer, in_shape, cap, dt, nhwc=isinstance(prev, Conv2d))
        if isinstance(layer, MaxPool2d):
            return _MaxPoolStep(layer, in_shape, cap, dt)
        if isinstance(layer, AvgPool2d):
            return _AvgPoolStep(layer, in_shape, cap, dt)
        if isinstance(layer, Flatten):
            return _FlattenStep(layer)
        return _GenericStep(layer)

    def _execute(self, x: np.ndarray, start: int, stop: int) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 0 or x.shape[0] == 0:
            raise ValueError("inference batch must contain at least one sample")
        batch = x.shape[0]
        if batch > self.max_batch:
            raise ValueError(
                f"batch {batch} exceeds plan capacity {self.max_batch}"
            )
        if start < len(self._steps):
            expected = tuple(self.network.layer_input_shapes[start])
            where = f"layer {self.network.layers[start].name!r}"
        else:
            expected = tuple(self.network.output_shape)
            where = "the network output"
        if tuple(x.shape[1:]) != expected:
            raise ValueError(
                f"expected input shape {expected} for {where}, "
                f"got {tuple(x.shape[1:])}"
            )
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        for step in self._steps[start:stop]:
            x = step.run(x, batch)
        # Hand back an owned copy: every scratch buffer is reused on the
        # next call, and callers (executor, runtime) store results.  A
        # view (ascontiguousarray of contiguous scratch is a no-op) would
        # silently mutate previously returned frames.
        return np.array(x, order="C")

    # ------------------------------------------------------------------ #
    def reserve(self, capacity: int) -> "InferencePlan":
        """Grow batch capacity to at least ``capacity`` without recompiling.

        Only the leading-axis scratch buffers reallocate; gather geometry,
        weight snapshots, and fused-GEMM probe results are untouched, so a
        grown plan stays bit-identical at every occupancy it already
        served.  The serving runtime uses this to widen a lane when
        traffic exceeds the capacity the plan was first compiled for.
        No-op when the plan is already large enough.
        """
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity > self.max_batch:
            self._resize(capacity)
        return self

    def shrink(self, capacity: int = 1) -> "InferencePlan":
        """Release scratch down to ``capacity`` (grows back on demand).

        The reverse of :meth:`reserve`, for long-lived deployments whose
        peak occupancy has passed; numerics are unaffected because batch
        semantics depend on occupancy, never on capacity.
        """
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity < self.max_batch:
            self._resize(capacity)
        return self

    def _resize(self, capacity: int) -> None:
        for step in self._steps:
            step.resize(capacity)
        self.max_batch = capacity

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """Whole-network forward pass for a (B, ...) batch."""
        return self._execute(x, 0, len(self._steps))

    def run_prefix(self, x: np.ndarray, target: str) -> np.ndarray:
        """Input through ``target`` inclusive — the key-frame path."""
        return self._execute(x, 0, self.network.index_of(target) + 1)

    def run_suffix(self, activation: np.ndarray, target: str) -> np.ndarray:
        """Layers after ``target`` — the every-frame path."""
        return self._execute(
            activation, self.network.index_of(target) + 1, len(self._steps)
        )
