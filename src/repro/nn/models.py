"""The three evaluation networks, scaled to the synthetic substrate.

The paper studies AlexNet (classification), FasterM (detection, shallow
CNN-M prefix) and Faster16 (detection, deep VGG-16 prefix). Our analogues
keep the structural properties AMC interacts with:

* a purely convolutional, spatial prefix (convs + pools + ReLUs),
* a non-spatial fully-connected suffix (the task head),
* MiniFaster16 is roughly twice as deep as MiniFasterM, so its prefix
  accumulates more warping error and costs more MACs — the same relative
  position the real pair occupies.

Detection networks output ``NUM_CLASSES`` class logits followed by 4 box
coordinates (cx, cy, w, h, normalised to [0, 1]).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..video.sprites import NUM_CLASSES
from .layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from .network import Network

__all__ = [
    "INPUT_SHAPE",
    "DETECTION_OUTPUTS",
    "build_mini_alexnet",
    "build_mini_fasterm",
    "build_mini_faster16",
    "build_network",
    "split_detection_output",
]

#: All networks consume 64x64 grayscale frames.
INPUT_SHAPE: Tuple[int, int, int] = (1, 64, 64)

#: Detection head width: class logits + (cx, cy, w, h).
DETECTION_OUTPUTS = NUM_CLASSES + 4


def build_mini_alexnet(seed: int = 0) -> Network:
    """Classification network: 5 convs (two strided stages) + 2 FC."""
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d("conv1", 1, 8, kernel=5, stride=2, pad=2, rng=rng),
        ReLU("relu1"),
        MaxPool2d("pool1", field=2, stride=2),
        Conv2d("conv2", 8, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu2"),
        MaxPool2d("pool2", field=2, stride=2),
        Conv2d("conv3", 16, 24, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu3"),
        Conv2d("conv4", 24, 24, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu4"),
        Conv2d("conv5", 24, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu5"),
        Flatten("flatten"),
        Linear("fc1", 16 * 8 * 8, 64, rng=rng),
        ReLU("relu_fc1"),
        Linear("fc2", 64, NUM_CLASSES, rng=rng),
    ]
    return Network("mini_alexnet", layers, INPUT_SHAPE)


def build_mini_fasterm(seed: int = 1) -> Network:
    """Shallow detection network (CNN-M analogue): 5 convs + 2-FC head."""
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d("conv1", 1, 8, kernel=5, stride=2, pad=2, rng=rng),
        ReLU("relu1"),
        MaxPool2d("pool1", field=2, stride=2),
        Conv2d("conv2", 8, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu2"),
        Conv2d("conv3", 16, 24, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu3"),
        MaxPool2d("pool2", field=2, stride=2),
        Conv2d("conv4", 24, 24, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu4"),
        Conv2d("conv5", 24, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu5"),
        Flatten("flatten"),
        Linear("fc1", 16 * 8 * 8, 96, rng=rng),
        ReLU("relu_fc1"),
        Linear("fc2", 96, DETECTION_OUTPUTS, rng=rng),
    ]
    return Network("mini_fasterm", layers, INPUT_SHAPE)


def build_mini_faster16(seed: int = 2) -> Network:
    """Deep detection network (VGG-16 analogue): 8 convs + 2-FC head.

    Twice MiniFasterM's conv depth and wider channels, so its prefix is both
    the biggest AMC saving and the biggest warping-error accumulator.
    """
    rng = np.random.default_rng(seed)
    layers = [
        Conv2d("conv1_1", 1, 8, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu1_1"),
        Conv2d("conv1_2", 8, 8, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu1_2"),
        MaxPool2d("pool1", field=2, stride=2),
        Conv2d("conv2_1", 8, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu2_1"),
        Conv2d("conv2_2", 16, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu2_2"),
        MaxPool2d("pool2", field=2, stride=2),
        Conv2d("conv3_1", 16, 24, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu3_1"),
        Conv2d("conv3_2", 24, 24, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu3_2"),
        MaxPool2d("pool3", field=2, stride=2),
        Conv2d("conv4_1", 24, 32, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu4_1"),
        Conv2d("conv4_2", 32, 16, kernel=3, stride=1, pad=1, rng=rng),
        ReLU("relu4_2"),
        Flatten("flatten"),
        Linear("fc1", 16 * 8 * 8, 96, rng=rng),
        ReLU("relu_fc1"),
        Linear("fc2", 96, DETECTION_OUTPUTS, rng=rng),
    ]
    return Network("mini_faster16", layers, INPUT_SHAPE)


_BUILDERS = {
    "mini_alexnet": build_mini_alexnet,
    "mini_fasterm": build_mini_fasterm,
    "mini_faster16": build_mini_faster16,
}


def build_network(name: str) -> Network:
    """Build an untrained network by name."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown network {name!r}; have {sorted(_BUILDERS)}")
    return _BUILDERS[name]()


def split_detection_output(output: np.ndarray):
    """Split a detection head's (N, K+4) output into (logits, boxes)."""
    if output.shape[-1] != DETECTION_OUTPUTS:
        raise ValueError(
            f"expected {DETECTION_OUTPUTS} outputs, got {output.shape[-1]}"
        )
    return output[..., :NUM_CLASSES], output[..., NUM_CLASSES:]
