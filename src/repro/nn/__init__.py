"""Numpy CNN substrate: layers, networks, training, quantization."""

from .layers import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from .models import (
    DETECTION_OUTPUTS,
    INPUT_SHAPE,
    build_mini_alexnet,
    build_mini_faster16,
    build_mini_fasterm,
    build_network,
    split_detection_output,
)
from .inference import InferencePlan
from .network import Network
from .optim import Adam, SGD
from .train import (
    classification_accuracy,
    get_trained_network,
    train_classifier,
    train_detector,
)

__all__ = [
    "AvgPool2d",
    "Conv2d",
    "Flatten",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Network",
    "InferencePlan",
    "Adam",
    "SGD",
    "INPUT_SHAPE",
    "DETECTION_OUTPUTS",
    "build_mini_alexnet",
    "build_mini_fasterm",
    "build_mini_faster16",
    "build_network",
    "split_detection_output",
    "classification_accuracy",
    "get_trained_network",
    "train_classifier",
    "train_detector",
]
