"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — library, networks, and scenario inventory.
* ``run``       — stream synthetic clips through the EVA2 pipeline; one
                  clip prints per-frame decisions plus accuracy, while
                  ``--clips N`` runs a multi-clip workload on the runtime
                  layer (``--batch`` for lockstep RFBME batching,
                  ``--workers N`` for a worker pool) and prints
                  throughput statistics.
* ``serve``     — streaming serving simulation: Poisson or bursty clip
                  arrivals (``--traffic``) admitted into a continuously
                  batched server (``--arrival-rate``, ``--max-batch``),
                  with per-request latency percentiles, optional
                  sharding across worker processes
                  (``--serve-workers N``) or an autoscaled shard fleet
                  (``--autoscale --max-shards N``), virtual-time
                  admission for fast simulated traces
                  (``--virtual-time``), per-request TTFF deadlines with
                  load shedding (``--deadline``), deterministic fault
                  injection (``--fault-seed``, ``--kill-shard``) under
                  shard supervision (``--heartbeat-timeout``,
                  ``--max-respawns``), a cross-lane prefix service that
                  fuses coincident key-frame CNN prefixes and optionally
                  caches them by content (``--prefix-cache``,
                  ``--no-prefix-coalesce``), and optional ``--verify``
                  against the serial pipeline (shed-aware, keyed by
                  request id).  Flags are grouped: traffic / sharding /
                  faults / engine.
* ``hardware``  — the Fig. 12 / Fig. 13 numbers for a real network.
* ``firstorder``— the §IV-A op-count comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import detection_score, first_order_report
from .analysis.reporting import format_table
from .core import AMCConfig, AMCExecutor, EVA2Pipeline, MatchErrorPolicy, StaticPolicy
from .hardware import PAPER_TARGET_LAYERS, VPUConfig, VPUModel, spec_by_name
from .video import scenario, scenario_names

__all__ = ["main"]


def _cmd_info(args: argparse.Namespace) -> int:
    from .nn.train import _TASKS  # zoo inventory

    print("repro — EVA2 (ISCA 2018) reproduction")
    print()
    print("zoo networks: " + ", ".join(sorted(_TASKS)))
    print("scenarios:    " + ", ".join(scenario_names()))
    print("hardware:     alexnet, fasterm, faster16, vgg16")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .nn.train import get_trained_network
    from .runtime import PAPER_MODES
    from .video import generate_clip

    mode = PAPER_MODES[args.network]
    if args.clips < 1:
        print("error: --clips must be >= 1", file=sys.stderr)
        return 2
    if args.pipeline_depth < 1:
        print("error: --pipeline-depth must be >= 1", file=sys.stderr)
        return 2
    if args.clips > 1:
        if args.batch and args.workers > 1:
            print(
                "error: --batch (lockstep) and --workers (pool) are "
                "separate execution paths; pick one",
                file=sys.stderr,
            )
            return 2
        return _run_workload(args, mode)
    if args.batch or args.workers > 1:
        print(
            "error: --batch/--workers apply to multi-clip workloads; "
            "add --clips N (N > 1)",
            file=sys.stderr,
        )
        return 2

    network = get_trained_network(args.network)
    executor = AMCExecutor(
        network,
        AMCConfig(
            mode=mode,
            rfbme_backend=args.rfbme,
            cnn_engine=args.cnn,
            dtype=args.dtype,
        ),
    )
    policy = (
        StaticPolicy(args.interval)
        if args.interval
        else MatchErrorPolicy(args.threshold)
    )
    clip = generate_clip(scenario(args.scenario), seed=args.seed,
                         num_frames=args.frames)
    result = EVA2Pipeline(executor, policy).run_clip(clip)

    rows = [
        [r.index, "KEY" if r.is_key else "pred",
         r.match_error if r.match_error is not None else "-"]
        for r in result.records
    ]
    print(format_table(["frame", "mode", "match error"], rows))
    print(f"\nkey frames: {result.num_key_frames}/{len(result)}")
    if mode == "warp":
        print(f"clip mAP: {100 * detection_score([result], [clip]):.1f}%")
    return 0


def _spec_and_clips(args: argparse.Namespace):
    """The (warmed spec, workload clips) a multi-clip command describes.

    Shared by ``run --clips N`` and ``serve`` so both execution paths —
    and ``serve --verify``'s serial rerun — are built from one recipe.
    """
    from .runtime import PipelineSpec, synthetic_workload

    spec = PipelineSpec(
        network=args.network,
        mode=None,  # resolved from PAPER_MODES by the spec
        policy="static" if args.interval else "match_error",
        threshold=args.threshold,
        interval=args.interval or 4,
        rfbme_backend=args.rfbme,
        cnn_engine=args.cnn,
        dtype=args.dtype,
        pipeline_depth=args.pipeline_depth,
        speculate=args.speculate,
    )
    clips = synthetic_workload(
        args.clips,
        num_frames=args.frames,
        scenarios=[args.scenario] if args.scenario else None,
        base_seed=args.seed,
    )
    spec.warm()  # train/load once, outside the timed region
    return spec, clips


def _run_workload(args: argparse.Namespace, mode: str) -> int:
    """Multi-clip path of ``run``: the runtime layer plus a summary table."""
    from .runtime import SchedulerConfig, run_workload

    spec, clips = _spec_and_clips(args)
    scheduler = (
        SchedulerConfig(workers=args.workers) if args.workers > 1 else None
    )
    result = run_workload(
        spec, clips, batch=args.batch, scheduler=scheduler,
        prefix_cache_mb=args.prefix_cache_mb if args.prefix_cache else 0.0,
    )
    print(format_table(["quantity", "value"], result.summary_rows()))
    if mode == "warp":
        score = detection_score(result.results, clips)
        print(f"\nworkload mAP: {100 * score:.1f}%")
    return 0


def _clip_results_identical(served, serial) -> bool:
    """Bit-identical per-clip comparison (outputs and key decisions)."""
    import numpy as np

    return (
        len(served) == len(serial)
        and np.array_equal(served.key_mask(), serial.key_mask())
        and np.array_equal(served.outputs(), serial.outputs())
    )


def _parse_kill_shard(text: str):
    """``SHARD@T`` → a kill :class:`FaultEvent` on the default lane."""
    from .runtime import FaultEvent

    try:
        shard_text, at_text = text.split("@", 1)
        return FaultEvent("kill", at=float(at_text), shard=int(shard_text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected SHARD@SECONDS (e.g. 1@0.25), got {text!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    """Streaming serving simulation: Poisson arrivals, continuous batching."""
    from .runtime import (
        AutoscalePolicy,
        ClipRequest,
        FaultPlan,
        ServerConfig,
        ServingRuntime,
        SupervisorConfig,
        bursty_arrival_times,
        poisson_arrival_times,
        run_workload,
        slack_deadlines,
    )

    if args.clips < 1:
        print("error: --clips must be >= 1", file=sys.stderr)
        return 2
    if args.max_batch < 1:
        print("error: --max-batch must be >= 1", file=sys.stderr)
        return 2
    if args.arrival_rate <= 0:
        print("error: --arrival-rate must be > 0 clips/s", file=sys.stderr)
        return 2
    if args.serve_workers < 1:
        print("error: --serve-workers must be >= 1", file=sys.stderr)
        return 2
    if args.pipeline_depth < 1:
        print("error: --pipeline-depth must be >= 1", file=sys.stderr)
        return 2
    if args.deadline < 0:
        print("error: --deadline must be > 0 seconds (0 = off)",
              file=sys.stderr)
        return 2
    if args.autoscale and not 1 <= args.min_shards <= args.max_shards:
        print("error: --autoscale needs 1 <= --min-shards <= --max-shards",
              file=sys.stderr)
        return 2
    if args.burst_size < 1 or args.burst_period <= 0:
        print("error: --burst-size must be >= 1 and --burst-period > 0",
              file=sys.stderr)
        return 2

    def _arrivals() -> list:
        if args.traffic == "bursty":
            return bursty_arrival_times(
                args.clips, args.burst_size, args.burst_period,
                spread=args.burst_period / 10.0, seed=args.seed,
            )
        return poisson_arrival_times(
            args.clips, args.arrival_rate, seed=args.seed
        )

    fleet = args.max_shards if args.autoscale else args.serve_workers
    events = list(args.kill_shard)
    if args.fault_seed is not None:
        horizon = args.fault_horizon
        if horizon <= 0:
            horizon = max(_arrivals()[-1], 0.1)
        events.extend(FaultPlan.seeded(
            args.fault_seed,
            shards_per_lane=fleet,
            horizon=horizon,
        ).events)
    plan = FaultPlan(events=tuple(events), seed=args.fault_seed)
    if plan and not args.autoscale and (
            args.serve_workers < 2 or args.admission != "shared"):
        print(
            "error: fault injection needs sharded shared-admission "
            "serving (--serve-workers >= 2 --admission shared, or an "
            "--autoscale fleet) so a surviving shard exists to fail "
            "over to",
            file=sys.stderr,
        )
        return 2

    spec, clips = _spec_and_clips(args)
    arrivals = _arrivals()
    deadlines = (
        slack_deadlines(arrivals, args.deadline, seed=args.seed)
        if args.deadline > 0 else [None] * len(arrivals)
    )
    requests = [
        ClipRequest(request_id=i, clip=clip, arrival_time=arrival,
                    deadline=deadline)
        for i, (clip, arrival, deadline)
        in enumerate(zip(clips, arrivals, deadlines))
    ]
    config = ServerConfig(
        max_batch=args.max_batch,
        serve_workers=args.serve_workers,
        shard_backend=args.shard_backend,
        admission=args.admission,
        fault_plan=plan,
        supervisor=SupervisorConfig(
            heartbeat_timeout=args.heartbeat_timeout,
            max_respawns=args.max_respawns,
        ),
        autoscale=(
            AutoscalePolicy(
                min_shards=args.min_shards, max_shards=args.max_shards
            ) if args.autoscale else None
        ),
        virtual_time=args.virtual_time,
        max_pending=args.max_pending,
        prefix_coalesce=args.prefix_coalesce,
        prefix_cache_mb=args.prefix_cache_mb if args.prefix_cache else 0.0,
    )
    runtime = ServingRuntime(spec, config)
    report = runtime.serve(requests)
    print(format_table(["quantity", "value"], report.summary_rows()))
    for event in report.scale_events:
        print(
            f"scale: lane {event.lane!r} {event.from_shards} -> "
            f"{event.to_shards} shard(s) at t={event.time:.3f}s "
            f"({event.reason}, depth {event.queue_depth})"
        )
    for event in report.failover_events:
        print(
            f"failover: lane {event.lane!r} shard {event.shard} "
            f"({event.reason}) at t={event.time:.3f}s, re-dispatched "
            f"seqs {list(event.seqs)}"
            + (", respawned a replacement" if event.respawned else "")
        )
    for record in report.shed:
        print(f"shed: {record.error}")
    if args.verify:
        serial = run_workload(spec, clips, batch=False)
        expected = {
            request.request_id: result
            for request, result in zip(requests, serial.results)
        }
        mismatched = [
            record.request_id
            for record in report.records
            if not _clip_results_identical(
                record.result, expected[record.request_id]
            )
        ]
        if mismatched:
            print(
                f"\nERROR: served results diverged from serial for "
                f"request(s) {mismatched}",
                file=sys.stderr,
            )
            return 1
        suffix = (
            f" ({report.num_shed} shed before service, none served wrong)"
            if report.shed else ""
        )
        print("\nevery served clip bit-identical to its serial run: "
              f"yes{suffix}")
    if args.verify_tolerance:
        return _verify_tolerance(spec, clips, requests, report)
    return 0


def _verify_tolerance(spec, clips, requests, report) -> int:
    """Check a quantized serve against its plan's tolerance contract.

    Reruns the workload serially on the float64 reference lane and
    asserts both legs of the contract the quantized plan calibrated at
    compile time: every served output within ``max_abs_error`` of the
    reference, and per-frame argmax agreement at or above
    ``top1_agreement``.  A disagreement on a frame whose reference
    top-1/top-2 margin is below twice the error bound counts as
    agreement: an output within the promised max-abs error can
    legitimately flip such a near-tie, so only flips the bound cannot
    explain are contract violations.  Returns a process exit code.
    """
    import numpy as np
    from dataclasses import replace

    from .runtime import run_workload
    from .nn.inference import QUANT_DTYPES, resolve_plan_dtype

    family = resolve_plan_dtype(spec.dtype)
    if family not in QUANT_DTYPES:
        print(
            f"error: --verify-tolerance needs a quantized --dtype "
            f"({'/'.join(QUANT_DTYPES)}), got {family!r}",
            file=sys.stderr,
        )
        return 2
    tolerance = spec.shared_network().inference_plan(1, family).tolerance
    reference = run_workload(
        replace(spec, dtype="float64"), clips, batch=False
    )
    expected = {
        request.request_id: result
        for request, result in zip(requests, reference.results)
    }
    max_err = 0.0
    agree = total = 0
    for record in report.records:
        served = record.result.outputs()
        ref = expected[record.request_id].outputs()
        max_err = max(max_err, float(np.max(np.abs(served - ref))))
        matched = served.argmax(axis=1) == ref.argmax(axis=1)
        top2 = np.sort(ref, axis=1)[:, -2:]
        ambiguous = (top2[:, 1] - top2[:, 0]) <= 2 * tolerance.max_abs_error
        agree += int(np.sum(matched | ambiguous))
        total += served.shape[0]
    top1 = agree / total if total else 1.0
    print(f"\ntolerance contract ({family}): "
          f"max abs error {max_err:.4f} (bound {tolerance.max_abs_error:.4f}), "
          f"top-1 agreement {top1:.4f} (bound {tolerance.top1_agreement})")
    if max_err > tolerance.max_abs_error or top1 < tolerance.top1_agreement:
        print("ERROR: served outputs violate the tolerance contract",
              file=sys.stderr)
        return 1
    print("tolerance contract met")
    return 0


def _cmd_hardware(args: argparse.Namespace) -> int:
    memoize = args.network == "alexnet"
    vpu = VPUModel(args.network, VPUConfig(memoize=memoize))
    area = vpu.area_breakdown()
    orig = VPUModel.total(vpu.baseline_frame_cost())
    pred = VPUModel.total(vpu.predicted_frame_cost())
    print(format_table(
        ["quantity", "value"],
        [
            ["network", vpu.spec.name],
            ["AMC target layer", vpu.target],
            ["VPU area mm2", area["total_mm2"]],
            ["EVA2 area mm2", area["eva2_mm2"]],
            ["orig frame (ms / mJ)", f"{orig.latency_ms:.1f} / {orig.energy_mj:.1f}"],
            ["pred frame (ms / mJ)", f"{pred.latency_ms:.2f} / {pred.energy_mj:.3f}"],
            ["pred/orig energy", pred.energy_mj / orig.energy_mj],
        ],
    ))
    return 0


def _cmd_firstorder(args: argparse.Namespace) -> int:
    spec = spec_by_name(args.network)
    target = PAPER_TARGET_LAYERS.get(spec.name, spec.last_spatial_layer())
    size, stride, _ = spec.receptive_field(target)
    report = first_order_report(spec, target, size, stride)
    print(format_table(
        ["quantity", "value"],
        [
            ["network", report.network],
            ["target layer", report.target_layer],
            ["prefix MACs", float(report.prefix_macs)],
            ["unoptimized adds", report.unoptimized_ops],
            ["RFBME adds", report.rfbme_ops],
            ["MACs per RFBME add", report.savings_ratio],
        ],
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EVA2 (ISCA 2018) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="inventory").set_defaults(func=_cmd_info)

    run = sub.add_parser("run", help="run a clip through the EVA2 pipeline")
    run.add_argument("--network", default="mini_fasterm",
                     choices=["mini_alexnet", "mini_fasterm", "mini_faster16"])
    run.add_argument("--scenario", default="camera_pan")
    run.add_argument("--seed", type=int, default=2)
    run.add_argument("--frames", type=int, default=16)
    run.add_argument("--threshold", type=float, default=2.0,
                     help="adaptive match-error threshold")
    run.add_argument("--interval", type=int, default=0,
                     help="use a static key-frame interval instead")
    run.add_argument("--clips", type=int, default=1,
                     help="clips in the workload; >1 uses the runtime layer")
    run.add_argument("--batch", action="store_true",
                     help="lockstep batched execution for multi-clip runs")
    run.add_argument("--workers", type=int, default=0,
                     help="worker pool size for multi-clip runs")
    run.add_argument("--rfbme", default=None,
                     choices=["kernel", "batched", "loop"],
                     help="RFBME host backend (default: fastest available)")
    run.add_argument("--cnn", default="planned",
                     choices=["planned", "legacy"],
                     help="CNN engine: compiled inference plan (default, "
                          "bit-identical) or the layer-by-layer legacy path")
    run.add_argument("--dtype", default="float64",
                     choices=["float64", "float32", "int8", "q16"],
                     help="CNN arithmetic; float32 trades bit-exactness "
                          "for throughput, int8/q16 run the calibrated "
                          "fixed-point lane under an explicit tolerance "
                          "contract (planned engine only)")
    run.add_argument("--pipeline-depth", type=int, default=1,
                     help="software-pipeline depth for lockstep steps: 2 "
                          "overlaps step t+1's RFBME/decision with step "
                          "t's CNN stages (bit-identical; default 1)")
    run.add_argument("--speculate", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="pipeline speculatively across uncertain step "
                          "boundaries (serving admissions/evictions): "
                          "checkpoint, overlap, roll back + replay on a "
                          "mismatch; bit-identical either way "
                          "(--no-speculate restores stable-only overlap)")
    run.add_argument("--prefix-cache", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="content-addressed CNN prefix cache for lockstep "
                          "workloads: key frames with pixels already seen "
                          "reuse the stored prefix activation "
                          "(bit-identical by construction; default off)")
    run.add_argument("--prefix-cache-mb", type=float, default=64.0,
                     help="prefix cache LRU budget in MB (with "
                          "--prefix-cache; default 64)")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="streaming serving simulation with continuous batching",
    )

    traffic = serve.add_argument_group(
        "traffic", "what arrives, when, and with what deadlines"
    )
    traffic.add_argument("--clips", type=int, default=32,
                         help="requests in the simulated traffic")
    traffic.add_argument("--frames", type=int, default=16)
    traffic.add_argument("--scenario", default=None,
                         help="restrict traffic to one scenario "
                              "(default: mix)")
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--traffic", default="poisson",
                         choices=["poisson", "bursty"],
                         help="arrival process: smooth Poisson stream, or "
                              "bursts of --burst-size clips every "
                              "--burst-period seconds (the regime where "
                              "--autoscale earns its keep)")
    traffic.add_argument("--arrival-rate", type=float, default=200.0,
                         help="Poisson arrival rate, clips/s")
    traffic.add_argument("--burst-size", type=int, default=8,
                         help="clips per burst for --traffic bursty")
    traffic.add_argument("--burst-period", type=float, default=0.5,
                         help="seconds between bursts for --traffic bursty")
    traffic.add_argument("--deadline", type=float, default=0.0,
                         help="per-request first-output budget in seconds "
                              "of slack past arrival; requests still "
                              "queued when it lapses are shed with an "
                              "explicit outcome (0 = no deadlines)")

    sharding = serve.add_argument_group(
        "sharding", "how the fleet is shaped and requests admitted"
    )
    sharding.add_argument("--max-batch", type=int, default=8,
                          help="serving slots per lane (continuous batch "
                               "width)")
    sharding.add_argument("--serve-workers", type=int, default=1,
                          help="shard lanes across N worker processes "
                               "(1 = in-process serving)")
    sharding.add_argument("--shard-backend", default="auto",
                          choices=["auto", "serial", "process"],
                          help="worker pool for sharded serving (auto picks "
                               "process on multi-core hosts; threads are "
                               "refused — shards would share plan scratch)")
    sharding.add_argument("--admission", default="static",
                          choices=["static", "shared"],
                          help="sharded request assignment: static "
                               "round-robin slices, or one shared admission "
                               "queue per lane so idle shards steal pending "
                               "requests (better tail latency under skew)")
    sharding.add_argument("--autoscale", action="store_true",
                          help="grow/shrink each lane's shard fleet from "
                               "observed queue depth and deadline slack "
                               "between --min-shards and --max-shards "
                               "(implies shared admission; served results "
                               "stay bit-identical across scaling)")
    sharding.add_argument("--min-shards", type=int, default=1,
                          help="autoscale floor per lane (default 1)")
    sharding.add_argument("--max-shards", type=int, default=4,
                          help="autoscale ceiling per lane (default 4)")
    sharding.add_argument("--max-pending", type=int, default=None,
                          help="front-door admission watermark: pause "
                               "ingesting past this many undispatched "
                               "requests, resume at half (default: "
                               "unbounded)")
    sharding.add_argument("--virtual-time", action="store_true",
                          help="release arrivals to process shards by "
                               "logical timestamps instead of real sleeps "
                               "so long simulated traces run at full "
                               "speed (process backend)")

    faults = serve.add_argument_group(
        "faults", "deterministic fault injection and supervision"
    )
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="inject a seeded chaos plan (kill/stall/"
                             "ack-drop) against the shards; needs "
                             "--serve-workers >= 2 --admission shared "
                             "(or --autoscale)")
    faults.add_argument("--fault-horizon", type=float, default=0.0,
                        help="window (s) seeded faults land in "
                             "(default: up to the last arrival)")
    faults.add_argument("--kill-shard", type=_parse_kill_shard,
                        action="append", default=[], metavar="SHARD@T",
                        help="kill one shard at T seconds (repeatable), "
                             "e.g. --kill-shard 1@0.25")
    faults.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        help="declare a silent shard dead after this many "
                             "seconds and fail its requests over")
    faults.add_argument("--max-respawns", type=int, default=1,
                        help="replacement shards the supervisor may spawn "
                             "before a shardless lane is a hard error")

    engine = serve.add_argument_group(
        "engine", "what executes each admitted clip"
    )
    engine.add_argument("--network", default="mini_fasterm",
                        choices=["mini_alexnet", "mini_fasterm",
                                 "mini_faster16"])
    engine.add_argument("--pipeline-depth", type=int, default=1,
                        help="software-pipeline depth for serving steps "
                             "(2 overlaps RFBME with the CNN stages; "
                             "bit-identical; default 1)")
    engine.add_argument("--speculate", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="with --pipeline-depth 2, overlap across "
                             "possible admissions/evictions too: the "
                             "executor checkpoints policy state and rolls "
                             "back + replays on a membership mismatch; "
                             "the report shows engagement and rollback "
                             "rates (--no-speculate = stable-only overlap)")
    engine.add_argument("--threshold", type=float, default=2.0,
                        help="adaptive match-error threshold")
    engine.add_argument("--interval", type=int, default=0,
                        help="use a static key-frame interval instead")
    engine.add_argument("--rfbme", default=None,
                        choices=["kernel", "batched", "loop"],
                        help="RFBME host backend (default: fastest "
                             "available)")
    engine.add_argument("--cnn", default="planned",
                        choices=["planned", "legacy"])
    engine.add_argument("--dtype", default="float64",
                        choices=["float64", "float32", "int8", "q16"])
    engine.add_argument("--prefix-coalesce",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="fuse coincident key-frame prefix runs from "
                             "all lanes of a step into one batched CNN "
                             "call (bit-identical; default on)")
    engine.add_argument("--prefix-cache",
                        action=argparse.BooleanOptionalAction, default=False,
                        help="content-addressed prefix cache: key frames "
                             "whose pixels were already run through this "
                             "network's prefix reuse the stored activation "
                             "(bit-identical; invalidated on weight swaps; "
                             "default off)")
    engine.add_argument("--prefix-cache-mb", type=float, default=64.0,
                        help="prefix cache LRU budget in MB (with "
                             "--prefix-cache; default 64)")
    engine.add_argument("--verify", action="store_true",
                        help="re-run every clip serially and assert served "
                             "results are bit-identical (keyed by request "
                             "id, so shed requests are accounted, not "
                             "silently skipped)")
    engine.add_argument("--verify-tolerance", action="store_true",
                        help="quantized dtypes only: re-run every clip on "
                             "the float64 reference lane and assert the "
                             "served outputs meet the plan's calibrated "
                             "tolerance contract (max-abs error bound and "
                             "top-1 agreement)")
    serve.set_defaults(func=_cmd_serve)

    hw = sub.add_parser("hardware", help="VPU model numbers")
    hw.add_argument("--network", default="faster16",
                    choices=["alexnet", "fasterm", "faster16"])
    hw.set_defaults(func=_cmd_hardware)

    fo = sub.add_parser("firstorder", help="SecIV-A op-count comparison")
    fo.add_argument("--network", default="faster16",
                    choices=["alexnet", "fasterm", "faster16"])
    fo.set_defaults(func=_cmd_firstorder)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
