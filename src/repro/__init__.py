"""repro — reproduction of "EVA2: Exploiting Temporal Redundancy in Live
Computer Vision" (Buckler et al., ISCA 2018).

Subpackages:

* :mod:`repro.core` — the paper's contribution: activation motion
  compensation (AMC), RFBME motion estimation, activation warping, adaptive
  key-frame control, and the EVA2 execution pipeline.
* :mod:`repro.nn` — numpy CNN framework (layers, training, quantization).
* :mod:`repro.motion` — motion-estimation algorithm library.
* :mod:`repro.video` — synthetic annotated video generation.
* :mod:`repro.vision` — task metrics (top-1 accuracy, mAP).
* :mod:`repro.hardware` — energy/latency/area model of the Eyeriss + EIE +
  EVA2 vision processing unit, plus RLE and fixed-point datapath models.
* :mod:`repro.analysis` — first-order models and trade-off sweeps.
"""

__version__ = "1.0.0"
