"""The paper's contribution: activation motion compensation and EVA2."""

from .amc import AMCConfig, AMCExecutor, PredictionStats
from .delta import DeltaExecutor, DeltaFrameStats
from .keyframe import (
    AlwaysKeyPolicy,
    KeyFramePolicy,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
    NeverKeyPolicy,
    StaticPolicy,
)
from .pipeline import EVA2Pipeline, FrameRecord, PipelineResult
from .receptive_field import ReceptiveField, propagate, receptive_field_of
from .rfbme import (
    OpCounts,
    RFBMEConfig,
    RFBMEEngine,
    RFBMEResult,
    estimate_motion,
    estimate_motion_batch,
)
from .stages import LaneSlot, LaneState, PlanHandle, StepBatch
from .warp import scale_to_activation, warp_activation

__all__ = [
    "AMCConfig",
    "AMCExecutor",
    "PredictionStats",
    "DeltaExecutor",
    "DeltaFrameStats",
    "AlwaysKeyPolicy",
    "KeyFramePolicy",
    "MatchErrorPolicy",
    "MotionMagnitudePolicy",
    "NeverKeyPolicy",
    "StaticPolicy",
    "EVA2Pipeline",
    "FrameRecord",
    "PipelineResult",
    "ReceptiveField",
    "propagate",
    "receptive_field_of",
    "OpCounts",
    "RFBMEConfig",
    "RFBMEEngine",
    "RFBMEResult",
    "estimate_motion",
    "estimate_motion_batch",
    "LaneSlot",
    "LaneState",
    "PlanHandle",
    "StepBatch",
    "scale_to_activation",
    "warp_activation",
]
