"""Activation motion compensation executor — paper §II.

:class:`AMCExecutor` wraps a CNN with the key/predicted frame machinery:

* **key frame** — run the full network precisely; store the input pixels
  (reference for motion estimation) and the target layer's activation.
* **predicted frame** — run RFBME against the stored pixels, scale the
  vector field by the receptive-field stride, warp the stored activation,
  and run only the CNN suffix.

The executor supports the design-space knobs the paper evaluates: target
layer (Table II), bilinear vs nearest interpolation (§II-C3), warping vs
memoization (§IV-E1), a fixed-point warp datapath (§III-B), and pluggable
motion estimators (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

import numpy as np

from ..hardware.fixed_point import QFormat
from ..motion.vector_field import VectorField
from ..nn.network import Network
from .receptive_field import ReceptiveField, receptive_field_of
from .rfbme import BACKENDS, PROFILES, RFBMEConfig, RFBMEEngine, RFBMEResult
from .warp import scale_to_activation, warp_activation

__all__ = ["AMCConfig", "AMCExecutor", "PredictionStats"]

_MODES = ("warp", "memoize")
_CNN_ENGINES = ("planned", "legacy")
_DTYPES = ("float64", "float32", "int8", "q16")
_PLANNED_ONLY_DTYPES = ("float32", "int8", "q16")


@dataclass(frozen=True)
class AMCConfig:
    """Design-space configuration for one AMC deployment."""

    #: AMC target layer; None selects the network's last spatial layer.
    target_layer: Optional[str] = None
    #: 'bilinear' (hardware default) or 'nearest'.
    interpolation: str = "bilinear"
    #: 'warp' (motion compensation) or 'memoize' (reuse the stored
    #: activation untouched — the right choice for classification, §IV-E1).
    mode: str = "warp"
    #: optional fixed-point format for the warp datapath.
    fixed_point: Optional[QFormat] = None
    #: RFBME search parameters.
    rfbme: RFBMEConfig = dataclass_field(default_factory=RFBMEConfig)
    #: RFBME host backend ("kernel"/"batched"/"loop"); None picks the
    #: fastest available. All backends are bit-identical — this knob
    #: exists for benchmarking and regression testing.
    rfbme_backend: Optional[str] = None
    #: RFBME host tuning ("fast"/"pr1"); bit-identical, wall-clock only.
    rfbme_profile: str = "fast"
    #: CNN execution engine: "planned" runs prefix/suffix through a
    #: compiled :class:`~repro.nn.inference.InferencePlan` (bit-identical,
    #: faster); "legacy" keeps the layer-by-layer training-path forward.
    cnn_engine: str = "planned"
    #: CNN arithmetic: "float64" (default, bit-identical contract),
    #: "float32" (planned engine only; tolerance-verified), or the
    #: quantized lanes "int8" / "q16" (planned engine only; calibrated
    #: fixed-point plans with an explicit
    #: :class:`~repro.nn.quantize.QuantTolerance` contract — the
    #: paper's accuracy-for-throughput knob).
    dtype: str = "float64"
    #: runtime step pipelining: 1 executes the frame lifecycle
    #: sequentially per step; 2 lets the stage executor software-pipeline
    #: step t+1's RFBME/decision against step t's CNN stages
    #: (double-buffered scratch, bit-identical results).  Depths beyond 2
    #: behave as 2 — the lifecycle has one overlap window.
    pipeline_depth: int = 1
    #: with pipeline_depth >= 2, let drivers pipeline *speculatively*
    #: across uncertain step boundaries (possible admissions/evictions):
    #: the executor checkpoints policy/cursor state before the
    #: speculative head and rolls back + replays on a mismatch.
    #: Bit-identical either way; False restores the PR 5 behaviour of
    #: overlapping only provably stable steps.
    speculate: bool = True

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.rfbme_backend is not None and self.rfbme_backend not in BACKENDS:
            raise ValueError(
                f"rfbme_backend must be None or one of {BACKENDS}, "
                f"got {self.rfbme_backend!r}"
            )
        if self.rfbme_profile not in PROFILES:
            raise ValueError(
                f"rfbme_profile must be one of {PROFILES}, "
                f"got {self.rfbme_profile!r}"
            )
        if self.cnn_engine not in _CNN_ENGINES:
            raise ValueError(
                f"cnn_engine must be one of {_CNN_ENGINES}, "
                f"got {self.cnn_engine!r}"
            )
        if self.dtype not in _DTYPES:
            raise ValueError(
                f"dtype must be one of {_DTYPES}, got {self.dtype!r}"
            )
        if self.dtype in _PLANNED_ONLY_DTYPES and self.cnn_engine != "planned":
            raise ValueError(
                f"dtype={self.dtype!r} requires the planned CNN engine"
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )


@dataclass
class PredictionStats:
    """What one predicted frame cost and how the match looked."""

    estimation: Optional[RFBMEResult]
    warped: bool


class AMCExecutor:
    """AMC execution engine bound to one network."""

    def __init__(self, network: Network, config: Optional[AMCConfig] = None):
        self.network = network
        self.config = config or AMCConfig()
        self.target = self.config.target_layer or network.last_spatial_layer()
        network.validate_target(self.target)

        self.rf: ReceptiveField = receptive_field_of(network, self.target)
        target_shape = network.layer_output_shape(self.target)
        if len(target_shape) != 3:
            raise ValueError(
                f"target layer {self.target!r} is not spatial: {target_shape}"
            )
        self.channels, self.grid_h, self.grid_w = target_shape

        self._key_pixels: Optional[np.ndarray] = None
        self._key_activation: Optional[np.ndarray] = None
        self._engine: Optional[RFBMEEngine] = None

    def __getstate__(self):
        """Pickle without the RFBME engine (kernel scratch, workspaces).

        The engine is rebuilt lazily on first use, so an executor shipped
        to a worker process — e.g. inside a
        :class:`~repro.core.stages.LaneState` — resumes bit-identically
        without dragging compiled-kernel staging buffers through pickle.
        """
        state = self.__dict__.copy()
        state["_engine"] = None
        return state

    # ------------------------------------------------------------------ #
    @property
    def has_key(self) -> bool:
        """Whether a key frame has been stored."""
        return self._key_activation is not None

    @property
    def grid_shape(self):
        return (self.grid_h, self.grid_w)

    def reset(self) -> None:
        """Forget the stored key frame (start of a new clip)."""
        self._key_pixels = None
        self._key_activation = None

    def release(self) -> None:
        """Return this executor to the free pool (serving slot recycling).

        The serving runtime keeps a fixed set of executors alive as batch
        slots; when a clip departs mid-flight its slot is released — key
        state dropped so the next admitted clip starts exactly as a fresh
        executor would — while the engine and scratch buffers stay warm
        for the clip that takes the slot over.
        """
        self.reset()

    def stored_activation(self) -> np.ndarray:
        """Copy of the stored target activation (C, H, W)."""
        if self._key_activation is None:
            raise RuntimeError("no key frame stored")
        return self._key_activation.copy()

    def stored_pixels(self) -> np.ndarray:
        """The stored key-frame pixels (H, W), read-only view.

        The runtime layer pairs these with incoming frames to batch RFBME
        across many clips in one call; a locked view keeps that zero-copy
        without letting callers corrupt the stored key frame.
        """
        if self._key_pixels is None:
            raise RuntimeError("no key frame stored")
        view = self._key_pixels.view()
        view.flags.writeable = False
        return view

    @property
    def rfbme_engine(self) -> RFBMEEngine:
        """The reusable RFBME evaluator for this executor's geometry."""
        if self._engine is None:
            self._engine = RFBMEEngine(
                self.network.input_shape[1:],
                self.rf,
                self.grid_shape,
                config=self.config.rfbme,
                backend=self.config.rfbme_backend,
                profile=self.config.rfbme_profile,
            )
        return self._engine

    @property
    def plan(self):
        """The compiled capacity-1 inference plan (planned engine only).

        Resolved through the network's plan cache on every access (a dict
        lookup) rather than held here, so ``Network.load_state_dict``'s
        invalidation reaches executors too — a stale reference would
        silently keep serving float32 snapshots of the old weights.
        """
        if self.config.cnn_engine != "planned":
            raise RuntimeError("the legacy CNN engine has no inference plan")
        return self.network.inference_plan(max_batch=1, dtype=self.config.dtype)

    @property
    def key_activation(self) -> np.ndarray:
        """Read-only view of the stored target activation (C, H, W).

        The runtime layer stacks these across clips to warp and run the
        CNN suffix as one batch; the locked view keeps that zero-copy
        without letting callers corrupt the stored key state.
        """
        if self._key_activation is None:
            raise RuntimeError("no key frame stored")
        view = self._key_activation.view()
        view.flags.writeable = False
        return view

    def adopt_key(self, frame: np.ndarray, activation: np.ndarray) -> None:
        """Store key-frame state computed externally.

        The lockstep runtime runs coincident key frames through one
        batched prefix call and hands each executor its row; state ends
        up exactly as if :meth:`process_key` had run this clip alone.
        """
        self._check_frame(frame)
        if activation.shape != (self.channels, self.grid_h, self.grid_w):
            raise ValueError(
                f"activation must be {(self.channels, self.grid_h, self.grid_w)}, "
                f"got {activation.shape}"
            )
        self._key_pixels = frame.copy()
        self._key_activation = activation.copy()

    # ------------------------------------------------------------------ #
    def process_key(self, frame: np.ndarray) -> np.ndarray:
        """Run ``frame`` (H, W grayscale) precisely; store pixels and the
        target activation; return the network output (1, ...)."""
        self._check_frame(frame)
        batch = frame[None, None, :, :]
        if self.config.cnn_engine == "planned":
            activation = self.plan.run_prefix(batch, self.target)
            output = self.plan.run_suffix(activation, self.target)
        else:
            activation = self.network.forward_prefix(batch, self.target)
            output = self.network.forward_suffix(activation, self.target)
        self._key_pixels = frame.copy()
        self._key_activation = activation[0].copy()
        return output

    def estimate(self, frame: np.ndarray) -> RFBMEResult:
        """RFBME between the stored key pixels and ``frame``."""
        self._check_frame(frame)
        if self._key_pixels is None:
            raise RuntimeError("cannot estimate motion: no key frame stored")
        return self.rfbme_engine.estimate(self._key_pixels, frame)

    def predicted_activation(
        self,
        estimation: Optional[RFBMEResult] = None,
        pixel_field: Optional[VectorField] = None,
    ) -> np.ndarray:
        """The warped (or memoized) activation for a predicted frame.

        ``pixel_field`` overrides the RFBME field with an externally
        computed one (already at receptive-field granularity, pixel units)
        — how Fig. 14 plugs in Lucas–Kanade and dense-pyramid flow.
        """
        if self._key_activation is None:
            raise RuntimeError("cannot predict: no key frame stored")
        if self.config.mode == "memoize":
            return self._key_activation.copy()

        if pixel_field is None:
            if estimation is None:
                raise ValueError("warp mode needs an estimation or a pixel_field")
            pixel_field = estimation.field
        if pixel_field.grid_shape != self.grid_shape:
            raise ValueError(
                f"field grid {pixel_field.grid_shape} != activation grid "
                f"{self.grid_shape}"
            )
        activation_field = scale_to_activation(pixel_field, self.rf)
        return warp_activation(
            self._key_activation,
            activation_field,
            interpolation=self.config.interpolation,
            fixed_point=self.config.fixed_point,
        )

    def process_predicted(
        self,
        frame: np.ndarray,
        estimation: Optional[RFBMEResult] = None,
        pixel_field: Optional[VectorField] = None,
    ) -> np.ndarray:
        """Run ``frame`` as a predicted frame; return the network output.

        ``estimation`` may be supplied to avoid re-running RFBME when the
        key-frame controller already computed it; in warp mode with neither
        argument given, RFBME runs here.
        """
        self._check_frame(frame)
        if self.config.mode == "warp" and estimation is None and pixel_field is None:
            estimation = self.estimate(frame)
        activation = self.predicted_activation(estimation, pixel_field)
        if self.config.cnn_engine == "planned":
            return self.plan.run_suffix(activation[None], self.target)
        return self.network.forward_suffix(activation[None], self.target)

    # ------------------------------------------------------------------ #
    def prefix_macs(self) -> int:
        """MACs a predicted frame skips."""
        return self.network.prefix_macs(self.target)

    def suffix_macs(self) -> int:
        """MACs every frame pays."""
        return self.network.suffix_macs(self.target)

    def _check_frame(self, frame: np.ndarray) -> None:
        expected = self.network.input_shape[1:]
        if frame.ndim != 2 or frame.shape != expected:
            raise ValueError(
                f"frame must be {expected} grayscale, got {frame.shape}"
            )
