"""Optional compiled tile-SAD kernel for the RFBME producer — paper §III-A1.

The RFBME producer's inner loop (one absolute tile difference per
(tile, search offset) pair, Fig. 8 "diff tile producer") is pure
element-wise arithmetic and dominates host runtime.  NumPy needs three
memory passes (subtract, abs, reduce); a ~40-line C kernel fuses them into
one.  This module compiles that kernel with the system C compiler on first
use and loads it through :mod:`ctypes`.

The kernel is an *accelerator, not a semantics change*: it reproduces the
canonical summation order of the NumPy paths bit-for-bit (per tile: one
sequential accumulator per column, then numpy's pairwise combine of the
column sums).  A self-check at load time compares kernel output against
the NumPy reference on random probes and refuses the kernel on any
mismatch, so every caller can treat "kernel" and "batched" results as
interchangeable.

Gating: no compiler, any compile/load error, a failed self-check, or
``REPRO_SAD_KERNEL=0`` in the environment all make :func:`get_kernel`
return ``None`` and callers silently fall back to the NumPy path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = ["SADKernel", "get_kernel", "kernel_available"]

#: Tiles wider than this fall back to NumPy (the C column buffer is fixed).
MAX_TILE = 8

_SOURCE = r"""
#include <math.h>

/* Tile SADs between a padded key frame and the current frame.
 *
 * out[oi][oj][ty][tx] = sum over the (tile x tile) block at (ty, tx) of
 * |cur - key shifted by (offs[oi], offs[oj])|.
 *
 * Summation order is chosen to be bit-identical to the NumPy reference
 * (see repro.core.rfbme._tile_sums): each column v accumulates
 * sequentially over rows u; the `tile` column sums then combine with
 * numpy's pairwise order (a tree for tile == 8, sequential below 8).
 */
void tile_sad(const double *pad, long pad_w,
              const double *cur, long cur_w,
              long n_ty, long n_tx, long tile,
              const long *offs, long n_off, long radius,
              double *out)
{
    double col[8];
    for (long oi = 0; oi < n_off; ++oi) {
        for (long oj = 0; oj < n_off; ++oj) {
            const double *key = pad + (radius + offs[oi]) * pad_w
                                    + (radius + offs[oj]);
            for (long ty = 0; ty < n_ty; ++ty) {
                for (long tx = 0; tx < n_tx; ++tx) {
                    const double *a = cur + ty * tile * cur_w + tx * tile;
                    const double *b = key + ty * tile * pad_w + tx * tile;
                    for (long v = 0; v < tile; ++v)
                        col[v] = 0.0;
                    for (long u = 0; u < tile; ++u) {
                        const double *ar = a + u * cur_w;
                        const double *br = b + u * pad_w;
                        for (long v = 0; v < tile; ++v)
                            col[v] += fabs(ar[v] - br[v]);
                    }
                    double total;
                    if (tile == 8)
                        total = ((col[0] + col[1]) + (col[2] + col[3]))
                              + ((col[4] + col[5]) + (col[6] + col[7]));
                    else {
                        total = col[0];
                        for (long v = 1; v < tile; ++v)
                            total += col[v];
                    }
                    *out++ = total;
                }
            }
        }
    }
}
"""

_CFLAGS = ["-O3", "-march=native", "-shared", "-fPIC"]

_CACHE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", ".cache", "kernels"
)

#: tri-state: None = not attempted yet, False = unavailable, else SADKernel.
_STATE: Optional[object] = None


class SADKernel:
    """ctypes wrapper around the compiled ``tile_sad`` symbol."""

    def __init__(self, lib: ctypes.CDLL):
        self._fn = lib.tile_sad
        self._fn.restype = None
        self._fn.argtypes = [
            ctypes.POINTER(ctypes.c_double), ctypes.c_long,
            ctypes.POINTER(ctypes.c_double), ctypes.c_long,
            ctypes.c_long, ctypes.c_long, ctypes.c_long,
            ctypes.POINTER(ctypes.c_long), ctypes.c_long, ctypes.c_long,
            ctypes.POINTER(ctypes.c_double),
        ]

    def supports(self, tile: int) -> bool:
        return 1 <= tile <= MAX_TILE

    def tile_sads(
        self,
        pad: np.ndarray,
        cur: np.ndarray,
        tile: int,
        offsets: np.ndarray,
        radius: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """Fill ``out`` (n_off, n_off, n_ty, n_tx) with tile SADs.

        ``pad`` is the key frame padded by ``radius`` on each side; ``cur``
        is the current frame.  Both must be C-contiguous float64.
        """
        n_off = len(offsets)
        n_ty, n_tx = out.shape[2], out.shape[3]
        offs = np.ascontiguousarray(offsets, dtype=np.int64)
        dptr = ctypes.POINTER(ctypes.c_double)
        self._fn(
            pad.ctypes.data_as(dptr), pad.shape[1],
            cur.ctypes.data_as(dptr), cur.shape[1],
            n_ty, n_tx, tile,
            offs.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), n_off, radius,
            out.ctypes.data_as(dptr),
        )
        return out


def _numpy_reference(
    pad: np.ndarray, cur: np.ndarray, tile: int, offsets: np.ndarray, radius: int
) -> np.ndarray:
    """The canonical NumPy tile-sum the kernel must match bit-for-bit."""
    n_off = len(offsets)
    n_ty = cur.shape[0] // tile
    n_tx = cur.shape[1] // tile
    out = np.empty((n_off, n_off, n_ty, n_tx))
    blocks = np.empty((n_ty, n_tx, tile, tile))
    cur_tiles = (
        cur[: n_ty * tile, : n_tx * tile]
        .reshape(n_ty, tile, n_tx, tile)
        .transpose(0, 2, 1, 3)
    )
    for oi, dy in enumerate(offsets):
        for oj, dx in enumerate(offsets):
            shifted = pad[
                radius + dy : radius + dy + n_ty * tile,
                radius + dx : radius + dx + n_tx * tile,
            ]
            key_tiles = shifted.reshape(n_ty, tile, n_tx, tile).transpose(0, 2, 1, 3)
            np.subtract(cur_tiles, key_tiles, out=blocks)
            np.abs(blocks, out=blocks)
            out[oi, oj] = blocks.sum(axis=-2).sum(axis=-1)
    return out


def _self_check(kernel: SADKernel) -> bool:
    """Kernel output must be bit-identical to the NumPy reference."""
    rng = np.random.default_rng(20180601)
    for tile, radius, stride, shape in (
        (8, 12, 2, (64, 64)),
        (8, 8, 2, (48, 40)),
        (4, 6, 3, (32, 32)),
        (8, 0, 1, (24, 24)),
    ):
        key = np.ascontiguousarray(rng.random(shape))
        cur = np.ascontiguousarray(rng.random(shape))
        offsets = np.arange(-radius, radius + 1, stride)
        pad = np.pad(key, radius)
        n_off = len(offsets)
        out = np.empty((n_off, n_off, shape[0] // tile, shape[1] // tile))
        kernel.tile_sads(pad, cur, tile, offsets, radius, out)
        if not np.array_equal(out, _numpy_reference(pad, cur, tile, offsets, radius)):
            return False
    return True


def _cpu_identity() -> str:
    """A string that changes when the host ISA does.

    ``-march=native`` bakes the build host's instruction set into the
    binary, so a cached .so carried to a different CPU (container image,
    shared checkout) could SIGILL past every try/except.  Keying the
    cache on the CPU's advertised flags forces a recompile instead.
    """
    identity = platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("flags", "Features")):
                    identity += " " + line
                    break
    except OSError:
        identity += " " + platform.processor()
    return identity


def _compile() -> Optional[str]:
    """Compile the kernel into the on-disk cache; return the .so path."""
    tag = hashlib.sha256(
        (_SOURCE + " ".join(_CFLAGS) + _cpu_identity()).encode()
    ).hexdigest()[:16]
    cache_dir = os.path.abspath(_CACHE_DIR)
    lib_path = os.path.join(cache_dir, f"sad-{tag}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache_dir, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
            src = os.path.join(tmp, "sad.c")
            with open(src, "w") as handle:
                handle.write(_SOURCE)
            built = os.path.join(tmp, "sad.so")
            subprocess.run(
                ["cc", *_CFLAGS, "-o", built, src],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(built, lib_path)  # atomic under concurrent builds
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None


def get_kernel() -> Optional[SADKernel]:
    """The compiled kernel, or None when disabled or unavailable."""
    global _STATE
    if _STATE is None:
        _STATE = False
        if os.environ.get("REPRO_SAD_KERNEL", "1") != "0":
            lib_path = _compile()
            if lib_path is not None:
                try:
                    kernel = SADKernel(ctypes.CDLL(lib_path))
                except (OSError, AttributeError):
                    kernel = None
                if kernel is not None and _self_check(kernel):
                    _STATE = kernel
    return _STATE if isinstance(_STATE, SADKernel) else None


def kernel_available() -> bool:
    return get_kernel() is not None
