"""Optional compiled tile-SAD kernel for the RFBME producer — paper §III-A1.

The RFBME producer's inner loop (one absolute tile difference per
(tile, search offset) pair, Fig. 8 "diff tile producer") is pure
element-wise arithmetic and dominates host runtime.  NumPy needs three
memory passes (subtract, abs, reduce); the C kernels here fuse them into
one.  This module compiles the kernels with the system C compiler on first
use and loads them through :mod:`ctypes`.

The entry points share one shared object:

* ``tile_sad_grid_batch`` — the fast producer over a whole lockstep
  batch of frame pairs.  Keeps the current frame's tile rows in
  registers across every search offset (8-wide AVX-512 column
  accumulators where the ISA allows, the same scalar loop elsewhere),
  computes only each tile's in-bounds offset window, and writes
  *grid-major* output — ``out[ty][tx][oi][oj]`` — which is exactly the
  layout the consumer reads, so no transpose pass sits between producer
  and consumer.
* ``rfbme_consume`` — the whole RFBME consumer (integral images, box
  sums, candidate-masked argmin, match errors) over a producer-output
  batch.
* ``gather_rows`` — the flat im2col gather behind the planned CNN
  inference engine.
* ``gather_rows_q8`` / ``gather_rows_q16`` — the same gather over int8
  and int16 sources, widening to the quantized lanes' GEMM operand type
  (float32 / float64) in the same pass, so the quantized planned engine
  pays one memory sweep where np.take plus an astype would pay two.
* ``tile_sad`` — the original scalar producer in offset-major layout
  (``out[oi][oj][ty][tx]``), kept verbatim as the ``"pr1"`` host-profile
  baseline that the runtime benchmarks measure speedups against.

Both kernels are *accelerators, not semantics changes*: they reproduce the
canonical summation order of the NumPy paths bit-for-bit (per tile: one
sequential accumulator per column, then numpy's pairwise combine of the
column sums — for the AVX-512 path each ZMM lane is one column
accumulator, and the final combine is the same scalar tree).  A
self-check at load time compares both kernels against the NumPy reference
on random probes and refuses the library on any mismatch, so every caller
can treat "kernel" and "batched" results as interchangeable.

Gating: no compiler, any compile/load error, a failed self-check, or
``REPRO_SAD_KERNEL=0`` in the environment all make :func:`get_kernel`
return ``None`` and callers silently fall back to the NumPy path.
``REPRO_FORCE_NUMPY=1`` does the same without even attempting a compile —
the knob CI's NumPy lane uses to prove the pure-NumPy paths stay green
(the kernel lane conversely asserts :func:`kernel_available`, so a silent
fallback can never masquerade as kernel coverage).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from typing import Optional, Tuple

import numpy as np

__all__ = ["SADKernel", "get_kernel", "kernel_available", "producer_bounds"]

#: Tiles wider than this fall back to NumPy (the C column buffer is fixed).
MAX_TILE = 8

_SOURCE = r"""
#include <math.h>
#include <string.h>
#if defined(__AVX512F__)
#include <immintrin.h>
#endif

/* Tile SADs between a padded key frame and the current frame.
 *
 * Both kernels compute, for every tile (ty, tx) and search offset pair
 * (offs[oi], offs[oj]), the sum over the (tile x tile) block of
 * |cur - shifted key|.  Summation order is bit-identical to the NumPy
 * reference (see repro.core.rfbme._tile_sums): each column v accumulates
 * sequentially over rows u; the `tile` column sums then combine with
 * numpy's pairwise order (a tree for tile == 8, sequential below 8).
 */

/* Fast producer: grid-major output out[ty][tx][oi][oj].  The current
 * frame's tile rows load once per tile and stay in registers across
 * every offset; with AVX-512, one ZMM holds the eight column
 * accumulators of a tile==8 block.  Only the in-bounds offset window of
 * each tile is computed — oi in [row_lo[ty], row_hi[ty]) and oj in
 * [col_lo[tx], col_hi[tx]); entries outside it are left untouched (the
 * consumer masks them by the same validity geometry).  Full-range
 * bounds reproduce the unbounded cube. */
static void tile_sad_grid_bounded(const double *pad, long pad_w,
                                  const double *cur, long cur_w,
                                  long n_ty, long n_tx, long tile,
                                  const long *offs, long n_off, long radius,
                                  const long *row_lo, const long *row_hi,
                                  const long *col_lo, const long *col_hi,
                                  double *out)
{
#if defined(__AVX512F__)
    if (tile == 8) {
        const __m512d sign = _mm512_set1_pd(-0.0);
        for (long ty = 0; ty < n_ty; ++ty) {
            for (long tx = 0; tx < n_tx; ++tx) {
                const double *a = cur + ty * 8 * cur_w + tx * 8;
                __m512d a0 = _mm512_loadu_pd(a);
                __m512d a1 = _mm512_loadu_pd(a + cur_w);
                __m512d a2 = _mm512_loadu_pd(a + 2 * cur_w);
                __m512d a3 = _mm512_loadu_pd(a + 3 * cur_w);
                __m512d a4 = _mm512_loadu_pd(a + 4 * cur_w);
                __m512d a5 = _mm512_loadu_pd(a + 5 * cur_w);
                __m512d a6 = _mm512_loadu_pd(a + 6 * cur_w);
                __m512d a7 = _mm512_loadu_pd(a + 7 * cur_w);
                double *o = out + (ty * n_tx + tx) * n_off * n_off;
                for (long oi = row_lo[ty]; oi < row_hi[ty]; ++oi) {
                    const double *brow =
                        pad + (radius + offs[oi] + ty * 8) * pad_w
                            + radius + tx * 8;
                    for (long oj = col_lo[tx]; oj < col_hi[tx]; ++oj) {
                        const double *b = brow + offs[oj];
                        __m512d acc, d;
                        d = _mm512_sub_pd(a0, _mm512_loadu_pd(b));
                        acc = _mm512_andnot_pd(sign, d);
                        d = _mm512_sub_pd(a1, _mm512_loadu_pd(b + pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        d = _mm512_sub_pd(a2, _mm512_loadu_pd(b + 2 * pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        d = _mm512_sub_pd(a3, _mm512_loadu_pd(b + 3 * pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        d = _mm512_sub_pd(a4, _mm512_loadu_pd(b + 4 * pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        d = _mm512_sub_pd(a5, _mm512_loadu_pd(b + 5 * pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        d = _mm512_sub_pd(a6, _mm512_loadu_pd(b + 6 * pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        d = _mm512_sub_pd(a7, _mm512_loadu_pd(b + 7 * pad_w));
                        acc = _mm512_add_pd(acc, _mm512_andnot_pd(sign, d));
                        double col[8];
                        _mm512_storeu_pd(col, acc);
                        o[oi * n_off + oj] =
                            ((col[0] + col[1]) + (col[2] + col[3]))
                          + ((col[4] + col[5]) + (col[6] + col[7]));
                    }
                }
            }
        }
        return;
    }
#endif
    double col[8];
    for (long ty = 0; ty < n_ty; ++ty) {
        for (long tx = 0; tx < n_tx; ++tx) {
            const double *a = cur + ty * tile * cur_w + tx * tile;
            double *o = out + (ty * n_tx + tx) * n_off * n_off;
            for (long oi = row_lo[ty]; oi < row_hi[ty]; ++oi) {
                for (long oj = col_lo[tx]; oj < col_hi[tx]; ++oj) {
                    const double *b =
                        pad + (radius + offs[oi] + ty * tile) * pad_w
                            + radius + offs[oj] + tx * tile;
                    for (long v = 0; v < tile; ++v)
                        col[v] = 0.0;
                    for (long u = 0; u < tile; ++u) {
                        const double *ar = a + u * cur_w;
                        const double *br = b + u * pad_w;
                        for (long v = 0; v < tile; ++v)
                            col[v] += fabs(ar[v] - br[v]);
                    }
                    double total;
                    if (tile == 8)
                        total = ((col[0] + col[1]) + (col[2] + col[3]))
                              + ((col[4] + col[5]) + (col[6] + col[7]));
                    else {
                        total = col[0];
                        for (long v = 1; v < tile; ++v)
                            total += col[v];
                    }
                    o[oi * n_off + oj] = total;
                }
            }
        }
    }
}

/* Lockstep batch: n_pairs (padded key, current) pairs in one call, so a
 * whole runtime step pays one FFI crossing instead of one per clip.
 * Only the valid offset window of each tile is computed. */
void tile_sad_grid_batch(const double *pads, long pad_h, long pad_w,
                         const double *curs, long cur_h, long cur_w,
                         long n_pairs,
                         long n_ty, long n_tx, long tile,
                         const long *offs, long n_off, long radius,
                         const long *row_lo, const long *row_hi,
                         const long *col_lo, const long *col_hi,
                         double *out)
{
    long out_stride = n_ty * n_tx * n_off * n_off;
    for (long p = 0; p < n_pairs; ++p)
        tile_sad_grid_bounded(pads + p * pad_h * pad_w, pad_w,
                              curs + p * cur_h * cur_w, cur_w,
                              n_ty, n_tx, tile, offs, n_off, radius,
                              row_lo, row_hi, col_lo, col_hi,
                              out + p * out_stride);
}

/* The RFBME consumer over a batch of grid-major producer outputs.
 *
 * Reproduces, add for add, the vectorized NumPy consumer (see
 * repro.core.rfbme.RFBMEEngine._consumer_fast): a 2-D integral image per
 * offset (row pass then column pass of sequential binary adds), box sums
 * in ((A - B) - C) + D order, first-minimum argmin over the candidate
 * offsets of each receptive field, and error = cost / denom.  Fields
 * with no valid tile range write zeros, exactly like the NumPy path.
 *
 * sums:   (n_pairs, n_ty, n_tx, n_off*n_off) raw producer output
 * valid:  (n_ty, n_tx, n_off*n_off) 0/1 tile validity
 * ci:     scratch, (n_ty+1) * (n_tx+1) * n_off*n_off doubles
 * ty0/ty1: (out_h) tile ranges per field row; tx0/tx1: (out_w)
 * cand:   (out_h*out_w, n_off*n_off) 0/1 candidate offsets
 * ok:     (out_h*out_w) 0/1 field has candidates
 * denom:  (out_h*out_w) error denominators
 * fields: (n_pairs, out_h, out_w, 2) out; errors: (n_pairs, out_h, out_w)
 */
void rfbme_consume(const double *sums,
                   const unsigned char *valid,
                   double *ci,
                   const long *ty0, const long *ty1,
                   const long *tx0, const long *tx1,
                   const unsigned char *cand,
                   const unsigned char *ok,
                   const double *denom,
                   const long *offs,
                   long n_pairs, long n_ty, long n_tx, long n_off,
                   long out_h, long out_w,
                   double *fields, double *errors)
{
    long F = n_off * n_off;
    long ci_w = (n_tx + 1) * F;
    for (long p = 0; p < n_pairs; ++p) {
        const double *s = sums + p * n_ty * n_tx * F;
        /* zero the top row and left column margins */
        for (long k = 0; k < ci_w; ++k)
            ci[k] = 0.0;
        for (long ty = 0; ty < n_ty; ++ty)
            for (long k = 0; k < F; ++k)
                ci[(ty + 1) * ci_w + k] = 0.0;
        /* row pass: interior[ty] = filled[ty] + interior[ty-1] */
        for (long ty = 0; ty < n_ty; ++ty) {
            const double *prev = ci + ty * ci_w + F;
            double *row = ci + (ty + 1) * ci_w + F;
            for (long tx = 0; tx < n_tx; ++tx) {
                const double *sv = s + (ty * n_tx + tx) * F;
                const unsigned char *vv = valid + (ty * n_tx + tx) * F;
                double *cell = row + tx * F;
                const double *up = prev + tx * F;
                for (long k = 0; k < F; ++k)
                    cell[k] = (vv[k] ? sv[k] : 0.0) + up[k];
            }
        }
        /* column pass: interior[:, tx] += interior[:, tx-1] */
        for (long ty = 0; ty < n_ty; ++ty) {
            double *row = ci + (ty + 1) * ci_w + F;
            for (long tx = 1; tx < n_tx; ++tx) {
                double *cell = row + tx * F;
                const double *left = cell - F;
                for (long k = 0; k < F; ++k)
                    cell[k] += left[k];
            }
        }
        /* box sums, candidate-masked first-minimum argmin, errors */
        for (long i = 0; i < out_h; ++i) {
            for (long j = 0; j < out_w; ++j) {
                long f = i * out_w + j;
                double *fv = fields + ((p * out_h + i) * out_w + j) * 2;
                double *ev = errors + (p * out_h + i) * out_w + j;
                if (!ok[f]) {
                    fv[0] = 0.0;
                    fv[1] = 0.0;
                    *ev = 0.0;
                    continue;
                }
                const double *r11 = ci + ty1[i] * ci_w + tx1[j] * F;
                const double *r01 = ci + ty0[i] * ci_w + tx1[j] * F;
                const double *r10 = ci + ty1[i] * ci_w + tx0[j] * F;
                const double *r00 = ci + ty0[i] * ci_w + tx0[j] * F;
                const unsigned char *cf = cand + f * F;
                long best = -1;
                double best_cost = 0.0;
                for (long k = 0; k < F; ++k) {
                    if (!cf[k])
                        continue;
                    double cost = ((r11[k] - r01[k]) - r10[k]) + r00[k];
                    if (best < 0 || cost < best_cost) {
                        best = k;
                        best_cost = cost;
                    }
                }
                fv[0] = (double) offs[best / n_off];
                fv[1] = (double) offs[best % n_off];
                *ev = best_cost / denom[f];
            }
        }
    }
}

/* Row-wise gather: out[b][k] = src[b][idx[k]].  The im2col hot path of
 * the planned inference engine (one flat gather materialises each
 * convolution's column matrix); plain np.take spends most of its time in
 * generic dispatch at these sizes. */
void gather_rows(const double *src, long src_len,
                 const long *idx, long n_idx,
                 long batch, double *out)
{
    for (long b = 0; b < batch; ++b) {
        const double *s = src + b * src_len;
        double *o = out + b * n_idx;
        for (long k = 0; k < n_idx; ++k)
            o[k] = s[idx[k]];
    }
}

/* Quantized-lane gathers: identical indexing to gather_rows, but the
 * source rows are int8/int16 activations and the output widens to the
 * float type the quantized GEMM consumes (the integer values survive
 * the widening exactly, so the GEMM still accumulates integers).  One
 * pass replaces np.take-then-astype's two. */
void gather_rows_q8(const signed char *src, long src_len,
                    const long *idx, long n_idx,
                    long batch, float *out)
{
    for (long b = 0; b < batch; ++b) {
        const signed char *s = src + b * src_len;
        float *o = out + b * n_idx;
        for (long k = 0; k < n_idx; ++k)
            o[k] = (float) s[idx[k]];
    }
}

void gather_rows_q16(const short *src, long src_len,
                     const long *idx, long n_idx,
                     long batch, double *out)
{
    for (long b = 0; b < batch; ++b) {
        const short *s = src + b * src_len;
        double *o = out + b * n_idx;
        for (long k = 0; k < n_idx; ++k)
            o[k] = (double) s[idx[k]];
    }
}

void gather_rows_q16f(const short *src, long src_len,
                      const long *idx, long n_idx,
                      long batch, float *out)
{
    for (long b = 0; b < batch; ++b) {
        const short *s = src + b * src_len;
        float *o = out + b * n_idx;
        for (long k = 0; k < n_idx; ++k)
            o[k] = (float) s[idx[k]];
    }
}

/* Quantized-lane requantization: fold the quantized bias into an
 * integer-exact GEMM output and scale it into the next layer's raws.
 * bias/mult are per output channel (the GEMM output's last axis);
 * rint semantics match np.rint (round half to even — the default FP
 * rounding mode) and the bias add is integer-exact, so one pass here
 * is bitwise the NumPy add/multiply/rint/clip/cast chain it replaces.
 *
 * The per-channel operands repeat with period `cols` (8-32 for the
 * repo's conv layers) — too short a trip count to vectorize.  The
 * fast path therefore expands them into REQUANT_UNROLL repetitions on
 * the stack and walks the output flat, so the hot loop runs a few
 * hundred iterations of contiguous loads and vectorizes (AVX-512
 * vrndscaleps on the build hosts this repo targets). */
#define REQUANT_UNROLL 16
#define REQUANT_MAX_COLS 256

void requant_rows_q8(const float *src, long rows, long cols,
                     const float *bias, const float *mult,
                     float lo, float hi, signed char *out)
{
    if (cols <= REQUANT_MAX_COLS) {
        float bpat[REQUANT_MAX_COLS * REQUANT_UNROLL];
        float mpat[REQUANT_MAX_COLS * REQUANT_UNROLL];
        long plen = cols * REQUANT_UNROLL;
        for (long j = 0; j < plen; ++j) {
            bpat[j] = bias[j % cols];
            mpat[j] = mult[j % cols];
        }
        long n = rows * cols, i = 0;
        for (; i + plen <= n; i += plen) {
            const float *s = src + i;
            signed char *o = out + i;
            for (long j = 0; j < plen; ++j) {
                float v = rintf((s[j] + bpat[j]) * mpat[j]);
                v = v < lo ? lo : (v > hi ? hi : v);
                o[j] = (signed char) v;
            }
        }
        for (; i < n; ++i) {
            float v = rintf((src[i] + bias[i % cols]) * mult[i % cols]);
            v = v < lo ? lo : (v > hi ? hi : v);
            out[i] = (signed char) v;
        }
        return;
    }
    for (long r = 0; r < rows; ++r) {
        const float *s = src + r * cols;
        signed char *o = out + r * cols;
        for (long c = 0; c < cols; ++c) {
            float v = rintf((s[c] + bias[c]) * mult[c]);
            v = v < lo ? lo : (v > hi ? hi : v);
            o[c] = (signed char) v;
        }
    }
}

void requant_rows_q16f(const float *src, long rows, long cols,
                       const float *bias, const float *mult,
                       float lo, float hi, short *out)
{
    if (cols <= REQUANT_MAX_COLS) {
        float bpat[REQUANT_MAX_COLS * REQUANT_UNROLL];
        float mpat[REQUANT_MAX_COLS * REQUANT_UNROLL];
        long plen = cols * REQUANT_UNROLL;
        for (long j = 0; j < plen; ++j) {
            bpat[j] = bias[j % cols];
            mpat[j] = mult[j % cols];
        }
        long n = rows * cols, i = 0;
        for (; i + plen <= n; i += plen) {
            const float *s = src + i;
            short *o = out + i;
            for (long j = 0; j < plen; ++j) {
                float v = rintf((s[j] + bpat[j]) * mpat[j]);
                v = v < lo ? lo : (v > hi ? hi : v);
                o[j] = (short) v;
            }
        }
        for (; i < n; ++i) {
            float v = rintf((src[i] + bias[i % cols]) * mult[i % cols]);
            v = v < lo ? lo : (v > hi ? hi : v);
            out[i] = (short) v;
        }
        return;
    }
    for (long r = 0; r < rows; ++r) {
        const float *s = src + r * cols;
        short *o = out + r * cols;
        for (long c = 0; c < cols; ++c) {
            float v = rintf((s[c] + bias[c]) * mult[c]);
            v = v < lo ? lo : (v > hi ? hi : v);
            o[c] = (short) v;
        }
    }
}

void requant_rows_q16(const double *src, long rows, long cols,
                      const double *bias, const double *mult,
                      double lo, double hi, short *out)
{
    if (cols <= REQUANT_MAX_COLS) {
        double bpat[REQUANT_MAX_COLS * REQUANT_UNROLL];
        double mpat[REQUANT_MAX_COLS * REQUANT_UNROLL];
        long plen = cols * REQUANT_UNROLL;
        for (long j = 0; j < plen; ++j) {
            bpat[j] = bias[j % cols];
            mpat[j] = mult[j % cols];
        }
        long n = rows * cols, i = 0;
        for (; i + plen <= n; i += plen) {
            const double *s = src + i;
            short *o = out + i;
            for (long j = 0; j < plen; ++j) {
                double v = rint((s[j] + bpat[j]) * mpat[j]);
                v = v < lo ? lo : (v > hi ? hi : v);
                o[j] = (short) v;
            }
        }
        for (; i < n; ++i) {
            double v = rint((src[i] + bias[i % cols]) * mult[i % cols]);
            v = v < lo ? lo : (v > hi ? hi : v);
            out[i] = (short) v;
        }
        return;
    }
    for (long r = 0; r < rows; ++r) {
        const double *s = src + r * cols;
        short *o = out + r * cols;
        for (long c = 0; c < cols; ++c) {
            double v = rint((s[c] + bias[c]) * mult[c]);
            v = v < lo ? lo : (v > hi ? hi : v);
            o[c] = (short) v;
        }
    }
}

/* Entry quantization: float32 activations to raws in one pass (scale
 * is a power of two, so the multiply is exact in any precision). */
void quantize_q8(const float *src, long n, float scale,
                 float lo, float hi, signed char *out)
{
    for (long i = 0; i < n; ++i) {
        float v = rintf(src[i] * scale);
        v = v < lo ? lo : (v > hi ? hi : v);
        out[i] = (signed char) v;
    }
}

void quantize_q16(const float *src, long n, float scale,
                  float lo, float hi, short *out)
{
    for (long i = 0; i < n; ++i) {
        float v = rintf(src[i] * scale);
        v = v < lo ? lo : (v > hi ? hi : v);
        out[i] = (short) v;
    }
}

/* im2col gather for the int8 VNNI GEMM: per-sample row structure with
 * the activation offset applied in flight.  out row (b*rows + r) gets
 * src[b][idx[r*k .. r*k+k-1]] ^ 0x80 (two's-complement int8 + 128 ==
 * xor with the sign bit) in its first k bytes; the kp-k pad bytes are
 * never written (the caller zeroes the buffer once — zero u8 activation
 * times zero weight pad contributes nothing). */
void gather_cols_q8u(const signed char *src, long src_len,
                     const long *idx, long rows, long k,
                     long batch, long kp, unsigned char *out)
{
    for (long b = 0; b < batch; ++b) {
        const signed char *s = src + b * src_len;
        for (long r = 0; r < rows; ++r) {
            const long *ir = idx + r * k;
            unsigned char *o = out + (b * rows + r) * kp;
            for (long j = 0; j < k; ++j)
                o[j] = (unsigned char) (s[ir[j]] ^ 0x80);
        }
    }
}

/* int8 convolution GEMM with fused requantization (AVX512-VNNI).
 *
 * a:  (m, k4*4) uint8 activations offset by +128, zero-padded past the
 *     true reduction depth.
 * bp: packed int8 weights, k4 groups x 32 channels x 4 consecutive
 *     k-positions (vpdpbusd's operand shape), zero-padded in both axes.
 * bias/mult: 32 floats per channel; bias already carries the
 *     -128 * sum_k(w) correction for the activation offset, so the
 *     int32 accumulator equals acc_true + 128*colsum and
 *     (float)acc + bias reproduces the reference (acc_true + bias_q)
 *     exactly (all quantities are integers below 2^24).
 * out: (m, out_stride) int8, first n columns written.
 *
 * vpdpbusd accumulates u8 x s8 dot-4s into int32 — exact integer
 * arithmetic, so any summation order matches the NumPy reference
 * bitwise.  The requant epilogue (cvt, +bias, *mult, round-to-even,
 * clip, narrow) is the same chain as requant_rows_q8 in vector form.
 */
#if defined(__AVX512VNNI__) && defined(__AVX512F__)
int have_vnni(void) { return 1; }

static inline void requant_store_q8(__m512i acc0, __m512i acc1,
                                    __m512 vb0, __m512 vb1,
                                    __m512 vm0, __m512 vm1,
                                    __m512 vlo, __m512 vhi,
                                    long n, signed char *dst)
{
    __m512 f0 = _mm512_mul_ps(
        _mm512_add_ps(_mm512_cvtepi32_ps(acc0), vb0), vm0);
    __m512 f1 = _mm512_mul_ps(
        _mm512_add_ps(_mm512_cvtepi32_ps(acc1), vb1), vm1);
    f0 = _mm512_roundscale_ps(f0, 0x08);
    f1 = _mm512_roundscale_ps(f1, 0x08);
    f0 = _mm512_min_ps(_mm512_max_ps(f0, vlo), vhi);
    f1 = _mm512_min_ps(_mm512_max_ps(f1, vlo), vhi);
    signed char tmp[32];
    _mm_storeu_si128((__m128i *) tmp,
                     _mm512_cvtepi32_epi8(_mm512_cvtps_epi32(f0)));
    _mm_storeu_si128((__m128i *) (tmp + 16),
                     _mm512_cvtepi32_epi8(_mm512_cvtps_epi32(f1)));
    memcpy(dst, tmp, n);
}

static inline void requant_store_q16(__m512i acc0, __m512i acc1,
                                     __m512 vb0, __m512 vb1,
                                     __m512 vm0, __m512 vm1,
                                     __m512 vlo, __m512 vhi,
                                     long n, short *dst)
{
    __m512 f0 = _mm512_mul_ps(
        _mm512_add_ps(_mm512_cvtepi32_ps(acc0), vb0), vm0);
    __m512 f1 = _mm512_mul_ps(
        _mm512_add_ps(_mm512_cvtepi32_ps(acc1), vb1), vm1);
    f0 = _mm512_roundscale_ps(f0, 0x08);
    f1 = _mm512_roundscale_ps(f1, 0x08);
    f0 = _mm512_min_ps(_mm512_max_ps(f0, vlo), vhi);
    f1 = _mm512_min_ps(_mm512_max_ps(f1, vlo), vhi);
    short tmp[32];
    _mm256_storeu_si256((__m256i *) tmp,
                        _mm512_cvtepi32_epi16(_mm512_cvtps_epi32(f0)));
    _mm256_storeu_si256((__m256i *) (tmp + 16),
                        _mm512_cvtepi32_epi16(_mm512_cvtps_epi32(f1)));
    memcpy(dst, tmp, n * sizeof(short));
}

#define VNNI_GEMM_BODY(REQUANT_STORE, OUT_T)                               \
    const __m512 vlo = _mm512_set1_ps(lo), vhi = _mm512_set1_ps(hi);       \
    const __m512 vb0 = _mm512_loadu_ps(bias);                              \
    const __m512 vb1 = _mm512_loadu_ps(bias + 16);                         \
    const __m512 vm0 = _mm512_loadu_ps(mult);                              \
    const __m512 vm1 = _mm512_loadu_ps(mult + 16);                         \
    long i = 0;                                                            \
    for (; i + 4 <= m; i += 4) {                                           \
        const unsigned *a0 = (const unsigned *) (a + (i + 0) * k4 * 4);    \
        const unsigned *a1 = (const unsigned *) (a + (i + 1) * k4 * 4);    \
        const unsigned *a2 = (const unsigned *) (a + (i + 2) * k4 * 4);    \
        const unsigned *a3 = (const unsigned *) (a + (i + 3) * k4 * 4);    \
        __m512i c00 = _mm512_setzero_si512(), c01 = _mm512_setzero_si512();\
        __m512i c10 = _mm512_setzero_si512(), c11 = _mm512_setzero_si512();\
        __m512i c20 = _mm512_setzero_si512(), c21 = _mm512_setzero_si512();\
        __m512i c30 = _mm512_setzero_si512(), c31 = _mm512_setzero_si512();\
        for (long g = 0; g < k4; ++g) {                                    \
            __m512i b0 = _mm512_loadu_si512(bp + g * 128);                 \
            __m512i b1 = _mm512_loadu_si512(bp + g * 128 + 64);            \
            __m512i v0 = _mm512_set1_epi32(a0[g]);                         \
            __m512i v1 = _mm512_set1_epi32(a1[g]);                         \
            __m512i v2 = _mm512_set1_epi32(a2[g]);                         \
            __m512i v3 = _mm512_set1_epi32(a3[g]);                         \
            c00 = _mm512_dpbusd_epi32(c00, v0, b0);                        \
            c01 = _mm512_dpbusd_epi32(c01, v0, b1);                        \
            c10 = _mm512_dpbusd_epi32(c10, v1, b0);                        \
            c11 = _mm512_dpbusd_epi32(c11, v1, b1);                        \
            c20 = _mm512_dpbusd_epi32(c20, v2, b0);                        \
            c21 = _mm512_dpbusd_epi32(c21, v2, b1);                        \
            c30 = _mm512_dpbusd_epi32(c30, v3, b0);                        \
            c31 = _mm512_dpbusd_epi32(c31, v3, b1);                        \
        }                                                                  \
        REQUANT_STORE(c00, c01, vb0, vb1, vm0, vm1, vlo, vhi, n,           \
                      out + (i + 0) * out_stride);                         \
        REQUANT_STORE(c10, c11, vb0, vb1, vm0, vm1, vlo, vhi, n,           \
                      out + (i + 1) * out_stride);                         \
        REQUANT_STORE(c20, c21, vb0, vb1, vm0, vm1, vlo, vhi, n,           \
                      out + (i + 2) * out_stride);                         \
        REQUANT_STORE(c30, c31, vb0, vb1, vm0, vm1, vlo, vhi, n,           \
                      out + (i + 3) * out_stride);                         \
    }                                                                      \
    for (; i < m; ++i) {                                                   \
        const unsigned *a0 = (const unsigned *) (a + i * k4 * 4);          \
        __m512i c0 = _mm512_setzero_si512(), c1 = _mm512_setzero_si512();  \
        for (long g = 0; g < k4; ++g) {                                    \
            __m512i v0 = _mm512_set1_epi32(a0[g]);                         \
            c0 = _mm512_dpbusd_epi32(                                      \
                c0, v0, _mm512_loadu_si512(bp + g * 128));                 \
            c1 = _mm512_dpbusd_epi32(                                      \
                c1, v0, _mm512_loadu_si512(bp + g * 128 + 64));            \
        }                                                                  \
        REQUANT_STORE(c0, c1, vb0, vb1, vm0, vm1, vlo, vhi, n,             \
                      out + i * out_stride);                               \
    }

void gemm_requant_u8s8(const unsigned char *a, long m, long k4,
                       const signed char *bp, long n,
                       const float *bias, const float *mult,
                       float lo, float hi,
                       signed char *out, long out_stride)
{
    VNNI_GEMM_BODY(requant_store_q8, signed char)
}

void gemm_requant_u8s8_o16(const unsigned char *a, long m, long k4,
                           const signed char *bp, long n,
                           const float *bias, const float *mult,
                           float lo, float hi,
                           short *out, long out_stride)
{
    VNNI_GEMM_BODY(requant_store_q16, short)
}
#else
int have_vnni(void) { return 0; }
#endif

/* PR 1 producer, kept verbatim: offset-major out[oi][oj][ty][tx]. */
void tile_sad(const double *pad, long pad_w,
              const double *cur, long cur_w,
              long n_ty, long n_tx, long tile,
              const long *offs, long n_off, long radius,
              double *out)
{
    double col[8];
    for (long oi = 0; oi < n_off; ++oi) {
        for (long oj = 0; oj < n_off; ++oj) {
            const double *key = pad + (radius + offs[oi]) * pad_w
                                    + (radius + offs[oj]);
            for (long ty = 0; ty < n_ty; ++ty) {
                for (long tx = 0; tx < n_tx; ++tx) {
                    const double *a = cur + ty * tile * cur_w + tx * tile;
                    const double *b = key + ty * tile * pad_w + tx * tile;
                    for (long v = 0; v < tile; ++v)
                        col[v] = 0.0;
                    for (long u = 0; u < tile; ++u) {
                        const double *ar = a + u * cur_w;
                        const double *br = b + u * pad_w;
                        for (long v = 0; v < tile; ++v)
                            col[v] += fabs(ar[v] - br[v]);
                    }
                    double total;
                    if (tile == 8)
                        total = ((col[0] + col[1]) + (col[2] + col[3]))
                              + ((col[4] + col[5]) + (col[6] + col[7]));
                    else {
                        total = col[0];
                        for (long v = 1; v < tile; ++v)
                            total += col[v];
                    }
                    *out++ = total;
                }
            }
        }
    }
}
"""

_CFLAGS = ["-O3", "-march=native", "-shared", "-fPIC"]

_CACHE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", ".cache", "kernels"
)

#: tri-state: None = not attempted yet, False = unavailable, else SADKernel.
_STATE: Optional[object] = None


class SADKernel:
    """ctypes wrapper around the compiled SAD producers."""

    _ARGTYPES = [
        ctypes.POINTER(ctypes.c_double), ctypes.c_long,
        ctypes.POINTER(ctypes.c_double), ctypes.c_long,
        ctypes.c_long, ctypes.c_long, ctypes.c_long,
        ctypes.POINTER(ctypes.c_long), ctypes.c_long, ctypes.c_long,
        ctypes.POINTER(ctypes.c_double),
    ]

    def __init__(self, lib: ctypes.CDLL):
        self._fn = lib.tile_sad
        self._fn.restype = None
        self._fn.argtypes = self._ARGTYPES
        lptr = ctypes.POINTER(ctypes.c_long)
        dptr = ctypes.POINTER(ctypes.c_double)
        bptr = ctypes.POINTER(ctypes.c_ubyte)
        self._fn_grid_batch = lib.tile_sad_grid_batch
        self._fn_grid_batch.restype = None
        self._fn_grid_batch.argtypes = [
            dptr, ctypes.c_long, ctypes.c_long,
            dptr, ctypes.c_long, ctypes.c_long,
            ctypes.c_long,
            ctypes.c_long, ctypes.c_long, ctypes.c_long,
            lptr, ctypes.c_long, ctypes.c_long,
            lptr, lptr, lptr, lptr,
            dptr,
        ]
        self._fn_gather = lib.gather_rows
        self._fn_gather.restype = None
        self._fn_gather.argtypes = [
            dptr, ctypes.c_long, lptr, ctypes.c_long, ctypes.c_long, dptr,
        ]
        fptr = ctypes.POINTER(ctypes.c_float)
        sptr = ctypes.POINTER(ctypes.c_short)
        cptr = ctypes.POINTER(ctypes.c_byte)
        self._fn_gather_q8 = lib.gather_rows_q8
        self._fn_gather_q8.restype = None
        self._fn_gather_q8.argtypes = [
            cptr, ctypes.c_long, lptr, ctypes.c_long, ctypes.c_long, fptr,
        ]
        self._fn_gather_q16 = lib.gather_rows_q16
        self._fn_gather_q16.restype = None
        self._fn_gather_q16.argtypes = [
            sptr, ctypes.c_long, lptr, ctypes.c_long, ctypes.c_long, dptr,
        ]
        self._fn_gather_q16f = lib.gather_rows_q16f
        self._fn_gather_q16f.restype = None
        self._fn_gather_q16f.argtypes = [
            sptr, ctypes.c_long, lptr, ctypes.c_long, ctypes.c_long, fptr,
        ]
        self._fn_requant_q8 = lib.requant_rows_q8
        self._fn_requant_q8.restype = None
        self._fn_requant_q8.argtypes = [
            fptr, ctypes.c_long, ctypes.c_long, fptr, fptr,
            ctypes.c_float, ctypes.c_float, cptr,
        ]
        self._fn_requant_q16f = lib.requant_rows_q16f
        self._fn_requant_q16f.restype = None
        self._fn_requant_q16f.argtypes = [
            fptr, ctypes.c_long, ctypes.c_long, fptr, fptr,
            ctypes.c_float, ctypes.c_float, sptr,
        ]
        self._fn_requant_q16 = lib.requant_rows_q16
        self._fn_requant_q16.restype = None
        self._fn_requant_q16.argtypes = [
            dptr, ctypes.c_long, ctypes.c_long, dptr, dptr,
            ctypes.c_double, ctypes.c_double, sptr,
        ]
        uptr = ctypes.POINTER(ctypes.c_ubyte)
        self._fn_gather_cols_q8u = lib.gather_cols_q8u
        self._fn_gather_cols_q8u.restype = None
        self._fn_gather_cols_q8u.argtypes = [
            cptr, ctypes.c_long, lptr, ctypes.c_long, ctypes.c_long,
            ctypes.c_long, ctypes.c_long, uptr,
        ]
        lib.have_vnni.restype = ctypes.c_int
        #: AVX512-VNNI int8 GEMM compiled in?  The quantized lanes route
        #: through :meth:`gemm_requant_u8s8` only when true; the math is
        #: identical either way (integer-exact), only the speed differs.
        self.has_vnni = bool(lib.have_vnni())
        if self.has_vnni:
            self._fn_gemm_u8s8 = lib.gemm_requant_u8s8
            self._fn_gemm_u8s8.restype = None
            self._fn_gemm_u8s8.argtypes = [
                uptr, ctypes.c_long, ctypes.c_long, cptr, ctypes.c_long,
                fptr, fptr, ctypes.c_float, ctypes.c_float,
                cptr, ctypes.c_long,
            ]
            self._fn_gemm_u8s8_o16 = lib.gemm_requant_u8s8_o16
            self._fn_gemm_u8s8_o16.restype = None
            self._fn_gemm_u8s8_o16.argtypes = [
                uptr, ctypes.c_long, ctypes.c_long, cptr, ctypes.c_long,
                fptr, fptr, ctypes.c_float, ctypes.c_float,
                sptr, ctypes.c_long,
            ]
        self._fn_quantize_q8 = lib.quantize_q8
        self._fn_quantize_q8.restype = None
        self._fn_quantize_q8.argtypes = [
            fptr, ctypes.c_long, ctypes.c_float,
            ctypes.c_float, ctypes.c_float, cptr,
        ]
        self._fn_quantize_q16 = lib.quantize_q16
        self._fn_quantize_q16.restype = None
        self._fn_quantize_q16.argtypes = [
            fptr, ctypes.c_long, ctypes.c_float,
            ctypes.c_float, ctypes.c_float, sptr,
        ]
        self._fn_consume = lib.rfbme_consume
        self._fn_consume.restype = None
        self._fn_consume.argtypes = [
            dptr, bptr, dptr,
            lptr, lptr, lptr, lptr,
            bptr, bptr, dptr, lptr,
            ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
            ctypes.c_long, ctypes.c_long,
            dptr, dptr,
        ]

    def supports(self, tile: int) -> bool:
        return 1 <= tile <= MAX_TILE

    def _call(
        self,
        fn,
        pad: np.ndarray,
        cur: np.ndarray,
        tile: int,
        offsets: np.ndarray,
        radius: int,
        out: np.ndarray,
        n_ty: int,
        n_tx: int,
    ) -> np.ndarray:
        offs = np.ascontiguousarray(offsets, dtype=np.int64)
        dptr = ctypes.POINTER(ctypes.c_double)
        fn(
            pad.ctypes.data_as(dptr), pad.shape[1],
            cur.ctypes.data_as(dptr), cur.shape[1],
            n_ty, n_tx, tile,
            offs.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
            len(offsets), radius,
            out.ctypes.data_as(dptr),
        )
        return out

    def tile_sads(
        self,
        pad: np.ndarray,
        cur: np.ndarray,
        tile: int,
        offsets: np.ndarray,
        radius: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """PR 1 producer: fill ``out`` (n_off, n_off, n_ty, n_tx).

        ``pad`` is the key frame padded by ``radius`` on each side; ``cur``
        is the current frame.  Both must be C-contiguous float64.
        """
        return self._call(
            self._fn, pad, cur, tile, offsets, radius, out,
            out.shape[2], out.shape[3],
        )

    def tile_sads_grid_batch(
        self,
        pads: np.ndarray,
        curs: np.ndarray,
        tile: int,
        offsets: np.ndarray,
        radius: int,
        bounds: "Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]",
        out: np.ndarray,
    ) -> np.ndarray:
        """Batched fast producer for a lockstep step.

        ``pads`` is (B, H + 2*radius, W + 2*radius) stacked padded key
        frames, ``curs`` (B, H, W) stacked current frames, ``out``
        (B, n_ty, n_tx, n_off, n_off); all C-contiguous float64.
        ``bounds`` is (row_lo, row_hi, col_lo, col_hi) int64 arrays — the
        in-bounds offset index window per tile row/column; entries outside
        it are skipped (they are invalid by the same geometry the
        consumer masks with).
        """
        offs = np.ascontiguousarray(offsets, dtype=np.int64)
        row_lo, row_hi, col_lo, col_hi = bounds
        dptr = ctypes.POINTER(ctypes.c_double)
        lptr = ctypes.POINTER(ctypes.c_long)
        self._fn_grid_batch(
            pads.ctypes.data_as(dptr), pads.shape[1], pads.shape[2],
            curs.ctypes.data_as(dptr), curs.shape[1], curs.shape[2],
            out.shape[0],
            out.shape[1], out.shape[2], tile,
            offs.ctypes.data_as(lptr),
            len(offsets), radius,
            row_lo.ctypes.data_as(lptr), row_hi.ctypes.data_as(lptr),
            col_lo.ctypes.data_as(lptr), col_hi.ctypes.data_as(lptr),
            out.ctypes.data_as(dptr),
        )
        return out

    def gather_rows(
        self, src: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """out[b, k] = src[b, idx[k]] for C-contiguous float64 2-D arrays
        (``idx`` int64).  Equivalent to ``np.take(src, idx, axis=1, out=out)``."""
        dptr = ctypes.POINTER(ctypes.c_double)
        self._fn_gather(
            src.ctypes.data_as(dptr), src.shape[1],
            idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), idx.shape[0],
            src.shape[0],
            out.ctypes.data_as(dptr),
        )
        return out

    def gather_rows_q8(
        self, src: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """out[b, k] = float32(src[b, idx[k]]) for C-contiguous int8 ``src``
        (``idx`` int64, ``out`` float32) — the int8 lane's fused
        gather-and-widen."""
        self._fn_gather_q8(
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_byte)), src.shape[1],
            idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), idx.shape[0],
            src.shape[0],
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_float)),
        )
        return out

    def gather_rows_q16(
        self, src: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """out[b, k] = float64(src[b, idx[k]]) for C-contiguous int16
        ``src`` (``idx`` int64, ``out`` float64) — the q16 lane's fused
        gather-and-widen."""
        self._fn_gather_q16(
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_short)), src.shape[1],
            idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), idx.shape[0],
            src.shape[0],
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        )
        return out

    def gather_rows_q16f(
        self, src: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """out[b, k] = float32(src[b, idx[k]]) for C-contiguous int16
        ``src`` (``idx`` int64, ``out`` float32) — the int8 lane's
        gather for its wider-than-8-bit activations."""
        self._fn_gather_q16f(
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_short)), src.shape[1],
            idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), idx.shape[0],
            src.shape[0],
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_float)),
        )
        return out

    def requant_rows_q8(
        self, src: np.ndarray, bias: np.ndarray, mult: np.ndarray,
        lo: float, hi: float, out: np.ndarray,
    ) -> np.ndarray:
        """out = int8(clip(rint((src + bias) * mult), lo, hi)) with
        per-column ``bias``/``mult`` — src float32 2-D ``(rows, cols)``,
        one pass.  Bitwise the NumPy add/multiply/rint/clip/cast chain."""
        fptr = ctypes.POINTER(ctypes.c_float)
        self._fn_requant_q8(
            src.ctypes.data_as(fptr), src.shape[0], src.shape[1],
            bias.ctypes.data_as(fptr), mult.ctypes.data_as(fptr), lo, hi,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_byte)),
        )
        return out

    def requant_rows_q16f(
        self, src: np.ndarray, bias: np.ndarray, mult: np.ndarray,
        lo: float, hi: float, out: np.ndarray,
    ) -> np.ndarray:
        """int16-output variant of :meth:`requant_rows_q8` (float32 src)."""
        fptr = ctypes.POINTER(ctypes.c_float)
        self._fn_requant_q16f(
            src.ctypes.data_as(fptr), src.shape[0], src.shape[1],
            bias.ctypes.data_as(fptr), mult.ctypes.data_as(fptr), lo, hi,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_short)),
        )
        return out

    def requant_rows_q16(
        self, src: np.ndarray, bias: np.ndarray, mult: np.ndarray,
        lo: float, hi: float, out: np.ndarray,
    ) -> np.ndarray:
        """int16 variant of :meth:`requant_rows_q8` over float64 ``src``."""
        dptr = ctypes.POINTER(ctypes.c_double)
        self._fn_requant_q16(
            src.ctypes.data_as(dptr), src.shape[0], src.shape[1],
            bias.ctypes.data_as(dptr), mult.ctypes.data_as(dptr), lo, hi,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_short)),
        )
        return out

    def gather_cols_q8u(
        self, src: np.ndarray, idx: np.ndarray, rows: int, k: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """Row-structured im2col gather for the VNNI GEMM.

        ``src`` is ``(batch, src_len)`` int8, ``idx`` the per-row
        ``rows * k`` gather indices, ``out`` a ``(batch * rows, kp)``
        uint8 buffer whose pad columns (``kp - k``) the caller keeps
        zeroed.  Each gathered byte is offset by +128 into uint8 (the
        vpdpbusd operand form)."""
        self._fn_gather_cols_q8u(
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_byte)), src.shape[1],
            idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), rows, k,
            src.shape[0], out.shape[1],
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
        )
        return out

    def gemm_requant_u8s8(
        self, a: np.ndarray, bp: np.ndarray, n: int, bias: np.ndarray,
        mult: np.ndarray, lo: float, hi: float, out: np.ndarray,
    ) -> np.ndarray:
        """Fused int8 GEMM + requantization (AVX512-VNNI; check
        :attr:`has_vnni` first).

        ``a`` is the ``(m, k4*4)`` uint8 activation matrix (offset
        +128), ``bp`` the packed ``(k4, 32, 4)`` int8 weights, ``bias``
        / ``mult`` 32-channel float32 vectors with the activation-offset
        correction already folded into ``bias``.  ``out`` is int8 (or
        int16 — picked by dtype) of ``(m, out_stride)``; the first ``n``
        channels of each row are written.  Bitwise equal to the exact
        integer GEMM + the NumPy requant chain.
        """
        fptr = ctypes.POINTER(ctypes.c_float)
        fn = (
            self._fn_gemm_u8s8
            if out.dtype == np.int8
            else self._fn_gemm_u8s8_o16
        )
        fn(
            a.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
            a.shape[0], a.shape[1] // 4,
            bp.ctypes.data_as(ctypes.POINTER(ctypes.c_byte)), n,
            bias.ctypes.data_as(fptr), mult.ctypes.data_as(fptr), lo, hi,
            out.ctypes.data_as(
                ctypes.POINTER(
                    ctypes.c_byte if out.dtype == np.int8 else ctypes.c_short
                )
            ),
            out.shape[1],
        )
        return out

    def quantize_q8(
        self, src: np.ndarray, scale: float, lo: float, hi: float,
        out: np.ndarray,
    ) -> np.ndarray:
        """out = int8(clip(rint(src * scale), lo, hi)) — flat float32
        ``src`` to raws in one pass (``scale`` a power of two, so the
        multiply is exact and matches the float64 NumPy path)."""
        self._fn_quantize_q8(
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_float)), src.size,
            scale, lo, hi,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_byte)),
        )
        return out

    def quantize_q16(
        self, src: np.ndarray, scale: float, lo: float, hi: float,
        out: np.ndarray,
    ) -> np.ndarray:
        """int16 variant of :meth:`quantize_q8`."""
        self._fn_quantize_q16(
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_float)), src.size,
            scale, lo, hi,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_short)),
        )
        return out

    def consume(
        self,
        sums: np.ndarray,
        valid: np.ndarray,
        scratch: np.ndarray,
        row_ranges: "Tuple[np.ndarray, np.ndarray]",
        col_ranges: "Tuple[np.ndarray, np.ndarray]",
        cand: np.ndarray,
        ok: np.ndarray,
        denom: np.ndarray,
        offsets: np.ndarray,
        n_off: int,
        fields: np.ndarray,
        errors: np.ndarray,
    ) -> None:
        """Run the compiled RFBME consumer over a producer-output batch.

        All arrays C-contiguous; ``valid``/``cand``/``ok`` uint8,
        index/offset arrays int64, the rest float64.  See the C source
        for shapes.  Bit-identical to the NumPy consumer.
        """
        n_pairs, n_ty, n_tx = sums.shape[0], sums.shape[1], sums.shape[2]
        out_h, out_w = errors.shape[1], errors.shape[2]
        ty0, ty1 = row_ranges
        tx0, tx1 = col_ranges
        offs = np.ascontiguousarray(offsets, dtype=np.int64)
        dptr = ctypes.POINTER(ctypes.c_double)
        lptr = ctypes.POINTER(ctypes.c_long)
        bptr = ctypes.POINTER(ctypes.c_ubyte)
        self._fn_consume(
            sums.ctypes.data_as(dptr),
            valid.ctypes.data_as(bptr),
            scratch.ctypes.data_as(dptr),
            ty0.ctypes.data_as(lptr), ty1.ctypes.data_as(lptr),
            tx0.ctypes.data_as(lptr), tx1.ctypes.data_as(lptr),
            cand.ctypes.data_as(bptr),
            ok.ctypes.data_as(bptr),
            denom.ctypes.data_as(dptr),
            offs.ctypes.data_as(lptr),
            n_pairs, n_ty, n_tx, n_off,
            out_h, out_w,
            fields.ctypes.data_as(dptr),
            errors.ctypes.data_as(dptr),
        )


def _numpy_reference(
    pad: np.ndarray, cur: np.ndarray, tile: int, offsets: np.ndarray, radius: int
) -> np.ndarray:
    """The canonical NumPy tile-sum the kernels must match bit-for-bit."""
    n_off = len(offsets)
    n_ty = cur.shape[0] // tile
    n_tx = cur.shape[1] // tile
    out = np.empty((n_off, n_off, n_ty, n_tx))
    blocks = np.empty((n_ty, n_tx, tile, tile))
    cur_tiles = (
        cur[: n_ty * tile, : n_tx * tile]
        .reshape(n_ty, tile, n_tx, tile)
        .transpose(0, 2, 1, 3)
    )
    for oi, dy in enumerate(offsets):
        for oj, dx in enumerate(offsets):
            shifted = pad[
                radius + dy : radius + dy + n_ty * tile,
                radius + dx : radius + dx + n_tx * tile,
            ]
            key_tiles = shifted.reshape(n_ty, tile, n_tx, tile).transpose(0, 2, 1, 3)
            np.subtract(cur_tiles, key_tiles, out=blocks)
            np.abs(blocks, out=blocks)
            out[oi, oj] = blocks.sum(axis=-2).sum(axis=-1)
    return out


def producer_bounds(
    shape: Tuple[int, int], tile: int, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(row_lo, row_hi, col_lo, col_hi) in-bounds offset index windows.

    Tile ``t`` along an axis of extent ``ext`` is fully inside the
    shifted key frame exactly for offsets in [-t*tile, ext-(t+1)*tile] —
    the same predicate as the engine's validity mask, expressed as a
    contiguous index interval so the producer can skip invalid work.
    """
    height, width = shape

    def axis(ext: int) -> Tuple[np.ndarray, np.ndarray]:
        count = ext // tile
        lo = np.array(
            [np.searchsorted(offsets, -t * tile, side="left") for t in range(count)],
            dtype=np.int64,
        )
        hi = np.array(
            [
                np.searchsorted(offsets, ext - (t + 1) * tile, side="right")
                for t in range(count)
            ],
            dtype=np.int64,
        )
        return lo, hi

    row_lo, row_hi = axis(height)
    col_lo, col_hi = axis(width)
    return row_lo, row_hi, col_lo, col_hi


def _consumer_reference(
    sums, valid, ty0, ty1, tx0, tx1, cand, ok, denom, offsets, n_off
):
    """NumPy mirror of the C consumer, for the load-time self-check."""
    b, n_ty, n_tx, n_flat = sums.shape
    filled = np.where(valid[None].astype(bool), sums, 0.0)
    ci = np.zeros((b, n_ty + 1, n_tx + 1, n_flat))
    ci[:, 1:, 1:] = filled.cumsum(axis=1).cumsum(axis=2)
    out_h, out_w = len(ty0), len(tx0)
    fields = np.zeros((b, out_h, out_w, 2))
    errors = np.zeros((b, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            f = i * out_w + j
            if not ok[f]:
                continue
            costs = (
                (ci[:, ty1[i], tx1[j]] - ci[:, ty0[i], tx1[j]])
                - ci[:, ty1[i], tx0[j]]
            ) + ci[:, ty0[i], tx0[j]]
            masked = np.where(cand[f].astype(bool), costs, np.inf)
            best = masked.argmin(axis=1)
            fields[:, i, j, 0] = offsets[best // n_off]
            fields[:, i, j, 1] = offsets[best % n_off]
            errors[:, i, j] = (
                np.take_along_axis(masked, best[:, None], axis=1)[:, 0] / denom[f]
            )
    return fields, errors


def _check_consumer(kernel: SADKernel, rng: np.random.Generator) -> bool:
    """The compiled consumer must match the NumPy mirror bit for bit."""
    n_ty = n_tx = 6
    n_off = 5
    out_h, out_w = 4, 4
    n_flat = n_off * n_off
    n_fields = out_h * out_w
    offsets = np.arange(-4, 5, 2)
    sums = np.ascontiguousarray(rng.random((3, n_ty, n_tx, n_flat)) * 100)
    valid = np.ascontiguousarray((rng.random((n_ty, n_tx, n_flat)) > 0.3), np.uint8)
    ty0 = rng.integers(0, n_ty - 1, out_h).astype(np.int64)
    ty1 = (ty0 + rng.integers(1, 3, out_h)).clip(max=n_ty).astype(np.int64)
    tx0 = rng.integers(0, n_tx - 1, out_w).astype(np.int64)
    tx1 = (tx0 + rng.integers(1, 3, out_w)).clip(max=n_tx).astype(np.int64)
    cand = np.ascontiguousarray(rng.random((n_fields, n_flat)) > 0.4, np.uint8)
    cand[:, 0] = 1  # every field keeps at least one candidate
    ok = np.ascontiguousarray(rng.random(n_fields) > 0.2, np.uint8)
    denom = np.ascontiguousarray(rng.random(n_fields) * 50 + 1)
    fields = np.empty((3, out_h, out_w, 2))
    errors = np.empty((3, out_h, out_w))
    scratch = np.empty((n_ty + 1) * (n_tx + 1) * n_flat)
    kernel.consume(
        sums, valid, scratch, (ty0, ty1), (tx0, tx1), cand, ok, denom,
        offsets, n_off, fields, errors,
    )
    want_f, want_e = _consumer_reference(
        sums, valid, ty0, ty1, tx0, tx1, cand, ok, denom, offsets, n_off
    )
    return np.array_equal(fields, want_f) and np.array_equal(errors, want_e)


def _self_check(kernel: SADKernel) -> bool:
    """Every compiled entry point must be bit-identical to NumPy."""
    rng = np.random.default_rng(20180601)
    for tile, radius, stride, shape in (
        (8, 12, 2, (64, 64)),
        (8, 8, 2, (48, 40)),
        (4, 6, 3, (32, 32)),
        (8, 0, 1, (24, 24)),
    ):
        key = np.ascontiguousarray(rng.random(shape))
        cur = np.ascontiguousarray(rng.random(shape))
        offsets = np.arange(-radius, radius + 1, stride)
        pad = np.pad(key, radius)
        n_off = len(offsets)
        n_ty, n_tx = shape[0] // tile, shape[1] // tile
        want = _numpy_reference(pad, cur, tile, offsets, radius)
        out = np.empty((n_off, n_off, n_ty, n_tx))
        kernel.tile_sads(pad, cur, tile, offsets, radius, out)
        if not np.array_equal(out, want):
            return False
        pads = np.ascontiguousarray(np.stack([pad, np.pad(cur, radius)]))
        curs = np.ascontiguousarray(np.stack([cur, key]))
        want2 = _numpy_reference(pads[1], curs[1], tile, offsets, radius)
        # Full-range bounds must reproduce the whole reference cube (the
        # zero padding makes out-of-frame comparisons well-defined).
        full = (
            np.zeros(n_ty, dtype=np.int64), np.full(n_ty, n_off, np.int64),
            np.zeros(n_tx, dtype=np.int64), np.full(n_tx, n_off, np.int64),
        )
        batch = np.empty((2, n_ty, n_tx, n_off, n_off))
        kernel.tile_sads_grid_batch(pads, curs, tile, offsets, radius, full, batch)
        if not np.array_equal(batch[0].transpose(2, 3, 0, 1), want):
            return False
        if not np.array_equal(batch[1].transpose(2, 3, 0, 1), want2):
            return False
        # Real bounds: every in-window entry must match the reference.
        bounds = producer_bounds(shape, tile, offsets)
        row_lo, row_hi, col_lo, col_hi = bounds
        batch = np.zeros((2, n_ty, n_tx, n_off, n_off))
        kernel.tile_sads_grid_batch(pads, curs, tile, offsets, radius, bounds, batch)
        for ty in range(n_ty):
            for tx in range(n_tx):
                oi = slice(row_lo[ty], row_hi[ty])
                oj = slice(col_lo[tx], col_hi[tx])
                if not np.array_equal(
                    batch[0, ty, tx, oi, oj], want.transpose(2, 3, 0, 1)[ty, tx, oi, oj]
                ):
                    return False
                if not np.array_equal(
                    batch[1, ty, tx, oi, oj],
                    want2.transpose(2, 3, 0, 1)[ty, tx, oi, oj],
                ):
                    return False
    src = np.ascontiguousarray(rng.random((3, 500)))
    idx = np.ascontiguousarray(rng.integers(0, 500, 200), dtype=np.int64)
    got = np.empty((3, 200))
    kernel.gather_rows(src, idx, got)
    if not np.array_equal(got, np.take(src, idx, axis=1)):
        return False
    src8 = np.ascontiguousarray(
        rng.integers(-128, 128, (3, 500)), dtype=np.int8
    )
    got8 = np.empty((3, 200), dtype=np.float32)
    kernel.gather_rows_q8(src8, idx, got8)
    if not np.array_equal(got8, np.take(src8, idx, axis=1).astype(np.float32)):
        return False
    src16 = np.ascontiguousarray(
        rng.integers(-32768, 32768, (3, 500)), dtype=np.int16
    )
    got16 = np.empty((3, 200))
    kernel.gather_rows_q16(src16, idx, got16)
    if not np.array_equal(got16, np.take(src16, idx, axis=1).astype(np.float64)):
        return False
    got16f = np.empty((3, 200), dtype=np.float32)
    kernel.gather_rows_q16f(src16, idx, got16f)
    if not np.array_equal(got16f, np.take(src16, idx, axis=1).astype(np.float32)):
        return False
    # Requant: both the pattern-expanded fast path (cols <= 256) and the
    # wide-cols fallback must be bitwise the NumPy chain.
    for rows, cols in ((40, 24), (7, 300)):
        acc32 = np.ascontiguousarray(
            rng.integers(-60000, 60000, (rows, cols)).astype(np.float32)
        )
        bias32 = np.ascontiguousarray(
            rng.integers(-3000, 3000, cols).astype(np.float32)
        )
        mult32 = np.ascontiguousarray(
            (2.0 ** rng.integers(-12, -2, cols)).astype(np.float32)
        )
        want_r = np.rint((acc32 + bias32) * mult32)
        np.clip(want_r, -128, 127, out=want_r)
        got_r8 = np.empty((rows, cols), dtype=np.int8)
        kernel.requant_rows_q8(acc32, bias32, mult32, -128.0, 127.0, got_r8)
        if not np.array_equal(got_r8, want_r.astype(np.int8)):
            return False
        np.clip(np.rint((acc32 + bias32) * mult32), -32768, 32767, out=want_r)
        got_r16f = np.empty((rows, cols), dtype=np.int16)
        kernel.requant_rows_q16f(
            acc32, bias32, mult32, -32768.0, 32767.0, got_r16f
        )
        if not np.array_equal(got_r16f, want_r.astype(np.int16)):
            return False
        acc64 = np.ascontiguousarray(
            rng.integers(-(2**28), 2**28, (rows, cols)).astype(np.float64)
        )
        bias64 = np.ascontiguousarray(
            rng.integers(-(2**20), 2**20, cols).astype(np.float64)
        )
        mult64 = np.ascontiguousarray(2.0 ** rng.integers(-20, -6, cols))
        want_r = np.rint((acc64 + bias64) * mult64)
        np.clip(want_r, -32768, 32767, out=want_r)
        got_r16 = np.empty((rows, cols), dtype=np.int16)
        kernel.requant_rows_q16(
            acc64, bias64, mult64, -32768.0, 32767.0, got_r16
        )
        if not np.array_equal(got_r16, want_r.astype(np.int16)):
            return False
    rows_g, kg, kp = 37, 30, 32
    idxg = np.ascontiguousarray(
        rng.integers(0, 500, rows_g * kg), dtype=np.int64
    )
    got_u = np.zeros((3 * rows_g, kp), dtype=np.uint8)
    kernel.gather_cols_q8u(src8, idxg, rows_g, kg, got_u)
    want_u = np.zeros((3 * rows_g, kp), dtype=np.uint8)
    want_u[:, :kg] = (
        np.take(src8, idxg, axis=1).astype(np.int16) + 128
    ).reshape(3 * rows_g, kg).astype(np.uint8)
    if not np.array_equal(got_u, want_u):
        return False
    if kernel.has_vnni:
        for m, k, n in ((37, 30, 24), (8, 216, 16), (5, 4, 32)):
            k4 = (k + 3) // 4
            a_s = rng.integers(-128, 128, (m, k)).astype(np.int8)
            w_t = rng.integers(-128, 128, (n, k)).astype(np.int8)
            bias = rng.integers(-3000, 3000, n).astype(np.float64)
            mult = (2.0 ** rng.integers(-12, -6, n)).astype(np.float32)
            a_u = np.zeros((m, k4 * 4), dtype=np.uint8)
            a_u[:, :k] = (a_s.astype(np.int16) + 128).astype(np.uint8)
            wt_pad = np.zeros((32, k4 * 4), dtype=np.int8)
            wt_pad[:n, :k] = w_t
            bp = np.ascontiguousarray(
                wt_pad.reshape(32, k4, 4).transpose(1, 0, 2)
            )
            colsum = w_t.astype(np.int64).sum(axis=1)
            bias_eff = np.zeros(32, dtype=np.float32)
            bias_eff[:n] = (bias - 128.0 * colsum).astype(np.float32)
            mult_pad = np.zeros(32, dtype=np.float32)
            mult_pad[:n] = mult
            ref = a_s.astype(np.int32) @ w_t.T.astype(np.int32)
            chain = np.rint(
                (ref.astype(np.float32) + bias.astype(np.float32)) * mult
            )
            got_g8 = np.empty((m, n), dtype=np.int8)
            kernel.gemm_requant_u8s8(
                a_u, bp, n, bias_eff, mult_pad, -128.0, 127.0, got_g8
            )
            if not np.array_equal(
                got_g8, np.clip(chain, -128, 127).astype(np.int8)
            ):
                return False
            got_g16 = np.empty((m, n), dtype=np.int16)
            kernel.gemm_requant_u8s8(
                a_u, bp, n, bias_eff, mult_pad, -32768.0, 32767.0, got_g16
            )
            if not np.array_equal(
                got_g16, np.clip(chain, -32768, 32767).astype(np.int16)
            ):
                return False
    act = np.ascontiguousarray((rng.random(300) * 8 - 4).astype(np.float32))
    want_q = np.clip(np.rint(act.astype(np.float64) * 32.0), -128, 127)
    got_q8 = np.empty(300, dtype=np.int8)
    kernel.quantize_q8(act, 32.0, -128.0, 127.0, got_q8)
    if not np.array_equal(got_q8, want_q.astype(np.int8)):
        return False
    want_q = np.clip(np.rint(act.astype(np.float64) * 4096.0), -32768, 32767)
    got_q16 = np.empty(300, dtype=np.int16)
    kernel.quantize_q16(act, 4096.0, -32768.0, 32767.0, got_q16)
    if not np.array_equal(got_q16, want_q.astype(np.int16)):
        return False
    return _check_consumer(kernel, rng)


def _cpu_identity() -> str:
    """A string that changes when the host ISA does.

    ``-march=native`` bakes the build host's instruction set into the
    binary, so a cached .so carried to a different CPU (container image,
    shared checkout) could SIGILL past every try/except.  Keying the
    cache on the CPU's advertised flags forces a recompile instead.
    """
    identity = platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("flags", "Features")):
                    identity += " " + line
                    break
    except OSError:
        identity += " " + platform.processor()
    return identity


def _compile() -> Optional[str]:
    """Compile the kernels into the on-disk cache; return the .so path."""
    tag = hashlib.sha256(
        (_SOURCE + " ".join(_CFLAGS) + _cpu_identity()).encode()
    ).hexdigest()[:16]
    cache_dir = os.path.abspath(_CACHE_DIR)
    lib_path = os.path.join(cache_dir, f"sad-{tag}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache_dir, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
            src = os.path.join(tmp, "sad.c")
            with open(src, "w") as handle:
                handle.write(_SOURCE)
            built = os.path.join(tmp, "sad.so")
            subprocess.run(
                ["cc", *_CFLAGS, "-o", built, src],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(built, lib_path)  # atomic under concurrent builds
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None


def get_kernel() -> Optional[SADKernel]:
    """The compiled kernel, or None when disabled or unavailable."""
    global _STATE
    if _STATE is None:
        _STATE = False
        disabled = (
            os.environ.get("REPRO_SAD_KERNEL", "1") == "0"
            or os.environ.get("REPRO_FORCE_NUMPY", "0") == "1"
        )
        if not disabled:
            lib_path = _compile()
            if lib_path is not None:
                try:
                    kernel = SADKernel(ctypes.CDLL(lib_path))
                except (OSError, AttributeError):
                    kernel = None
                if kernel is not None and _self_check(kernel):
                    _STATE = kernel
    return _STATE if isinstance(_STATE, SADKernel) else None


def kernel_available() -> bool:
    return get_kernel() is not None
