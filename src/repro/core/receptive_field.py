"""Receptive-field arithmetic.

Every activation value at an AMC target layer has a *receptive field*: the
region of input pixels that feeds it (paper Fig. 2). Activation motion
compensation needs three numbers describing that mapping for the chosen
prefix — the receptive field's size, stride, and padding in input-pixel
space — because:

* RFBME estimates motion at receptive-field granularity (one vector per
  target-activation coordinate), using ``stride``-sized tiles (Fig. 7);
* activation warping divides pixel-space vectors by ``stride`` to get
  activation-space vectors (the δ → δ' scaling of §II-B).

The propagation uses the standard receptive-field recurrence: composing a
layer with window ``f``, stride ``s``, padding ``p`` onto a prefix with
cumulative (size R, stride S, padding P) gives

    R' = R + (f - 1) * S
    S' = S * s
    P' = P + p * S
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["ReceptiveField", "propagate", "receptive_field_of"]


@dataclass(frozen=True)
class ReceptiveField:
    """Receptive-field geometry of one layer's outputs w.r.t. the input."""

    size: int
    stride: int
    padding: int

    def __post_init__(self):
        if self.size < 1 or self.stride < 1 or self.padding < 0:
            raise ValueError(f"invalid receptive field {self}")

    def input_origin(self, index: int) -> int:
        """Input coordinate of the top/left edge of output ``index``'s field.

        May be negative (the field starts in the padding region, Fig. 7a).
        """
        return index * self.stride - self.padding

    def input_extent(self, index: int) -> Tuple[int, int]:
        """Half-open input range [start, stop) covered by output ``index``."""
        start = self.input_origin(index)
        return start, start + self.size

    def full_tiles(self, index: int, num_tiles: int) -> Tuple[int, int]:
        """Half-open range of stride-sized tiles fully inside this field
        *and* inside the image (RFBME ignores partial and out-of-bounds
        tiles, §III-A).

        Tiles are ``stride`` x ``stride`` squares aligned to the image
        origin; ``num_tiles`` is the per-axis tile count of the image.
        """
        start, stop = self.input_extent(index)
        # First tile whose origin >= start; last tile whose end <= stop.
        first = -(-start // self.stride)  # ceil division
        last = stop // self.stride  # exclusive
        return max(first, 0), min(last, num_tiles)

    def tiles_per_field(self) -> int:
        """Number of whole tiles spanned by one receptive field per axis."""
        return self.size // self.stride


def propagate(geometries: Sequence[Tuple[int, int, int]]) -> ReceptiveField:
    """Compose per-layer (field, stride, pad) geometries into one
    :class:`ReceptiveField` for the final layer's outputs."""
    size, stride, padding = 1, 1, 0
    for field, layer_stride, pad in geometries:
        if field < 1 or layer_stride < 1 or pad < 0:
            raise ValueError(f"invalid layer geometry {(field, layer_stride, pad)}")
        size = size + (field - 1) * stride
        padding = padding + pad * stride
        stride = stride * layer_stride
    return ReceptiveField(size=size, stride=stride, padding=padding)


def receptive_field_of(network, target: str) -> ReceptiveField:
    """Receptive field of ``target`` layer's outputs in ``network``.

    ``network`` is a :class:`repro.nn.network.Network`; the prefix up to and
    including ``target`` must be spatial.
    """
    network.validate_target(target)
    geometries = [layer.geometry() for layer in network.prefix_layers(target)]
    return propagate(geometries)
