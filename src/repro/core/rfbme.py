"""Receptive Field Block Motion Estimation (RFBME) — paper §II-C1, §III-A.

RFBME is block matching at receptive-field granularity: it produces one
motion vector per *target-layer activation coordinate*, by matching that
coordinate's receptive field in the new frame against a search window in
the stored key frame.

The hardware trick (and the reason the paper's first-order model comes out
four orders of magnitude below the CNN prefix) is tile reuse: receptive
fields overlap heavily, so the image is cut into ``stride`` x ``stride``
tiles, tile-level absolute differences are computed once per (tile, search
offset) pair by the *diff tile producer*, and the *diff tile consumer*
assembles receptive-field differences from tile differences with rolling
add/subtract updates.

Two implementations are provided:

* a vectorized numpy one (default, fast), and
* a hardware-faithful producer/consumer pipeline
  (:func:`estimate_motion` with ``faithful=True``) that walks tiles and
  receptive fields exactly as Fig. 8 describes — including the past-sum
  memory, the rolling column updates, and the min-check register — and is
  cross-checked against the vectorized path in the test suite.

Both report the adder-operation counts the hardware would spend, which feed
the energy model and the §IV-A first-order comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..motion.vector_field import VectorField
from .receptive_field import ReceptiveField

__all__ = ["RFBMEConfig", "OpCounts", "RFBMEResult", "estimate_motion"]


@dataclass(frozen=True)
class RFBMEConfig:
    """Search parameters for RFBME (paper §III-A1).

    ``search_radius`` must be a multiple of ``search_stride`` so the zero
    offset is always a candidate — it is the fallback that guarantees every
    receptive field has at least one valid (fully in-bounds) match.
    """

    search_radius: int = 12
    search_stride: int = 2

    def __post_init__(self):
        if self.search_radius < 0 or self.search_stride < 1:
            raise ValueError(f"invalid RFBME config {self}")
        if self.search_radius % self.search_stride != 0:
            raise ValueError(
                "search_radius must be a multiple of search_stride so the "
                f"zero offset is searched; got {self}"
            )

    def offsets(self) -> np.ndarray:
        """1D array of per-axis search offsets (includes 0)."""
        return np.arange(-self.search_radius, self.search_radius + 1, self.search_stride)


@dataclass(frozen=True)
class OpCounts:
    """Adder operations spent by one RFBME invocation."""

    producer_adds: int
    consumer_adds: int

    @property
    def total(self) -> int:
        return self.producer_adds + self.consumer_adds


@dataclass
class RFBMEResult:
    """Output of one motion estimation between a key frame and a new frame."""

    #: backward vectors, one per target-activation coordinate, pixel units.
    field: VectorField
    #: per-receptive-field minimum match error (mean abs diff per pixel).
    match_errors: np.ndarray
    #: adder-op accounting for the hardware model.
    ops: OpCounts

    @property
    def total_match_error(self) -> float:
        """Aggregate block-match error — the key-frame-choice signal."""
        return float(self.match_errors.sum())

    @property
    def mean_match_error(self) -> float:
        return float(self.match_errors.mean()) if self.match_errors.size else 0.0


def _tile_diffs(
    key: np.ndarray,
    new: np.ndarray,
    tile: int,
    offsets: np.ndarray,
) -> np.ndarray:
    """Producer stage: absolute tile differences for every search offset.

    Returns (n_ty, n_tx, n_off, n_off) with NaN marking (tile, offset)
    pairs whose shifted window leaves the key frame (out-of-bounds
    comparisons are skipped, §III-A1).
    """
    height, width = new.shape
    n_ty, n_tx = height // tile, width // tile
    n_off = len(offsets)
    diffs = np.full((n_ty, n_tx, n_off, n_off), np.nan)

    for oi, dy in enumerate(offsets):
        y0 = max(0, -dy)
        y1 = min(height, height - dy)
        if y1 - y0 < tile:
            continue
        for oj, dx in enumerate(offsets):
            x0 = max(0, -dx)
            x1 = min(width, width - dx)
            if x1 - x0 < tile:
                continue
            absdiff = np.abs(
                new[y0:y1, x0:x1] - key[y0 + dy : y1 + dy, x0 + dx : x1 + dx]
            )
            # Tile-aligned valid region: tiles fully inside the overlap.
            ty0 = -(-y0 // tile)
            tx0 = -(-x0 // tile)
            ty1 = y1 // tile
            tx1 = x1 // tile
            if ty1 <= ty0 or tx1 <= tx0:
                continue
            region = absdiff[
                ty0 * tile - y0 : ty1 * tile - y0, tx0 * tile - x0 : tx1 * tile - x0
            ]
            sums = region.reshape(ty1 - ty0, tile, tx1 - tx0, tile).sum(axis=(1, 3))
            diffs[ty0:ty1, tx0:tx1, oi, oj] = sums
    return diffs


def _consumer_vectorized(
    diffs: np.ndarray,
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Consumer stage, vectorized with integral images over tile axes.

    Returns (field (H, W, 2), match_errors (H, W)). An offset is a valid
    candidate for a receptive field only when every constituent tile is
    valid there; the zero offset always qualifies.
    """
    n_ty, n_tx = diffs.shape[:2]
    out_h, out_w = grid_shape
    tile = rf.stride

    valid = ~np.isnan(diffs)
    filled = np.where(valid, diffs, 0.0)
    # Integral images along the two tile axes, per offset.
    cost_int = np.zeros((n_ty + 1, n_tx + 1) + diffs.shape[2:])
    cost_int[1:, 1:] = filled.cumsum(axis=0).cumsum(axis=1)
    count_int = np.zeros_like(cost_int)
    count_int[1:, 1:] = valid.astype(np.float64).cumsum(axis=0).cumsum(axis=1)

    field = np.zeros((out_h, out_w, 2))
    errors = np.zeros((out_h, out_w))
    n_off = len(offsets)

    row_ranges = [rf.full_tiles(i, n_ty) for i in range(out_h)]
    col_ranges = [rf.full_tiles(j, n_tx) for j in range(out_w)]

    for i in range(out_h):
        ty0, ty1 = row_ranges[i]
        if ty1 <= ty0:
            continue
        for j in range(out_w):
            tx0, tx1 = col_ranges[j]
            if tx1 <= tx0:
                continue
            box = lambda integral: (
                integral[ty1, tx1]
                - integral[ty0, tx1]
                - integral[ty1, tx0]
                + integral[ty0, tx0]
            )
            costs = box(cost_int)
            counts = box(count_int)
            n_tiles = (ty1 - ty0) * (tx1 - tx0)
            candidate = counts == n_tiles
            if not candidate.any():  # pragma: no cover - zero offset always valid
                continue
            costs = np.where(candidate, costs, np.inf)
            flat = int(np.argmin(costs))
            oi, oj = flat // n_off, flat % n_off
            field[i, j] = (offsets[oi], offsets[oj])
            errors[i, j] = costs[oi, oj] / (n_tiles * tile * tile)
    return field, errors


def _consumer_incremental(
    diffs: np.ndarray,
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Hardware-faithful consumer: rolling column updates + min-check.

    Walks receptive fields left to right within each row, maintaining the
    previous block sum and updating it by adding the entering tile column
    and subtracting the leaving one (Fig. 8) whenever both fields span the
    same tile rows and have equal width. Returns the field, errors, and the
    exact number of adder operations spent.
    """
    n_ty, n_tx = diffs.shape[:2]
    out_h, out_w = grid_shape
    tile = rf.stride
    n_off = len(offsets)
    field = np.zeros((out_h, out_w, 2))
    errors = np.zeros((out_h, out_w))
    adds = 0

    valid = ~np.isnan(diffs)
    filled = np.where(valid, diffs, 0.0)

    for i in range(out_h):
        ty0, ty1 = rf.full_tiles(i, n_ty)
        if ty1 <= ty0:
            continue
        prev_sum: Optional[np.ndarray] = None
        prev_count: Optional[np.ndarray] = None
        prev_range: Optional[Tuple[int, int]] = None
        for j in range(out_w):
            tx0, tx1 = rf.full_tiles(j, n_tx)
            if tx1 <= tx0:
                prev_range = None
                continue
            reusable = (
                prev_range is not None
                and prev_range[1] - prev_range[0] == tx1 - tx0
                and prev_range != (tx0, tx1)
            )
            if reusable:
                # Rolling update: add entering columns, subtract leaving.
                old_x0, old_x1 = prev_range
                entering = slice(old_x1, tx1)
                leaving = slice(old_x0, tx0)
                add_cost = filled[ty0:ty1, entering].sum(axis=(0, 1))
                add_count = valid[ty0:ty1, entering].sum(axis=(0, 1))
                sub_cost = filled[ty0:ty1, leaving].sum(axis=(0, 1))
                sub_count = valid[ty0:ty1, leaving].sum(axis=(0, 1))
                cost = prev_sum + add_cost - sub_cost
                count = prev_count + add_count - sub_count
                cols = (tx1 - old_x1) + (tx0 - old_x0)
                adds += n_off * n_off * (cols * (ty1 - ty0) + 2)
            elif prev_range == (tx0, tx1) and prev_sum is not None:
                cost, count = prev_sum, prev_count  # identical field: free
            else:
                cost = filled[ty0:ty1, tx0:tx1].sum(axis=(0, 1))
                count = valid[ty0:ty1, tx0:tx1].sum(axis=(0, 1))
                adds += n_off * n_off * (ty1 - ty0) * (tx1 - tx0)
            prev_sum, prev_count, prev_range = cost, count, (tx0, tx1)

            n_tiles = (ty1 - ty0) * (tx1 - tx0)
            candidate = count == n_tiles
            masked = np.where(candidate, cost, np.inf)
            flat = int(np.argmin(masked))
            oi, oj = flat // n_off, flat % n_off
            field[i, j] = (offsets[oi], offsets[oj])
            errors[i, j] = masked[oi, oj] / (n_tiles * tile * tile)
    return field, errors, adds


def _producer_op_count(
    diffs: np.ndarray, tile: int
) -> int:
    """Adds spent by the producer: one |a-b| + accumulate per pixel of every
    valid (tile, offset) comparison."""
    valid_pairs = int((~np.isnan(diffs)).sum())
    return valid_pairs * tile * tile


def _consumer_op_estimate(
    rf: ReceptiveField, grid_shape: Tuple[int, int], n_offsets_sq: int
) -> int:
    """Analytic consumer adds for the vectorized path (matches the paper's
    second term plus rolling updates): ~ (R/S)^2 per field per offset for
    the first field of a row, 2*(R/S) afterwards."""
    out_h, out_w = grid_shape
    tiles = rf.tiles_per_field()
    if out_w == 0 or out_h == 0:
        return 0
    per_row = tiles * tiles + max(out_w - 1, 0) * (2 * tiles + 2)
    return n_offsets_sq * out_h * per_row


def estimate_motion(
    key_frame: np.ndarray,
    new_frame: np.ndarray,
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    config: Optional[RFBMEConfig] = None,
    faithful: bool = False,
) -> RFBMEResult:
    """Run RFBME between ``key_frame`` and ``new_frame``.

    ``rf`` is the target layer's receptive field; ``grid_shape`` is the
    spatial shape of the target activation (one output vector per
    coordinate). With ``faithful=True`` the incremental producer/consumer
    pipeline is used and op counts are exact rather than analytic.
    """
    if key_frame.shape != new_frame.shape:
        raise ValueError(
            f"frame shape mismatch {key_frame.shape} vs {new_frame.shape}"
        )
    if key_frame.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {key_frame.shape}")
    if config is None:
        config = RFBMEConfig()
    tile = rf.stride
    if min(key_frame.shape) < tile:
        raise ValueError(
            f"frame {key_frame.shape} smaller than one tile ({tile})"
        )

    offsets = config.offsets()
    diffs = _tile_diffs(key_frame, new_frame, tile, offsets)
    producer_adds = _producer_op_count(diffs, tile)

    if faithful:
        field, errors, consumer_adds = _consumer_incremental(
            diffs, rf, grid_shape, offsets
        )
    else:
        field, errors = _consumer_vectorized(diffs, rf, grid_shape, offsets)
        consumer_adds = _consumer_op_estimate(rf, grid_shape, len(offsets) ** 2)

    return RFBMEResult(
        field=VectorField(field),
        match_errors=errors,
        ops=OpCounts(producer_adds=producer_adds, consumer_adds=consumer_adds),
    )
