"""Receptive Field Block Motion Estimation (RFBME) — paper §II-C1, §III-A.

RFBME is block matching at receptive-field granularity: it produces one
motion vector per *target-layer activation coordinate*, by matching that
coordinate's receptive field in the new frame against a search window in
the stored key frame.

The hardware trick (and the reason the paper's first-order model comes out
four orders of magnitude below the CNN prefix) is tile reuse: receptive
fields overlap heavily, so the image is cut into ``stride`` x ``stride``
tiles, tile-level absolute differences are computed once per (tile, search
offset) pair by the *diff tile producer*, and the *diff tile consumer*
assembles receptive-field differences from tile differences with rolling
add/subtract updates.

Four host implementations ("backends") are provided, all reporting the
same adder-operation counts for the hardware energy model:

* ``"batched"`` — fully vectorized NumPy: the producer walks the search
  offsets with strided tile views and a preallocated scratch block, the
  consumer uses integral images over the tile axes with no per-field
  Python loop.  Handles stacks of frame pairs in one call
  (:func:`estimate_motion_batch`), which the runtime layer uses to run
  many clips in lockstep.
* ``"kernel"`` — the batched consumer fed by an optional compiled
  producer (:mod:`repro.core.sad_kernel`) that fuses subtract/abs/reduce
  into one pass.  Bit-identical to ``"batched"`` (enforced by a load-time
  self-check) and used automatically when available.
* ``"loop"`` — the reference implementation: one Python iteration per
  search offset in the producer and per receptive field in the consumer.
  The vectorized backends are regression-tested to match it *bit for
  bit* — same match errors, fields, and op counts.
* ``"faithful"`` (``faithful=True``) — the hardware producer/consumer
  pipeline that walks tiles and receptive fields exactly as Fig. 8
  describes — including the past-sum memory, the rolling column updates,
  and the min-check register — with exact rather than analytic op counts.

All tile sums share one canonical summation order (sequential per tile
column, then numpy's pairwise combine of the column sums) so that backend
choice never changes a single output bit.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..motion.vector_field import VectorField
from .receptive_field import ReceptiveField
from .sad_kernel import get_kernel, producer_bounds

__all__ = [
    "RFBMEConfig",
    "OpCounts",
    "RFBMEResult",
    "RFBMEEngine",
    "estimate_motion",
    "estimate_motion_batch",
    "default_backend",
    "PROFILES",
]

#: Non-faithful backend names, in preference order.
BACKENDS = ("kernel", "batched", "loop")

#: Host-tuning profiles for the vectorized backends.  ``"fast"`` is the
#: current hot path: grid-major producer output feeding a preallocated
#: consumer workspace.  ``"pr1"`` preserves the previous release's host
#: execution (offset-major producer, per-call consumer allocations) as a
#: measurable baseline for the runtime benchmarks.  Results are
#: bit-identical across profiles; only wall-clock time differs.
PROFILES = ("fast", "pr1")


@dataclass(frozen=True)
class RFBMEConfig:
    """Search parameters for RFBME (paper §III-A1).

    ``search_radius`` must be a multiple of ``search_stride`` so the zero
    offset is always a candidate — it is the fallback that guarantees every
    receptive field has at least one valid (fully in-bounds) match.
    """

    search_radius: int = 12
    search_stride: int = 2

    def __post_init__(self):
        if self.search_radius < 0 or self.search_stride < 1:
            raise ValueError(f"invalid RFBME config {self}")
        if self.search_radius % self.search_stride != 0:
            raise ValueError(
                "search_radius must be a multiple of search_stride so the "
                f"zero offset is searched; got {self}"
            )

    def offsets(self) -> np.ndarray:
        """1D array of per-axis search offsets (includes 0)."""
        return np.arange(-self.search_radius, self.search_radius + 1, self.search_stride)


@dataclass(frozen=True)
class OpCounts:
    """Adder operations spent by one RFBME invocation."""

    producer_adds: int
    consumer_adds: int

    @property
    def total(self) -> int:
        return self.producer_adds + self.consumer_adds


@dataclass
class RFBMEResult:
    """Output of one motion estimation between a key frame and a new frame."""

    #: backward vectors, one per target-activation coordinate, pixel units.
    field: VectorField
    #: per-receptive-field minimum match error (mean abs diff per pixel).
    match_errors: np.ndarray
    #: adder-op accounting for the hardware model.
    ops: OpCounts

    @property
    def total_match_error(self) -> float:
        """Aggregate block-match error — the key-frame-choice signal."""
        return float(self.match_errors.sum())

    @property
    def mean_match_error(self) -> float:
        return float(self.match_errors.mean()) if self.match_errors.size else 0.0


def default_backend() -> str:
    """The fastest backend available on this host."""
    return "kernel" if get_kernel() is not None else "batched"


# --------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------- #
def _tile_sums(blocks: np.ndarray) -> np.ndarray:
    """Canonical tile reduction: blocks (..., tile, tile) -> (...).

    Sequential accumulation down each tile column, then numpy's pairwise
    combine of the column sums.  Every backend — including the C kernel —
    reproduces exactly this order, which is what makes backends
    bit-interchangeable.
    """
    return blocks.sum(axis=-2).sum(axis=-1)


def _valid_tiles(
    height: int, width: int, tile: int, offsets: np.ndarray
) -> np.ndarray:
    """(n_off, n_off, n_ty, n_tx) mask: tile fully inside the overlap of
    the shifted key frame, i.e. the comparison never reads out of bounds
    (out-of-bounds candidates are skipped, §III-A1)."""
    n_ty, n_tx = height // tile, width // tile

    def axis_ok(extent: int, count: int) -> np.ndarray:
        lo = np.maximum(0, -offsets)
        hi = np.minimum(extent, extent - offsets)
        first = -(-lo // tile)
        last = hi // tile
        index = np.arange(count)
        return (index[None, :] >= first[:, None]) & (index[None, :] < last[:, None])

    row_ok = axis_ok(height, n_ty)
    col_ok = axis_ok(width, n_tx)
    return row_ok[:, None, :, None] & col_ok[None, :, None, :]


# --------------------------------------------------------------------- #
# Producer backends
# --------------------------------------------------------------------- #
def _tile_diffs_loop(
    key: np.ndarray,
    new: np.ndarray,
    tile: int,
    offsets: np.ndarray,
) -> np.ndarray:
    """Reference producer: one Python iteration per search offset.

    Returns (n_ty, n_tx, n_off, n_off) with NaN marking (tile, offset)
    pairs whose shifted window leaves the key frame.
    """
    height, width = new.shape
    n_ty, n_tx = height // tile, width // tile
    n_off = len(offsets)
    diffs = np.full((n_ty, n_tx, n_off, n_off), np.nan)

    for oi, dy in enumerate(offsets):
        y0 = max(0, -dy)
        y1 = min(height, height - dy)
        if y1 - y0 < tile:
            continue
        for oj, dx in enumerate(offsets):
            x0 = max(0, -dx)
            x1 = min(width, width - dx)
            if x1 - x0 < tile:
                continue
            absdiff = np.abs(
                new[y0:y1, x0:x1] - key[y0 + dy : y1 + dy, x0 + dx : x1 + dx]
            )
            # Tile-aligned valid region: tiles fully inside the overlap.
            ty0 = -(-y0 // tile)
            tx0 = -(-x0 // tile)
            ty1 = y1 // tile
            tx1 = x1 // tile
            if ty1 <= ty0 or tx1 <= tx0:
                continue
            region = absdiff[
                ty0 * tile - y0 : ty1 * tile - y0, tx0 * tile - x0 : tx1 * tile - x0
            ]
            blocks = np.ascontiguousarray(
                region.reshape(ty1 - ty0, tile, tx1 - tx0, tile).transpose(0, 2, 1, 3)
            )
            diffs[ty0:ty1, tx0:tx1, oi, oj] = _tile_sums(blocks)
    return diffs


class _ProducerWorkspace:
    """Preallocated buffers for the vectorized producers.

    Reused across frames by :class:`RFBMEEngine` so the hot path never
    touches the allocator; one workspace serves one (frame shape, config)
    pair.
    """

    def __init__(self, shape: Tuple[int, int], tile: int, offsets: np.ndarray):
        height, width = shape
        self.shape = shape
        self.tile = tile
        self.offsets = offsets
        self.radius = int(offsets[-1]) if len(offsets) else 0
        self.n_ty, self.n_tx = height // tile, width // tile
        self.pad = np.zeros((height + 2 * self.radius, width + 2 * self.radius))
        self._scratch: Optional[np.ndarray] = None

    @property
    def scratch(self) -> np.ndarray:
        """Scratch for one dy-row of absolute differences; sized to stay
        cache-resident rather than streaming a full offset cube.

        Allocated on first use: kernel-backend engines share this
        workspace for its pad buffer but never run the NumPy producer.
        """
        if self._scratch is None:
            n_off = len(self.offsets)
            self._scratch = np.empty(
                (n_off, self.n_ty * self.tile, self.n_tx * self.tile)
            )
        return self._scratch

    def load_key(self, key: np.ndarray) -> None:
        radius = self.radius
        if radius:
            self.pad[radius:-radius, radius:-radius] = key
        else:
            self.pad[:, :] = key


def _tile_diffs_batched(
    ws: _ProducerWorkspace, new: np.ndarray, out: np.ndarray
) -> None:
    """Vectorized producer: strided shift views + scratch-row reduction.

    For each vertical offset ``dy`` a single strided view exposes the key
    frame under every horizontal offset at once; one subtract/abs pass
    into a cache-resident scratch block and a two-step reduction (rows
    within a tile, then the canonical pairwise combine across tile
    columns) produce that whole dy-row of tile differences.  Fills ``out``
    (n_off, n_off, n_ty, n_tx); out-of-bounds entries hold padding junk
    and are masked by the engine's precomputed validity.
    """
    tile, offsets, radius = ws.tile, ws.offsets, ws.radius
    n_off = len(offsets)
    crop_h, crop_w = ws.n_ty * tile, ws.n_tx * tile
    pad = ws.pad
    s0, s1 = pad.strides
    crop = new[:crop_h, :crop_w]
    step = int(offsets[1] - offsets[0]) if n_off > 1 else 1
    for oi, dy in enumerate(offsets):
        # key_rows[oj, y, x] = pad[radius+dy+y, radius+offsets[oj]+x]
        key_rows = as_strided(
            pad[radius + dy :, :],
            shape=(n_off, crop_h, crop_w),
            strides=(step * s1, s0, s1),
        )
        np.subtract(crop[None], key_rows, out=ws.scratch)
        np.abs(ws.scratch, out=ws.scratch)
        blocks = ws.scratch.reshape(n_off, ws.n_ty, tile, ws.n_tx, tile)
        # sum rows within each tile (sequential), then the canonical
        # pairwise combine across the tile's column sums — the same
        # association as _tile_sums.
        out[oi] = blocks.sum(axis=2).sum(axis=-1)


def _tile_diffs_kernel(
    ws: _ProducerWorkspace, new: np.ndarray, out: np.ndarray
) -> None:
    """Compiled producer: one fused C pass over all (tile, offset) pairs."""
    kernel = get_kernel()
    cur = np.ascontiguousarray(new)
    kernel.tile_sads(ws.pad, cur, ws.tile, ws.offsets, ws.radius, out)


def _tile_diffs_batched_grid(
    ws: _ProducerWorkspace, new: np.ndarray, out: np.ndarray
) -> None:
    """Grid-major variant of :func:`_tile_diffs_batched`.

    Fills ``out`` (n_ty, n_tx, n_off, n_off) — the consumer workspace's
    native layout — with the same bit-exact tile sums; only the store
    pattern differs.
    """
    tile, offsets, radius = ws.tile, ws.offsets, ws.radius
    n_off = len(offsets)
    crop_h, crop_w = ws.n_ty * tile, ws.n_tx * tile
    pad = ws.pad
    s0, s1 = pad.strides
    crop = new[:crop_h, :crop_w]
    step = int(offsets[1] - offsets[0]) if n_off > 1 else 1
    for oi, dy in enumerate(offsets):
        key_rows = as_strided(
            pad[radius + dy :, :],
            shape=(n_off, crop_h, crop_w),
            strides=(step * s1, s0, s1),
        )
        np.subtract(crop[None], key_rows, out=ws.scratch)
        np.abs(ws.scratch, out=ws.scratch)
        blocks = ws.scratch.reshape(n_off, ws.n_ty, tile, ws.n_tx, tile)
        # (n_off_j, n_ty, n_tx) -> out[ty, tx, oi, oj]
        out[:, :, oi, :] = blocks.sum(axis=2).sum(axis=-1).transpose(1, 2, 0)


class _ConsumerWorkspace:
    """Preallocated buffers for the fast consumer path.

    One workspace serves one engine; ``ensure`` grows it to the largest
    lockstep batch seen so repeated :meth:`RFBMEEngine.estimate_batch`
    calls never touch the allocator.  ``sums`` doubles as the producer's
    output buffer (grid-major, so the consumer reads it without a
    transpose) and is zeroed at invalid (tile, offset) entries in place.
    """

    def __init__(self):
        self.capacity = 0
        self._kernel_ready = 0
        self._numpy_ready = 0

    def ensure(self, batch: int, n_ty: int, n_tx: int, n_off: int) -> None:
        if batch <= self.capacity:
            return
        self.capacity = batch
        self._dims = (n_ty, n_tx, n_off)
        self.sums = np.zeros((batch, n_ty, n_tx, n_off, n_off))

    def ensure_kernel(
        self, batch: int, frame_shape: Tuple[int, int], radius: int
    ) -> None:
        """Staging only the compiled producer/consumer touch.

        Allocated lazily so the NumPy 'batched' backend never pays for
        the kernel's stacked frame copies or integral-image plane.
        """
        if batch <= self._kernel_ready:
            return
        self._kernel_ready = batch = max(batch, self.capacity)
        n_ty, n_tx, n_off = self._dims
        height, width = frame_shape
        # Stacked producer inputs for the one-call batched kernel; pad
        # borders are written once and only interiors change per step.
        self.pads = np.zeros(
            (batch, height + 2 * radius, width + 2 * radius)
        )
        self.curs = np.empty((batch, height, width))
        # One integral-image plane, reused across the batch by the
        # compiled consumer.
        self.ci_scratch = np.empty((n_ty + 1) * (n_tx + 1) * n_off * n_off)

    def ensure_numpy(self, batch: int, n_fields: int) -> None:
        """Buffers only the NumPy fallback consumer needs."""
        if batch <= self._numpy_ready:
            return
        self._numpy_ready = batch = max(batch, self.capacity)
        n_ty, n_tx, n_off = self._dims
        self.cost_int = np.zeros((batch, n_ty + 1, n_tx + 1, n_off, n_off))
        self.costs = np.empty((batch, n_fields, n_off * n_off))
        # Non-candidate entries must read +inf in the argmin; they are
        # written once here and never touched again (the candidate set is
        # pure geometry).
        self.masked = np.full((batch, n_fields, n_off * n_off), np.inf)


def _producer_op_count(diffs: np.ndarray, tile: int) -> int:
    """Adds spent by the producer: one |a-b| + accumulate per pixel of every
    valid (tile, offset) comparison."""
    valid_pairs = int((~np.isnan(diffs)).sum())
    return valid_pairs * tile * tile


# --------------------------------------------------------------------- #
# Consumer backends
# --------------------------------------------------------------------- #
def _field_ranges(
    rf: ReceptiveField, grid_shape: Tuple[int, int], n_ty: int, n_tx: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-output-coordinate half-open tile ranges, (out_h, 2) and (out_w, 2)."""
    out_h, out_w = grid_shape
    rows = np.array([rf.full_tiles(i, n_ty) for i in range(out_h)]).reshape(out_h, 2)
    cols = np.array([rf.full_tiles(j, n_tx) for j in range(out_w)]).reshape(out_w, 2)
    return rows, cols


def _consumer_loop(
    diffs: np.ndarray,
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference consumer: integral images over tile axes, one Python
    iteration per receptive field.

    Returns (field (H, W, 2), match_errors (H, W)). An offset is a valid
    candidate for a receptive field only when every constituent tile is
    valid there; the zero offset always qualifies.
    """
    n_ty, n_tx = diffs.shape[:2]
    out_h, out_w = grid_shape
    tile = rf.stride

    valid = ~np.isnan(diffs)
    filled = np.where(valid, diffs, 0.0)
    # Integral images along the two tile axes, per offset.
    cost_int = np.zeros((n_ty + 1, n_tx + 1) + diffs.shape[2:])
    cost_int[1:, 1:] = filled.cumsum(axis=0).cumsum(axis=1)
    count_int = np.zeros_like(cost_int)
    count_int[1:, 1:] = valid.astype(np.float64).cumsum(axis=0).cumsum(axis=1)

    field = np.zeros((out_h, out_w, 2))
    errors = np.zeros((out_h, out_w))
    n_off = len(offsets)

    row_ranges, col_ranges = _field_ranges(rf, grid_shape, n_ty, n_tx)

    for i in range(out_h):
        ty0, ty1 = row_ranges[i]
        if ty1 <= ty0:
            continue
        for j in range(out_w):
            tx0, tx1 = col_ranges[j]
            if tx1 <= tx0:
                continue
            def box(integral, ty0=ty0, ty1=ty1, tx0=tx0, tx1=tx1):
                return (
                    integral[ty1, tx1]
                    - integral[ty0, tx1]
                    - integral[ty1, tx0]
                    + integral[ty0, tx0]
                )
            costs = box(cost_int)
            counts = box(count_int)
            n_tiles = (ty1 - ty0) * (tx1 - tx0)
            candidate = counts == n_tiles
            if not candidate.any():  # pragma: no cover - zero offset always valid
                continue
            costs = np.where(candidate, costs, np.inf)
            flat = int(np.argmin(costs))
            oi, oj = flat // n_off, flat % n_off
            field[i, j] = (offsets[oi], offsets[oj])
            errors[i, j] = costs[oi, oj] / (n_tiles * tile * tile)
    return field, errors


def _consumer_incremental(
    diffs: np.ndarray,
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Hardware-faithful consumer: rolling column updates + min-check.

    Walks receptive fields left to right within each row, maintaining the
    previous block sum and updating it by adding the entering tile column
    and subtracting the leaving one (Fig. 8) whenever both fields span the
    same tile rows and have equal width. Returns the field, errors, and the
    exact number of adder operations spent.
    """
    n_ty, n_tx = diffs.shape[:2]
    out_h, out_w = grid_shape
    tile = rf.stride
    n_off = len(offsets)
    field = np.zeros((out_h, out_w, 2))
    errors = np.zeros((out_h, out_w))
    adds = 0

    valid = ~np.isnan(diffs)
    filled = np.where(valid, diffs, 0.0)

    for i in range(out_h):
        ty0, ty1 = rf.full_tiles(i, n_ty)
        if ty1 <= ty0:
            continue
        prev_sum: Optional[np.ndarray] = None
        prev_count: Optional[np.ndarray] = None
        prev_range: Optional[Tuple[int, int]] = None
        for j in range(out_w):
            tx0, tx1 = rf.full_tiles(j, n_tx)
            if tx1 <= tx0:
                prev_range = None
                continue
            reusable = (
                prev_range is not None
                and prev_range[1] - prev_range[0] == tx1 - tx0
                and prev_range != (tx0, tx1)
            )
            if reusable:
                # Rolling update: add entering columns, subtract leaving.
                old_x0, old_x1 = prev_range
                entering = slice(old_x1, tx1)
                leaving = slice(old_x0, tx0)
                add_cost = filled[ty0:ty1, entering].sum(axis=(0, 1))
                add_count = valid[ty0:ty1, entering].sum(axis=(0, 1))
                sub_cost = filled[ty0:ty1, leaving].sum(axis=(0, 1))
                sub_count = valid[ty0:ty1, leaving].sum(axis=(0, 1))
                cost = prev_sum + add_cost - sub_cost
                count = prev_count + add_count - sub_count
                cols = (tx1 - old_x1) + (tx0 - old_x0)
                adds += n_off * n_off * (cols * (ty1 - ty0) + 2)
            elif prev_range == (tx0, tx1) and prev_sum is not None:
                cost, count = prev_sum, prev_count  # identical field: free
            else:
                cost = filled[ty0:ty1, tx0:tx1].sum(axis=(0, 1))
                count = valid[ty0:ty1, tx0:tx1].sum(axis=(0, 1))
                adds += n_off * n_off * (ty1 - ty0) * (tx1 - tx0)
            prev_sum, prev_count, prev_range = cost, count, (tx0, tx1)

            n_tiles = (ty1 - ty0) * (tx1 - tx0)
            candidate = count == n_tiles
            masked = np.where(candidate, cost, np.inf)
            flat = int(np.argmin(masked))
            oi, oj = flat // n_off, flat % n_off
            field[i, j] = (offsets[oi], offsets[oj])
            errors[i, j] = masked[oi, oj] / (n_tiles * tile * tile)
    return field, errors, adds


def _consumer_op_estimate(
    rf: ReceptiveField, grid_shape: Tuple[int, int], n_offsets_sq: int
) -> int:
    """Analytic consumer adds for the non-faithful paths (matches the
    paper's second term plus rolling updates): ~ (R/S)^2 per field per
    offset for the first field of a row, 2*(R/S) afterwards."""
    out_h, out_w = grid_shape
    tiles = rf.tiles_per_field()
    if out_w == 0 or out_h == 0:
        return 0
    per_row = tiles * tiles + max(out_w - 1, 0) * (2 * tiles + 2)
    return n_offsets_sq * out_h * per_row


# --------------------------------------------------------------------- #
# Engine and public entry points
# --------------------------------------------------------------------- #
def _validate_pair(
    key_frame: np.ndarray, new_frame: np.ndarray, tile: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a frame pair and coerce it to float64.

    All backends compute in float64 (the compiled kernel reinterprets raw
    buffers, and bit-identity across backends is only defined for one
    dtype), so other dtypes are converted up front — a no-op for the
    video substrate's native float64 frames.
    """
    key_frame = np.asarray(key_frame)
    new_frame = np.asarray(new_frame)
    if key_frame.shape != new_frame.shape:
        raise ValueError(
            f"frame shape mismatch {key_frame.shape} vs {new_frame.shape}"
        )
    if key_frame.ndim != 2:
        raise ValueError(f"frames must be 2D grayscale, got {key_frame.shape}")
    if min(key_frame.shape) < tile:
        raise ValueError(
            f"frame {key_frame.shape} smaller than one tile ({tile})"
        )
    if key_frame.dtype != np.float64:
        key_frame = key_frame.astype(np.float64)
    if new_frame.dtype != np.float64:
        new_frame = new_frame.astype(np.float64)
    return key_frame, new_frame


class RFBMEEngine:
    """Reusable RFBME evaluator bound to one (frame shape, target, config).

    Owns the preallocated producer workspace and every geometry-derived
    constant of the consumer — validity masks, candidate sets, field tile
    ranges, error denominators, op counts — none of which depend on frame
    content.  Repeated calls, the per-frame hot path of
    :class:`~repro.core.pipeline.EVA2Pipeline` and the lockstep batches of
    :class:`~repro.runtime.BatchedPipeline`, therefore spend their time on
    actual pixel math.  All backends produce bit-identical results;
    ``backend`` mainly exists for benchmarking and regression tests.
    """

    def __init__(
        self,
        frame_shape: Tuple[int, int],
        rf: ReceptiveField,
        grid_shape: Tuple[int, int],
        config: Optional[RFBMEConfig] = None,
        backend: Optional[str] = None,
        profile: str = "fast",
    ):
        if profile not in PROFILES:
            raise ValueError(
                f"profile must be one of {PROFILES}, got {profile!r}"
            )
        self.profile = profile
        self.config = config or RFBMEConfig()
        self.rf = rf
        self.grid_shape = grid_shape
        self.frame_shape = tuple(frame_shape)
        requested = backend
        if backend is None:
            backend = default_backend()
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if backend == "kernel":
            kernel = get_kernel()
            if kernel is None or not kernel.supports(rf.stride):
                backend = "batched"
                if requested == "kernel":
                    # Results are bit-identical either way, but anyone
                    # explicitly benchmarking "kernel" should know they
                    # are measuring the NumPy path.
                    warnings.warn(
                        "compiled SAD kernel unavailable for this "
                        "configuration; falling back to the 'batched' "
                        "backend (results are identical)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        self.backend = backend
        self._offsets = self.config.offsets()
        height, width = frame_shape
        tile = rf.stride
        self._n_ty, self._n_tx = height // tile, width // tile
        self._workspace = (
            _ProducerWorkspace(frame_shape, tile, self._offsets)
            if backend != "loop"
            else None
        )
        self._consumer_ops = _consumer_op_estimate(
            rf, grid_shape, len(self._offsets) ** 2
        )
        self._cws = _ConsumerWorkspace()
        if self.backend != "loop":
            # The loop path derives validity from its NaN-marked diffs and
            # never touches the precomputed consumer geometry.
            self._precompute_geometry(height, width, tile)

    def _precompute_geometry(self, height: int, width: int, tile: int) -> None:
        """Constants of the consumer that depend only on geometry.

        Mirrors exactly the per-frame arithmetic of :func:`_consumer_loop`
        over the validity mask (the count integral image, candidate test,
        and per-field tile counts), so the fast path can skip recomputing
        them for every frame without changing a bit of output.
        """
        offsets = self._offsets
        n_ty, n_tx, n_off = self._n_ty, self._n_tx, len(offsets)
        out_h, out_w = self.grid_shape
        valid = _valid_tiles(height, width, tile, offsets)
        # (n_ty, n_tx, n_off, n_off), the consumer's native layout.
        self._valid = np.moveaxis(valid, (0, 1), (2, 3)).copy()
        self._producer_adds = int(valid.sum()) * tile * tile

        count_int = np.zeros((n_ty + 1, n_tx + 1, n_off, n_off))
        count_int[1:, 1:] = (
            self._valid.astype(np.float64).cumsum(axis=0).cumsum(axis=1)
        )
        rows, cols = _field_ranges(self.rf, self.grid_shape, n_ty, n_tx)
        ty0, ty1 = rows[:, 0], rows[:, 1]
        tx0, tx1 = cols[:, 0], cols[:, 1]
        self._ty0, self._ty1, self._tx0, self._tx1 = ty0, ty1, tx0, tx1
        counts = (
            count_int[ty1[:, None], tx1[None, :]]
            - count_int[ty0[:, None], tx1[None, :]]
            - count_int[ty1[:, None], tx0[None, :]]
            + count_int[ty0[:, None], tx0[None, :]]
        )
        n_tiles = (ty1 - ty0)[:, None] * (tx1 - tx0)[None, :]  # (out_h, out_w)
        #: offsets fully in-bounds for each receptive field.
        self._candidate = counts == n_tiles[:, :, None, None]
        cell_ok = (ty1 > ty0)[:, None] & (tx1 > tx0)[None, :]
        #: fields with a nonempty tile range and at least one candidate.
        self._ok = cell_ok & self._candidate.reshape(out_h, out_w, -1).any(axis=2)
        denom = (n_tiles * tile * tile).astype(np.float64)
        self._denom = np.where(self._ok, denom, 1.0)

        # Fast-consumer constants: flat positions of the invalid producer
        # entries (zeroed in place each call) and the four integral-image
        # corners of every receptive field as flat gather indices into
        # cost_int's (n_ty+1)*(n_tx+1) tile plane.
        self._invalid_flat = np.flatnonzero(~self._valid)
        def corner(ty, tx):
            return (ty[:, None] * (n_tx + 1) + tx[None, :]).ravel()

        self._idx_corners = np.concatenate(
            [corner(ty1, tx1), corner(ty0, tx1), corner(ty1, tx0), corner(ty0, tx0)]
        )
        self._cand_flat = np.ascontiguousarray(
            self._candidate.reshape(out_h * out_w, n_off * n_off)
        )
        # Compiled-consumer constants (uint8 masks, int64 ranges) and the
        # producer's valid offset windows.
        self._valid_u8 = np.ascontiguousarray(self._valid, dtype=np.uint8)
        self._cand_u8 = np.ascontiguousarray(self._cand_flat, dtype=np.uint8)
        self._ok_u8 = np.ascontiguousarray(self._ok.reshape(-1), dtype=np.uint8)
        self._denom_flat = np.ascontiguousarray(self._denom.reshape(-1))
        def as_i64(a):
            return np.ascontiguousarray(a, dtype=np.int64)

        self._row_ranges = (as_i64(ty0), as_i64(ty1))
        self._col_ranges = (as_i64(tx0), as_i64(tx1))
        self._prod_bounds = producer_bounds(
            (height, width), tile, self._offsets
        )

    # ------------------------------------------------------------------ #
    def _compute_sums(
        self, key: np.ndarray, new: np.ndarray, out: np.ndarray
    ) -> None:
        """PR1 producer dispatch: tile SADs into ``out`` (n_off, n_off, ...)."""
        self._workspace.load_key(key)
        if self.backend == "kernel":
            _tile_diffs_kernel(self._workspace, new, out)
        else:
            _tile_diffs_batched(self._workspace, new, out)

    def _consumer_fast(self, batch: int) -> Tuple[np.ndarray, np.ndarray]:
        """Workspace consumer over the producer outputs in ``_cws.sums``.

        Performs the same integral-image box sums, candidate masking, and
        argmin as :func:`_consumer_loop` — bit-identical results — but
        against preallocated buffers: invalid entries are zeroed in place,
        the integral images accumulate into a persistent block, box sums
        gather through precomputed flat corner indices, and non-candidate
        costs stay +inf from allocation time.  Returns fields
        (B, out_h, out_w, 2) and errors (B, out_h, out_w).
        """
        ws = self._cws
        n_ty, n_tx = self._n_ty, self._n_tx
        out_h, out_w = self.grid_shape
        n_off = len(self._offsets)

        filled = ws.sums[:batch]
        filled.reshape(batch, -1)[:, self._invalid_flat] = 0.0
        ci = ws.cost_int[:batch]
        interior = ci[:, 1:, 1:]
        # Integral images as explicit slice adds: the same left-to-right
        # accumulation np.cumsum performs (bit-identical), but each pass
        # is one large vectorised add instead of cumsum's generic
        # strided inner loop.
        np.copyto(interior, filled)
        for ty in range(1, n_ty):
            np.add(interior[:, ty], interior[:, ty - 1], out=interior[:, ty])
        for tx in range(1, n_tx):
            np.add(
                interior[:, :, tx], interior[:, :, tx - 1],
                out=interior[:, :, tx],
            )

        flat_ci = ci.reshape(batch, (n_ty + 1) * (n_tx + 1), n_off * n_off)
        costs = ws.costs[:batch]
        # One fused gather of all four box corners, then
        # ((A - B) - C) + D — the loop consumer's box-sum order.
        g = flat_ci[:, self._idx_corners].reshape(
            batch, 4, -1, n_off * n_off
        )
        np.subtract(g[:, 0], g[:, 1], out=costs)
        np.subtract(costs, g[:, 2], out=costs)
        np.add(costs, g[:, 3], out=costs)

        masked = ws.masked[:batch]
        np.copyto(masked, costs, where=self._cand_flat[None])
        best = masked.argmin(axis=2)
        chosen = np.take_along_axis(masked, best[:, :, None], axis=2)[..., 0]
        oi, oj = best // n_off, best % n_off

        ok = self._ok.reshape(-1)
        fields = np.empty((batch, out_h, out_w, 2))
        fields[..., 0] = np.where(ok, self._offsets[oi], 0.0).reshape(
            batch, out_h, out_w
        )
        fields[..., 1] = np.where(ok, self._offsets[oj], 0.0).reshape(
            batch, out_h, out_w
        )
        errors = np.where(ok, chosen / self._denom.reshape(-1), 0.0).reshape(
            batch, out_h, out_w
        )
        return fields, errors

    def _consumer_pr1(
        self, sums: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """PR1 consumer over a stack of producer outputs.

        ``sums`` is (B, n_off, n_off, n_ty, n_tx) raw tile SADs; returns
        fields (B, out_h, out_w, 2) and errors (B, out_h, out_w).
        Performs the same integral-image box sums, candidate masking, and
        argmin as :func:`_consumer_loop`, elementwise across the whole
        grid and batch at once — bit-identical results, no per-field
        Python loop.  Kept (with its per-call allocations) as the
        measurable ``"pr1"`` host profile.
        """
        batch = sums.shape[0]
        n_ty, n_tx = self._n_ty, self._n_tx
        out_h, out_w = self.grid_shape
        n_off = len(self._offsets)
        ty0, ty1, tx0, tx1 = self._ty0, self._ty1, self._tx0, self._tx1

        stack = sums.transpose(0, 3, 4, 1, 2)  # (B, n_ty, n_tx, n_off, n_off)
        filled = np.where(self._valid[None], stack, 0.0)
        cost_int = np.zeros((batch, n_ty + 1, n_tx + 1, n_off, n_off))
        cost_int[:, 1:, 1:] = filled.cumsum(axis=1).cumsum(axis=2)
        costs = (
            cost_int[:, ty1[:, None], tx1[None, :]]
            - cost_int[:, ty0[:, None], tx1[None, :]]
            - cost_int[:, ty1[:, None], tx0[None, :]]
            + cost_int[:, ty0[:, None], tx0[None, :]]
        )  # (B, out_h, out_w, n_off, n_off)
        masked = np.where(self._candidate[None], costs, np.inf)
        flat = masked.reshape(batch, out_h, out_w, n_off * n_off)
        best = flat.argmin(axis=3)
        oi, oj = best // n_off, best % n_off
        chosen = np.take_along_axis(flat, best[..., None], axis=3)[..., 0]

        fields = np.empty((batch, out_h, out_w, 2))
        fields[..., 0] = np.where(self._ok[None], self._offsets[oi], 0.0)
        fields[..., 1] = np.where(self._ok[None], self._offsets[oj], 0.0)
        errors = np.where(self._ok[None], chosen / self._denom[None], 0.0)
        return fields, errors

    def _package(self, field: np.ndarray, errors: np.ndarray) -> RFBMEResult:
        return RFBMEResult(
            field=VectorField(field),
            match_errors=errors,
            ops=OpCounts(
                producer_adds=self._producer_adds,
                consumer_adds=self._consumer_ops,
            ),
        )

    def estimate(self, key: np.ndarray, new: np.ndarray) -> RFBMEResult:
        """RFBME between one key frame and one new frame."""
        return self.estimate_batch([(key, new)])[0]

    def estimate_batch(
        self, pairs: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> List[RFBMEResult]:
        """RFBME for many (key, new) pairs in lockstep.

        Bit-identical to calling :meth:`estimate` per pair; the producer
        reuses one scratch workspace across items and the consumer handles
        the whole stack in a single vectorized pass.
        """
        if not pairs:
            return []
        pairs = [
            _validate_pair(key, new, self.rf.stride) for key, new in pairs
        ]
        for key, _ in pairs:
            # Workspace buffers and precomputed geometry are bound to one
            # frame shape; reject others identically on every backend.
            if key.shape != self.frame_shape:
                raise ValueError(
                    f"engine is bound to frames of shape {self.frame_shape}, "
                    f"got {key.shape}"
                )
        if self.backend == "loop":
            results = []
            for key, new in pairs:
                diffs = _tile_diffs_loop(key, new, self.rf.stride, self._offsets)
                field, errors = _consumer_loop(
                    diffs, self.rf, self.grid_shape, self._offsets
                )
                results.append(
                    RFBMEResult(
                        field=VectorField(field),
                        match_errors=errors,
                        ops=OpCounts(
                            producer_adds=_producer_op_count(
                                diffs, self.rf.stride
                            ),
                            consumer_adds=self._consumer_ops,
                        ),
                    )
                )
            return results
        n_off = len(self._offsets)
        if self.profile == "pr1":
            sums = np.empty((len(pairs), n_off, n_off, self._n_ty, self._n_tx))
            for i, (key, new) in enumerate(pairs):
                self._compute_sums(key, new, sums[i])
            fields, errors = self._consumer_pr1(sums)
        else:
            batch = len(pairs)
            ws = self._cws
            radius = self._workspace.radius
            ws.ensure(batch, self._n_ty, self._n_tx, n_off)
            if self.backend == "kernel":
                kernel = get_kernel()
                height, width = self.frame_shape
                ws.ensure_kernel(batch, self.frame_shape, radius)
                for i, (key, new) in enumerate(pairs):
                    ws.pads[i, radius : radius + height, radius : radius + width] = key
                    ws.curs[i] = new
                kernel.tile_sads_grid_batch(
                    ws.pads[:batch], ws.curs[:batch], self._workspace.tile,
                    self._offsets, radius, self._prod_bounds, ws.sums[:batch],
                )
                out_h, out_w = self.grid_shape
                fields = np.empty((batch, out_h, out_w, 2))
                errors = np.empty((batch, out_h, out_w))
                kernel.consume(
                    ws.sums[:batch], self._valid_u8, ws.ci_scratch,
                    self._row_ranges, self._col_ranges,
                    self._cand_u8, self._ok_u8, self._denom_flat,
                    self._offsets, n_off, fields, errors,
                )
            else:
                for i, (key, new) in enumerate(pairs):
                    self._workspace.load_key(key)
                    _tile_diffs_batched_grid(self._workspace, new, ws.sums[i])
                ws.ensure_numpy(
                    batch, self.grid_shape[0] * self.grid_shape[1]
                )
                fields, errors = self._consumer_fast(batch)
        return [
            self._package(fields[i], errors[i]) for i in range(len(pairs))
        ]


def estimate_motion(
    key_frame: np.ndarray,
    new_frame: np.ndarray,
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    config: Optional[RFBMEConfig] = None,
    faithful: bool = False,
    backend: Optional[str] = None,
) -> RFBMEResult:
    """Run RFBME between ``key_frame`` and ``new_frame``.

    ``rf`` is the target layer's receptive field; ``grid_shape`` is the
    spatial shape of the target activation (one output vector per
    coordinate). With ``faithful=True`` the incremental producer/consumer
    pipeline is used and op counts are exact rather than analytic.
    ``backend`` picks one of :data:`BACKENDS` (default: fastest available);
    all backends return bit-identical results.
    """
    if config is None:
        config = RFBMEConfig()
    if faithful:
        if backend is not None:
            raise ValueError(
                "faithful=True runs the hardware pipeline; it cannot be "
                f"combined with backend={backend!r}"
            )
        key_frame, new_frame = _validate_pair(key_frame, new_frame, rf.stride)
        offsets = config.offsets()
        diffs = _tile_diffs_loop(key_frame, new_frame, rf.stride, offsets)
        field, errors, consumer_adds = _consumer_incremental(
            diffs, rf, grid_shape, offsets
        )
        return RFBMEResult(
            field=VectorField(field),
            match_errors=errors,
            ops=OpCounts(
                producer_adds=_producer_op_count(diffs, rf.stride),
                consumer_adds=consumer_adds,
            ),
        )
    key_frame, new_frame = _validate_pair(key_frame, new_frame, rf.stride)
    engine = RFBMEEngine(key_frame.shape, rf, grid_shape, config, backend)
    return engine.estimate(key_frame, new_frame)


def estimate_motion_batch(
    pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    rf: ReceptiveField,
    grid_shape: Tuple[int, int],
    config: Optional[RFBMEConfig] = None,
    backend: Optional[str] = None,
) -> List[RFBMEResult]:
    """RFBME over a batch of (key frame, new frame) pairs.

    Convenience wrapper building a transient :class:`RFBMEEngine`; the
    runtime layer holds a persistent engine instead so workspace buffers
    survive across lockstep steps.
    """
    if not pairs:
        return []
    engine = RFBMEEngine(pairs[0][0].shape, rf, grid_shape, config, backend)
    return engine.estimate_batch(pairs)
