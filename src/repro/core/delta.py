"""Delta-network execution — the strategy the paper argues against (§II).

Delta networks (O'Connor & Welling; Neil et al.) exploit temporal
redundancy per layer: store every layer's activations, compute the change
(delta) of the input, propagate only significant deltas, and add them to
the stored data. The paper identifies three structural costs that motivate
AMC instead:

1. the hardware must store activations for *every* layer, not one;
2. every layer's weights are loaded every frame (weight traffic dominates
   CNN energy);
3. pixelwise deltas assume pixels change slowly — camera pans and object
   motion change most pixels abruptly, so deltas stay dense.

:class:`DeltaExecutor` implements the strategy faithfully enough to
quantify all three against AMC (``benchmarks/bench_ablation_delta.py``):
per-layer delta thresholding, effective-MAC accounting proportional to
input-delta density, and total activation-memory accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn.network import Network

__all__ = ["DeltaFrameStats", "DeltaExecutor"]


@dataclass
class DeltaFrameStats:
    """Cost accounting for one delta-mode frame."""

    #: per-layer fraction of nonzero input-delta values.
    delta_densities: Dict[str, float]
    #: MACs actually needed: full layer MACs x input-delta density.
    effective_macs: int
    #: MACs a dense (non-delta) execution would need.
    full_macs: int
    #: weights touched (delta networks still read every weight).
    weights_loaded: int

    @property
    def mac_saving(self) -> float:
        """Fraction of MACs skipped thanks to delta sparsity."""
        if self.full_macs == 0:
            return 0.0
        return 1.0 - self.effective_macs / self.full_macs


class DeltaExecutor:
    """Per-layer delta execution over a :class:`~repro.nn.network.Network`.

    ``threshold`` zeroes deltas with magnitude at or below it before each
    layer — the sigma-delta quantization knob trading accuracy for
    sparsity. With ``threshold=0`` execution is exact (deltas merely
    track the true activations).
    """

    def __init__(self, network: Network, threshold: float = 1e-3):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.network = network
        self.threshold = threshold
        self._stored_inputs: Optional[List[np.ndarray]] = None
        self._stored_outputs: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #
    @property
    def has_state(self) -> bool:
        return self._stored_inputs is not None

    def reset(self) -> None:
        self._stored_inputs = None
        self._stored_outputs = None

    def memory_values(self) -> int:
        """Activation values the strategy must keep resident.

        Every layer's input is stored (the paper's first objection); the
        final output is stored too so the next frame can return deltas.
        """
        if self._stored_inputs is None:
            raise RuntimeError("no frame processed yet")
        total = sum(arr.size for arr in self._stored_inputs)
        return total + self._stored_outputs[-1].size

    # ------------------------------------------------------------------ #
    def process_first(self, frame: np.ndarray) -> np.ndarray:
        """Dense execution of the first frame; stores all activations."""
        x = self._to_batch(frame)
        inputs, outputs = [], []
        for layer in self.network.layers:
            inputs.append(x)
            x = layer.forward(x)
            outputs.append(x)
        self._stored_inputs = inputs
        self._stored_outputs = outputs
        return x

    def process_delta(self, frame: np.ndarray):
        """Delta execution of a subsequent frame.

        Returns ``(output, DeltaFrameStats)``. The propagation recomputes
        each layer on (stored input + thresholded delta) and updates the
        stored state, so repeated frames track the true network output up
        to the thresholding error.
        """
        if self._stored_inputs is None:
            raise RuntimeError("process_first must run before process_delta")
        x = self._to_batch(frame)
        densities: Dict[str, float] = {}
        effective_macs = 0
        full_macs = 0
        weights_loaded = 0

        for index, layer in enumerate(self.network.layers):
            delta = x - self._stored_inputs[index]
            if self.threshold > 0:
                delta = np.where(np.abs(delta) > self.threshold, delta, 0.0)
            density = float((delta != 0).mean()) if delta.size else 0.0
            densities[layer.name] = density

            new_input = self._stored_inputs[index] + delta
            new_output = layer.forward(new_input)

            input_shape = self.network.layer_input_shapes[index]
            layer_macs = layer.macs(input_shape)
            full_macs += layer_macs
            effective_macs += int(round(layer_macs * density))
            weights_loaded += layer.param_count()

            self._stored_inputs[index] = new_input
            self._stored_outputs[index] = new_output
            x = new_output

        stats = DeltaFrameStats(
            delta_densities=densities,
            effective_macs=effective_macs,
            full_macs=full_macs,
            weights_loaded=weights_loaded,
        )
        return x, stats

    # ------------------------------------------------------------------ #
    def _to_batch(self, frame: np.ndarray) -> np.ndarray:
        expected = self.network.input_shape[1:]
        if frame.ndim != 2 or frame.shape != expected:
            raise ValueError(f"frame must be {expected} grayscale, got {frame.shape}")
        return frame[None, None, :, :]
