"""The frame lifecycle as pure stage functions over explicit lane state.

The paper's pipeline (Fig. 6) is a sequence of distinct phases — RFBME
motion estimation, the key-frame decision, the CNN prefix for key
frames, activation warping for predicted frames, the CNN suffix for
everyone.  Earlier releases executed that lifecycle as one opaque
function whose state lived in closures; this module makes each phase a
*pure stage function* over an explicit, picklable :class:`LaneState`, so
the runtime layer can schedule the phases (a
:class:`~repro.runtime.stage_graph.StageGraph`), ship lane state to
worker processes (sharded serving), and later double-buffer RFBME
against the CNN stages.

Contracts:

* **Explicit state.**  A stage reads and writes only its arguments: the
  :class:`StepBatch` working set (which slots take part in this step,
  their frames, the resolved inference plan) and the values produced by
  earlier stages.  The only state mutation is the one the lifecycle
  defines — a key frame's pixels/activation being adopted by its
  executor in :func:`stage_cnn_prefix` (and, on the legacy engine, the
  equivalent inside :func:`stage_legacy_cnn`).
* **Declared effects.**  Besides its dataflow inputs/outputs, every
  stage declares which :class:`LaneState` *resources* it reads and
  writes (:data:`KEY_STATE`, :data:`POLICY_STATE`,
  :data:`ENGINE_SCRATCH`, :data:`PLAN_SCRATCH`).  Dataflow orders
  stages *within* a step; the resource sets are what lets the
  pipelined executor (:class:`~repro.runtime.stage_graph.StageExecutor`)
  prove that two stages of *consecutive* steps are conflict-free and
  may overlap — e.g. step ``t+1``'s ``rfbme`` only reads key state and
  writes its (double-buffered) engine scratch, so it can run against
  step ``t``'s ``warp``/``cnn_suffix``/``record``.
* **Bit identity.**  Each stage performs exactly the array operations of
  the monolithic lockstep step it was extracted from, in the same order,
  so running the stages in sequence reproduces the previous
  ``execute_batched_step`` — and therefore the serial per-clip pipeline
  — bit for bit.  ``tests/test_stages.py`` asserts the slice-by-slice
  equivalence.
* **Picklability.**  :class:`LaneState` round-trips through ``pickle``:
  executors drop their lazily rebuilt RFBME engines, networks drop their
  compiled inference plans, and :class:`PlanHandle` re-resolves the plan
  from the network's cache on the other side.  Shipping a lane to a
  worker process preserves behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .amc import AMCExecutor
from .keyframe import KeyFramePolicy
from .pipeline import FrameRecord
from .rfbme import RFBMEEngine, RFBMEResult
from .warp import scale_to_activation, warp_activation_batch

__all__ = [
    "PlanHandle",
    "LaneSlot",
    "LaneState",
    "StepBatch",
    "KEY_STATE",
    "POLICY_STATE",
    "CURSOR_STATE",
    "ENGINE_SCRATCH",
    "PLAN_SCRATCH",
    "RESOURCES",
    "CHECKED_RESOURCES",
    "CHECKPOINT_RESOURCES",
    "fingerprint_resource",
    "checkpoint_resource",
    "restore_resource",
    "stage_rfbme",
    "stage_decide",
    "stage_cnn_prefix",
    "stage_warp",
    "stage_cnn_suffix",
    "stage_legacy_cnn",
    "stage_record",
]

# --------------------------------------------------------------------- #
# LaneState resources (conflict analysis)
# --------------------------------------------------------------------- #
#: the executors' stored key pixels and target activations.
KEY_STATE = "key_state"
#: the per-slot key-frame policies' inter-frame state.
POLICY_STATE = "policy_state"
#: the per-slot clip-local frame cursors.  Stages only ever *read*
#: cursors (through the batch's snapshot); the driver advances them
#: between steps.
CURSOR_STATE = "cursor_state"
#: the RFBME engine's producer/consumer workspaces.  Scratch: contents
#: never outlive one stage invocation, and the pipelined executor
#: double-buffers it (one engine per in-flight step context), so writes
#: from overlapped steps can never collide.
ENGINE_SCRATCH = "engine_scratch"
#: the compiled inference plan's im2col/GEMM scratch.  Scratch, same as
#: above — only ever touched by stages of the step that owns the plan
#: resolution, all of which run on the executor's main thread.
PLAN_SCRATCH = "plan_scratch"

#: every declared resource, in a stable order.
RESOURCES = (KEY_STATE, POLICY_STATE, CURSOR_STATE, ENGINE_SCRATCH,
             PLAN_SCRATCH)

#: resources with *persistent* content, cheap enough to fingerprint —
#: what ``StageGraph.run(enforce_writes=True)`` verifies a stage left
#: untouched unless declared in its write set.  The scratch resources
#: are exempt by definition (their contents are dead between stages).
CHECKED_RESOURCES = (KEY_STATE, POLICY_STATE, CURSOR_STATE)

#: persistent resources that support checkpoint → rollback (the
#: :class:`~repro.runtime.stage_graph.Checkpointable` contract) — what a
#: speculative executor snapshots before running head stages against a
#: batch that may never happen.  These are exactly the resources the
#: head of the lifecycle graphs can write (``decide`` advances policy
#: state) plus the cursors its decisions are keyed on.
CHECKPOINT_RESOURCES = (POLICY_STATE, CURSOR_STATE)


def _effects(reads=(), writes=()):
    """Attach declared LaneState read/write sets to a stage function."""

    def mark(fn):
        fn.reads = frozenset(reads)
        fn.writes = frozenset(writes)
        return fn

    return mark


def fingerprint_resource(batch: "StepBatch", resource: str):
    """A cheap equality token for one checked resource of one step batch.

    Used by the write-set enforcement mode of
    :meth:`~repro.runtime.stage_graph.StageGraph.run`: two fingerprints
    differ iff the resource's observable content changed.  Returns
    ``None`` for scratch resources (exempt) and non-``StepBatch`` seeds.
    """
    import zlib

    if not isinstance(batch, StepBatch):
        return None
    if resource == KEY_STATE:
        tokens = []
        for k in range(len(batch)):
            executor = batch.slot(k).executor
            if executor.has_key:
                tokens.append(
                    (
                        zlib.crc32(executor.stored_pixels().tobytes()),
                        zlib.crc32(executor.key_activation.tobytes()),
                    )
                )
            else:
                tokens.append(None)
        return tuple(tokens)
    if resource == POLICY_STATE:
        return tuple(
            repr(vars(batch.slot(k).policy))
            if batch.slot(k).policy is not None
            else None
            for k in range(len(batch))
        )
    if resource == CURSOR_STATE:
        return tuple(batch.slot(k).cursor for k in range(len(batch)))
    return None


def checkpoint_resource(batch: "StepBatch", resource: str):
    """A restorable snapshot of one checkpointable resource of ``batch``.

    The speculative executor's counterpart to
    :func:`fingerprint_resource`: where a fingerprint only *detects*
    change, a checkpoint can undo it —
    :func:`restore_resource` puts the resource's observable content back
    exactly (``fingerprint_resource`` before and after agree).  Only the
    :data:`CHECKPOINT_RESOURCES` are supported; snapshots cover the
    batch's positions, which is precisely the state a speculative head
    run over this batch could have touched.  Non-``StepBatch`` seeds
    (toy graphs) have no lane state: their snapshot is ``None`` and
    restoring it is a no-op, mirroring :func:`fingerprint_resource`.
    """
    if not isinstance(batch, StepBatch):
        return None
    if resource == POLICY_STATE:
        return tuple(
            batch.slot(k).policy.checkpoint()
            if batch.slot(k).policy is not None
            else None
            for k in range(len(batch))
        )
    if resource == CURSOR_STATE:
        return tuple(batch.slot(k).cursor for k in range(len(batch)))
    raise ValueError(
        f"resource {resource!r} is not checkpointable "
        f"(supported: {CHECKPOINT_RESOURCES})"
    )


def restore_resource(batch: "StepBatch", resource: str, snapshot) -> None:
    """Roll one resource of ``batch`` back to its checkpointed content.

    Safe to call more than once with the same snapshot (snapshots are
    never consumed); see :func:`checkpoint_resource`.
    """
    if snapshot is None:
        return
    if resource == POLICY_STATE:
        for k, state in enumerate(snapshot):
            policy = batch.slot(k).policy
            if policy is not None and state is not None:
                policy.rollback(state)
        return
    if resource == CURSOR_STATE:
        for k, cursor in enumerate(snapshot):
            batch.slot(k).cursor = cursor
        return
    raise ValueError(
        f"resource {resource!r} is not checkpointable "
        f"(supported: {CHECKPOINT_RESOURCES})"
    )


@dataclass
class PlanHandle:
    """Picklable reference to a network's cached inference plan.

    Holding a live :class:`~repro.nn.inference.InferencePlan` inside lane
    state would pin megabytes of scratch into every pickle and bypass
    :meth:`~repro.nn.network.Network.load_state_dict` invalidation, so
    lane state stores this handle instead and re-resolves per step — a
    dict lookup through :meth:`~repro.nn.network.Network.inference_plan`,
    which grows capacity in place when the step needs more rows.
    """

    network: object
    dtype: str = "float64"

    def resolve(self, min_batch: int = 1):
        """The live plan, grown to at least ``min_batch`` capacity."""
        return self.network.inference_plan(max_batch=min_batch, dtype=self.dtype)


@dataclass
class LaneSlot:
    """One executor slot of a lane: warm executor, policy, clip cursor.

    ``policy`` is ``None`` while the slot is free (serving keeps
    executors warm across occupants); ``cursor`` is the clip-local index
    of the next frame to serve, which is what policies must see for
    results to match a serial run.
    """

    executor: AMCExecutor
    policy: Optional[KeyFramePolicy] = None
    cursor: int = 0


@dataclass
class LaneState:
    """Picklable execution state of one lane: slots plus the plan handle.

    This is everything the stage functions need that outlives a single
    step — the warm executor slots (with their stored key pixels and
    activations), the per-slot policies and cursors, and the handle to
    the lane's compiled inference plan.  Clips and request bookkeeping
    stay with the caller; pickling a ``LaneState`` mid-stream and
    resuming on the other side continues bit-identically.
    """

    slots: List[LaneSlot] = field(default_factory=list)
    plan: Optional[PlanHandle] = None

    @property
    def engine(self) -> RFBMEEngine:
        """The lane's shared RFBME engine (slot 0's, by convention).

        All slots share one geometry, so one engine's scratch workspace
        serves the whole lane — the same sharing the serving and lockstep
        runtimes have always used.
        """
        return self.slots[0].executor.rfbme_engine

    def occupied(self) -> List[int]:
        """Slot positions currently holding a clip (policy attached)."""
        return [i for i, slot in enumerate(self.slots) if slot.policy is not None]

    def build_pipeline_engine(self) -> RFBMEEngine:
        """A second RFBME engine with the lane's exact geometry and config.

        The double buffer of the pipelined executor: step ``t+1``'s
        ``rfbme`` runs against its own producer/consumer workspaces while
        step ``t``'s tail stages are still in flight, so the two steps'
        :data:`ENGINE_SCRATCH` can never collide.  Same frame shape,
        receptive field, search config, backend, and profile as
        :attr:`engine` — and therefore bit-identical results (backend
        choice and workspace identity never change an output bit).
        Callers cache the returned engine; it is intentionally not stored
        here so :class:`LaneState` pickles stay lean.
        """
        executor = self.slots[0].executor
        config = executor.config
        return RFBMEEngine(
            executor.network.input_shape[1:],
            executor.rf,
            executor.grid_shape,
            config=config.rfbme,
            backend=config.rfbme_backend,
            profile=config.rfbme_profile,
        )


@dataclass
class StepBatch:
    """The working set of one lifecycle step.

    ``positions`` index into ``state.slots`` (the slots taking part in
    this step, in slot order); ``frames`` holds each position's frame at
    its current cursor; ``plan`` is the resolved inference plan for the
    planned CNN engine (``None`` selects the legacy per-clip path).

    ``cursors`` snapshots each position's clip-local frame index at batch
    construction.  With one step in flight at a time the snapshot equals
    ``slot.cursor`` (the fallback); under the pipelined executor two
    step contexts coexist — step ``t+1``'s ``decide`` needs cursor
    ``c+1`` while step ``t``'s ``record`` still needs ``c`` — so each
    context carries its own values instead of reading mutable slot state.

    ``engine`` overrides the lane engine for this step's ``rfbme`` (the
    pipelined executor's scratch double buffer); ``None`` uses
    ``state.engine``.

    ``prefix_service`` routes ``cnn_prefix`` through a shared
    :class:`~repro.runtime.prefix_service.PrefixService` (cross-lane
    fused batches + content-addressed cache); ``None`` keeps the
    direct per-batch ``plan.run_prefix`` call.
    """

    state: LaneState
    positions: Sequence[int]
    frames: Sequence[np.ndarray]
    plan: Optional[object] = None
    cursors: Optional[Sequence[int]] = None
    engine: Optional[RFBMEEngine] = None
    prefix_service: Optional[object] = None

    def __len__(self) -> int:
        return len(self.positions)

    def slot(self, k: int) -> LaneSlot:
        return self.state.slots[self.positions[k]]

    def cursor(self, k: int) -> int:
        """Position ``k``'s clip-local frame index for this step."""
        if self.cursors is not None:
            return self.cursors[k]
        return self.slot(k).cursor

    @property
    def rfbme_engine(self) -> RFBMEEngine:
        """The engine this step's ``rfbme`` runs on (see ``engine``)."""
        return self.engine if self.engine is not None else self.state.engine


# --------------------------------------------------------------------- #
# stage functions
# --------------------------------------------------------------------- #
@_effects(reads={KEY_STATE}, writes={ENGINE_SCRATCH})
def stage_rfbme(batch: StepBatch) -> List[Optional[RFBMEResult]]:
    """Batched RFBME for every slot with a stored key frame.

    Returns estimations aligned with ``batch.positions`` (``None`` for
    slots still waiting on their first key frame).  One
    :meth:`~repro.core.rfbme.RFBMEEngine.estimate_batch` call covers the
    whole step, exactly as the monolithic lockstep step did — on the
    lane engine, or on the step's double-buffer override
    (``batch.rfbme_engine``) when the executor pipelines.
    """
    ready = [
        k for k in range(len(batch)) if batch.slot(k).executor.has_key
    ]
    results = batch.rfbme_engine.estimate_batch(
        [
            (batch.slot(k).executor.stored_pixels(), batch.frames[k])
            for k in ready
        ]
    )
    estimations: List[Optional[RFBMEResult]] = [None] * len(batch)
    for k, estimation in zip(ready, results):
        estimations[k] = estimation
    return estimations


@_effects(reads={POLICY_STATE, CURSOR_STATE}, writes={POLICY_STATE})
def stage_decide(
    batch: StepBatch, estimations: Sequence[Optional[RFBMEResult]]
) -> List[bool]:
    """Per-clip key-frame decisions at clip-local cursors."""
    return [
        batch.slot(k).policy.decide(batch.cursor(k), estimations[k])
        for k in range(len(batch))
    ]


@_effects(reads={KEY_STATE, PLAN_SCRATCH}, writes={KEY_STATE, PLAN_SCRATCH})
def stage_cnn_prefix(
    batch: StepBatch, decisions: Sequence[bool]
) -> Optional[np.ndarray]:
    """One batched CNN-prefix call for this step's key frames.

    Each key slot adopts its row (pixels + target activation) — the
    state mutation the lifecycle defines for a key frame.  Returns the
    stacked key activations, or ``None`` when no slot chose a key.
    """
    keys = [k for k, is_key in enumerate(decisions) if is_key]
    if not keys:
        return None
    if batch.prefix_service is not None:
        key_acts = batch.prefix_service.run_prefix(batch, keys)
    else:
        target = batch.slot(keys[0]).executor.target
        frames = np.stack([batch.frames[k] for k in keys])[:, None]
        key_acts = batch.plan.run_prefix(frames, target)
    for row, k in enumerate(keys):
        batch.slot(k).executor.adopt_key(batch.frames[k], key_acts[row])
    return key_acts


@_effects(reads={KEY_STATE})
def stage_warp(
    batch: StepBatch,
    decisions: Sequence[bool],
    estimations: Sequence[Optional[RFBMEResult]],
) -> Optional[np.ndarray]:
    """Stacked predicted activations: warped (or memoized) key state.

    One :func:`~repro.core.warp.warp_activation_batch` call covers every
    predicted slot; memoize mode reuses the stacked stored activations
    untouched (§IV-E1).  Returns ``None`` when every slot chose a key.
    """
    preds = [k for k, is_key in enumerate(decisions) if not is_key]
    if not preds:
        return None
    executor0 = batch.slot(preds[0]).executor
    stored = np.stack([batch.slot(k).executor.key_activation for k in preds])
    if executor0.config.mode == "memoize":
        return stored
    fields = [
        scale_to_activation(estimations[k].field, batch.slot(k).executor.rf)
        for k in preds
    ]
    return warp_activation_batch(
        stored,
        fields,
        interpolation=executor0.config.interpolation,
        fixed_point=executor0.config.fixed_point,
    )


@_effects(reads={PLAN_SCRATCH}, writes={PLAN_SCRATCH})
def stage_cnn_suffix(
    batch: StepBatch,
    decisions: Sequence[bool],
    key_acts: Optional[np.ndarray],
    pred_acts: Optional[np.ndarray],
) -> np.ndarray:
    """One CNN-suffix call over the concatenated key/predicted rows.

    Returns outputs aligned with ``batch.positions`` (rows copied back
    from the key-then-predicted execution order, bitwise unchanged).
    """
    if key_acts is not None and pred_acts is not None:
        suffix_in = np.concatenate(
            [key_acts, pred_acts.astype(key_acts.dtype, copy=False)]
        )
    elif key_acts is not None:
        suffix_in = key_acts
    else:
        suffix_in = pred_acts
    target = batch.slot(0).executor.target
    outputs = batch.plan.run_suffix(suffix_in, target)

    keys = [k for k, is_key in enumerate(decisions) if is_key]
    preds = [k for k, is_key in enumerate(decisions) if not is_key]
    aligned = np.empty((len(batch),) + outputs.shape[1:], dtype=outputs.dtype)
    for row, k in enumerate(keys + preds):
        aligned[k] = outputs[row]
    return aligned


@_effects(
    reads={KEY_STATE, PLAN_SCRATCH}, writes={KEY_STATE, PLAN_SCRATCH}
)
def stage_legacy_cnn(
    batch: StepBatch,
    decisions: Sequence[bool],
    estimations: Sequence[Optional[RFBMEResult]],
) -> np.ndarray:
    """Per-clip CNN execution for the legacy engine (no whole-batch CNN).

    RFBME is still batched by :func:`stage_rfbme`; this stage runs each
    clip's prefix/warp/suffix through its executor exactly as the serial
    pipeline would, in slot order.
    """
    outputs = [
        batch.slot(k).executor.process_key(batch.frames[k])
        if decisions[k]
        else batch.slot(k).executor.process_predicted(
            batch.frames[k], estimations[k]
        )
        for k in range(len(batch))
    ]
    return np.concatenate(outputs)


@_effects(reads={CURSOR_STATE})
def stage_record(
    batch: StepBatch,
    decisions: Sequence[bool],
    estimations: Sequence[Optional[RFBMEResult]],
    outputs: np.ndarray,
) -> List[FrameRecord]:
    """Per-frame trace records, aligned with ``batch.positions``."""
    return [
        FrameRecord.from_step(
            batch.cursor(k),
            decisions[k],
            outputs[k : k + 1],
            estimations[k],
        )
        for k in range(len(batch))
    ]
