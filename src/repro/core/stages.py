"""The frame lifecycle as pure stage functions over explicit lane state.

The paper's pipeline (Fig. 6) is a sequence of distinct phases — RFBME
motion estimation, the key-frame decision, the CNN prefix for key
frames, activation warping for predicted frames, the CNN suffix for
everyone.  Earlier releases executed that lifecycle as one opaque
function whose state lived in closures; this module makes each phase a
*pure stage function* over an explicit, picklable :class:`LaneState`, so
the runtime layer can schedule the phases (a
:class:`~repro.runtime.stage_graph.StageGraph`), ship lane state to
worker processes (sharded serving), and later double-buffer RFBME
against the CNN stages.

Contracts:

* **Explicit state.**  A stage reads and writes only its arguments: the
  :class:`StepBatch` working set (which slots take part in this step,
  their frames, the resolved inference plan) and the values produced by
  earlier stages.  The only state mutation is the one the lifecycle
  defines — a key frame's pixels/activation being adopted by its
  executor in :func:`stage_cnn_prefix` (and, on the legacy engine, the
  equivalent inside :func:`stage_legacy_cnn`).
* **Bit identity.**  Each stage performs exactly the array operations of
  the monolithic lockstep step it was extracted from, in the same order,
  so running the stages in sequence reproduces the previous
  ``execute_batched_step`` — and therefore the serial per-clip pipeline
  — bit for bit.  ``tests/test_stages.py`` asserts the slice-by-slice
  equivalence.
* **Picklability.**  :class:`LaneState` round-trips through ``pickle``:
  executors drop their lazily rebuilt RFBME engines, networks drop their
  compiled inference plans, and :class:`PlanHandle` re-resolves the plan
  from the network's cache on the other side.  Shipping a lane to a
  worker process preserves behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .amc import AMCExecutor
from .keyframe import KeyFramePolicy
from .pipeline import FrameRecord
from .rfbme import RFBMEEngine, RFBMEResult
from .warp import scale_to_activation, warp_activation_batch

__all__ = [
    "PlanHandle",
    "LaneSlot",
    "LaneState",
    "StepBatch",
    "stage_rfbme",
    "stage_decide",
    "stage_cnn_prefix",
    "stage_warp",
    "stage_cnn_suffix",
    "stage_legacy_cnn",
    "stage_record",
]


@dataclass
class PlanHandle:
    """Picklable reference to a network's cached inference plan.

    Holding a live :class:`~repro.nn.inference.InferencePlan` inside lane
    state would pin megabytes of scratch into every pickle and bypass
    :meth:`~repro.nn.network.Network.load_state_dict` invalidation, so
    lane state stores this handle instead and re-resolves per step — a
    dict lookup through :meth:`~repro.nn.network.Network.inference_plan`,
    which grows capacity in place when the step needs more rows.
    """

    network: object
    dtype: str = "float64"

    def resolve(self, min_batch: int = 1):
        """The live plan, grown to at least ``min_batch`` capacity."""
        return self.network.inference_plan(max_batch=min_batch, dtype=self.dtype)


@dataclass
class LaneSlot:
    """One executor slot of a lane: warm executor, policy, clip cursor.

    ``policy`` is ``None`` while the slot is free (serving keeps
    executors warm across occupants); ``cursor`` is the clip-local index
    of the next frame to serve, which is what policies must see for
    results to match a serial run.
    """

    executor: AMCExecutor
    policy: Optional[KeyFramePolicy] = None
    cursor: int = 0


@dataclass
class LaneState:
    """Picklable execution state of one lane: slots plus the plan handle.

    This is everything the stage functions need that outlives a single
    step — the warm executor slots (with their stored key pixels and
    activations), the per-slot policies and cursors, and the handle to
    the lane's compiled inference plan.  Clips and request bookkeeping
    stay with the caller; pickling a ``LaneState`` mid-stream and
    resuming on the other side continues bit-identically.
    """

    slots: List[LaneSlot] = field(default_factory=list)
    plan: Optional[PlanHandle] = None

    @property
    def engine(self) -> RFBMEEngine:
        """The lane's shared RFBME engine (slot 0's, by convention).

        All slots share one geometry, so one engine's scratch workspace
        serves the whole lane — the same sharing the serving and lockstep
        runtimes have always used.
        """
        return self.slots[0].executor.rfbme_engine

    def occupied(self) -> List[int]:
        """Slot positions currently holding a clip (policy attached)."""
        return [i for i, slot in enumerate(self.slots) if slot.policy is not None]


@dataclass
class StepBatch:
    """The working set of one lifecycle step.

    ``positions`` index into ``state.slots`` (the slots taking part in
    this step, in slot order); ``frames`` holds each position's frame at
    its current cursor; ``plan`` is the resolved inference plan for the
    planned CNN engine (``None`` selects the legacy per-clip path).
    """

    state: LaneState
    positions: Sequence[int]
    frames: Sequence[np.ndarray]
    plan: Optional[object] = None

    def __len__(self) -> int:
        return len(self.positions)

    def slot(self, k: int) -> LaneSlot:
        return self.state.slots[self.positions[k]]


# --------------------------------------------------------------------- #
# stage functions
# --------------------------------------------------------------------- #
def stage_rfbme(batch: StepBatch) -> List[Optional[RFBMEResult]]:
    """Batched RFBME for every slot with a stored key frame.

    Returns estimations aligned with ``batch.positions`` (``None`` for
    slots still waiting on their first key frame).  One
    :meth:`~repro.core.rfbme.RFBMEEngine.estimate_batch` call covers the
    whole step, exactly as the monolithic lockstep step did.
    """
    ready = [
        k for k in range(len(batch)) if batch.slot(k).executor.has_key
    ]
    results = batch.state.engine.estimate_batch(
        [
            (batch.slot(k).executor.stored_pixels(), batch.frames[k])
            for k in ready
        ]
    )
    estimations: List[Optional[RFBMEResult]] = [None] * len(batch)
    for k, estimation in zip(ready, results):
        estimations[k] = estimation
    return estimations


def stage_decide(
    batch: StepBatch, estimations: Sequence[Optional[RFBMEResult]]
) -> List[bool]:
    """Per-clip key-frame decisions at clip-local cursors."""
    return [
        batch.slot(k).policy.decide(batch.slot(k).cursor, estimations[k])
        for k in range(len(batch))
    ]


def stage_cnn_prefix(
    batch: StepBatch, decisions: Sequence[bool]
) -> Optional[np.ndarray]:
    """One batched CNN-prefix call for this step's key frames.

    Each key slot adopts its row (pixels + target activation) — the
    state mutation the lifecycle defines for a key frame.  Returns the
    stacked key activations, or ``None`` when no slot chose a key.
    """
    keys = [k for k, is_key in enumerate(decisions) if is_key]
    if not keys:
        return None
    target = batch.slot(keys[0]).executor.target
    frames = np.stack([batch.frames[k] for k in keys])[:, None]
    key_acts = batch.plan.run_prefix(frames, target)
    for row, k in enumerate(keys):
        batch.slot(k).executor.adopt_key(batch.frames[k], key_acts[row])
    return key_acts


def stage_warp(
    batch: StepBatch,
    decisions: Sequence[bool],
    estimations: Sequence[Optional[RFBMEResult]],
) -> Optional[np.ndarray]:
    """Stacked predicted activations: warped (or memoized) key state.

    One :func:`~repro.core.warp.warp_activation_batch` call covers every
    predicted slot; memoize mode reuses the stacked stored activations
    untouched (§IV-E1).  Returns ``None`` when every slot chose a key.
    """
    preds = [k for k, is_key in enumerate(decisions) if not is_key]
    if not preds:
        return None
    executor0 = batch.slot(preds[0]).executor
    stored = np.stack([batch.slot(k).executor.key_activation for k in preds])
    if executor0.config.mode == "memoize":
        return stored
    fields = [
        scale_to_activation(estimations[k].field, batch.slot(k).executor.rf)
        for k in preds
    ]
    return warp_activation_batch(
        stored,
        fields,
        interpolation=executor0.config.interpolation,
        fixed_point=executor0.config.fixed_point,
    )


def stage_cnn_suffix(
    batch: StepBatch,
    decisions: Sequence[bool],
    key_acts: Optional[np.ndarray],
    pred_acts: Optional[np.ndarray],
) -> np.ndarray:
    """One CNN-suffix call over the concatenated key/predicted rows.

    Returns outputs aligned with ``batch.positions`` (rows copied back
    from the key-then-predicted execution order, bitwise unchanged).
    """
    if key_acts is not None and pred_acts is not None:
        suffix_in = np.concatenate(
            [key_acts, pred_acts.astype(key_acts.dtype, copy=False)]
        )
    elif key_acts is not None:
        suffix_in = key_acts
    else:
        suffix_in = pred_acts
    target = batch.slot(0).executor.target
    outputs = batch.plan.run_suffix(suffix_in, target)

    keys = [k for k, is_key in enumerate(decisions) if is_key]
    preds = [k for k, is_key in enumerate(decisions) if not is_key]
    aligned = np.empty((len(batch),) + outputs.shape[1:], dtype=outputs.dtype)
    for row, k in enumerate(keys + preds):
        aligned[k] = outputs[row]
    return aligned


def stage_legacy_cnn(
    batch: StepBatch,
    decisions: Sequence[bool],
    estimations: Sequence[Optional[RFBMEResult]],
) -> np.ndarray:
    """Per-clip CNN execution for the legacy engine (no whole-batch CNN).

    RFBME is still batched by :func:`stage_rfbme`; this stage runs each
    clip's prefix/warp/suffix through its executor exactly as the serial
    pipeline would, in slot order.
    """
    outputs = [
        batch.slot(k).executor.process_key(batch.frames[k])
        if decisions[k]
        else batch.slot(k).executor.process_predicted(
            batch.frames[k], estimations[k]
        )
        for k in range(len(batch))
    ]
    return np.concatenate(outputs)


def stage_record(
    batch: StepBatch,
    decisions: Sequence[bool],
    estimations: Sequence[Optional[RFBMEResult]],
    outputs: np.ndarray,
) -> List[FrameRecord]:
    """Per-frame trace records, aligned with ``batch.positions``."""
    return [
        FrameRecord.from_step(
            batch.slot(k).cursor,
            decisions[k],
            outputs[k : k + 1],
            estimations[k],
        )
        for k in range(len(batch))
    ]
