"""Key-frame selection policies — paper §II-C4, §IV-E5.

EVA2 decides per frame whether to run the full CNN (key frame) or the
cheap AMC prediction. The paper evaluates:

* a static key-frame rate (every n-th frame),
* adaptive selection on the aggregate block-match error (the byproduct of
  RFBME chosen for the hardware because it is free), and
* adaptive selection on the total motion magnitude.

All policies see the :class:`~repro.core.rfbme.RFBMEResult` for the
incoming frame (EVA2 always runs motion estimation first, Fig. 6) and
return the decision. Frame 0 is always a key frame — there is nothing to
predict from.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Optional

from .rfbme import RFBMEResult

__all__ = [
    "KeyFramePolicy",
    "AlwaysKeyPolicy",
    "NeverKeyPolicy",
    "StaticPolicy",
    "MatchErrorPolicy",
    "MotionMagnitudePolicy",
]


class KeyFramePolicy(ABC):
    """Decides, per frame, between precise and predicted execution."""

    def reset(self) -> None:
        """Clear inter-frame state (start of a new clip)."""
        self._frames_since_key = 0

    def __init__(self):
        self._frames_since_key = 0

    # ------------------------------------------------------------------ #
    # Checkpoint/rollback — the Checkpointable contract (see
    # repro.runtime.stage_graph).  decide() mutates inter-frame state,
    # so a speculative executor snapshots it before running decide
    # against a batch that may never happen, and restores it on a
    # mismatch.  Round trip is exact: checkpoint → decide(...)* →
    # rollback leaves the policy indistinguishable (vars()-equal) from
    # the moment of the checkpoint.
    def checkpoint(self) -> object:
        """An opaque snapshot of all mutable policy state.

        Deep-copied so later mutations (including of nested/aliased
        containers a subclass might hold) can never reach back into the
        snapshot.
        """
        return copy.deepcopy(self.__dict__)

    def rollback(self, snapshot: object) -> None:
        """Restore the state captured by :meth:`checkpoint`.

        The snapshot is deep-copied on the way back in, so one snapshot
        may be rolled back to any number of times; aliasing *within* the
        snapshot (two attributes sharing one object) is preserved by the
        copy memo.
        """
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(snapshot))

    def decide(self, frame_index: int, estimation: Optional[RFBMEResult]) -> bool:
        """Return True to run ``frame_index`` as a key frame.

        ``estimation`` is None only for frame 0 (no stored key frame yet).
        """
        if frame_index == 0 or estimation is None:
            self._frames_since_key = 0
            return True
        key = self._decide(estimation)
        if key:
            self._frames_since_key = 0
        else:
            self._frames_since_key += 1
        return key

    @abstractmethod
    def _decide(self, estimation: RFBMEResult) -> bool:
        """Policy-specific decision for a non-initial frame."""


class AlwaysKeyPolicy(KeyFramePolicy):
    """Every frame is precise — the paper's ``orig`` baseline."""

    def _decide(self, estimation: RFBMEResult) -> bool:
        return True


class NeverKeyPolicy(KeyFramePolicy):
    """Only frame 0 is precise — the worst-case 'old key frame' bound
    used in Fig. 14."""

    def _decide(self, estimation: RFBMEResult) -> bool:
        return False


class StaticPolicy(KeyFramePolicy):
    """Fixed key-frame interval: every ``interval``-th frame is a key."""

    def __init__(self, interval: int):
        super().__init__()
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval

    def _decide(self, estimation: RFBMEResult) -> bool:
        return self._frames_since_key + 1 >= self.interval


class _AdaptivePolicy(KeyFramePolicy):
    """Shared threshold + forced-refresh logic for the adaptive policies."""

    def __init__(self, threshold: float, max_gap: Optional[int] = None):
        super().__init__()
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if max_gap is not None and max_gap < 1:
            raise ValueError(f"max_gap must be >= 1, got {max_gap}")
        self.threshold = threshold
        self.max_gap = max_gap

    def _decide(self, estimation: RFBMEResult) -> bool:
        if self.max_gap is not None and self._frames_since_key + 1 >= self.max_gap:
            return True
        return self._metric(estimation) > self.threshold

    def _metric(self, estimation: RFBMEResult) -> float:
        raise NotImplementedError


class MatchErrorPolicy(_AdaptivePolicy):
    """Key frame when aggregate RFBME match error exceeds the threshold.

    This is the metric EVA2 implements in hardware: the minimum differences
    are byproducts of block matching (§IV-E5). High aggregate error means
    motion estimation failed to explain the frame (occlusion, lighting).
    """

    def _metric(self, estimation: RFBMEResult) -> float:
        return estimation.total_match_error


class MotionMagnitudePolicy(_AdaptivePolicy):
    """Key frame when the summed motion-vector magnitude exceeds the
    threshold: predictions are less trustworthy when the scene moves a lot.
    """

    def _metric(self, estimation: RFBMEResult) -> float:
        return estimation.field.total_magnitude()
