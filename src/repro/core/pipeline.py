"""The EVA2 per-frame execution pipeline — paper Fig. 6.

For every incoming frame the vision processing unit:

1. runs RFBME against the stored key frame (motion estimation is always
   performed once a key frame exists — its match error feeds the key-frame
   decision),
2. asks the key-frame policy for a decision,
3. runs either the full CNN (key) or warp + suffix (predicted).

:class:`EVA2Pipeline` executes that loop over a clip and produces
:class:`FrameRecord` entries carrying everything downstream consumers
need: task outputs for the accuracy metrics, and operation counts for the
hardware energy/latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..video.generator import VideoClip
from .amc import AMCExecutor
from .keyframe import KeyFramePolicy
from .rfbme import OpCounts, RFBMEResult

__all__ = ["FrameRecord", "PipelineResult", "EVA2Pipeline"]


@dataclass
class FrameRecord:
    """Execution trace of one frame."""

    index: int
    is_key: bool
    #: network output, batch dim squeezed: (num_outputs,).
    output: np.ndarray
    #: RFBME adder ops (None for frame 0: nothing to match against).
    estimation_ops: Optional[OpCounts]
    #: aggregate block-match error (key-frame signal), None for frame 0.
    match_error: Optional[float]
    #: total motion magnitude, None for frame 0.
    motion_magnitude: Optional[float]

    @classmethod
    def from_step(
        cls,
        index: int,
        is_key: bool,
        output: np.ndarray,
        estimation: Optional[RFBMEResult],
    ) -> "FrameRecord":
        """Build the record for one executed frame.

        Shared by the serial pipeline and the lockstep runtime
        (:class:`repro.runtime.BatchedPipeline`) so both trace frames
        identically.
        """
        return cls(
            index=index,
            is_key=is_key,
            output=output[0],
            estimation_ops=estimation.ops if estimation else None,
            match_error=(
                estimation.total_match_error if estimation else None
            ),
            motion_magnitude=(
                estimation.field.total_magnitude() if estimation else None
            ),
        )


@dataclass
class PipelineResult:
    """All frame records for one clip plus convenience accessors."""

    records: List[FrameRecord]

    def __len__(self) -> int:
        return len(self.records)

    def outputs(self) -> np.ndarray:
        """(T, num_outputs) stacked network outputs."""
        return np.stack([record.output for record in self.records])

    def key_mask(self) -> np.ndarray:
        """(T,) boolean array, True where the frame ran precisely."""
        return np.array([record.is_key for record in self.records])

    @property
    def num_key_frames(self) -> int:
        return int(self.key_mask().sum())

    @property
    def key_fraction(self) -> float:
        """Fraction of frames executed precisely (the paper's 'keys')."""
        return self.num_key_frames / max(len(self.records), 1)

    @property
    def predicted_fraction(self) -> float:
        return 1.0 - self.key_fraction


class EVA2Pipeline:
    """Run live-vision clips through AMC under a key-frame policy."""

    def __init__(self, executor: AMCExecutor, policy: KeyFramePolicy):
        self.executor = executor
        self.policy = policy

    def run_clip(self, clip: VideoClip) -> PipelineResult:
        """Process every frame of ``clip``; state resets at clip start."""
        self.executor.reset()
        self.policy.reset()
        records: List[FrameRecord] = []

        for index in range(len(clip)):
            frame = clip.frames[index]
            estimation: Optional[RFBMEResult] = None
            if self.executor.has_key:
                estimation = self.executor.estimate(frame)

            is_key = self.policy.decide(index, estimation)
            if is_key:
                output = self.executor.process_key(frame)
            else:
                output = self.executor.process_predicted(frame, estimation)

            records.append(
                FrameRecord.from_step(index, is_key, output, estimation)
            )
        return PipelineResult(records=records)

    def run_clips(self, clips) -> List[PipelineResult]:
        """Process clips one after another on this pipeline instance.

        Each clip is independent: executor and policy state reset at every
        clip boundary, so results match running each clip alone. This is
        the simple serial path — for multi-clip workloads prefer
        :mod:`repro.runtime`, whose :class:`~repro.runtime.BatchedPipeline`
        produces bit-identical results while batching the RFBME hot path
        across clips, and whose :class:`~repro.runtime.ClipScheduler` fans
        clips out over a worker pool.
        """
        return [self.run_clip(clip) for clip in clips]
