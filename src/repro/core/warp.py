"""Activation warping — paper §II-B, §II-C3, §III-B.

Given the stored key-frame activation of the target layer and a motion
vector field at receptive-field granularity, produce the predicted
activation: for every activation coordinate, sample the stored activation
at the position the motion vector points to. Because pixel vectors are
scaled by the prefix's cumulative stride, sample positions are generally
fractional; the warp engine bilinearly interpolates the 2x2 neighbourhood
(the paper measured bilinear 1–2% better than nearest-neighbour on
FasterM, which ``benchmarks/bench_ablation_interp.py`` reproduces).

The optional fixed-point mode routes the interpolation through the 16-bit
datapath of :mod:`repro.hardware.fixed_point`, modelling the RTL's
weighting units bit-faithfully.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from ..hardware.fixed_point import QFormat
from ..motion.vector_field import VectorField
from .receptive_field import ReceptiveField

__all__ = [
    "scale_to_activation",
    "warp_activation",
    "warp_activation_batch",
    "warp_cost_interpolations",
]

_INTERPOLATIONS = ("bilinear", "nearest")


@lru_cache(maxsize=None)
def _base_grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached read-only (ys, xs) coordinate grids for one field shape.

    Warping happens once per predicted frame per clip; the coordinate
    grid depends only on geometry, so rebuilding it per call (the old
    ``np.mgrid``) was pure overhead.
    """
    ys, xs = np.mgrid[0:height, 0:width]
    ys.flags.writeable = False
    xs.flags.writeable = False
    return ys, xs


def scale_to_activation(field: VectorField, rf: ReceptiveField) -> VectorField:
    """Convert a pixel-space field to activation coordinates (δ → δ').

    A displacement of ``d`` pixels moves an activation value ``d / stride``
    activation cells (§II-B: 'for a convolutional layer with stride s, a
    distance d in the input is equivalent to a distance d/s in the
    output').
    """
    return field.scaled(1.0 / rf.stride)


def _gather_bilinear(
    activation: np.ndarray,
    sample_y: np.ndarray,
    sample_x: np.ndarray,
    fixed_point: Optional[QFormat],
) -> np.ndarray:
    """Sample (C, H, W) activation at fractional (H, W) coordinates."""
    _, height, width = activation.shape
    y0 = np.floor(sample_y).astype(np.int64)
    x0 = np.floor(sample_x).astype(np.int64)
    fy = sample_y - y0
    fx = sample_x - x0

    y0c = np.clip(y0, 0, height - 1)
    y1c = np.clip(y0 + 1, 0, height - 1)
    x0c = np.clip(x0, 0, width - 1)
    x1c = np.clip(x0 + 1, 0, width - 1)

    v00 = activation[:, y0c, x0c]
    v01 = activation[:, y0c, x1c]
    v10 = activation[:, y1c, x0c]
    v11 = activation[:, y1c, x1c]

    if fixed_point is None:
        w00 = (1 - fy) * (1 - fx)
        w01 = (1 - fy) * fx
        w10 = fy * (1 - fx)
        w11 = fy * fx
        return v00 * w00 + v01 * w01 + v10 * w10 + v11 * w11

    # Hardware datapath: activations and (u, v) weights quantized, wide
    # products, shift back (Fig. 11). Weight products computed at the
    # activation format's precision to mirror the two-stage design.
    fmt = fixed_point
    q00, q01 = fmt.quantize(v00), fmt.quantize(v01)
    q10, q11 = fmt.quantize(v10), fmt.quantize(v11)
    u = fmt.quantize(fy)
    v = fmt.quantize(fx)
    one = fmt.quantize(np.ones_like(fy))
    acc = fmt.multiply(q00, fmt.multiply(one - u, one - v))
    acc = fmt.add(acc, fmt.multiply(q01, fmt.multiply(one - u, v)))
    acc = fmt.add(acc, fmt.multiply(q10, fmt.multiply(u, one - v)))
    acc = fmt.add(acc, fmt.multiply(q11, fmt.multiply(u, v)))
    return fmt.dequantize(acc)


def _gather_nearest(
    activation: np.ndarray, sample_y: np.ndarray, sample_x: np.ndarray
) -> np.ndarray:
    _, height, width = activation.shape
    yn = np.clip(np.rint(sample_y).astype(np.int64), 0, height - 1)
    xn = np.clip(np.rint(sample_x).astype(np.int64), 0, width - 1)
    return activation[:, yn, xn]


def warp_activation(
    activation: np.ndarray,
    field: VectorField,
    interpolation: str = "bilinear",
    fixed_point: Optional[QFormat] = None,
) -> np.ndarray:
    """Warp a (C, H, W) activation by a backward vector field in activation
    units.

    ``field.data[y, x]`` gives the (dy, dx) to add to (y, x) to find the
    source sample in the stored activation. Out-of-range samples clamp to
    the border (the hardware's address clamping): de-occluded regions thus
    repeat edge content, one of AMC's accepted approximation sources.
    """
    if activation.ndim != 3:
        raise ValueError(f"activation must be (C, H, W), got {activation.shape}")
    if interpolation not in _INTERPOLATIONS:
        raise ValueError(
            f"interpolation must be one of {_INTERPOLATIONS}, got {interpolation!r}"
        )
    _, height, width = activation.shape
    if field.grid_shape != (height, width):
        raise ValueError(
            f"field grid {field.grid_shape} does not match activation "
            f"spatial shape {(height, width)}"
        )

    ys, xs = _base_grid(height, width)
    sample_y = ys + field.data[..., 0]
    sample_x = xs + field.data[..., 1]

    if interpolation == "nearest":
        return _gather_nearest(activation, sample_y, sample_x)
    return _gather_bilinear(activation, sample_y, sample_x, fixed_point)


def warp_activation_batch(
    activations: np.ndarray,
    fields: Sequence[VectorField],
    interpolation: str = "bilinear",
    fixed_point: Optional[QFormat] = None,
) -> np.ndarray:
    """Warp a stack of activations, one vector field per batch entry.

    ``activations`` is (B, C, H, W) stored key activations; ``fields[b]``
    is the backward field (activation units) for entry ``b``.  The math is
    the per-clip :func:`warp_activation` expression evaluated across the
    whole batch at once — the gathers become one ``take_along_axis`` per
    corner and the weighted sum broadcasts over (B, C, H*W) — so each
    output row is bitwise identical to warping that clip alone.  This is
    how the lockstep runtime turns B per-clip warps into four gathers.
    """
    if activations.ndim != 4:
        raise ValueError(
            f"activations must be (B, C, H, W), got {activations.shape}"
        )
    batch, channels, height, width = activations.shape
    if len(fields) != batch:
        raise ValueError(f"{batch} activations but {len(fields)} fields")
    if interpolation not in _INTERPOLATIONS:
        raise ValueError(
            f"interpolation must be one of {_INTERPOLATIONS}, got {interpolation!r}"
        )
    for field in fields:
        if field.grid_shape != (height, width):
            raise ValueError(
                f"field grid {field.grid_shape} does not match activation "
                f"spatial shape {(height, width)}"
            )
    data = np.stack([field.data for field in fields])  # (B, H, W, 2)
    ys, xs = _base_grid(height, width)
    sample_y = ys + data[..., 0]
    sample_x = xs + data[..., 1]
    act_flat = activations.reshape(batch, channels, height * width)

    def gather(y_idx: np.ndarray, x_idx: np.ndarray) -> np.ndarray:
        flat = (y_idx * width + x_idx).reshape(batch, 1, height * width)
        return np.take_along_axis(act_flat, flat, axis=2)

    if interpolation == "nearest":
        yn = np.clip(np.rint(sample_y).astype(np.int64), 0, height - 1)
        xn = np.clip(np.rint(sample_x).astype(np.int64), 0, width - 1)
        return gather(yn, xn).reshape(batch, channels, height, width)

    y0 = np.floor(sample_y).astype(np.int64)
    x0 = np.floor(sample_x).astype(np.int64)
    fy = sample_y - y0
    fx = sample_x - x0
    y0c = np.clip(y0, 0, height - 1)
    y1c = np.clip(y0 + 1, 0, height - 1)
    x0c = np.clip(x0, 0, width - 1)
    x1c = np.clip(x0 + 1, 0, width - 1)
    v00 = gather(y0c, x0c)
    v01 = gather(y0c, x1c)
    v10 = gather(y1c, x0c)
    v11 = gather(y1c, x1c)
    def plane(w):
        return w.reshape(batch, 1, height * width)

    if fixed_point is None:
        out = (
            v00 * plane((1 - fy) * (1 - fx))
            + v01 * plane((1 - fy) * fx)
            + v10 * plane(fy * (1 - fx))
            + v11 * plane(fy * fx)
        )
    else:
        # The same two-stage quantized datapath as the per-clip warp
        # (Fig. 11), broadcast over the batch.
        fmt = fixed_point
        q00, q01 = fmt.quantize(v00), fmt.quantize(v01)
        q10, q11 = fmt.quantize(v10), fmt.quantize(v11)
        u = fmt.quantize(plane(fy))
        v = fmt.quantize(plane(fx))
        one = fmt.quantize(np.ones_like(u, dtype=np.float64))
        acc = fmt.multiply(q00, fmt.multiply(one - u, one - v))
        acc = fmt.add(acc, fmt.multiply(q01, fmt.multiply(one - u, v)))
        acc = fmt.add(acc, fmt.multiply(q10, fmt.multiply(u, one - v)))
        acc = fmt.add(acc, fmt.multiply(q11, fmt.multiply(u, v)))
        out = fmt.dequantize(acc)
    return out.astype(activations.dtype, copy=False).reshape(
        batch, channels, height, width
    )


def warp_cost_interpolations(grid_shape: Tuple[int, int], channels: int) -> int:
    """Number of 4-way weighted interpolations one warp performs.

    One bilinear interpolation per activation value: the warp engine's
    cost unit for the energy model.
    """
    return grid_shape[0] * grid_shape[1] * channels
