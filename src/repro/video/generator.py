"""Synthetic annotated video clips.

A :class:`VideoClip` is the repo's stand-in for a YouTube-BoundingBoxes
segment: a (T, H, W) grayscale tensor in [0, 1] plus per-frame ground truth
(class id, bounding box, occlusion fraction). Generation is fully
deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from . import sprites
from .scenes import SceneConfig

__all__ = ["Annotation", "VideoClip", "generate_clip"]

#: Frame period implied by the paper's 30 fps decode (§IV-B).
FRAME_PERIOD_MS = 33.0


@dataclass(frozen=True)
class Annotation:
    """Ground truth for one frame."""

    class_id: int
    #: (cx, cy, w, h) in pixels, clipped to the frame.
    box: Tuple[float, float, float, float]
    #: fraction of the target sprite hidden by the occluder, in [0, 1].
    occluded_fraction: float = 0.0

    def corners(self) -> Tuple[float, float, float, float]:
        """(x0, y0, x1, y1) corner representation."""
        cx, cy, w, h = self.box
        return (cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)


@dataclass
class VideoClip:
    """Frames plus per-frame annotations."""

    frames: np.ndarray  # (T, H, W), float64 in [0, 1]
    annotations: List[Annotation]
    scenario: str
    fps: float = 30.0

    def __post_init__(self):
        if self.frames.ndim != 3:
            raise ValueError(f"frames must be (T, H, W), got {self.frames.shape}")
        if len(self.annotations) != self.frames.shape[0]:
            raise ValueError(
                f"{len(self.annotations)} annotations for "
                f"{self.frames.shape[0]} frames"
            )

    def __len__(self) -> int:
        return self.frames.shape[0]

    @property
    def frame_gap_ms(self) -> float:
        return 1000.0 / self.fps

    def pairs_at_gap(self, gap: int):
        """Yield (earlier_index, later_index) frame pairs ``gap`` apart."""
        if gap < 1:
            raise ValueError(f"gap must be >= 1, got {gap}")
        for start in range(len(self) - gap):
            yield start, start + gap


class _MovingSprite:
    """Internal: one sprite with continuous position and bouncing walls."""

    def __init__(
        self,
        class_id: int,
        size: int,
        texture: np.ndarray,
        position: np.ndarray,
        velocity: np.ndarray,
        bounds: Tuple[int, int],
    ):
        self.class_id = class_id
        self.size = size
        self.mask = sprites.shape_mask(class_id, size)
        self.texture = texture
        self.position = position.astype(np.float64)  # sprite centre (x, y)
        self.velocity = velocity.astype(np.float64)
        self.bounds = bounds  # (height, width)

    def apply_drift(self, delta: np.ndarray) -> None:
        """Shift the sprite in frame coordinates (camera pan moves every
        scene element coherently), bouncing off the frame edges."""
        self.position += delta
        self._bounce()

    def step(self, config: SceneConfig, rng: np.random.Generator) -> None:
        if config.direction_change_prob > 0 and rng.random() < config.direction_change_prob:
            angle = rng.uniform(0, 2 * np.pi)
            speed = float(np.hypot(*self.velocity))
            self.velocity = np.array([np.cos(angle), np.sin(angle)]) * speed
        if config.acceleration > 0:
            self.velocity += rng.normal(0, config.acceleration, size=2)
            speed = float(np.hypot(*self.velocity))
            if speed > config.speed[1] * 2 and speed > 0:
                self.velocity *= (config.speed[1] * 2) / speed
        self.position += self.velocity
        self._bounce()

    def _bounce(self) -> None:
        height, width = self.bounds
        half = self.size / 2.0
        for axis, limit in ((0, width), (1, height)):
            low, high = half, limit - half
            if self.position[axis] < low:
                self.position[axis] = low + (low - self.position[axis])
                self.velocity[axis] *= -1
            elif self.position[axis] > high:
                self.position[axis] = high - (self.position[axis] - high)
                self.velocity[axis] *= -1
            self.position[axis] = float(np.clip(self.position[axis], low, high))

    def paste(self, canvas: np.ndarray) -> np.ndarray:
        """Render onto ``canvas`` in place; return the pasted pixel mask."""
        height, width = canvas.shape
        x0 = int(round(self.position[0] - self.size / 2.0))
        y0 = int(round(self.position[1] - self.size / 2.0))
        x1, y1 = x0 + self.size, y0 + self.size
        cx0, cy0 = max(x0, 0), max(y0, 0)
        cx1, cy1 = min(x1, width), min(y1, height)
        pasted = np.zeros_like(canvas, dtype=bool)
        if cx0 >= cx1 or cy0 >= cy1:
            return pasted
        sub_mask = self.mask[cy0 - y0 : cy1 - y0, cx0 - x0 : cx1 - x0] > 0
        sub_tex = self.texture[cy0 - y0 : cy1 - y0, cx0 - x0 : cx1 - x0]
        region = canvas[cy0:cy1, cx0:cx1]
        region[sub_mask] = sub_tex[sub_mask]
        pasted[cy0:cy1, cx0:cx1] = sub_mask
        return pasted

    def box(self) -> Tuple[float, float, float, float]:
        height, width = self.bounds
        half = self.size / 2.0
        x0 = max(self.position[0] - half, 0.0)
        y0 = max(self.position[1] - half, 0.0)
        x1 = min(self.position[0] + half, float(width))
        y1 = min(self.position[1] + half, float(height))
        return ((x0 + x1) / 2, (y0 + y1) / 2, x1 - x0, y1 - y0)


def _make_sprite(
    config: SceneConfig,
    rng: np.random.Generator,
    class_id: Optional[int],
    bright: bool,
) -> _MovingSprite:
    size = int(rng.integers(config.sprite_size[0], config.sprite_size[1] + 1))
    if class_id is None:
        class_id = int(rng.integers(0, sprites.NUM_CLASSES))
    base = 0.5 + (config.sprite_contrast / 2 if bright else -config.sprite_contrast / 2)
    texture = np.clip(
        base + 0.25 * (sprites.smooth_noise_texture(size, size, rng, 3) - 0.5),
        0.0,
        1.0,
    )
    half = size / 2.0
    position = np.array(
        [
            rng.uniform(half, config.width - half),
            rng.uniform(half, config.height - half),
        ]
    )
    speed = rng.uniform(*config.speed)
    angle = rng.uniform(0, 2 * np.pi)
    velocity = np.array([np.cos(angle), np.sin(angle)]) * speed
    return _MovingSprite(
        class_id, size, texture, position, velocity, (config.height, config.width)
    )


def generate_clip(
    config: SceneConfig,
    seed: int,
    class_id: Optional[int] = None,
    num_frames: Optional[int] = None,
) -> VideoClip:
    """Generate one annotated clip for ``config``.

    ``class_id`` forces the target sprite's class (dataset balancing);
    ``num_frames`` overrides the scenario default.
    """
    rng = np.random.default_rng(seed)
    frames_total = num_frames if num_frames is not None else config.num_frames
    height, width = config.height, config.width

    # Oversized background so camera panning reveals real content, not
    # padding. Margin covers the farthest possible pan.
    pan_speed = rng.uniform(*config.pan_speed) if config.pan_speed[1] > 0 else 0.0
    pan_angle = rng.uniform(0, 2 * np.pi)
    pan_velocity = np.array([np.cos(pan_angle), np.sin(pan_angle)]) * pan_speed
    margin = int(np.ceil(abs(pan_speed) * frames_total)) + 2
    canvas_rng = np.random.default_rng(seed + 1)
    background = sprites.background_texture(
        height + 2 * margin, width + 2 * margin, canvas_rng, config.background
    )
    background = 0.5 + (background - 0.5) * config.background_contrast

    target = _make_sprite(config, rng, class_id, bright=True)
    occluder = _make_sprite(config, rng, None, bright=False) if config.occluder else None

    frames = np.empty((frames_total, height, width))
    annotations: List[Annotation] = []
    pan_offset = np.array([float(margin), float(margin)])

    for t in range(frames_total):
        ox = int(round(pan_offset[0]))
        oy = int(round(pan_offset[1]))
        frame = background[oy : oy + height, ox : ox + width].copy()

        target_mask = target.paste(frame)
        occluded_fraction = 0.0
        if occluder is not None:
            occ_mask = occluder.paste(frame)
            overlap = np.logical_and(target_mask, occ_mask).sum()
            total = target_mask.sum()
            occluded_fraction = float(overlap / total) if total else 0.0

        if config.lighting_amplitude > 0:
            gain = 1.0 + config.lighting_amplitude * np.sin(
                2 * np.pi * t / config.lighting_period
            )
            frame = frame * gain
        if config.noise_sigma > 0:
            frame = frame + rng.normal(0, config.noise_sigma, frame.shape)

        frames[t] = np.clip(frame, 0.0, 1.0)
        annotations.append(
            Annotation(
                class_id=target.class_id,
                box=target.box(),
                occluded_fraction=occluded_fraction,
            )
        )

        target.step(config, rng)
        if occluder is not None:
            occluder.step(config, rng)
        pan_offset += pan_velocity
        if pan_speed:
            # The crop window moves by +pan_velocity, so scene content
            # (sprites included) moves by -pan_velocity in frame coords.
            target.apply_drift(-pan_velocity)
            if occluder is not None:
                occluder.apply_drift(-pan_velocity)

    return VideoClip(frames=frames, annotations=annotations, scenario=config.name)
