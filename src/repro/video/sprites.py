"""Procedural sprites and textures for synthetic video.

The paper evaluates on natural video (YouTube-BoundingBoxes); offline we
synthesise the properties AMC actually interacts with: textured objects
moving over textured backgrounds. Texture matters — block matching needs
image gradient to lock onto, and a flat-colour scene would make motion
estimation trivially easy and unrealistically cheap.

Eight sprite shape classes give the classification and detection tasks a
label space comparable in difficulty to "which of a handful of object
categories is on screen".
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "SHAPE_NAMES",
    "NUM_CLASSES",
    "shape_mask",
    "smooth_noise_texture",
    "checker_texture",
    "gradient_texture",
    "background_texture",
]

#: Shape classes, index = class id.
SHAPE_NAMES: List[str] = [
    "square",
    "circle",
    "triangle",
    "diamond",
    "ring",
    "cross",
    "hbar",
    "vbar",
]

NUM_CLASSES = len(SHAPE_NAMES)


def shape_mask(class_id: int, size: int) -> np.ndarray:
    """Binary (size, size) mask of the given shape class.

    Masks are centred and scaled to fill most of the patch so that the
    bounding box annotation (the patch extent) is tight.
    """
    if not 0 <= class_id < NUM_CLASSES:
        raise ValueError(f"class_id must be in [0, {NUM_CLASSES}), got {class_id}")
    if size < 4:
        raise ValueError(f"sprite size must be >= 4, got {size}")

    ys, xs = np.mgrid[0:size, 0:size]
    cy = cx = (size - 1) / 2.0
    half = size / 2.0
    dy = ys - cy
    dx = xs - cx
    name = SHAPE_NAMES[class_id]

    if name == "square":
        mask = (np.abs(dy) <= 0.9 * half) & (np.abs(dx) <= 0.9 * half)
    elif name == "circle":
        mask = dy**2 + dx**2 <= (0.9 * half) ** 2
    elif name == "triangle":
        # Upward triangle: widens linearly from apex to base.
        frac = ys / max(size - 1, 1)
        mask = np.abs(dx) <= frac * 0.9 * half
    elif name == "diamond":
        mask = np.abs(dy) + np.abs(dx) <= 0.95 * half
    elif name == "ring":
        r2 = dy**2 + dx**2
        mask = (r2 <= (0.9 * half) ** 2) & (r2 >= (0.45 * half) ** 2)
    elif name == "cross":
        arm = 0.3 * half
        mask = (np.abs(dy) <= arm) | (np.abs(dx) <= arm)
    elif name == "hbar":
        mask = np.abs(dy) <= 0.3 * half
    elif name == "vbar":
        mask = np.abs(dx) <= 0.3 * half
    else:  # pragma: no cover - SHAPE_NAMES is exhaustive
        raise AssertionError(name)
    return mask.astype(np.float64)


def smooth_noise_texture(
    height: int, width: int, rng: np.random.Generator, smoothness: int = 4
) -> np.ndarray:
    """Band-limited noise in [0, 1]: white noise upsampled bilinearly.

    ``smoothness`` is the upsampling factor; larger values give blobbier,
    lower-frequency textures (more like natural image content).
    """
    if smoothness < 1:
        raise ValueError(f"smoothness must be >= 1, got {smoothness}")
    coarse_h = max(2, height // smoothness + 2)
    coarse_w = max(2, width // smoothness + 2)
    coarse = rng.random((coarse_h, coarse_w))

    ys = np.linspace(0, coarse_h - 1.001, height)
    xs = np.linspace(0, coarse_w - 1.001, width)
    y0 = ys.astype(int)
    x0 = xs.astype(int)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    top = coarse[y0][:, x0] * (1 - fx) + coarse[y0][:, x0 + 1] * fx
    bot = coarse[y0 + 1][:, x0] * (1 - fx) + coarse[y0 + 1][:, x0 + 1] * fx
    return top * (1 - fy[:, 0][:, None]) + bot * fy[:, 0][:, None]


def checker_texture(height: int, width: int, period: int = 8) -> np.ndarray:
    """Checkerboard in {0.25, 0.75} — strong, regular gradients."""
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    ys, xs = np.mgrid[0:height, 0:width]
    board = ((ys // period) + (xs // period)) % 2
    return 0.25 + 0.5 * board


def gradient_texture(height: int, width: int, horizontal: bool = True) -> np.ndarray:
    """Linear ramp in [0, 1] — the degenerate low-texture case."""
    if horizontal:
        ramp = np.linspace(0.0, 1.0, width)
        return np.tile(ramp, (height, 1))
    ramp = np.linspace(0.0, 1.0, height)
    return np.tile(ramp[:, None], (1, width))


def background_texture(
    height: int, width: int, rng: np.random.Generator, kind: str = "noise"
) -> np.ndarray:
    """A background canvas; oversized callers crop a panning window from it."""
    if kind == "noise":
        return smooth_noise_texture(height, width, rng, smoothness=6)
    if kind == "checker":
        return checker_texture(height, width, period=max(4, height // 8))
    if kind == "gradient":
        return gradient_texture(height, width)
    raise ValueError(f"unknown background kind {kind!r}")
