"""Dataset construction on top of the clip generator.

Provides the three splits the paper uses (train / validation / test, with
the test set held out from all tuning) and helpers to flatten clips into
(frame, label, box) arrays for training and into frame pairs at a fixed
temporal gap for the motion-estimation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .generator import VideoClip, generate_clip
from .scenes import SCENARIOS, scenario
from .sprites import NUM_CLASSES

__all__ = ["ClipSet", "build_clipset", "frames_and_labels", "training_arrays"]

# Seed bases keep the three splits disjoint streams of clips.
_SPLIT_SEEDS = {"train": 10_000, "val": 20_000, "test": 30_000}


@dataclass
class ClipSet:
    """A collection of annotated clips forming one dataset split."""

    clips: List[VideoClip]
    split: str

    def __len__(self) -> int:
        return len(self.clips)

    def num_frames(self) -> int:
        return sum(len(clip) for clip in self.clips)


def build_clipset(
    split: str,
    clips_per_scenario: int = 4,
    scenarios: Optional[Sequence[str]] = None,
    num_frames: Optional[int] = None,
    seed_offset: int = 0,
) -> ClipSet:
    """Build a split from every (or selected) scenario family.

    Classes are assigned round-robin so every split covers the full label
    space regardless of size.
    """
    if split not in _SPLIT_SEEDS:
        raise ValueError(f"split must be one of {sorted(_SPLIT_SEEDS)}, got {split!r}")
    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    base = _SPLIT_SEEDS[split] + seed_offset

    clips: List[VideoClip] = []
    counter = 0
    for name in names:
        config = scenario(name)
        for i in range(clips_per_scenario):
            clips.append(
                generate_clip(
                    config,
                    seed=base + counter,
                    class_id=counter % NUM_CLASSES,
                    num_frames=num_frames,
                )
            )
            counter += 1
    return ClipSet(clips=clips, split=split)


def frames_and_labels(
    clipset: ClipSet,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a clip set to (frames (N,1,H,W), labels (N,), boxes (N,4)).

    Boxes are normalised to [0, 1] by frame size, matching the detection
    head's output parameterisation.
    """
    frames: List[np.ndarray] = []
    labels: List[int] = []
    boxes: List[np.ndarray] = []
    for clip in clipset.clips:
        _, height, width = clip.frames.shape
        scale = np.array([width, height, width, height], dtype=np.float64)
        for t in range(len(clip)):
            frames.append(clip.frames[t][None, :, :])
            ann = clip.annotations[t]
            labels.append(ann.class_id)
            boxes.append(np.asarray(ann.box) / scale)
    return (
        np.stack(frames),
        np.asarray(labels, dtype=np.int64),
        np.stack(boxes),
    )


def training_arrays(
    clips_per_scenario: int = 4,
    num_frames: int = 12,
    scenarios: Optional[Sequence[str]] = None,
) -> Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Convenience: train and val splits flattened to arrays."""
    return {
        split: frames_and_labels(
            build_clipset(
                split,
                clips_per_scenario=clips_per_scenario,
                scenarios=scenarios,
                num_frames=num_frames,
            )
        )
        for split in ("train", "val")
    }
