"""Scenario library for synthetic video generation.

Each scenario stresses one of the phenomena the paper identifies:

* ``linear_motion`` — block-translational motion, AMC's best case
  (Condition 1 & 2 of §II-B approximately hold).
* ``camera_pan`` — global translation; every receptive field moves, which is
  exactly what RFBME and warping model best.
* ``occlusion`` — a second object crosses the target, creating "new pixels"
  (de-occlusion) that violate Condition 1 and should trigger adaptive key
  frames.
* ``lighting`` — brightness drift: change without motion, another
  Condition 1 violation.
* ``chaotic`` — frequent random direction changes and fast motion: hard for
  prediction, exercises the accuracy/efficiency knob.
* ``slow`` / ``static`` — near-redundant video where predicted frames are
  almost free accuracy-wise.

Scenario parameters were chosen so that, mirroring the paper, predicted
frames one frame (33 ms) after a key frame are near-lossless while frames
six frames (198 ms) out show visible degradation without motion
compensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "SceneConfig",
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "frozen_scene",
]


@dataclass(frozen=True)
class SceneConfig:
    """Parameters for one synthetic clip family."""

    name: str
    num_frames: int = 24
    height: int = 64
    width: int = 64
    #: sprite edge length range in pixels (inclusive).
    sprite_size: Tuple[int, int] = (18, 26)
    #: object speed range, pixels/frame.
    speed: Tuple[float, float] = (1.0, 2.5)
    #: per-frame probability of picking a new random direction.
    direction_change_prob: float = 0.0
    #: per-frame acceleration noise (pixels/frame^2).
    acceleration: float = 0.0
    #: camera pan speed range, pixels/frame (0 disables panning).
    pan_speed: Tuple[float, float] = (0.0, 0.0)
    #: whether a second sprite crosses the scene and occludes the target.
    occluder: bool = False
    #: amplitude of sinusoidal global brightness drift (0 disables).
    lighting_amplitude: float = 0.0
    #: period of the lighting drift, frames.
    lighting_period: float = 12.0
    #: additive Gaussian sensor noise sigma.
    noise_sigma: float = 0.01
    #: background texture kind (see :func:`repro.video.sprites.background_texture`).
    background: str = "noise"
    #: amplitude of background texture around mid-grey. Kept well below the
    #: sprite contrast so the moving object, not the (mostly static)
    #: background, dominates block-matching costs — the synthetic analogue
    #: of a camera tracking a subject against a smooth backdrop.
    background_contrast: float = 0.25
    #: intensity contrast between sprite texture and background.
    sprite_contrast: float = 0.9
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.num_frames < 1:
            raise ValueError(f"num_frames must be >= 1, got {self.num_frames}")
        if self.sprite_size[0] > self.sprite_size[1]:
            raise ValueError(f"bad sprite_size range {self.sprite_size}")
        if self.sprite_size[1] >= min(self.height, self.width):
            raise ValueError("sprite larger than frame")
        if self.speed[0] > self.speed[1] or self.speed[0] < 0:
            raise ValueError(f"bad speed range {self.speed}")


SCENARIOS: Dict[str, SceneConfig] = {
    "linear_motion": SceneConfig(name="linear_motion"),
    "camera_pan": SceneConfig(
        name="camera_pan", speed=(0.5, 1.5), pan_speed=(1.0, 2.5)
    ),
    "occlusion": SceneConfig(name="occlusion", occluder=True, speed=(0.8, 2.0)),
    "lighting": SceneConfig(
        name="lighting", lighting_amplitude=0.15, speed=(0.5, 1.5)
    ),
    "chaotic": SceneConfig(
        name="chaotic",
        speed=(2.0, 4.0),
        direction_change_prob=0.25,
        acceleration=0.5,
    ),
    "slow": SceneConfig(name="slow", speed=(0.2, 0.6)),
    "static": SceneConfig(name="static", speed=(0.0, 0.0), noise_sigma=0.005),
}


def frozen_scene(name: str = "frozen", **overrides) -> SceneConfig:
    """A scene whose frames are *byte-identical* across time.

    Every time-varying knob is zeroed — object speed, sensor noise,
    lighting drift, camera pan — so the generator renders the same frame
    for every index.  This is deliberately *not* in :data:`SCENARIOS`
    (the library ``static`` scenario keeps sensor noise, because real
    "static" cameras still have it); it exists for duplicate-frame
    traffic — repeated-scene workloads that exercise the
    content-addressed prefix cache with guaranteed digests collisions.
    ``overrides`` forward to :class:`SceneConfig` (geometry, contrast).
    """
    params = dict(
        speed=(0.0, 0.0),
        noise_sigma=0.0,
        lighting_amplitude=0.0,
        pan_speed=(0.0, 0.0),
        direction_change_prob=0.0,
        acceleration=0.0,
    )
    params.update(overrides)
    return SceneConfig(name=name, **params)


def scenario(name: str) -> SceneConfig:
    """Look up a scenario config by name."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; have {sorted(SCENARIOS)}")
    return SCENARIOS[name]


def scenario_names():
    """All scenario names, in a stable order."""
    return sorted(SCENARIOS)
