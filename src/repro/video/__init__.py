"""Synthetic annotated video substrate (YouTube-BB stand-in)."""

from .dataset import ClipSet, build_clipset, frames_and_labels, training_arrays
from .generator import FRAME_PERIOD_MS, Annotation, VideoClip, generate_clip
from .scenes import SCENARIOS, SceneConfig, frozen_scene, scenario, scenario_names
from .sprites import NUM_CLASSES, SHAPE_NAMES

__all__ = [
    "ClipSet",
    "build_clipset",
    "frames_and_labels",
    "training_arrays",
    "FRAME_PERIOD_MS",
    "Annotation",
    "VideoClip",
    "generate_clip",
    "SCENARIOS",
    "SceneConfig",
    "frozen_scene",
    "scenario",
    "scenario_names",
    "NUM_CLASSES",
    "SHAPE_NAMES",
]
