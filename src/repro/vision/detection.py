"""Object-detection metrics — IoU and mean average precision.

The paper scores its detection networks (Faster16, FasterM) with mAP on
YouTube-BB. Our substrate is single-object-per-frame, so each frame
contributes one ground-truth box and one prediction (the detection head's
class scores + regressed box); mAP is computed the standard way — per-class
all-point-interpolated AP over confidence-ranked predictions with an IoU
matching threshold — so multi-detection inputs also work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Detection", "GroundTruth", "iou", "average_precision", "mean_average_precision"]

#: The standard PASCAL-style match threshold.
DEFAULT_IOU_THRESHOLD = 0.5


@dataclass(frozen=True)
class Detection:
    """One predicted box: (cx, cy, w, h) plus class and confidence.

    ``frame_id`` ties predictions to their ground truth across a whole
    evaluation set.
    """

    frame_id: int
    class_id: int
    confidence: float
    box: Tuple[float, float, float, float]


@dataclass(frozen=True)
class GroundTruth:
    """One reference box."""

    frame_id: int
    class_id: int
    box: Tuple[float, float, float, float]


def _to_corners(box: Sequence[float]) -> Tuple[float, float, float, float]:
    cx, cy, w, h = box
    if w < 0 or h < 0:
        raise ValueError(f"box has negative extent: {box}")
    return (cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)


def iou(box_a: Sequence[float], box_b: Sequence[float]) -> float:
    """Intersection-over-union of two (cx, cy, w, h) boxes."""
    ax0, ay0, ax1, ay1 = _to_corners(box_a)
    bx0, by0, bx1, by1 = _to_corners(box_b)
    ix0, iy0 = max(ax0, bx0), max(ay0, by0)
    ix1, iy1 = min(ax1, bx1), min(ay1, by1)
    iw, ih = max(ix1 - ix0, 0.0), max(iy1 - iy0, 0.0)
    inter = iw * ih
    union = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) - inter
    if union <= 0:
        return 0.0
    return inter / union


def average_precision(
    detections: Sequence[Detection],
    truths: Sequence[GroundTruth],
    iou_threshold: float = DEFAULT_IOU_THRESHOLD,
) -> float:
    """All-point-interpolated AP for a single class.

    ``detections`` and ``truths`` must already be filtered to one class.
    Each ground truth can match at most one detection (highest-confidence
    first); unmatched detections are false positives.
    """
    if not truths:
        return 0.0
    ranked = sorted(detections, key=lambda d: -d.confidence)
    truth_by_frame: Dict[int, List[GroundTruth]] = {}
    for truth in truths:
        truth_by_frame.setdefault(truth.frame_id, []).append(truth)
    matched: set = set()

    tp = np.zeros(len(ranked))
    fp = np.zeros(len(ranked))
    for rank, det in enumerate(ranked):
        candidates = truth_by_frame.get(det.frame_id, [])
        best_iou, best = 0.0, None
        for truth in candidates:
            if id(truth) in matched:
                continue
            overlap = iou(det.box, truth.box)
            if overlap > best_iou:
                best_iou, best = overlap, truth
        if best is not None and best_iou >= iou_threshold:
            matched.add(id(best))
            tp[rank] = 1
        else:
            fp[rank] = 1

    tp_cum = tp.cumsum()
    fp_cum = fp.cumsum()
    recall = tp_cum / len(truths)
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1e-12)

    # All-point interpolation: envelope of precision from the right.
    recall = np.concatenate([[0.0], recall, [1.0]])
    precision = np.concatenate([[0.0], precision, [0.0]])
    for i in range(len(precision) - 2, -1, -1):
        precision[i] = max(precision[i], precision[i + 1])
    changes = np.where(recall[1:] != recall[:-1])[0]
    return float(((recall[changes + 1] - recall[changes]) * precision[changes + 1]).sum())


def mean_average_precision(
    detections: Sequence[Detection],
    truths: Sequence[GroundTruth],
    iou_threshold: float = DEFAULT_IOU_THRESHOLD,
) -> float:
    """mAP: mean per-class AP over the classes present in the ground truth."""
    classes = sorted({truth.class_id for truth in truths})
    if not classes:
        return 0.0
    aps = []
    for class_id in classes:
        aps.append(
            average_precision(
                [d for d in detections if d.class_id == class_id],
                [t for t in truths if t.class_id == class_id],
                iou_threshold,
            )
        )
    return float(np.mean(aps))
