"""Vision task metrics: top-1 accuracy and mean average precision."""

from .classification import top1_accuracy, topk_accuracy
from .detection import (
    Detection,
    GroundTruth,
    average_precision,
    iou,
    mean_average_precision,
)

__all__ = [
    "top1_accuracy",
    "topk_accuracy",
    "Detection",
    "GroundTruth",
    "average_precision",
    "iou",
    "mean_average_precision",
]
