"""Classification metrics — the paper uses top-1 accuracy for AlexNet."""

from __future__ import annotations

import numpy as np

__all__ = ["top1_accuracy", "topk_accuracy"]


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, K), got {logits.shape}")
    if len(labels) != len(logits):
        raise ValueError(f"{len(logits)} logits vs {len(labels)} labels")
    if len(logits) == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose label is among the top-k scores."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, K), got {logits.shape}")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    if len(logits) == 0:
        return 0.0
    topk = np.argsort(logits, axis=1)[:, -k:]
    return float((topk == labels[:, None]).any(axis=1).mean())
