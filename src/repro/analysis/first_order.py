"""The paper's first-order efficiency model — §IV-A.

Closed-form operation counts comparing the CNN prefix a predicted frame
skips against the motion-estimation work it adds:

* ``prefix MACs`` — summed over conv layers (Faster16 through conv5_3 at
  1000x562: 1.7e11),
* ``unoptimized ops`` — exhaustive receptive-field matching without tile
  reuse (Faster16: ~3e9),
* ``RFBME ops`` — with tile reuse (Faster16: ~1.3e7).

The underlying formulas live in :mod:`repro.hardware.rfbme_ops` (the EVA2
energy model shares them); this module packages them into the §IV-A
report, validated against the paper's three headline numbers in the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.layer_stats import NetworkSpec
from ..hardware.rfbme_ops import SearchParams, rfbme_ops, unoptimized_ops

__all__ = [
    "SearchParams",
    "unoptimized_ops",
    "rfbme_ops",
    "FirstOrderReport",
    "first_order_report",
]


@dataclass(frozen=True)
class FirstOrderReport:
    """Side-by-side prefix-vs-motion-estimation op counts."""

    network: str
    target_layer: str
    prefix_macs: int
    unoptimized_ops: float
    rfbme_ops: float

    @property
    def savings_ratio(self) -> float:
        """Prefix MACs per RFBME add — the paper's ~1e11 vs ~1e7 headline."""
        return self.prefix_macs / self.rfbme_ops

    @property
    def reuse_speedup(self) -> float:
        """Unoptimized vs tile-reuse op ratio."""
        return self.unoptimized_ops / self.rfbme_ops


def first_order_report(
    spec: NetworkSpec,
    target_layer: str,
    rfield_size: int,
    rfield_stride: int,
    search: SearchParams = SearchParams(),
) -> FirstOrderReport:
    """Build the §IV-A comparison for one network spec and target layer."""
    _, height, width = spec.layer(target_layer).out_shape
    return FirstOrderReport(
        network=spec.name,
        target_layer=target_layer,
        prefix_macs=spec.prefix_macs(target_layer),
        unoptimized_ops=unoptimized_ops(width, height, rfield_size, search),
        rfbme_ops=rfbme_ops(width, height, rfield_size, rfield_stride, search),
    )
