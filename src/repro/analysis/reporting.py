"""Plain-text table formatting for benches and examples."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table.

    Numbers are formatted compactly; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e5 or abs(cell) < 1e-3:
                return f"{cell:.3g}"
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return str(cell)

    cells: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
