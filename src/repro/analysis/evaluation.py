"""Task-level evaluation of pipeline outputs against clip ground truth.

Bridges :class:`repro.core.pipeline.PipelineResult` (per-frame network
outputs) and the paper's vision metrics: top-1 accuracy for classification
networks, mAP for detection networks. Detection outputs are decoded from
the head's (class logits, normalised box) layout with the max softmax
probability as confidence.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.pipeline import PipelineResult
from ..nn.functional import softmax
from ..nn.models import split_detection_output
from ..video.generator import VideoClip
from ..vision.classification import top1_accuracy
from ..vision.detection import Detection, GroundTruth, mean_average_precision

__all__ = [
    "decode_detections",
    "classification_score",
    "detection_score",
    "score_pipeline_results",
]


def decode_detections(
    outputs: np.ndarray,
    frame_ids: Sequence[int],
    frame_size: int = 64,
) -> List[Detection]:
    """Decode (N, K+4) head outputs into :class:`Detection` records."""
    if len(outputs) != len(frame_ids):
        raise ValueError(f"{len(outputs)} outputs vs {len(frame_ids)} frame ids")
    logits, boxes = split_detection_output(outputs)
    probs = softmax(logits)
    detections = []
    for row, frame_id in enumerate(frame_ids):
        class_id = int(np.argmax(probs[row]))
        cx, cy, w, h = boxes[row] * frame_size
        detections.append(
            Detection(
                frame_id=frame_id,
                class_id=class_id,
                confidence=float(probs[row, class_id]),
                box=(float(cx), float(cy), float(max(w, 0.0)), float(max(h, 0.0))),
            )
        )
    return detections


def _ground_truths(clips: Sequence[VideoClip]) -> Tuple[List[GroundTruth], int]:
    truths: List[GroundTruth] = []
    frame_id = 0
    for clip in clips:
        for ann in clip.annotations:
            truths.append(GroundTruth(frame_id, ann.class_id, ann.box))
            frame_id += 1
    return truths, frame_id


def classification_score(
    results: Sequence[PipelineResult], clips: Sequence[VideoClip]
) -> float:
    """Top-1 accuracy over all frames of all clips."""
    _check_alignment(results, clips)
    logits = np.concatenate([result.outputs() for result in results])
    labels = np.concatenate(
        [[ann.class_id for ann in clip.annotations] for clip in clips]
    )
    return top1_accuracy(logits, labels)


def detection_score(
    results: Sequence[PipelineResult], clips: Sequence[VideoClip]
) -> float:
    """mAP over all frames of all clips."""
    _check_alignment(results, clips)
    truths, total = _ground_truths(clips)
    outputs = np.concatenate([result.outputs() for result in results])
    detections = decode_detections(
        outputs, list(range(total)), frame_size=clips[0].frames.shape[2]
    )
    return mean_average_precision(detections, truths)


def score_pipeline_results(
    task: str, results: Sequence[PipelineResult], clips: Sequence[VideoClip]
) -> float:
    """Dispatch on task: 'classification' (top-1) or 'detection' (mAP)."""
    if task == "classification":
        return classification_score(results, clips)
    if task == "detection":
        return detection_score(results, clips)
    raise ValueError(f"unknown task {task!r}")


def _check_alignment(
    results: Sequence[PipelineResult], clips: Sequence[VideoClip]
) -> None:
    if len(results) != len(clips):
        raise ValueError(f"{len(results)} results vs {len(clips)} clips")
    for result, clip in zip(results, clips):
        if len(result) != len(clip):
            raise ValueError(
                f"result has {len(result)} frames, clip has {len(clip)}"
            )
