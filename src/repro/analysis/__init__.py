"""Analysis helpers: first-order models and accuracy/efficiency sweeps."""

from .evaluation import (
    classification_score,
    decode_detections,
    detection_score,
    score_pipeline_results,
)
from .first_order import FirstOrderReport, first_order_report
from .tradeoff import (
    DtypePoint,
    SweepPoint,
    TradeoffConfig,
    quantized_tradeoff,
    run_policy,
    select_configs,
    sweep_thresholds,
)

__all__ = [
    "classification_score",
    "decode_detections",
    "detection_score",
    "score_pipeline_results",
    "FirstOrderReport",
    "first_order_report",
    "SweepPoint",
    "TradeoffConfig",
    "DtypePoint",
    "quantized_tradeoff",
    "run_policy",
    "select_configs",
    "sweep_thresholds",
]
