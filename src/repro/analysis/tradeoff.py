"""Accuracy/efficiency trade-off sweeps — Table I and Fig. 15.

The paper's ``hi`` / ``med`` / ``lo`` configurations come from sweeping the
adaptive key-frame threshold on the *validation* set, picking the largest
threshold (fewest key frames) whose accuracy drop stays under a budget
(<0.5%, <1%, <2%), then reporting accuracy and cost on the *test* set.
This module implements that protocol end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.amc import AMCExecutor
from ..core.keyframe import (
    KeyFramePolicy,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
)
from ..core.pipeline import EVA2Pipeline
from ..video.generator import VideoClip
from .evaluation import score_pipeline_results

__all__ = ["SweepPoint", "TradeoffConfig", "sweep_thresholds", "select_configs"]

#: Policy constructors by metric name (Fig. 15 compares the two).
POLICY_FACTORIES: Dict[str, Callable[[float], KeyFramePolicy]] = {
    "match_error": lambda threshold: MatchErrorPolicy(threshold),
    "motion_magnitude": lambda threshold: MotionMagnitudePolicy(threshold),
}


@dataclass(frozen=True)
class SweepPoint:
    """One threshold's outcome on a clip set."""

    threshold: float
    key_fraction: float
    accuracy: float


@dataclass(frozen=True)
class TradeoffConfig:
    """A named operating point (Table I row)."""

    name: str
    threshold: float
    key_fraction: float
    accuracy: float


def run_policy(
    executor: AMCExecutor,
    policy: KeyFramePolicy,
    clips: Sequence[VideoClip],
    task: str,
):
    """Run ``policy`` over all clips; return (accuracy, key_fraction)."""
    pipeline = EVA2Pipeline(executor, policy)
    results = pipeline.run_clips(clips)
    accuracy = score_pipeline_results(task, results, clips)
    total = sum(len(result) for result in results)
    keys = sum(result.num_key_frames for result in results)
    return accuracy, keys / max(total, 1)


def sweep_thresholds(
    executor: AMCExecutor,
    clips: Sequence[VideoClip],
    task: str,
    thresholds: Sequence[float],
    metric: str = "match_error",
) -> List[SweepPoint]:
    """Evaluate every threshold of an adaptive policy on ``clips``."""
    if metric not in POLICY_FACTORIES:
        raise ValueError(
            f"metric must be one of {sorted(POLICY_FACTORIES)}, got {metric!r}"
        )
    points = []
    for threshold in thresholds:
        accuracy, key_fraction = run_policy(
            executor, POLICY_FACTORIES[metric](threshold), clips, task
        )
        points.append(
            SweepPoint(
                threshold=float(threshold),
                key_fraction=key_fraction,
                accuracy=accuracy,
            )
        )
    return points


def select_configs(
    points: Sequence[SweepPoint],
    baseline_accuracy: float,
    budgets: Optional[Dict[str, float]] = None,
) -> Dict[str, TradeoffConfig]:
    """Pick Table I's hi/med/lo configs from validation sweep points.

    For each budget, choose the point with the fewest key frames whose
    accuracy drop is within budget; fall back to the most accurate point
    when none qualifies.
    """
    if not points:
        raise ValueError("no sweep points to select from")
    if budgets is None:
        budgets = {"hi": 0.005, "med": 0.01, "lo": 0.02}

    configs = {}
    for name, budget in budgets.items():
        eligible = [
            p for p in points if baseline_accuracy - p.accuracy <= budget
        ]
        if eligible:
            chosen = min(eligible, key=lambda p: p.key_fraction)
        else:
            chosen = max(points, key=lambda p: p.accuracy)
        configs[name] = TradeoffConfig(
            name=name,
            threshold=chosen.threshold,
            key_fraction=chosen.key_fraction,
            accuracy=chosen.accuracy,
        )
    return configs
