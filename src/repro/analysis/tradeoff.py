"""Accuracy/efficiency trade-off sweeps — Table I and Fig. 15.

The paper's ``hi`` / ``med`` / ``lo`` configurations come from sweeping the
adaptive key-frame threshold on the *validation* set, picking the largest
threshold (fewest key frames) whose accuracy drop stays under a budget
(<0.5%, <1%, <2%), then reporting accuracy and cost on the *test* set.
This module implements that protocol end to end.

:func:`quantized_tradeoff` extends the same accuracy-for-efficiency story
to the quantized inference lanes: one workload run per plan family, each
scored against the float64 reference (max-abs error, top-1 agreement)
next to its compute cost (measured host throughput plus the estimated
MAC-energy and memory-traffic ratios of an EVA2-style datapath at the
family's bit widths) — the knob EVA2 itself turns with its 16-bit
datapath, §IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.amc import AMCExecutor
from ..core.keyframe import (
    KeyFramePolicy,
    MatchErrorPolicy,
    MotionMagnitudePolicy,
)
from ..core.pipeline import EVA2Pipeline
from ..video.generator import VideoClip
from .evaluation import score_pipeline_results

__all__ = [
    "SweepPoint",
    "TradeoffConfig",
    "sweep_thresholds",
    "select_configs",
    "DtypePoint",
    "quantized_tradeoff",
]

#: Policy constructors by metric name (Fig. 15 compares the two).
POLICY_FACTORIES: Dict[str, Callable[[float], KeyFramePolicy]] = {
    "match_error": lambda threshold: MatchErrorPolicy(threshold),
    "motion_magnitude": lambda threshold: MotionMagnitudePolicy(threshold),
}


@dataclass(frozen=True)
class SweepPoint:
    """One threshold's outcome on a clip set."""

    threshold: float
    key_fraction: float
    accuracy: float


@dataclass(frozen=True)
class TradeoffConfig:
    """A named operating point (Table I row)."""

    name: str
    threshold: float
    key_fraction: float
    accuracy: float


def run_policy(
    executor: AMCExecutor,
    policy: KeyFramePolicy,
    clips: Sequence[VideoClip],
    task: str,
):
    """Run ``policy`` over all clips; return (accuracy, key_fraction)."""
    pipeline = EVA2Pipeline(executor, policy)
    results = pipeline.run_clips(clips)
    accuracy = score_pipeline_results(task, results, clips)
    total = sum(len(result) for result in results)
    keys = sum(result.num_key_frames for result in results)
    return accuracy, keys / max(total, 1)


def sweep_thresholds(
    executor: AMCExecutor,
    clips: Sequence[VideoClip],
    task: str,
    thresholds: Sequence[float],
    metric: str = "match_error",
) -> List[SweepPoint]:
    """Evaluate every threshold of an adaptive policy on ``clips``."""
    if metric not in POLICY_FACTORIES:
        raise ValueError(
            f"metric must be one of {sorted(POLICY_FACTORIES)}, got {metric!r}"
        )
    points = []
    for threshold in thresholds:
        accuracy, key_fraction = run_policy(
            executor, POLICY_FACTORIES[metric](threshold), clips, task
        )
        points.append(
            SweepPoint(
                threshold=float(threshold),
                key_fraction=key_fraction,
                accuracy=accuracy,
            )
        )
    return points


def select_configs(
    points: Sequence[SweepPoint],
    baseline_accuracy: float,
    budgets: Optional[Dict[str, float]] = None,
) -> Dict[str, TradeoffConfig]:
    """Pick Table I's hi/med/lo configs from validation sweep points.

    For each budget, choose the point with the fewest key frames whose
    accuracy drop is within budget; fall back to the most accurate point
    when none qualifies.
    """
    if not points:
        raise ValueError("no sweep points to select from")
    if budgets is None:
        budgets = {"hi": 0.005, "med": 0.01, "lo": 0.02}

    configs = {}
    for name, budget in budgets.items():
        eligible = [
            p for p in points if baseline_accuracy - p.accuracy <= budget
        ]
        if eligible:
            chosen = min(eligible, key=lambda p: p.key_fraction)
        else:
            chosen = max(points, key=lambda p: p.accuracy)
        configs[name] = TradeoffConfig(
            name=name,
            threshold=chosen.threshold,
            key_fraction=chosen.key_fraction,
            accuracy=chosen.accuracy,
        )
    return configs


# -------------------------------------------------------------------- #
# quantized-lane accuracy vs compute


@dataclass(frozen=True)
class DtypePoint:
    """One plan family's accuracy-vs-compute outcome on a workload.

    Accuracy is measured against the float64 reference run (so the
    float64 row is exact by construction); compute pairs the measured
    host throughput with the estimated hardware ratios of the family's
    bit widths (1.0 for the float lanes — nothing narrows).
    ``within_tolerance`` reports whether the measured max-abs error met
    the family's calibrated contract bound (trivially true for float
    lanes, whose contract is bit-identity with themselves).
    """

    dtype: str
    max_abs_error: float
    top1_agreement: float
    frames_per_second: float
    mac_energy_ratio: float
    traffic_ratio: float
    within_tolerance: bool


def quantized_tradeoff(
    spec,
    clips: Sequence[VideoClip],
    dtypes: Sequence[str] = ("float64", "float32", "int8", "q16"),
) -> List[DtypePoint]:
    """Run ``clips`` once per plan family and score each against float64.

    ``spec`` is a :class:`~repro.runtime.spec.PipelineSpec` whose
    ``dtype`` field is overridden per family (everything else — policy,
    engine, network — held fixed, so the rows differ only in the
    datapath width).  The float64 reference always runs, even when not
    in ``dtypes``.
    """
    from ..nn.inference import QUANT_DTYPES
    from ..runtime.batched import run_workload

    spec.warm()
    reference = run_workload(replace(spec, dtype="float64"), clips)
    ref_out = reference.outputs()
    points = []
    for dtype in dtypes:
        if dtype == "float64":
            result, out = reference, ref_out
        else:
            result = run_workload(replace(spec, dtype=dtype), clips)
            out = result.outputs()
        err = float(np.max(np.abs(out - ref_out))) if out.size else 0.0
        top1 = (
            float(np.mean(out.argmax(axis=1) == ref_out.argmax(axis=1)))
            if out.size else 1.0
        )
        savings = result.quant_savings
        if dtype in QUANT_DTYPES:
            plan = spec.shared_network().inference_plan(1, dtype)
            within = err <= plan.tolerance.max_abs_error
        else:
            within = True
        points.append(
            DtypePoint(
                dtype=dtype,
                max_abs_error=err,
                top1_agreement=top1,
                frames_per_second=result.frames_per_second,
                mac_energy_ratio=(
                    savings.mac_energy_ratio if savings else 1.0
                ),
                traffic_ratio=savings.traffic_ratio if savings else 1.0,
                within_tolerance=within,
            )
        )
    return points
