"""Shared cost accounting type for the hardware models."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cost"]


@dataclass(frozen=True)
class Cost:
    """A (latency, energy) pair. Addition composes sequential work."""

    latency_ms: float
    energy_mj: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.latency_ms + other.latency_ms, self.energy_mj + other.energy_mj)

    def __mul__(self, factor: float) -> "Cost":
        return Cost(self.latency_ms * factor, self.energy_mj * factor)

    __rmul__ = __mul__

    @staticmethod
    def zero() -> "Cost":
        return Cost(0.0, 0.0)

    @staticmethod
    def sum(costs) -> "Cost":
        total = Cost.zero()
        for cost in costs:
            total = total + cost
        return total
