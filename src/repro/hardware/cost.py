"""Shared cost accounting type for the hardware models.

Every block of the paper's VPU model (§IV-B) reports its contribution as
a (latency, energy) pair; frame-level numbers like Fig. 13's energy bars
and Table IV's latencies are sums of these.  ``Cost`` addition composes
sequential work, which is how :mod:`repro.hardware.vpu` rolls layer and
EVA2-stage costs into per-frame totals.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cost"]


@dataclass(frozen=True)
class Cost:
    """A (latency, energy) pair. Addition composes sequential work."""

    latency_ms: float
    energy_mj: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.latency_ms + other.latency_ms, self.energy_mj + other.energy_mj)

    def __mul__(self, factor: float) -> "Cost":
        return Cost(self.latency_ms * factor, self.energy_mj * factor)

    __rmul__ = __mul__

    @staticmethod
    def zero() -> "Cost":
        return Cost(0.0, 0.0)

    @staticmethod
    def sum(costs) -> "Cost":
        total = Cost.zero()
        for cost in costs:
            total = total + cost
        return total
