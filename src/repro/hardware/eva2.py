"""EVA2 unit hardware model — paper §III, §IV-B.

Models the Embedded Vision Accelerator Accelerator's area and its
per-frame energy/latency contributions:

* **area** — the two eDRAM pixel buffers, the eDRAM sparse activation
  buffer, and the synthesized logic (diff tile producer/consumer, warp
  engine, control). The paper reports 2.6 mm2 total with the pixel
  buffers at 54.5% and the activation buffer at 16.0%.
* **motion estimation** — RFBME adder ops (from the §IV-A analytic
  formulas) plus pixel-buffer traffic; one tile-offset comparison per
  7 ns cycle.
* **warp** — bilinear interpolations (Fig. 11 datapath: 8 multiplies + 7
  adds per output), sparsity-proportional because the decoder lanes skip
  shared zero runs (Fig. 10), plus activation-buffer traffic.
* **key-frame overhead** — writing the new frame into a pixel buffer and
  the RLE-encoded target activation into the activation buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .cost import Cost
from .rfbme_ops import SearchParams, rfbme_ops
from .memory import EDRAM, MemoryTech
from .rle import VALUE_BITS

__all__ = ["EVA2Params", "EVA2Model", "LOGIC_AREA_MM2"]

#: 65 nm datapath energies (pJ): 16-bit fixed-point add and multiply.
ADD16_PJ = 0.05
MULT16_PJ = 0.6

#: One bilinear interpolation: four weighting units (2 multiplies each)
#: plus the combining adder tree (Fig. 11).
INTERP_PJ = 8 * MULT16_PJ + 7 * ADD16_PJ

#: Synthesized logic + small SRAMs (producer, consumer, warp engine,
#: control). Chosen so the total EVA2 area lands at the paper's 2.6 mm2
#: given the eDRAM buffer areas.
LOGIC_AREA_MM2 = 0.70

#: Fraction of a warp output's cycle spent even when all four decoder
#: lanes skip (min-unit bookkeeping): the zero-skip path is not free.
_WARP_SKIP_OVERHEAD = 0.05


@dataclass(frozen=True)
class EVA2Params:
    """Static configuration of one EVA2 deployment."""

    frame_height: int
    frame_width: int
    #: receptive field of the target layer.
    rfield_size: int
    rfield_stride: int
    #: target activation geometry.
    grid_height: int
    grid_width: int
    channels: int
    #: nonzero fraction of the target activation (post-ReLU sparsity);
    #: 0.2 reproduces the paper's >80% storage saving.
    density: float = 0.2
    search: SearchParams = field(default_factory=SearchParams)
    clock_ns: float = 7.0

    def __post_init__(self):
        if min(self.frame_height, self.frame_width) < 1:
            raise ValueError(f"bad frame dims in {self}")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {self.density}")
        if self.rfield_stride < 1 or self.rfield_size < self.rfield_stride:
            raise ValueError(
                "rfield_size must be >= rfield_stride >= 1, got "
                f"{self.rfield_size}/{self.rfield_stride}"
            )


class EVA2Model:
    """Area and per-frame cost model of the EVA2 unit."""

    def __init__(self, params: EVA2Params, memory: MemoryTech = EDRAM):
        self.params = params
        self.memory = memory

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #
    @property
    def frame_bytes(self) -> int:
        """One 8-bit grayscale frame."""
        return self.params.frame_height * self.params.frame_width

    @property
    def activation_values(self) -> int:
        return self.params.grid_height * self.params.grid_width * self.params.channels

    @property
    def dense_activation_bytes(self) -> int:
        return self.activation_values * VALUE_BITS // 8

    @property
    def sparse_activation_bytes(self) -> int:
        """Buffer sizing: RLE storage scales with density (plus gap field
        overhead of 4 bits per 16-bit entry)."""
        entry_bits = VALUE_BITS + 4
        return int(self.activation_values * self.params.density * entry_bits / 8)

    @property
    def num_tiles(self) -> int:
        stride = self.params.rfield_stride
        return (self.params.frame_height // stride) * (self.params.frame_width // stride)

    @property
    def tile_bytes(self) -> int:
        return self.params.rfield_stride**2

    @property
    def search_offsets(self) -> int:
        return int(self.params.search.offsets_squared)

    # ------------------------------------------------------------------ #
    # area
    # ------------------------------------------------------------------ #
    def area_breakdown(self) -> Dict[str, float]:
        """mm2 per component, plus the total (paper Fig. 12: 2.6 mm2)."""
        pixel = self.memory.area_mm2(2 * self.frame_bytes)
        activation = self.memory.area_mm2(self.sparse_activation_bytes)
        total = pixel + activation + LOGIC_AREA_MM2
        return {
            "pixel_buffers_mm2": pixel,
            "activation_buffer_mm2": activation,
            "logic_mm2": LOGIC_AREA_MM2,
            "total_mm2": total,
        }

    @property
    def area_mm2(self) -> float:
        return self.area_breakdown()["total_mm2"]

    # ------------------------------------------------------------------ #
    # per-frame costs
    # ------------------------------------------------------------------ #
    def motion_estimation_cost(self) -> Cost:
        """RFBME: runs on every frame once a key frame exists."""
        adds = rfbme_ops(
            self.params.grid_width,
            self.params.grid_height,
            self.params.rfield_size,
            self.params.rfield_stride,
            self.params.search,
        )
        comparisons = self.num_tiles * self.search_offsets
        # Traffic: each tile read once from the new-frame buffer (then held
        # in registers), and one key-frame window read per comparison.
        traffic_bytes = self.num_tiles * self.tile_bytes + comparisons * self.tile_bytes
        energy_pj = adds * ADD16_PJ + self.memory.read_energy_pj_per_byte * traffic_bytes
        cycles = comparisons  # one tile comparison per cycle; consumer pipelined
        return Cost(
            latency_ms=cycles * self.params.clock_ns * 1e-6,
            energy_mj=energy_pj * 1e-9,
        )

    def warp_cost(self) -> Cost:
        """Motion compensation: sparsity-proportional interpolation."""
        outputs = self.activation_values
        effective = outputs * (self.params.density + _WARP_SKIP_OVERHEAD)
        interp_energy_pj = outputs * self.params.density * INTERP_PJ
        # Four decoder lanes stream the encoded activation once each.
        traffic_bytes = 4 * self.sparse_activation_bytes
        energy_pj = interp_energy_pj + self.memory.read_energy_pj_per_byte * traffic_bytes
        return Cost(
            latency_ms=effective * self.params.clock_ns * 1e-6,
            energy_mj=energy_pj * 1e-9,
        )

    def key_frame_store_cost(self) -> Cost:
        """Key frames: write the frame and the RLE activation to eDRAM."""
        write_bytes = self.frame_bytes + self.sparse_activation_bytes
        energy_pj = self.memory.write_energy_pj_per_byte * write_bytes
        cycles = write_bytes / max(self.params.rfield_stride, 1)  # wide port
        return Cost(
            latency_ms=cycles * self.params.clock_ns * 1e-6,
            energy_mj=energy_pj * 1e-9,
        )

    def predicted_frame_cost(self) -> Cost:
        """EVA2's share of one predicted frame: ME + warp."""
        return self.motion_estimation_cost() + self.warp_cost()

    def key_frame_cost(self) -> Cost:
        """EVA2's share of one key frame: ME (for the decision) + stores."""
        return self.motion_estimation_cost() + self.key_frame_store_cost()
