"""Q-format fixed-point arithmetic.

EVA2's warp engine computes bilinear interpolation in 16-bit fixed point
(paper §III-B: "shifts the final result back to a 16-bit fixed-point
representation"). This module models that datapath bit-exactly: values are
held as integers scaled by 2^frac_bits, multiplies produce wide
intermediates, and results are shifted back with saturation — the same
structure as the paper's weighting units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QFormat", "Q8_8", "UQ0_16"]


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``int_bits``.``frac_bits`` split.

    Total width is ``int_bits + frac_bits`` plus an implicit sign bit when
    ``signed`` is true. All conversions saturate rather than wrap: the warp
    engine's adders are saturating, and wrapping would inject enormous
    errors into warped activations.
    """

    int_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self):
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ValueError("bit widths must be non-negative")
        if self.int_bits + self.frac_bits == 0:
            raise ValueError("format must have at least one bit")

    @property
    def total_bits(self) -> int:
        """Storage width including the sign bit."""
        return self.int_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    @property
    def max_raw(self) -> int:
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def min_raw(self) -> int:
        return -(1 << (self.int_bits + self.frac_bits)) if self.signed else 0

    @property
    def max_value(self) -> float:
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable increment."""
        return 1.0 / self.scale

    # ------------------------------------------------------------------ #
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values → raw integer representation (round-to-nearest,
        saturating)."""
        raw = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(raw, self.min_raw, self.max_raw).astype(np.int64)

    def dequantize(self, raw: np.ndarray) -> np.ndarray:
        """Raw integers → real values."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize — the value the hardware would hold."""
        return self.dequantize(self.quantize(values))

    def multiply(self, raw_a: np.ndarray, raw_b: np.ndarray) -> np.ndarray:
        """Fixed-point multiply: wide intermediate, shift back, saturate.

        Mirrors the warp engine's weighting units, which compute wide
        products and shift the sum back to 16 bits (paper Fig. 11).
        """
        wide = np.asarray(raw_a, dtype=np.int64) * np.asarray(raw_b, dtype=np.int64)
        shifted = wide >> self.frac_bits
        return np.clip(shifted, self.min_raw, self.max_raw)

    def add(self, raw_a: np.ndarray, raw_b: np.ndarray) -> np.ndarray:
        """Saturating fixed-point addition."""
        total = np.asarray(raw_a, dtype=np.int64) + np.asarray(raw_b, dtype=np.int64)
        return np.clip(total, self.min_raw, self.max_raw)

    def quantization_error(self, values: np.ndarray) -> float:
        """Max absolute round-trip error over ``values``."""
        return float(np.max(np.abs(self.roundtrip(values) - np.asarray(values))))


#: The warp engine's activation format: 16-bit signed, 8 integer / 7 frac.
Q8_8 = QFormat(int_bits=8, frac_bits=7, signed=True)

#: Motion-vector fractional bits (u, v in [0, 1)): unsigned pure fraction.
UQ0_16 = QFormat(int_bits=0, frac_bits=16, signed=False)
