"""Q-format fixed-point arithmetic.

EVA2's warp engine computes bilinear interpolation in 16-bit fixed point
(paper §III-B: "shifts the final result back to a 16-bit fixed-point
representation"). This module models that datapath bit-exactly: values are
held as integers scaled by 2^frac_bits, multiplies produce wide
intermediates, and results are shifted back with saturation — the same
structure as the paper's weighting units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

__all__ = [
    "QFormat",
    "Q8_8",
    "UQ0_16",
    "QuantSavings",
    "mac_energy_pj",
    "estimate_quantized_savings",
]


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``int_bits``.``frac_bits`` split.

    Total width is ``int_bits + frac_bits`` plus an implicit sign bit when
    ``signed`` is true. All conversions saturate rather than wrap: the warp
    engine's adders are saturating, and wrapping would inject enormous
    errors into warped activations.
    """

    int_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self):
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ValueError("bit widths must be non-negative")
        if self.int_bits + self.frac_bits == 0:
            raise ValueError("format must have at least one bit")

    @property
    def total_bits(self) -> int:
        """Storage width including the sign bit."""
        return self.int_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    @property
    def max_raw(self) -> int:
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def min_raw(self) -> int:
        return -(1 << (self.int_bits + self.frac_bits)) if self.signed else 0

    @property
    def max_value(self) -> float:
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable increment."""
        return 1.0 / self.scale

    # ------------------------------------------------------------------ #
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values → raw integer representation (round-to-nearest,
        saturating)."""
        raw = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(raw, self.min_raw, self.max_raw).astype(np.int64)

    def dequantize(self, raw: np.ndarray) -> np.ndarray:
        """Raw integers → real values."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize — the value the hardware would hold."""
        return self.dequantize(self.quantize(values))

    def multiply(self, raw_a: np.ndarray, raw_b: np.ndarray) -> np.ndarray:
        """Fixed-point multiply: wide intermediate, shift back, saturate.

        Mirrors the warp engine's weighting units, which compute wide
        products and shift the sum back to 16 bits (paper Fig. 11).
        """
        wide = np.asarray(raw_a, dtype=np.int64) * np.asarray(raw_b, dtype=np.int64)
        shifted = wide >> self.frac_bits
        return np.clip(shifted, self.min_raw, self.max_raw)

    def add(self, raw_a: np.ndarray, raw_b: np.ndarray) -> np.ndarray:
        """Saturating fixed-point addition."""
        total = np.asarray(raw_a, dtype=np.int64) + np.asarray(raw_b, dtype=np.int64)
        return np.clip(total, self.min_raw, self.max_raw)

    def quantization_error(self, values: np.ndarray) -> float:
        """Max absolute round-trip error over ``values``."""
        return float(np.max(np.abs(self.roundtrip(values) - np.asarray(values))))


#: The warp engine's activation format: 16-bit signed, 8 integer / 7 frac.
Q8_8 = QFormat(int_bits=8, frac_bits=7, signed=True)

#: Motion-vector fractional bits (u, v in [0, 1)): unsigned pure fraction.
UQ0_16 = QFormat(int_bits=0, frac_bits=16, signed=False)


# --------------------------------------------------------------------- #
# quantized-lane cost model

#: Mantissa width of a float32 multiply — the effective multiplier the
#: float lanes pay per MAC (exponent/normalisation overhead is folded
#: into :func:`mac_energy_pj`'s float handling below).
_FLOAT32_MANTISSA_BITS = 24


def mac_energy_pj(weight_bits: int, act_bits: int, floating: bool = False) -> float:
    """First-order energy of one multiply-accumulate, in picojoules.

    Anchored to the 16-bit warp-engine datapath constants
    (:data:`repro.hardware.eva2.MULT16_PJ` / ``ADD16_PJ``): the
    multiplier scales with the *product* of its operand widths (array
    multiplier), the accumulate with the accumulator width
    (``weight_bits + act_bits + 8`` carry headroom).  ``floating`` adds
    the alignment/normalisation overhead of a floating-point add —
    first-order 3x the integer add at the same width, consistent with
    published 45/65 nm datapath surveys where an fp32 MAC costs roughly
    an order of magnitude more than an int8 one.
    """
    from .eva2 import ADD16_PJ, MULT16_PJ

    mult = MULT16_PJ * (weight_bits * act_bits) / (16.0 * 16.0)
    acc_bits = weight_bits + act_bits + 8
    add = ADD16_PJ * (acc_bits / 16.0) * (3.0 if floating else 1.0)
    return mult + add


@dataclass(frozen=True)
class QuantSavings:
    """Estimated per-inference cost of a quantized lane vs float32.

    Produced by :func:`estimate_quantized_savings` from layer shapes and
    the lane's bit widths; surfaced on ``WorkloadResult`` /
    ``ServingReport`` so serving reports carry the hardware story next
    to the measured throughput.  Ratios are float32-cost over
    quantized-cost (bigger is better); traffic counts activation bytes
    crossing the inter-layer buffers plus one read of the weights.
    """

    macs: int
    mac_energy_ratio: float
    float_traffic_bytes: int
    quant_traffic_bytes: int
    #: eDRAM access energy saved per inference by the narrower traffic.
    traffic_energy_saved_mj: float

    @property
    def traffic_ratio(self) -> float:
        return self.float_traffic_bytes / max(self.quant_traffic_bytes, 1)


def estimate_quantized_savings(
    layers: Iterable[Tuple[int, int, int, int, int]],
) -> QuantSavings:
    """Aggregate MAC-energy and memory-traffic savings over a network.

    ``layers`` yields one tuple per weighted layer:
    ``(macs, act_values, weight_count, weight_bits, act_bits)`` where
    ``act_values`` counts the layer's *input* activation values (the
    tensor the quantized lane stores at ``act_bits`` instead of 32) and
    the bit widths are the lane's calibrated storage widths.  The
    float32 baseline pays 32 bits for both.  Traffic is priced at the
    eDRAM energies the paper's buffer model uses
    (:data:`repro.hardware.memory.EDRAM`).
    """
    from .memory import EDRAM

    total_macs = 0
    quant_mac_pj = 0.0
    float_mac_pj = 0.0
    float_bytes = 0
    quant_bytes = 0
    for macs, act_values, weight_count, weight_bits, act_bits in layers:
        total_macs += macs
        quant_mac_pj += macs * mac_energy_pj(weight_bits, act_bits)
        float_mac_pj += macs * mac_energy_pj(
            _FLOAT32_MANTISSA_BITS, _FLOAT32_MANTISSA_BITS, floating=True
        )
        float_bytes += 4 * (act_values + weight_count)
        quant_bytes += (act_values * act_bits + weight_count * weight_bits) // 8
    saved = float_bytes - quant_bytes
    return QuantSavings(
        macs=total_macs,
        mac_energy_ratio=float_mac_pj / quant_mac_pj if quant_mac_pj else 1.0,
        float_traffic_bytes=float_bytes,
        quant_traffic_bytes=quant_bytes,
        traffic_energy_saved_mj=EDRAM.read_energy_mj(max(saved, 0)),
    )
