"""Eyeriss-style convolutional layer accelerator cost model.

The paper models its baseline conv accelerator from Eyeriss's published
per-layer measurements, scaling unpublished layers by MAC count (§IV-B:
"the model scales the average layer costs based on the number of multiply–
accumulate operations ... which we find to correlate closely with cost").

We adopt exactly that first-order structure — cost proportional to MACs —
and calibrate the per-MAC constants per network family from the paper's
Table I ``orig`` rows (energy and latency per frame on the unmodified
accelerator). Per-family calibration absorbs the efficiency differences
Eyeriss shows across layer shapes (its AlexNet utilisation differs from
its VGG utilisation). The constants for networks the paper does not report
default to the Faster16-derived values, which are closest to Eyeriss's
published VGG-16 efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EyerissModel", "CONV_CALIBRATION"]


@dataclass(frozen=True)
class ConvCalibration:
    """Per-MAC conv-layer cost constants for one network family."""

    energy_pj_per_mac: float
    latency_ps_per_mac: float


def _calibrate(orig_ms: float, orig_mj: float, conv_macs: float) -> ConvCalibration:
    """Derive constants from a Table I ``orig`` row.

    The ``orig`` rows are dominated by conv layers (the paper notes FC
    energy/latency are orders of magnitude smaller on EIE), so attributing
    the whole row to convs introduces <1% error.
    """
    return ConvCalibration(
        energy_pj_per_mac=orig_mj * 1e9 / conv_macs,
        latency_ps_per_mac=orig_ms * 1e9 / conv_macs,
    )


#: Table I ``orig`` rows: (latency ms, energy mJ); conv MAC counts come
#: from the layer tables so calibration stays exact under spec refinements.
_TABLE1_ORIG = {
    "AlexNet": (115.4, 32.2),
    "Faster16": (4370.1, 1035.5),
    "FasterM": (492.3, 116.7),
}


def _conv_macs(name: str) -> int:
    from .layer_stats import spec_by_name  # local: avoid import at load

    return spec_by_name(name).conv_macs()


CONV_CALIBRATION: Dict[str, ConvCalibration] = {
    name: _calibrate(ms, mj, _conv_macs(name))
    for name, (ms, mj) in _TABLE1_ORIG.items()
}

#: Eyeriss die area on TSMC 65 nm (paper Fig. 12).
EYERISS_AREA_MM2 = 12.2


class EyerissModel:
    """Energy/latency model for convolutional layers."""

    def __init__(self, network_name: str = "Faster16"):
        self.network_name = network_name
        self.calibration = CONV_CALIBRATION.get(
            network_name, CONV_CALIBRATION["Faster16"]
        )

    def energy_mj(self, macs: int) -> float:
        """Energy in millijoules to execute ``macs`` conv MACs."""
        return macs * self.calibration.energy_pj_per_mac * 1e-9

    def latency_ms(self, macs: int) -> float:
        """Latency in milliseconds to execute ``macs`` conv MACs."""
        return macs * self.calibration.latency_ps_per_mac * 1e-9

    @property
    def area_mm2(self) -> float:
        return EYERISS_AREA_MM2
