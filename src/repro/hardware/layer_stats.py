"""Layer tables for the paper's real evaluation networks.

The energy/latency model (like the paper's own FODLAM-style model, §IV-B)
needs only layer *shapes*: MAC counts and weight counts per layer. This
module describes the actual networks the paper benchmarks —

* **AlexNet** at 227x227 (5 conv + 3 FC, with the original's grouped
  convolutions halving conv2/4/5 input channels),
* **Faster16**: VGG-16's 13 conv layers at the paper's 1000x562 input,
  plus Faster R-CNN's RPN convolutions and 4 FC layers,
* **FasterM**: Chatfield et al.'s CNN-M (5 conv layers) at 1000x562 plus
  the same Faster R-CNN additions,

— as declarative specs with shape propagation. The paper's first-order
check (§IV-A): the Faster16 prefix through conv5_3 is 1.7e11 MACs, which
these tables reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "ConvSpec",
    "PoolSpec",
    "FCSpec",
    "NetworkSpec",
    "alexnet_spec",
    "vgg16_spec",
    "faster16_spec",
    "fasterm_spec",
    "spec_by_name",
]


@dataclass(frozen=True)
class ConvSpec:
    """One convolutional layer (possibly grouped)."""

    name: str
    out_channels: int
    kernel: int
    stride: int = 1
    pad: int = 0
    groups: int = 1
    spatial: bool = True

    def out_size(self, in_size: int) -> int:
        return (in_size + 2 * self.pad - self.kernel) // self.stride + 1


@dataclass(frozen=True)
class PoolSpec:
    """One pooling layer."""

    name: str
    field: int
    stride: int
    spatial: bool = True

    def out_size(self, in_size: int) -> int:
        return (in_size - self.field) // self.stride + 1


@dataclass(frozen=True)
class FCSpec:
    """One fully-connected layer.

    ``instances`` models per-region execution in Faster R-CNN: the FC head
    runs once per region proposal (300 at test time), multiplying its MAC
    count but not its weight count.
    """

    name: str
    out_features: int
    in_features: Optional[int] = None  # None: inferred from previous layer
    instances: int = 1
    spatial: bool = False


@dataclass(frozen=True)
class LayerStats:
    """Resolved per-layer statistics."""

    name: str
    kind: str  # 'conv' | 'pool' | 'fc'
    macs: int
    weights: int
    out_shape: Tuple[int, int, int]  # (C, H, W); FC layers use (F, 1, 1)
    spatial: bool


class NetworkSpec:
    """A named sequence of layer specs with resolved statistics."""

    def __init__(self, name: str, input_shape: Tuple[int, int, int], layers: List):
        self.name = name
        self.input_shape = input_shape
        self.layers = list(layers)
        self.stats: List[LayerStats] = self._resolve()

    def _resolve(self) -> List[LayerStats]:
        stats: List[LayerStats] = []
        channels, height, width = self.input_shape
        for spec in self.layers:
            if isinstance(spec, ConvSpec):
                out_h = spec.out_size(height)
                out_w = spec.out_size(width)
                if out_h < 1 or out_w < 1:
                    raise ValueError(f"{self.name}/{spec.name}: output collapsed")
                in_per_group = channels // spec.groups
                macs_per_output = in_per_group * spec.kernel * spec.kernel
                macs = out_h * out_w * spec.out_channels * macs_per_output
                weights = spec.out_channels * macs_per_output
                channels, height, width = spec.out_channels, out_h, out_w
                stats.append(
                    LayerStats(spec.name, "conv", macs, weights,
                               (channels, height, width), spec.spatial)
                )
            elif isinstance(spec, PoolSpec):
                height = spec.out_size(height)
                width = spec.out_size(width)
                stats.append(
                    LayerStats(spec.name, "pool", 0, 0,
                               (channels, height, width), spec.spatial)
                )
            elif isinstance(spec, FCSpec):
                in_features = (
                    spec.in_features
                    if spec.in_features is not None
                    else channels * height * width
                )
                macs = in_features * spec.out_features * spec.instances
                weights = in_features * spec.out_features
                channels, height, width = spec.out_features, 1, 1
                stats.append(
                    LayerStats(spec.name, "fc", macs, weights,
                               (channels, 1, 1), spec.spatial)
                )
            else:
                raise TypeError(f"unknown layer spec {spec!r}")
        return stats

    # -- queries ------------------------------------------------------- #
    def _index(self, layer_name: str) -> int:
        for i, stat in enumerate(self.stats):
            if stat.name == layer_name:
                return i
        raise KeyError(f"no layer {layer_name!r} in {self.name}")

    def conv_macs(self) -> int:
        return sum(s.macs for s in self.stats if s.kind == "conv")

    def fc_macs(self) -> int:
        return sum(s.macs for s in self.stats if s.kind == "fc")

    def total_macs(self) -> int:
        return sum(s.macs for s in self.stats)

    def prefix_macs(self, target: str) -> int:
        """MACs through ``target`` inclusive (the AMC prefix)."""
        idx = self._index(target)
        return sum(s.macs for s in self.stats[: idx + 1])

    def suffix_stats(self, target: str) -> List[LayerStats]:
        """Layers strictly after ``target`` (the AMC suffix)."""
        return self.stats[self._index(target) + 1 :]

    def last_spatial_layer(self) -> str:
        names = [s.name for s in self.stats if s.spatial]
        if not names:
            raise ValueError(f"{self.name} has no spatial layers")
        return names[-1]

    def layer(self, layer_name: str) -> LayerStats:
        return self.stats[self._index(layer_name)]

    def activation_values(self, layer_name: str) -> int:
        c, h, w = self.layer(layer_name).out_shape
        return c * h * w

    def weight_count(self) -> int:
        return sum(s.weights for s in self.stats)

    def receptive_field(self, target: str) -> Tuple[int, int, int]:
        """(size, stride, padding) of ``target``'s outputs w.r.t. the input.

        Same recurrence as :func:`repro.core.receptive_field.propagate`
        (duplicated here to keep the hardware substrate free of core
        dependencies; the test suite cross-checks the two).
        """
        idx = self._index(target)
        size, stride, padding = 1, 1, 0
        for spec in self.layers[: idx + 1]:
            if isinstance(spec, ConvSpec):
                field, layer_stride, pad = spec.kernel, spec.stride, spec.pad
            elif isinstance(spec, PoolSpec):
                field, layer_stride, pad = spec.field, spec.stride, 0
            else:
                raise ValueError(
                    f"receptive field undefined through non-spatial layer "
                    f"{spec.name!r}"
                )
            size = size + (field - 1) * stride
            padding = padding + pad * stride
            stride = stride * layer_stride
        return size, stride, padding


def alexnet_spec() -> NetworkSpec:
    """AlexNet at 227x227 with its original grouped convolutions."""
    return NetworkSpec(
        "AlexNet",
        (3, 227, 227),
        [
            ConvSpec("conv1", 96, kernel=11, stride=4),
            PoolSpec("pool1", 3, 2),
            ConvSpec("conv2", 256, kernel=5, pad=2, groups=2),
            PoolSpec("pool2", 3, 2),
            ConvSpec("conv3", 384, kernel=3, pad=1),
            ConvSpec("conv4", 384, kernel=3, pad=1, groups=2),
            ConvSpec("conv5", 256, kernel=3, pad=1, groups=2),
            PoolSpec("pool5", 3, 2),
            FCSpec("fc6", 4096),
            FCSpec("fc7", 4096),
            FCSpec("fc8", 1000),
        ],
    )


def _vgg16_convs() -> List:
    """The 13 VGG-16 conv layers + 5 pools."""
    cfg = [
        ("conv1_1", 64), ("conv1_2", 64), ("pool1",),
        ("conv2_1", 128), ("conv2_2", 128), ("pool2",),
        ("conv3_1", 256), ("conv3_2", 256), ("conv3_3", 256), ("pool3",),
        ("conv4_1", 512), ("conv4_2", 512), ("conv4_3", 512), ("pool4",),
        ("conv5_1", 512), ("conv5_2", 512), ("conv5_3", 512),
    ]
    layers: List = []
    for entry in cfg:
        if len(entry) == 1:
            layers.append(PoolSpec(entry[0], 2, 2))
        else:
            layers.append(ConvSpec(entry[0], entry[1], kernel=3, pad=1))
    return layers


def vgg16_spec(input_hw: Tuple[int, int] = (224, 224)) -> NetworkSpec:
    """Plain VGG-16 (classification) at the given input size."""
    height, width = input_hw
    return NetworkSpec(
        "VGG-16",
        (3, height, width),
        _vgg16_convs()
        + [
            PoolSpec("pool5", 2, 2),
            FCSpec("fc6", 4096),
            FCSpec("fc7", 4096),
            FCSpec("fc8", 1000),
        ],
    )


#: Faster R-CNN region-proposal count at test time (Ren et al.).
RPN_PROPOSALS = 300

#: Faster R-CNN input resolution used throughout the paper (§IV-A).
FASTER_INPUT_HW = (562, 1000)


def _faster_rcnn_tail(feature_channels: int, roi_pool: int, fc_width: int) -> List:
    """The layers Faster R-CNN adds on a backbone: RPN convs + FC head.

    The RPN's 3x3 conv and the two 1x1 score/regression convs are spatial;
    the per-ROI FC head is not (it runs once per proposal).
    """
    return [
        ConvSpec("rpn_conv", feature_channels, kernel=3, pad=1),
        ConvSpec("rpn_cls", 18, kernel=1),
        ConvSpec("rpn_bbox", 36, kernel=1),
        FCSpec(
            "fc6",
            fc_width,
            in_features=roi_pool * roi_pool * feature_channels,
            instances=RPN_PROPOSALS,
        ),
        FCSpec("fc7", fc_width, in_features=fc_width, instances=RPN_PROPOSALS),
        FCSpec("cls_score", 21, in_features=fc_width, instances=RPN_PROPOSALS),
        FCSpec("bbox_pred", 84, in_features=fc_width, instances=RPN_PROPOSALS),
    ]


def faster16_spec() -> NetworkSpec:
    """Faster R-CNN with the VGG-16 backbone at 1000x562 (the paper's
    Faster16)."""
    return NetworkSpec(
        "Faster16",
        (3,) + FASTER_INPUT_HW,
        _vgg16_convs() + _faster_rcnn_tail(512, roi_pool=7, fc_width=4096),
    )


def fasterm_spec() -> NetworkSpec:
    """Faster R-CNN with the CNN-M backbone at 1000x562 (the paper's
    FasterM). CNN-M: 5 convs, aggressive early striding (Chatfield et
    al.)."""
    backbone = [
        ConvSpec("conv1", 96, kernel=7, stride=2),
        PoolSpec("pool1", 2, 2),
        ConvSpec("conv2", 256, kernel=5, stride=2, pad=1),
        PoolSpec("pool2", 2, 2),
        ConvSpec("conv3", 512, kernel=3, pad=1),
        ConvSpec("conv4", 512, kernel=3, pad=1),
        ConvSpec("conv5", 512, kernel=3, pad=1),
    ]
    return NetworkSpec(
        "FasterM",
        (3,) + FASTER_INPUT_HW,
        backbone + _faster_rcnn_tail(512, roi_pool=6, fc_width=1024),
    )


_SPECS = {
    "alexnet": alexnet_spec,
    "vgg16": vgg16_spec,
    "faster16": faster16_spec,
    "fasterm": fasterm_spec,
}


def spec_by_name(name: str) -> NetworkSpec:
    """Look up a network spec by short name."""
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown network spec {name!r}; have {sorted(_SPECS)}")
    return _SPECS[key]()
