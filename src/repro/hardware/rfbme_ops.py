"""Analytic RFBME operation-count formulas — paper §IV-A.

These are the closed forms the paper uses to compare motion-estimation
cost against the skipped CNN prefix:

    unoptimized ops = (layer_w * layer_h) * (2r/s)^2 * rfield_size^2
    RFBME ops       = unoptimized / rfield_stride^2
                    + (layer_w * layer_h) * (rfield_size / rfield_stride)^2

They live in :mod:`repro.hardware` because the EVA2 energy model costs
motion estimation with them; :mod:`repro.analysis.first_order` wraps them
into the full §IV-A report.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SearchParams", "unoptimized_ops", "rfbme_ops"]


@dataclass(frozen=True)
class SearchParams:
    """RFBME search geometry for the analytic model.

    The paper's Faster16 example implies (2*radius/stride)^2 = 36 search
    offsets; radius 24 / stride 8 is the matching configuration for a
    receptive-field stride of 16.
    """

    search_radius: int = 24
    search_stride: int = 8

    def __post_init__(self):
        if self.search_radius < 1 or self.search_stride < 1:
            raise ValueError(f"invalid search params {self}")

    @property
    def offsets_squared(self) -> float:
        return (2 * self.search_radius / self.search_stride) ** 2


def unoptimized_ops(
    layer_width: int,
    layer_height: int,
    rfield_size: int,
    search: SearchParams,
) -> float:
    """Adds for exhaustive per-receptive-field matching (no tile reuse)."""
    if layer_width < 1 or layer_height < 1 or rfield_size < 1:
        raise ValueError("layer dims and rfield_size must be >= 1")
    return layer_width * layer_height * search.offsets_squared * rfield_size**2


def rfbme_ops(
    layer_width: int,
    layer_height: int,
    rfield_size: int,
    rfield_stride: int,
    search: SearchParams,
) -> float:
    """Adds for RFBME with tile reuse."""
    if rfield_stride < 1:
        raise ValueError(f"rfield_stride must be >= 1, got {rfield_stride}")
    base = unoptimized_ops(layer_width, layer_height, rfield_size, search)
    recombine = layer_width * layer_height * (rfield_size / rfield_stride) ** 2
    return base / rfield_stride**2 + recombine
