"""Whole vision-processing-unit cost model — paper Fig. 5, Fig. 13, Table I.

Composes the three units:

* Eyeriss executes convolutional layers,
* EIE executes fully-connected layers,
* EVA2 performs motion estimation, the key/predicted decision, and
  activation warping.

Frame cost accounting (per paper §III):

* ``orig`` (baseline, no EVA2) — all layers, every frame.
* key frame — all layers plus EVA2's motion-estimation + store overhead.
* predicted frame — EVA2 (ME + warp) plus only the suffix layers: any
  spatial conv layers after the target on Eyeriss, the FC head on EIE.

Latency composes additively (the units are invoked serially per frame in
the paper's design), energy likewise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cost import Cost
from .eie import EIEModel
from .eva2 import EVA2Model, EVA2Params
from .eyeriss import EyerissModel
from .layer_stats import NetworkSpec, spec_by_name
from .rfbme_ops import SearchParams

__all__ = ["VPUConfig", "VPUModel", "PAPER_TARGET_LAYERS"]

#: AMC target layers for the paper's three networks: the last spatial
#: layer of the backbone (the layer whose activation is warped). The RPN
#: convolutions consume the warped features, so they sit in the suffix.
PAPER_TARGET_LAYERS = {
    "AlexNet": "conv5",
    "Faster16": "conv5_3",
    "FasterM": "conv5",
}


@dataclass(frozen=True)
class VPUConfig:
    """Configuration of one VPU deployment."""

    target_layer: Optional[str] = None  # None: the paper's choice
    #: nonzero fraction of the stored activation.
    density: float = 0.2
    #: memoization mode skips the warp (AlexNet's configuration, §IV-E1).
    memoize: bool = False
    search: Optional[SearchParams] = None


class VPUModel:
    """Per-frame energy/latency model for one network on the full VPU."""

    def __init__(self, spec_or_name, config: Optional[VPUConfig] = None):
        if isinstance(spec_or_name, str):
            self.spec: NetworkSpec = spec_by_name(spec_or_name)
        else:
            self.spec = spec_or_name
        self.config = config or VPUConfig()
        self.target = self.config.target_layer or PAPER_TARGET_LAYERS.get(
            self.spec.name, self.spec.last_spatial_layer()
        )

        self.eyeriss = EyerissModel(self.spec.name)
        self.eie = EIEModel()

        rf_size, rf_stride, _ = self.spec.receptive_field(self.target)
        channels, grid_h, grid_w = self.spec.layer(self.target).out_shape
        _, in_h, in_w = self.spec.input_shape
        search = self.config.search or SearchParams(
            search_radius=max(rf_stride + rf_stride // 2, 1),
            search_stride=max(rf_stride // 2, 1),
        )
        self.eva2 = EVA2Model(
            EVA2Params(
                frame_height=in_h,
                frame_width=in_w,
                rfield_size=rf_size,
                rfield_stride=rf_stride,
                grid_height=grid_h,
                grid_width=grid_w,
                channels=channels,
                density=self.config.density,
                search=search,
            )
        )

    # ------------------------------------------------------------------ #
    def _layer_cost(self, stats) -> Dict[str, Cost]:
        """Split a layer list between Eyeriss (conv) and EIE (fc)."""
        conv_macs = sum(s.macs for s in stats if s.kind == "conv")
        fc_macs = sum(s.macs for s in stats if s.kind == "fc")
        return {
            "eyeriss": Cost(
                self.eyeriss.latency_ms(conv_macs), self.eyeriss.energy_mj(conv_macs)
            ),
            "eie": Cost(self.eie.latency_ms(fc_macs), self.eie.energy_mj(fc_macs)),
        }

    def baseline_frame_cost(self) -> Dict[str, Cost]:
        """The paper's ``orig``: the unmodified accelerator, no EVA2."""
        breakdown = self._layer_cost(self.spec.stats)
        breakdown["eva2"] = Cost.zero()
        return breakdown

    def key_frame_cost(self) -> Dict[str, Cost]:
        """Full network plus EVA2's decision + store overhead."""
        breakdown = self._layer_cost(self.spec.stats)
        breakdown["eva2"] = self.eva2.key_frame_cost()
        return breakdown

    def predicted_frame_cost(self) -> Dict[str, Cost]:
        """EVA2 plus the CNN suffix only."""
        breakdown = self._layer_cost(self.spec.suffix_stats(self.target))
        eva2 = self.eva2.motion_estimation_cost()
        if not self.config.memoize:
            eva2 = eva2 + self.eva2.warp_cost()
        breakdown["eva2"] = eva2
        return breakdown

    # ------------------------------------------------------------------ #
    @staticmethod
    def total(breakdown: Dict[str, Cost]) -> Cost:
        return Cost.sum(breakdown.values())

    def average_frame_cost(self, key_fraction: float) -> Cost:
        """Weighted mix of key and predicted frames (Table I ``avg``)."""
        if not 0.0 <= key_fraction <= 1.0:
            raise ValueError(f"key_fraction must be in [0, 1], got {key_fraction}")
        key = self.total(self.key_frame_cost())
        predicted = self.total(self.predicted_frame_cost())
        return key_fraction * key + (1.0 - key_fraction) * predicted

    def area_breakdown(self) -> Dict[str, float]:
        """Fig. 12: die area of the three units."""
        eva2 = self.eva2.area_mm2
        total = self.eyeriss.area_mm2 + self.eie.area_mm2 + eva2
        return {
            "eyeriss_mm2": self.eyeriss.area_mm2,
            "eie_mm2": self.eie.area_mm2,
            "eva2_mm2": eva2,
            "eva2_fraction": eva2 / total,
            "total_mm2": total,
        }
