"""EIE-style fully-connected layer accelerator cost model.

EIE (Han et al., ISCA 2016) stores compressed FC weights entirely on chip
and skips zero activations, making FC layers "orders of magnitude" cheaper
than conv layers in the paper's VPU (Fig. 13 discussion). Its published
figures — 45 nm, 590 mW, ~1.1 dense-equivalent TMAC/s on AlexNet's FC
layers — give per-MAC constants which we scale to the paper's 65 nm
process exactly as the paper scales EIE's power, latency and area
(§IV-B: linear technology scaling factor 65/45).
"""

from __future__ import annotations

__all__ = ["EIEModel"]

#: Linear process scaling factor the paper applies to EIE (45 nm → 65 nm).
PROCESS_SCALE = 65.0 / 45.0

#: EIE published dense-equivalent throughput and power at 45 nm.
_DENSE_TMACS_45NM = 1.1
_POWER_W_45NM = 0.59

#: EIE die area: 40.8 mm2 at 45 nm → ~58.9 mm2 at 65 nm (paper Fig. 12
#: scales by the squared linear factor... the paper reports 58.9 mm2,
#: which is 40.8 * (65/45)^1 * ~1.0; we keep the paper's number directly).
EIE_AREA_45NM_MM2 = 40.8
EIE_AREA_65NM_MM2 = 58.9


class EIEModel:
    """Energy/latency model for fully-connected layers."""

    def __init__(self):
        # 65 nm scaling: latency and energy both grow by the linear factor.
        tmacs = _DENSE_TMACS_45NM / PROCESS_SCALE
        power_w = _POWER_W_45NM * PROCESS_SCALE
        self.latency_ps_per_mac = 1e12 / (tmacs * 1e12)
        self.energy_pj_per_mac = power_w / tmacs

    def energy_mj(self, macs: int) -> float:
        """Energy in millijoules for ``macs`` dense-equivalent FC MACs."""
        return macs * self.energy_pj_per_mac * 1e-9

    def latency_ms(self, macs: int) -> float:
        """Latency in milliseconds for ``macs`` dense-equivalent FC MACs."""
        return macs * self.latency_ps_per_mac * 1e-9

    @property
    def area_mm2(self) -> float:
        return EIE_AREA_65NM_MM2
