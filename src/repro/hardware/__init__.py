"""Hardware cost models: Eyeriss + EIE + EVA2 vision processing unit."""

from .cost import Cost
from .eie import EIEModel
from .eva2 import EVA2Model, EVA2Params
from .eyeriss import EyerissModel
from .fixed_point import Q8_8, UQ0_16, QFormat
from .layer_stats import (
    NetworkSpec,
    alexnet_spec,
    faster16_spec,
    fasterm_spec,
    spec_by_name,
    vgg16_spec,
)
from .memory import EDRAM, SRAM, MemoryTech
from .rfbme_ops import SearchParams, rfbme_ops, unoptimized_ops
from .rle import RLEStream, decode, encode, storage_report
from .vpu import PAPER_TARGET_LAYERS, VPUConfig, VPUModel

__all__ = [
    "Cost",
    "EIEModel",
    "EVA2Model",
    "EVA2Params",
    "EyerissModel",
    "Q8_8",
    "UQ0_16",
    "QFormat",
    "NetworkSpec",
    "alexnet_spec",
    "faster16_spec",
    "fasterm_spec",
    "spec_by_name",
    "vgg16_spec",
    "EDRAM",
    "SRAM",
    "MemoryTech",
    "SearchParams",
    "rfbme_ops",
    "unoptimized_ops",
    "RLEStream",
    "decode",
    "encode",
    "storage_report",
    "PAPER_TARGET_LAYERS",
    "VPUConfig",
    "VPUModel",
]
