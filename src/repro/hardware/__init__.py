"""Hardware cost models: Eyeriss + EIE + EVA2 vision processing unit.

Models the paper's evaluation hardware (§IV-B): an Eyeriss-style conv
accelerator and an EIE-style FC accelerator as the baseline VPU, extended
with the EVA2 unit (§III).  Submodules reproduce specific artifacts:

* :mod:`.eyeriss`, :mod:`.eie` — baseline accelerator costs (§IV-B);
* :mod:`.eva2`     — the EVA2 block's area/energy/latency (Fig. 12, 13);
* :mod:`.vpu`      — whole-VPU rollups (Fig. 5, Fig. 13, Table IV);
* :mod:`.layer_stats` — AlexNet / FasterM / Faster16 layer tables (Table II);
* :mod:`.rfbme_ops`   — §IV-A first-order motion-estimation op counts;
* :mod:`.memory`      — CACTI-style eDRAM/SRAM constants (§IV-B);
* :mod:`.fixed_point` — the 16-bit warp datapath (§III-B);
* :mod:`.rle`         — run-length activation encoding (§III-B);
* :mod:`.cost`        — the shared (latency, energy) accounting type.
"""

from .cost import Cost
from .eie import EIEModel
from .eva2 import EVA2Model, EVA2Params
from .eyeriss import EyerissModel
from .fixed_point import Q8_8, UQ0_16, QFormat
from .layer_stats import (
    NetworkSpec,
    alexnet_spec,
    faster16_spec,
    fasterm_spec,
    spec_by_name,
    vgg16_spec,
)
from .memory import EDRAM, SRAM, MemoryTech
from .rfbme_ops import SearchParams, rfbme_ops, unoptimized_ops
from .rle import RLEStream, decode, encode, storage_report
from .vpu import PAPER_TARGET_LAYERS, VPUConfig, VPUModel

__all__ = [
    "Cost",
    "EIEModel",
    "EVA2Model",
    "EVA2Params",
    "EyerissModel",
    "Q8_8",
    "UQ0_16",
    "QFormat",
    "NetworkSpec",
    "alexnet_spec",
    "faster16_spec",
    "fasterm_spec",
    "spec_by_name",
    "vgg16_spec",
    "EDRAM",
    "SRAM",
    "MemoryTech",
    "SearchParams",
    "rfbme_ops",
    "unoptimized_ops",
    "RLEStream",
    "decode",
    "encode",
    "storage_report",
    "PAPER_TARGET_LAYERS",
    "VPUConfig",
    "VPUModel",
]
